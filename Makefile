# Build, test, and static-analysis gates. `make ci` is what a CI job runs.

GO      ?= go
BIN     := bin
REPOLINT := $(BIN)/repolint
BENCHOUT := BENCH_sim.json
BASELINE := BENCH_baseline.json
PROFILES := profiles

# Gated benchmarks: the sim-kernel microbenches whose ns/op, B/op, and
# allocs/op are compared against $(BASELINE) by `make benchdiff`.
# -benchtime is pinned and -count >= 3 (benchdiff takes the per-metric
# minimum) so the ns/op band is not defeated by runner noise; the band
# itself is configurable for noisier machines (hosted runners).
GATED_PKG       := ./internal/sim
GATED_BENCHTIME := 500ms
GATED_COUNT     := 3
BENCHDIFF_BAND  ?= 40

.PHONY: all build test race lint vet vuln fuzz bench bench-baseline benchdiff bench-profile profgate ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The plain -race sweep already covers everything; the second pass
# re-runs the parallel drivers and the sharded-core equality tests
# alone with -count=2 so the fan-out and cross-shard delivery paths get
# extra scheduler interleavings under the detector.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'Parallel|Map|Shard' ./internal/exec ./internal/cluster ./internal/campaign ./internal/sim ./internal/mpi

# Simulator throughput benchmarks, archived as NDJSON (one go test
# -json event per line): the sim-kernel microbenches (gated — pinned
# -benchtime, -count 3), the streaming trace pipeline at 1×/4×/16×
# duration (gated — allocs/op must stay flat as the trace grows), the
# 8-cell campaign matrix at parallelism 1 vs 8 (their ratio is the
# fan-out speedup on this machine), one end-to-end paper figure, the
# 256-rank sharded-FT run at 1 vs 4 event-core shards (its speedup
# metric is the within-run parallelism gain), and the repolint
# self-benchmarks (full module load + all analyzers, plus the
# flow-sensitive detflow/hotalloc pass alone) so lint wall-time
# regressions are tracked alongside sim throughput.
#
# The sharded-FT run also captures a heap profile, committed under
# profiles/ to feed the ROADMAP 4096-rank memory question. It uses the
# .mprof extension (not .pprof) deliberately: profgate's loader treats
# every profiles/*.pprof sample as CPU time, so a heap profile must
# stay out of that glob.
bench:
	: > $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime $(GATED_BENCHTIME) -count $(GATED_COUNT) $(GATED_PKG) >> $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench 'TraceStream' -benchmem -benchtime $(GATED_BENCHTIME) -count $(GATED_COUNT) ./internal/trace >> $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench 'Campaign8' -benchmem ./internal/campaign >> $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench 'Fig3FTClassB' -benchmem . >> $(BENCHOUT)
	@mkdir -p $(PROFILES)
	$(GO) test -json -run '^$$' -bench 'ShardedFT' -benchtime 1x -benchmem -memprofile $(CURDIR)/$(PROFILES)/shardedft_heap.mprof >> $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench 'RepolintModule|DetflowModule|NumericModule' -benchtime 1x -benchmem ./internal/lint >> $(BENCHOUT)
	@grep 'ns/op' $(BENCHOUT) | sed 's/.*"Output":"//;s/\\n.*//;s/\\t/  /g' || true

# Refresh the committed benchmark baseline from a fresh run of the
# gated benches. The baseline is normalized NDJSON — sorted, one record
# per benchmark, timestamps stripped — so the diff a refresh produces is
# reviewable instead of rewriting every line's Time field.
bench-baseline: bench $(REPOLINT)
	$(REPOLINT) benchdiff -update -baseline $(BASELINE) $(BENCHOUT)

# The benchmark-regression gate: rerun the gated benches and compare
# against the committed baseline. allocs/op and B/op are exact (the
# kernel's 0 must stay 0); ns/op tolerates BENCHDIFF_BAND percent.
benchdiff: bench $(REPOLINT)
	$(REPOLINT) benchdiff -band $(BENCHDIFF_BAND) -baseline $(BASELINE) $(BENCHOUT)

# Collect CPU profiles from the benchmark suite for the profgate
# analyzer: the sim-kernel microbenches, the campaign fan-out, the
# end-to-end paper figure, and the 256-rank sharded FT (the
# communication-heavy profile that keeps the netsim and cross-shard
# delivery paths hot). Committed under profiles/ so hot-root
# discovery runs on every `make ci`, not only on machines that just
# benched. Refresh whenever hot paths move: make bench-profile && make profgate
bench-profile:
	@mkdir -p $(PROFILES) $(BIN)
	$(GO) test -run '^$$' -bench . -benchtime $(GATED_BENCHTIME) -cpuprofile $(CURDIR)/$(PROFILES)/sim.pprof -o $(BIN)/sim.test $(GATED_PKG)
	$(GO) test -run '^$$' -bench 'Campaign8' -cpuprofile $(CURDIR)/$(PROFILES)/campaign.pprof -o $(BIN)/campaign.test ./internal/campaign
	$(GO) test -run '^$$' -bench 'Fig3FTClassB' -cpuprofile $(CURDIR)/$(PROFILES)/figure.pprof -o $(BIN)/figure.test .
	$(GO) test -run '^$$' -bench 'ShardedFT' -benchtime 1x -cpuprofile $(CURDIR)/$(PROFILES)/sharded.pprof -o $(BIN)/sharded.test .
	$(GO) test -run '^$$' -bench 'TraceStream' -benchtime $(GATED_BENCHTIME) -cpuprofile $(CURDIR)/$(PROFILES)/trace.pprof -o $(BIN)/trace.test ./internal/trace

# Profile-guided hot-root discovery: join the committed CPU profiles
# against //lint:hotpath reachability. Reports functions the profiles
# show hot that no annotated root guards, and annotated roots that are
# cold in every profile. Thresholds: REPOLINT_PROFGATE_CUM/_FLAT/_COLD.
profgate: $(REPOLINT)
	REPOLINT_PROFILES=$(PROFILES) $(REPOLINT) -only profgate ./...

$(REPOLINT): $(shell find internal/lint cmd/repolint -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p $(BIN)
	$(GO) build -o $(REPOLINT) ./cmd/repolint

# Run the repolint analyzers over the whole module via go vet's vettool
# protocol (type-checks against export data, caches per package), then
# one standalone pass against the per-analyzer wall-time ceilings in
# LINT_BUDGET.json: an analyzer whose cost regresses past its ceiling
# (say, going quadratic on the module) fails lint even when its
# diagnostics stay clean.
lint: $(REPOLINT)
	$(GO) vet -vettool=$(CURDIR)/$(REPOLINT) ./...
	$(REPOLINT) -budget LINT_BUDGET.json ./...

# Standard go vet, without the custom analyzers.
vet:
	$(GO) vet ./...

# Ten-second native-fuzzing smoke over the PWTR binary trace decoder:
# arbitrary bytes must never panic the reader, and any stream it
# accepts must survive a bit-exact re-encode/re-decode round trip.
# Interesting inputs accumulate in the local build cache; CI buys a
# fixed budget of fresh execs on top of the committed seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzTraceReader' -fuzztime 10s ./internal/trace

# Best-effort locally: govulncheck is not vendored; skip quietly when
# absent. The CI workflow installs it, so the hosted `make ci` always
# runs the vuln pass.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

ci: build test lint race profgate benchdiff fuzz vuln

clean:
	rm -rf $(BIN)
