# Build, test, and static-analysis gates. `make ci` is what a CI job runs.

GO      ?= go
BIN     := bin
REPOLINT := $(BIN)/repolint
BENCHOUT := BENCH_sim.json

.PHONY: all build test race lint vet vuln bench ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The plain -race sweep already covers everything; the second pass
# re-runs the parallel drivers alone with -count=2 so the fan-out paths
# get extra scheduler interleavings under the detector.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'Parallel|Map' ./internal/exec ./internal/cluster ./internal/campaign

# Simulator throughput benchmarks, archived as NDJSON (one go test
# -json event per line): the sim-kernel microbenches (ns/op and
# allocs/op on the Schedule/Sleep hot path), the 8-cell campaign matrix
# at parallelism 1 vs 8 (their ratio is the fan-out speedup on this
# machine), one end-to-end paper figure, and the repolint
# self-benchmarks (full module load + all nine analyzers, plus the
# flow-sensitive detflow/hotalloc pass alone) so lint wall-time
# regressions are tracked alongside sim throughput.
bench:
	: > $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench . -benchmem ./internal/sim >> $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench 'Campaign8' -benchmem ./internal/campaign >> $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench 'Fig3FTClassB' -benchmem . >> $(BENCHOUT)
	$(GO) test -json -run '^$$' -bench 'RepolintModule|DetflowModule' -benchtime 1x -benchmem ./internal/lint >> $(BENCHOUT)
	@grep 'ns/op' $(BENCHOUT) | sed 's/.*"Output":"//;s/\\n.*//;s/\\t/  /g' || true

$(REPOLINT): $(shell find internal/lint cmd/repolint -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p $(BIN)
	$(GO) build -o $(REPOLINT) ./cmd/repolint

# Run the repolint analyzers over the whole module via go vet's vettool
# protocol (type-checks against export data, caches per package).
lint: $(REPOLINT)
	$(GO) vet -vettool=$(CURDIR)/$(REPOLINT) ./...

# Standard go vet, without the custom analyzers.
vet:
	$(GO) vet ./...

# Best-effort: govulncheck is not vendored; skip quietly when absent.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

ci: build test lint race vuln

clean:
	rm -rf $(BIN)
