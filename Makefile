# Build, test, and static-analysis gates. `make ci` is what a CI job runs.

GO      ?= go
BIN     := bin
REPOLINT := $(BIN)/repolint

.PHONY: all build test race lint vet vuln ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

$(REPOLINT): $(shell find internal/lint cmd/repolint -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p $(BIN)
	$(GO) build -o $(REPOLINT) ./cmd/repolint

# Run the repolint analyzers over the whole module via go vet's vettool
# protocol (type-checks against export data, caches per package).
lint: $(REPOLINT)
	$(GO) vet -vettool=$(CURDIR)/$(REPOLINT) ./...

# Standard go vet, without the custom analyzers.
vet:
	$(GO) vet ./...

# Best-effort: govulncheck is not vendored; skip quietly when absent.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

ci: build lint race vuln

clean:
	rm -rf $(BIN)
