// Package repro is a full reproduction, in pure Go, of "Improvement of
// Power-Performance Efficiency for High-End Computing" (Ge, Feng,
// Cameron — IPDPS/IPPS 2005): a simulated DVS-capable Beowulf cluster
// (Pentium M nodes, 100 Mb switched Ethernet, an MPICH-style message
// passing runtime), the PowerPack measurement-and-control framework,
// the weighted ED2P metric, and the paper's three distributed DVS
// strategies with every workload of its evaluation.
//
// This package is the public facade: it re-exports the pieces a
// downstream user needs to run power-performance experiments —
// configure a cluster, pick a workload and a DVS strategy, sweep the
// operating points, and analyze the resulting energy-delay crescendos.
// The implementation lives in the internal packages (see DESIGN.md for
// the system inventory).
//
// A minimal experiment:
//
//	runner := repro.NewRunner(repro.DefaultConfig())
//	crescendo, err := runner.Sweep(repro.NewFT('B', 8), repro.Static{})
//	if err != nil { ... }
//	best := crescendo.Normalized(0).Best(repro.DeltaHPC)
package repro

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/dvs"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/power"
	"repro/internal/powerpack"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Simulation time.
type (
	// Time is an instant on the virtual clock (ns since the epoch).
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Engine is the discrete-event simulation kernel; custom
	// strategies spawn their daemon processes on it.
	Engine = sim.Engine
	// Proc is a simulated process handle.
	Proc = sim.Proc
)

// Virtual time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// DVFS hardware model.
type (
	// Hz is a clock frequency.
	Hz = dvfs.Hz
	// OperatingPoint is one frequency/voltage DVS setting.
	OperatingPoint = dvfs.OperatingPoint
	// OPTable is the processor's list of operating points.
	OPTable = dvfs.Table
)

// Frequency units.
const (
	KHz = dvfs.KHz
	MHz = dvfs.MHz
	GHz = dvfs.GHz
)

// PentiumM14 returns the paper's Table 2: the five SpeedStep points of
// the Pentium M 1.4 GHz.
func PentiumM14() OPTable { return dvfs.PentiumM14() }

// Power and energy.
type (
	// Watts is instantaneous power.
	Watts = power.Watts
	// Joules is energy.
	Joules = power.Joules
	// Component identifies a node subsystem (CPU, memory, disk, NIC,
	// board) for per-component power profiles.
	Component = power.Component
)

// Node model.
type (
	// MachineParams is the calibrated node model (cost + power).
	MachineParams = machine.Params
	// Node is one cluster node.
	Node = machine.Node
)

// DefaultMachineParams returns the calibrated Inspiron 8600 model.
func DefaultMachineParams() MachineParams { return machine.DefaultParams() }

// LowPowerMachineParams returns a Green-Destiny-class fixed-frequency
// blade node — the "low power" school the paper contrasts with
// power-aware DVS.
func LowPowerMachineParams() MachineParams { return machine.LowPowerParams() }

// Network and MPI.
type (
	// NetConfig describes the interconnect fabric.
	NetConfig = netsim.Config
	// MPIConfig is the message-passing library's cost model.
	MPIConfig = mpi.Config
	// Rank is one MPI process handle.
	Rank = mpi.Rank
	// Comm is a sub-communicator (MPI_Comm_split-style).
	Comm = mpi.Comm
)

// Default100Mb returns the paper's switched 100 Mb Ethernet fabric.
func Default100Mb() NetConfig { return netsim.Default100Mb() }

// Gigabit returns a gigabit Ethernet fabric for interconnect ablations.
func Gigabit() NetConfig { return netsim.Gigabit() }

// Interconnect abstraction for topology studies.
type (
	// Fabric is the interconnect interface the MPI runtime drives.
	Fabric = netsim.Fabric
	// TreeConfig describes a two-tier (oversubscribed) interconnect.
	TreeConfig = netsim.TreeConfig
	// Tree is the two-tier fabric implementation.
	Tree = netsim.Tree
)

// NewTree builds a two-tier fabric on an engine (use from a Config's
// Fabric builder).
func NewTree(eng *Engine, ports int, cfg TreeConfig) *Tree {
	return netsim.NewTree(eng, ports, cfg)
}

// DefaultMPIConfig returns the MPICH-1.2.5-over-TCP cost model.
func DefaultMPIConfig() MPIConfig { return mpi.DefaultConfig() }

// DVS strategies.
type (
	// Strategy is a distributed DVS policy.
	Strategy = dvs.Strategy
	// Static pins all nodes to one frequency for the whole run.
	Static = dvs.Static
	// Dynamic is application-directed control via PowerPack regions.
	Dynamic = dvs.Dynamic
	// Cpuspeed is the stock Linux interval governor.
	Cpuspeed = dvs.Cpuspeed
	// Adaptive is the self-tuning region governor: it learns each
	// marked region's best operating point online (the automation the
	// paper's conclusion points toward).
	Adaptive = dvs.Adaptive
	// Slack is the MPI-aware interval governor: unlike cpuspeed it can
	// see busy-polling MPI waits, so load imbalance yields per-node
	// frequencies automatically.
	Slack = dvs.Slack
	// StrategyInstallCtx is what a custom Strategy receives when the
	// runner arms it on a fresh cluster.
	StrategyInstallCtx = dvs.InstallCtx
)

// NewDynamic builds the paper's dynamic strategy: drop to the minimum
// operating point inside the named PowerPack regions.
func NewDynamic(regions ...string) *Dynamic { return dvs.NewDynamic(regions...) }

// NewCpuspeed returns the cpuspeed daemon with stock settings.
func NewCpuspeed() *Cpuspeed { return dvs.NewCpuspeed() }

// NewAdaptive returns the self-tuning region governor under the HPC
// weight factor.
func NewAdaptive() *Adaptive { return dvs.NewAdaptive() }

// NewSlack returns the MPI-aware slack governor with default tuning.
func NewSlack() *Slack { return dvs.NewSlack() }

// PowerPack.
type (
	// Profiler collects timestamped power/DVS events cluster-wide.
	Profiler = powerpack.Profiler
	// NodeCtx is the per-node PowerPack library handle.
	NodeCtx = powerpack.NodeCtx
	// RegionProfile is accumulated time/energy for one marked region.
	RegionProfile = powerpack.RegionProfile
	// RegionPolicy reacts to application region boundaries.
	RegionPolicy = powerpack.RegionPolicy
)

// Metrics (the paper's Section 2).
type (
	// CrescendoPoint is one operating point's energy and delay.
	CrescendoPoint = core.Point
	// Crescendo is an energy-delay sweep across operating points.
	Crescendo = core.Crescendo
	// OperatingPointChoice holds the best points under the three
	// preset weights (Tables 1 and 3).
	OperatingPointChoice = core.OperatingPoints
)

// Weight-factor presets for the weighted ED2P metric.
const (
	DeltaHPC         = core.DeltaHPC
	DeltaEnergy      = core.DeltaEnergy
	DeltaPerformance = core.DeltaPerformance
	DeltaED2P        = core.DeltaED2P
)

// ED2P returns the energy-delay-squared product E·D².
func ED2P(energy, delay float64) float64 { return core.ED2P(energy, delay) }

// WeightedED2P evaluates the paper's Equation 5:
// E^(1-d) · D^(2(1+d)).
func WeightedED2P(energy, delay, d float64) float64 {
	return core.WeightedED2P(energy, delay, d)
}

// RequiredEnergyFraction evaluates the Figure 2 tradeoff: the energy
// fraction at which a delay factor x ties the baseline under weight d.
func RequiredEnergyFraction(d, x float64) float64 {
	return core.RequiredEnergyFraction(d, x)
}

// Workloads.
type (
	// Workload is an SPMD program runnable on the cluster.
	Workload = workloads.Workload
	// WorkloadCtx is the per-rank execution context.
	WorkloadCtx = workloads.Ctx
	// FT is the NAS FT kernel model.
	FT = workloads.FT
	// Transpose is the 12K×12K parallel matrix transpose.
	Transpose = workloads.Transpose
	// EP, CG, IS, MG and LU are further NAS kernels covering the
	// compute-, memory-, bandwidth- and latency-bound regimes.
	EP = workloads.EP
	CG = workloads.CG
	IS = workloads.IS
	MG = workloads.MG
	LU = workloads.LU
	// Summa is a dense matrix multiply on a process grid, exercising
	// sub-communicators.
	Summa = workloads.Summa
)

// Region names marked by the built-in workloads for dynamic control.
const (
	RegionFFT   = workloads.RegionFFT
	RegionStep2 = workloads.RegionStep2
	RegionStep3 = workloads.RegionStep3
)

// NewFT returns the NAS FT kernel for a class ('A', 'B', 'C') and rank
// count.
func NewFT(class byte, procs int) *FT { return workloads.NewFT(class, procs) }

// NewEP returns the NAS EP kernel (embarrassingly parallel, compute
// bound) for a class and rank count.
func NewEP(class byte, procs int) *EP { return workloads.NewEP(class, procs) }

// NewCG returns the NAS CG kernel (sparse solver: memory bound with
// latency-sensitive reductions) for a class and rank count.
func NewCG(class byte, procs int) *CG { return workloads.NewCG(class, procs) }

// NewIS returns the NAS IS kernel (integer sort: all-to-all dominated)
// for a class and rank count.
func NewIS(class byte, procs int) *IS { return workloads.NewIS(class, procs) }

// NewMG returns the NAS MG kernel (multigrid V-cycles: message sizes
// spanning all levels) for a class and rank count.
func NewMG(class byte, procs int) *MG { return workloads.NewMG(class, procs) }

// NewLU returns the NAS LU kernel (wavefront sweeps: latency-bound
// small messages) for a class and rank count.
func NewLU(class byte, procs int) *LU { return workloads.NewLU(class, procs) }

// NewSumma returns an N×N dense matrix multiply on a grid×grid rank
// layout (SUMMA algorithm over row/column communicators).
func NewSumma(n int64, grid int) *Summa { return workloads.NewSumma(n, grid) }

// NewSynthetic returns a reproducible random workload for fuzzing the
// stack: a seed expands into a phase program of compute, memory, and
// communication.
func NewSynthetic(seed int64, procs, phases, iterations int) Workload {
	return workloads.NewSynthetic(seed, procs, phases, iterations)
}

// NewTranspose returns the paper's 12K×12K transpose on 5×3 ranks.
func NewTranspose(iterations int) *Transpose { return workloads.NewTranspose(iterations) }

// NewSwim returns the memory-bound SPEC swim model (sequential).
func NewSwim(iterations int) Workload { return workloads.NewSwim(iterations) }

// NewMgrid returns the compute-bound SPEC mgrid model (sequential).
func NewMgrid(iterations int) Workload { return workloads.NewMgrid(iterations) }

// NewMemBench returns the memory-bound PowerPack microbenchmark.
func NewMemBench(passes int) Workload { return workloads.NewMemBench(passes) }

// NewCacheBench returns the CPU-bound (L2) microbenchmark.
func NewCacheBench(passes int) Workload { return workloads.NewCacheBench(passes) }

// NewRegBench returns the register-only microbenchmark.
func NewRegBench(passes int) Workload { return workloads.NewRegBench(passes) }

// NewCommBench256K returns the 256 KB round-trip microbenchmark.
func NewCommBench256K(rounds int) Workload { return workloads.NewCommBench256K(rounds) }

// NewCommBench4K returns the 4 KB / 64 B-stride microbenchmark.
func NewCommBench4K(rounds int) Workload { return workloads.NewCommBench4K(rounds) }

// Analysis and decision support.
type (
	// Saving summarizes one operating point against a reference.
	Saving = analysis.Saving
	// DeltaInterval is a weight-factor range over which one operating
	// point is "best".
	DeltaInterval = analysis.DeltaInterval
	// CostModel prices cluster energy (the paper's $/kWh figures).
	CostModel = analysis.CostModel
	// ReliabilityModel converts node power into component temperature
	// and failure rates (the paper's ×2-life-per-10°C rule).
	ReliabilityModel = analysis.ReliabilityModel
)

// Savings tabulates every crescendo point against point ref.
func Savings(c Crescendo, ref int) []Saving { return analysis.Savings(c, ref) }

// ParetoFrontier returns the indices of the Pareto-optimal points.
func ParetoFrontier(c Crescendo) []int { return analysis.ParetoFrontier(c) }

// CrossoverDelta finds the weight factor at which two points tie under
// weighted ED2P.
func CrossoverDelta(a, b CrescendoPoint) (float64, bool) {
	return analysis.CrossoverDelta(a, b)
}

// BestByDelta maps the weight range [-1, 1] onto best operating points.
func BestByDelta(c Crescendo, samples int) []DeltaInterval {
	return analysis.BestByDelta(c, samples)
}

// DefaultCostModel returns the paper's $0.10/kWh with a 1.7× cooling
// overhead.
func DefaultCostModel() CostModel { return analysis.DefaultCostModel() }

// DefaultReliabilityModel returns a commodity-node thermal/failure
// model.
func DefaultReliabilityModel() ReliabilityModel { return analysis.DefaultReliabilityModel() }

// LifeFactor returns the component-life multiplier at tempC vs refC
// (×2 per 10°C decrease).
func LifeFactor(tempC, refC float64) float64 { return analysis.LifeFactor(tempC, refC) }

// CapChoice is one job's operating-point pick under a power cap.
type CapChoice = analysis.CapChoice

// PowerCapSchedule picks per-job operating points that keep summed
// average power at or below capWatts while minimizing the makespan.
func PowerCapSchedule(jobs []Crescendo, capWatts float64) []CapChoice {
	return analysis.PowerCapSchedule(jobs, capWatts)
}

// Experiment runner.
type (
	// Config describes the cluster and measurement protocol.
	Config = cluster.Config
	// Runner executes (workload × strategy × operating point) runs.
	Runner = cluster.Runner
	// Result is one run's measurements.
	Result = cluster.Result
	// Aggregate summarizes repeated runs after outlier rejection.
	Aggregate = cluster.Aggregate
	// NodeRunResult is the per-node outcome of a run.
	NodeRunResult = cluster.NodeResult
)

// Streaming power traces. A run with Config.TraceInterval set samples
// every node's draw on that period and streams each aligned tick
// through composable sinks: the compact binary TraceWriter (replayable
// via TraceReader), incremental TraceStats, an online chart
// TraceDownsampler, and a CSV encoder. No consumer retains the raw
// samples, so trace memory is O(nodes) regardless of run length.
type (
	// TraceSample is one node's instantaneous reading.
	TraceSample = trace.Sample
	// TraceMeta is a trace's fixed geometry, announced to sinks first.
	TraceMeta = trace.Meta
	// TraceSink consumes a trace tick by tick (Begin, Tick..., End).
	TraceSink = trace.Sink
	// TraceConfig describes a standalone trace recorder.
	TraceConfig = trace.Config
	// TraceRecorder samples nodes and streams rows to its sinks.
	TraceRecorder = trace.Recorder
	// TraceStats aggregates per-node mean/peak power and energy.
	TraceStats = trace.Stats
	// TraceWriter encodes a trace into the compact binary format.
	TraceWriter = trace.Writer
	// TraceReader decodes and replays a binary trace archive.
	TraceReader = trace.Reader
	// TraceDownsampler folds one node's draw into a bounded chart series.
	TraceDownsampler = trace.Downsampler
	// RunInfo identifies one run to a Config.TraceSinks factory.
	RunInfo = cluster.RunInfo
)

// NewTrace builds a standalone streaming trace recorder (runs made
// through a Runner build their own from Config.TraceInterval and
// Config.TraceSinks).
func NewTrace(cfg TraceConfig) (*TraceRecorder, error) { return trace.New(cfg) }

// NewTraceStats returns a whole-trace statistics sink.
func NewTraceStats() *TraceStats { return trace.NewStats() }

// NewTraceWindowStats returns a statistics sink restricted to samples
// with from <= At <= to.
func NewTraceWindowStats(from, to Time) *TraceStats { return trace.NewWindowStats(from, to) }

// NewTraceWriter returns a binary-format archive sink writing to w.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// NewTraceReader opens a binary trace archive for replay.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// NewTraceCSV returns a streaming CSV sink writing to w.
func NewTraceCSV(w io.Writer) TraceSink { return trace.NewCSV(w) }

// NewTraceDownsampler returns a bounded chart-series sink for one node.
func NewTraceDownsampler(nodeID, maxPoints int) *TraceDownsampler {
	return trace.NewDownsampler(nodeID, maxPoints)
}

// DefaultConfig returns the paper's apparatus: 5-minute battery settle,
// 15-20 s ACPI refresh, one-minute Baytech polling, three repetitions
// with outlier rejection.
func DefaultConfig() Config { return cluster.DefaultConfig() }

// NewRunner builds an experiment runner, or reports why the
// configuration is invalid.
func NewRunner(cfg Config) (*Runner, error) { return cluster.NewRunner(cfg) }

// MustRunner builds an experiment runner from a configuration known to
// be valid (DefaultConfig plus tweaks); it panics on an invalid one.
func MustRunner(cfg Config) *Runner { return cluster.MustRunner(cfg) }
