package repro_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench runs the corresponding experiment end-to-end on the simulated
// cluster and reports the headline ratios as custom metrics (normalized
// energy/delay at 600 MHz and friends), so `go test -bench=.` both
// exercises and regenerates the paper's results. EXPERIMENTS.md records
// the paper-vs-measured comparison.

import (
	"testing"
	"time"

	"repro"
)

// benchRunner returns the standard apparatus scaled for benchmarking:
// exact energy (deterministic), one repetition, short settle.
func benchRunner() *repro.Runner {
	cfg := repro.DefaultConfig()
	cfg.Settle = 30 * repro.Second
	cfg.Reps = 1
	cfg.UseTrueEnergy = true
	return repro.MustRunner(cfg)
}

// sweepMetrics reports the 600 MHz point of a normalized crescendo.
func sweepMetrics(b *testing.B, w repro.Workload) repro.Crescendo {
	b.Helper()
	r := benchRunner()
	var c repro.Crescendo
	for i := 0; i < b.N; i++ {
		var err error
		c, err = r.Sweep(w, repro.Static{})
		if err != nil {
			b.Fatal(err)
		}
	}
	n := c.Normalized(0)
	last := n.Points[len(n.Points)-1]
	b.ReportMetric(last.Energy, "E600/E0")
	b.ReportMetric(last.Delay, "D600/D0")
	return c
}

// --- Figure 1 / Table 1: sequential SPEC codes -----------------------

func BenchmarkFig1aMgrid(b *testing.B) {
	c := sweepMetrics(b, repro.NewMgrid(30))
	n := c.Normalized(0)
	b.ReportMetric(float64(c.Points[n.Best(repro.DeltaHPC)].Freq.MHz()), "HPCbest_MHz")
}

func BenchmarkFig1bSwim(b *testing.B) {
	c := sweepMetrics(b, repro.NewSwim(30))
	n := c.Normalized(0)
	b.ReportMetric(float64(c.Points[n.Best(repro.DeltaHPC)].Freq.MHz()), "HPCbest_MHz")
}

func BenchmarkTable1BestPoints(b *testing.B) {
	r := benchRunner()
	var swim, mgrid repro.Crescendo
	for i := 0; i < b.N; i++ {
		var err error
		swim, err = r.Sweep(repro.NewSwim(30), repro.Static{})
		if err != nil {
			b.Fatal(err)
		}
		mgrid, err = r.Sweep(repro.NewMgrid(30), repro.Static{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(swim.SelectOperatingPoints().HPC.Freq.MHz()), "swimHPC_MHz")
	b.ReportMetric(float64(mgrid.SelectOperatingPoints().HPC.Freq.MHz()), "mgridHPC_MHz")
	b.ReportMetric(float64(swim.SelectOperatingPoints().Energy.Freq.MHz()), "swimEnergy_MHz")
}

// --- Figure 2 / Table 2: the analytic pieces -------------------------

func BenchmarkFig2TradeoffCurves(b *testing.B) {
	var y float64
	for i := 0; i < b.N; i++ {
		for _, d := range []float64{-0.4, -0.2, 0, 0.2, 0.4, 0.6} {
			for x := 1.0; x <= 2.0; x += 0.01 {
				y = repro.RequiredEnergyFraction(d, x)
			}
		}
	}
	// The paper's worked example: d=0.2, 5% slowdown needs ~13% saving.
	b.ReportMetric((1-repro.RequiredEnergyFraction(0.2, 1.05))*100, "savingAt5pct_%")
	_ = y
}

func BenchmarkTable2OperatingPoints(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		t := repro.PentiumM14()
		for j := 0; j < t.Len(); j++ {
			v += t.At(j).Voltage
		}
	}
	b.ReportMetric(repro.PentiumM14().Lowest().Voltage, "V_at_600MHz")
}

// --- Figure 3 / Table 3: FT class B on 8 nodes -----------------------

func BenchmarkFig3FTClassB(b *testing.B) {
	ft := repro.NewFT('B', 8)
	ft.IterOverride = 2
	r := benchRunner()
	var c repro.Crescendo
	var cpE, cpD float64
	for i := 0; i < b.N; i++ {
		var err error
		c, err = r.Sweep(ft, repro.Static{})
		if err != nil {
			b.Fatal(err)
		}
		pt, err := r.RunCpuspeed(ft, repro.NewCpuspeed())
		if err != nil {
			b.Fatal(err)
		}
		cpE, cpD = pt.Energy/c.Points[0].Energy, pt.Delay/c.Points[0].Delay
	}
	n := c.Normalized(0)
	b.ReportMetric(n.Points[4].Energy, "E600/E0")
	b.ReportMetric(n.Points[4].Delay, "D600/D0")
	b.ReportMetric(cpE, "cpuspeedE/E0")
	b.ReportMetric(cpD, "cpuspeedD/D0")
}

func BenchmarkTable3FTBestPoints(b *testing.B) {
	ft := repro.NewFT('B', 8)
	ft.IterOverride = 2
	r := benchRunner()
	var c repro.Crescendo
	for i := 0; i < b.N; i++ {
		var err error
		c, err = r.Sweep(ft, repro.Static{})
		if err != nil {
			b.Fatal(err)
		}
	}
	ops := c.SelectOperatingPoints()
	b.ReportMetric(float64(ops.Energy.Freq.MHz()), "energyBest_MHz")
	b.ReportMetric(float64(ops.Performance.Freq.MHz()), "perfBest_MHz")
	b.ReportMetric(float64(ops.HPC.Freq.MHz()), "HPCbest_MHz")
}

// --- Figure 4: FT class C, three strategies --------------------------

func BenchmarkFig4FTClassCStrategies(b *testing.B) {
	ft := repro.NewFT('C', 8)
	ft.IterOverride = 1
	r := benchRunner()
	var s600E, s600D, dynE, dynD, cpE float64
	for i := 0; i < b.N; i++ {
		top, err := r.Run(ft, repro.Static{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		s600, err := r.Run(ft, repro.Static{}, 4)
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := r.Run(ft, repro.NewDynamic(repro.RegionFFT), 0)
		if err != nil {
			b.Fatal(err)
		}
		cp, err := r.RunCpuspeed(ft, repro.NewCpuspeed())
		if err != nil {
			b.Fatal(err)
		}
		s600E = float64(s600.EnergyTrue) / float64(top.EnergyTrue)
		s600D = s600.Delay.Seconds() / top.Delay.Seconds()
		dynE = float64(dyn.EnergyTrue) / float64(top.EnergyTrue)
		dynD = dyn.Delay.Seconds() / top.Delay.Seconds()
		cpE = cp.Energy / float64(top.EnergyTrue)
	}
	b.ReportMetric(s600E, "static600E/E0")
	b.ReportMetric(s600D, "static600D/D0")
	b.ReportMetric(dynE, "dyn1400E/E0")
	b.ReportMetric(dynD, "dyn1400D/D0")
	b.ReportMetric(cpE, "cpuspeedE/E0")
}

// --- Figure 5: parallel matrix transpose, three strategies -----------

func BenchmarkFig5TransposeStrategies(b *testing.B) {
	tr := repro.NewTranspose(1)
	r := benchRunner()
	var s800E, s800D, s600E, s600D, dynE float64
	for i := 0; i < b.N; i++ {
		top, err := r.Run(tr, repro.Static{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		s800, err := r.Run(tr, repro.Static{}, 3)
		if err != nil {
			b.Fatal(err)
		}
		s600, err := r.Run(tr, repro.Static{}, 4)
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := r.Run(tr, repro.NewDynamic(repro.RegionStep2, repro.RegionStep3), 0)
		if err != nil {
			b.Fatal(err)
		}
		s800E = float64(s800.EnergyTrue) / float64(top.EnergyTrue)
		s800D = s800.Delay.Seconds() / top.Delay.Seconds()
		s600E = float64(s600.EnergyTrue) / float64(top.EnergyTrue)
		s600D = s600.Delay.Seconds() / top.Delay.Seconds()
		dynE = float64(dyn.EnergyTrue) / float64(top.EnergyTrue)
	}
	b.ReportMetric(s800E, "static800E/E0")
	b.ReportMetric(s800D, "static800D/D0")
	b.ReportMetric(s600E, "static600E/E0")
	b.ReportMetric(s600D, "static600D/D0")
	b.ReportMetric(dynE, "dyn1400E/E0")
}

// --- Figures 6-8: microbenchmarks ------------------------------------

func BenchmarkFig6MemoryBench(b *testing.B) {
	sweepMetrics(b, repro.NewMemBench(40))
}

func BenchmarkFig7CacheBench(b *testing.B) {
	c := sweepMetrics(b, repro.NewCacheBench(100000))
	n := c.Normalized(0)
	b.ReportMetric(float64(c.Points[n.Best(repro.DeltaEnergy)].Freq.MHz()), "energyBest_MHz")
}

func BenchmarkFig7RegisterBench(b *testing.B) {
	sweepMetrics(b, repro.NewRegBench(4000))
}

func BenchmarkFig8aComm256K(b *testing.B) {
	sweepMetrics(b, repro.NewCommBench256K(300))
}

func BenchmarkFig8bComm4K(b *testing.B) {
	sweepMetrics(b, repro.NewCommBench4K(3000))
}

// --- Ablations: design choices DESIGN.md calls out -------------------

// AblationSpinThreshold: how the MPI wait model (spin vs block) moves
// the FT energy crescendo and what the cpuspeed daemon can see.
func BenchmarkAblationSpinThreshold(b *testing.B) {
	ft := repro.NewFT('C', 8)
	ft.IterOverride = 1
	var spinE, blockE float64
	for i := 0; i < b.N; i++ {
		for _, thr := range []repro.Duration{-1, 100 * repro.Millisecond} {
			cfg := repro.DefaultConfig()
			cfg.Settle = 30 * repro.Second
			cfg.Reps = 1
			cfg.UseTrueEnergy = true
			cfg.MPI.SpinThreshold = thr
			r := repro.MustRunner(cfg)
			top, err := r.Run(ft, repro.Static{}, 0)
			if err != nil {
				b.Fatal(err)
			}
			low, err := r.Run(ft, repro.Static{}, 4)
			if err != nil {
				b.Fatal(err)
			}
			ratio := float64(low.EnergyTrue) / float64(top.EnergyTrue)
			if thr < 0 {
				spinE = ratio
			} else {
				blockE = ratio
			}
		}
	}
	b.ReportMetric(spinE, "E600_spinForever")
	b.ReportMetric(blockE, "E600_block100ms")
}

// AblationEagerThreshold: rendezvous handshakes cost latency; pushing
// the eager threshold up trades memory for time on mid-size messages.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	w := repro.NewCommBench256K(300)
	var dEager, dRendezvous float64
	for i := 0; i < b.N; i++ {
		for _, thr := range []int64{1 << 20, 64 << 10} {
			cfg := repro.DefaultConfig()
			cfg.Settle = 30 * repro.Second
			cfg.Reps = 1
			cfg.UseTrueEnergy = true
			cfg.MPI.EagerThreshold = thr
			r := repro.MustRunner(cfg)
			res, err := r.Run(w, repro.Static{}, 0)
			if err != nil {
				b.Fatal(err)
			}
			if thr > 256<<10 {
				dEager = res.Delay.Seconds()
			} else {
				dRendezvous = res.Delay.Seconds()
			}
		}
	}
	b.ReportMetric(dRendezvous/dEager, "rendezvous/eager_delay")
}

// AblationTransitionLatency: the paper quotes ~10 µs per switch; how
// much dynamic-mode overhead appears if transitions were 100x slower?
func BenchmarkAblationTransitionLatency(b *testing.B) {
	ft := repro.NewFT('B', 8)
	ft.IterOverride = 2
	var fast, slow float64
	for i := 0; i < b.N; i++ {
		for _, lat := range []repro.Duration{10 * repro.Microsecond, repro.Millisecond} {
			cfg := repro.DefaultConfig()
			cfg.Settle = 30 * repro.Second
			cfg.Reps = 1
			cfg.UseTrueEnergy = true
			cfg.Machine.Transition.Latency = lat
			r := repro.MustRunner(cfg)
			res, err := r.Run(ft, repro.NewDynamic(repro.RegionFFT), 0)
			if err != nil {
				b.Fatal(err)
			}
			if lat == 10*repro.Microsecond {
				fast = res.Delay.Seconds()
			} else {
				slow = res.Delay.Seconds()
			}
		}
	}
	b.ReportMetric(slow/fast, "1ms/10us_delay")
}

// AblationBatteryVsExact: the ACPI protocol's measurement error as a
// function of run length (the reason the paper runs long workloads).
func BenchmarkAblationBatteryVsExact(b *testing.B) {
	var errShort, errLong float64
	for i := 0; i < b.N; i++ {
		for _, iters := range []int{100, 2000} {
			cfg := repro.DefaultConfig()
			cfg.Reps = 1
			r := repro.MustRunner(cfg)
			res, err := r.RunOnce(repro.NewSwim(iters), repro.Static{}, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			rel := float64(res.EnergyACPI-res.EnergyTrue) / float64(res.EnergyTrue)
			if rel < 0 {
				rel = -rel
			}
			if iters == 100 {
				errShort = rel
			} else {
				errLong = rel
			}
		}
	}
	b.ReportMetric(errShort*100, "shortRunErr_%")
	b.ReportMetric(errLong*100, "longRunErr_%")
}

// AblationCpuspeedInterval: a faster-sampling daemon still cannot find
// slack it cannot see.
func BenchmarkAblationCpuspeedInterval(b *testing.B) {
	ft := repro.NewFT('B', 8)
	ft.IterOverride = 2
	var e1s, e100ms float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		top, err := r.Run(ft, repro.Static{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, iv := range []repro.Duration{repro.Second, 100 * repro.Millisecond} {
			daemon := repro.NewCpuspeed()
			daemon.Interval = iv
			pt, err := r.RunCpuspeed(ft, daemon)
			if err != nil {
				b.Fatal(err)
			}
			ratio := pt.Energy / float64(top.EnergyTrue)
			if iv == repro.Second {
				e1s = ratio
			} else {
				e100ms = ratio
			}
		}
	}
	b.ReportMetric(e1s, "E_interval1s")
	b.ReportMetric(e100ms, "E_interval100ms")
}

// AblationAdaptiveGovernor: the self-tuning extension against the
// paper's hand-tuned dynamic control on FT — after its probing phase it
// should land near the hand-tuned result without a human in the loop.
func BenchmarkAblationAdaptiveGovernor(b *testing.B) {
	ft := repro.NewFT('B', 8)
	ft.IterOverride = 10 // room to probe all 5 points and converge
	var handE, autoE, autoD float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		top, err := r.Run(ft, repro.Static{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		hand, err := r.Run(ft, repro.NewDynamic(repro.RegionFFT), 0)
		if err != nil {
			b.Fatal(err)
		}
		auto, err := r.Run(ft, repro.NewAdaptive(), 0)
		if err != nil {
			b.Fatal(err)
		}
		handE = float64(hand.EnergyTrue) / float64(top.EnergyTrue)
		autoE = float64(auto.EnergyTrue) / float64(top.EnergyTrue)
		autoD = auto.Delay.Seconds() / top.Delay.Seconds()
	}
	b.ReportMetric(handE, "handTunedE/E0")
	b.ReportMetric(autoE, "adaptiveE/E0")
	b.ReportMetric(autoD, "adaptiveD/D0")
}

// ExtendedSuite: the three regimes on further NAS kernels (not paper
// figures): EP is compute bound (little to save), CG memory bound plus
// reductions, IS exchange dominated.
func BenchmarkExtendedEPCGIS(b *testing.B) {
	ep := repro.NewEP('A', 8)
	ep.PairsOverride = 1 << 24
	cg := repro.NewCG('A', 8)
	cg.IterOverride = 5
	is := repro.NewIS('A', 8)
	is.IterOverride = 3
	r := benchRunner()
	report := func(name string, w repro.Workload) {
		c, err := r.Sweep(w, repro.Static{})
		if err != nil {
			b.Fatal(err)
		}
		n := c.Normalized(0)
		b.ReportMetric(n.Points[4].Energy, name+"_E600/E0")
		b.ReportMetric(n.Points[4].Delay, name+"_D600/D0")
	}
	mg := repro.NewMG('A', 8)
	mg.IterOverride = 2
	lu := repro.NewLU('A', 8)
	lu.IterOverride = 10
	for i := 0; i < b.N; i++ {
		report("ep", ep)
		report("cg", cg)
		report("is", is)
		report("mg", mg)
		report("lu", lu)
	}
}

// ExtendedScaling: FT class B across cluster sizes up to the paper's 16
// nodes — communication share grows with node count on 100 Mb Ethernet,
// so DVS savings grow too.
func BenchmarkExtendedScalingFT(b *testing.B) {
	r := benchRunner()
	var e2, e4, e8, e16 float64
	for i := 0; i < b.N; i++ {
		for _, nodes := range []int{2, 4, 8, 16} {
			ft := repro.NewFT('B', nodes)
			ft.IterOverride = 2
			top, err := r.Run(ft, repro.Static{}, 0)
			if err != nil {
				b.Fatal(err)
			}
			low, err := r.Run(ft, repro.Static{}, 4)
			if err != nil {
				b.Fatal(err)
			}
			ratio := float64(low.EnergyTrue) / float64(top.EnergyTrue)
			switch nodes {
			case 2:
				e2 = ratio
			case 4:
				e4 = ratio
			case 8:
				e8 = ratio
			case 16:
				e16 = ratio
			}
		}
	}
	b.ReportMetric(e2, "E600_2nodes")
	b.ReportMetric(e4, "E600_4nodes")
	b.ReportMetric(e8, "E600_8nodes")
	b.ReportMetric(e16, "E600_16nodes")
}

// ExtendedLowPowerVsPowerAware: the paper's Section 5 contrast made
// quantitative — a Green-Destiny-class fixed-frequency blade cluster
// against the power-aware cluster at its extremes, on FT class B.
func BenchmarkExtendedLowPowerVsPowerAware(b *testing.B) {
	ft := repro.NewFT('B', 8)
	ft.IterOverride = 2
	ep := repro.NewEP('A', 8)
	ep.PairsOverride = 1 << 24
	var ftLpD, ftLpE, epLpD, epLpE float64
	for i := 0; i < b.N; i++ {
		pa := benchRunner()
		cfg := repro.DefaultConfig()
		cfg.Settle = 30 * repro.Second
		cfg.Reps = 1
		cfg.UseTrueEnergy = true
		cfg.Machine = repro.LowPowerMachineParams()
		lp := repro.MustRunner(cfg)
		for _, w := range []repro.Workload{ft, ep} {
			top, err := pa.Run(w, repro.Static{}, 0)
			if err != nil {
				b.Fatal(err)
			}
			lpRes, err := lp.Run(w, repro.Static{}, 0)
			if err != nil {
				b.Fatal(err)
			}
			d := lpRes.Delay.Seconds() / top.Delay.Seconds()
			e := float64(lpRes.EnergyTrue) / float64(top.EnergyTrue)
			if w == repro.Workload(ft) {
				ftLpD, ftLpE = d, e
			} else {
				epLpD, epLpE = d, e
			}
		}
	}
	// Comm-bound FT barely slows on blades (the network is the wall);
	// compute-bound EP pays the full clock ratio — the paper's
	// "performance is limited" claim.
	b.ReportMetric(ftLpD, "ft_lowPowerD/D0")
	b.ReportMetric(ftLpE, "ft_lowPowerE/E0")
	b.ReportMetric(epLpD, "ep_lowPowerD/D0")
	b.ReportMetric(epLpE, "ep_lowPowerE/E0")
}

// AblationGigabit: a faster interconnect removes the communication
// slack DVS exploits — FT's savings shrink on gigabit Ethernet.
func BenchmarkAblationGigabit(b *testing.B) {
	ft := repro.NewFT('B', 8)
	ft.IterOverride = 2
	var e100, e1000 float64
	for i := 0; i < b.N; i++ {
		for _, gig := range []bool{false, true} {
			cfg := repro.DefaultConfig()
			cfg.Settle = 30 * repro.Second
			cfg.Reps = 1
			cfg.UseTrueEnergy = true
			if gig {
				cfg.Net = repro.Gigabit()
			}
			r := repro.MustRunner(cfg)
			top, err := r.Run(ft, repro.Static{}, 0)
			if err != nil {
				b.Fatal(err)
			}
			low, err := r.Run(ft, repro.Static{}, 4)
			if err != nil {
				b.Fatal(err)
			}
			ratio := float64(low.EnergyTrue) / float64(top.EnergyTrue)
			if gig {
				e1000 = ratio
			} else {
				e100 = ratio
			}
		}
	}
	b.ReportMetric(e100, "E600_100Mb")
	b.ReportMetric(e1000, "E600_1Gb")
}

// AblationTopology: 16-node FT on a single non-blocking switch vs a
// two-tier tree with a 2:1 oversubscribed core — oversubscription adds
// communication slack, which DVS converts into savings.
func BenchmarkAblationTopology(b *testing.B) {
	ft := repro.NewFT('B', 16)
	ft.IterOverride = 2
	var flatE, treeE float64
	for i := 0; i < b.N; i++ {
		for _, tree := range []bool{false, true} {
			cfg := repro.DefaultConfig()
			cfg.Settle = 30 * repro.Second
			cfg.Reps = 1
			cfg.UseTrueEnergy = true
			if tree {
				cfg.Fabric = func(eng *repro.Engine, ports int) repro.Fabric {
					return repro.NewTree(eng, ports, repro.TreeConfig{
						Host:                       repro.Default100Mb(),
						PortsPerEdge:               8,
						UplinkBandwidthBytesPerSec: repro.Default100Mb().BandwidthBytesPerSec * 4, // 8 hosts share 4 links' worth
						CoreLatency:                20 * repro.Microsecond,
					})
				}
			}
			r := repro.MustRunner(cfg)
			top, err := r.Run(ft, repro.Static{}, 0)
			if err != nil {
				b.Fatal(err)
			}
			low, err := r.Run(ft, repro.Static{}, 4)
			if err != nil {
				b.Fatal(err)
			}
			ratio := float64(low.EnergyTrue) / float64(top.EnergyTrue)
			if tree {
				treeE = ratio
			} else {
				flatE = ratio
			}
		}
	}
	b.ReportMetric(flatE, "E600_flatSwitch")
	b.ReportMetric(treeE, "E600_oversubTree")
}

// AblationFinePStates: would more operating points help? Re-run the
// swim crescendo selection on a 9-point table interpolated from the
// Pentium M curve.
func BenchmarkAblationFinePStates(b *testing.B) {
	var coarseBest, fineBest float64
	for i := 0; i < b.N; i++ {
		for _, fine := range []bool{false, true} {
			cfg := repro.DefaultConfig()
			cfg.Settle = 30 * repro.Second
			cfg.Reps = 1
			cfg.UseTrueEnergy = true
			if fine {
				cfg.Machine.Table = repro.PentiumM14().MustSubdivide(9)
			}
			r := repro.MustRunner(cfg)
			c, err := r.Sweep(repro.NewSwim(30), repro.Static{})
			if err != nil {
				b.Fatal(err)
			}
			n := c.Normalized(0)
			best := n.Best(repro.DeltaHPC)
			w := repro.WeightedED2P(n.Points[best].Energy, n.Points[best].Delay, repro.DeltaHPC)
			if fine {
				fineBest = w
			} else {
				coarseBest = w
			}
		}
	}
	b.ReportMetric(coarseBest, "bestW_5points")
	b.ReportMetric(fineBest, "bestW_9points")
}

// ShardedFT: the sharded event core on a 256-rank FT — far beyond the
// paper's 16 nodes, the scale regime the conservative-lookahead design
// targets. The same simulation runs at 1 shard and at 4 shards;
// results are byte-identical by construction
// (TestShardedRunByteEquality), so the only thing that changes is
// wall-clock time, reported as the speedup metric. On a single-core
// runner the ratio records the windowing overhead instead (slightly
// below 1); the >= 2x target applies to machines with >= 4 cores.
func BenchmarkShardedFT(b *testing.B) {
	ft := repro.NewFT('A', 256)
	ft.IterOverride = 1
	const shards = 4
	run := func(shards int) float64 {
		cfg := repro.DefaultConfig()
		cfg.Settle = 30 * repro.Second
		cfg.Reps = 1
		cfg.UseTrueEnergy = true
		cfg.Shards = shards
		r := repro.MustRunner(cfg)
		start := time.Now()
		if _, err := r.Run(ft, repro.Static{}, 0); err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	var seq, shr float64
	for i := 0; i < b.N; i++ {
		seq += run(1)
		shr += run(shards)
	}
	b.ReportMetric(seq/shr, "speedup")
	b.ReportMetric(float64(shards), "shards")
}

// ExtendedSlackGovernor: the MPI-aware governor against the paper's
// three strategies on the load-imbalanced transpose. Because it reads
// MPI wait time instead of /proc/stat, it finds the slack cpuspeed
// cannot see — per-node frequencies emerge with no code annotations.
func BenchmarkExtendedSlackGovernor(b *testing.B) {
	tr := repro.NewTranspose(1)
	var slackE, slackD, cpE, dynE float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		top, err := r.Run(tr, repro.Static{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		sl, err := r.Run(tr, repro.NewSlack(), 0)
		if err != nil {
			b.Fatal(err)
		}
		cp, err := r.RunCpuspeed(tr, repro.NewCpuspeed())
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := r.Run(tr, repro.NewDynamic(repro.RegionStep2, repro.RegionStep3), 0)
		if err != nil {
			b.Fatal(err)
		}
		slackE = float64(sl.EnergyTrue) / float64(top.EnergyTrue)
		slackD = sl.Delay.Seconds() / top.Delay.Seconds()
		cpE = cp.Energy / float64(top.EnergyTrue)
		dynE = float64(dyn.EnergyTrue) / float64(top.EnergyTrue)
	}
	b.ReportMetric(slackE, "slackE/E0")
	b.ReportMetric(slackD, "slackD/D0")
	b.ReportMetric(cpE, "cpuspeedE/E0")
	b.ReportMetric(dynE, "dynamicE/E0")
}
