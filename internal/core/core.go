// Package core implements the paper's analytic contribution: the
// weighted energy-delay-squared metric (Equation 5)
//
//	weighted ED2P = E^(1-d) × D^(2(1+d)),   -1 ≤ d ≤ 1
//
// the "best operating point" selection rule built on it (Equation 6),
// and the energy-delay "crescendo" representation used throughout the
// evaluation (normalized energy/delay across the operating points, as
// in Figures 1, 3, 6, 7 and 8).
package core

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
)

// Weight-factor presets from the paper: d = 0.2 expresses the
// power-performance priorities of high-performance computing; d = -1
// puts all weight on energy (metric reduces to E²); d = 1 puts all
// weight on performance (metric reduces to D⁴).
const (
	DeltaHPC         = 0.2
	DeltaEnergy      = -1.0
	DeltaPerformance = 1.0
	DeltaED2P        = 0.0 // plain energy-delay-squared product
)

// ED2P returns the classic energy-delay-squared product E·D².
func ED2P(energy, delay float64) float64 {
	return energy * delay * delay
}

// WeightedED2P evaluates Equation 5 for energy E and delay D (any
// consistent units; normalized values keep magnitudes sane). It panics
// if d is outside [-1, 1] or if E or D is not positive, since the
// power-law form is meaningless there.
func WeightedED2P(energy, delay, d float64) float64 {
	if d < -1 || d > 1 {
		panic(fmt.Sprintf("core: weight factor %v outside [-1,1]", d)) //lint:allow panicfree (metric-domain validation; weights and fractions are validated literals)
	}
	if energy <= 0 || delay <= 0 {
		panic(fmt.Sprintf("core: non-positive energy %v or delay %v", energy, delay)) //lint:allow panicfree (metric-domain validation; weights and fractions are validated literals)
	}
	return math.Pow(energy, 1-d) * math.Pow(delay, 2*(1+d))
}

// Point is one measured operating point of a crescendo: total energy
// and time-to-solution at a DVS setting.
type Point struct {
	Label  string  // operating point or strategy name, e.g. "800MHz"
	Freq   dvfs.Hz // 0 when the point is not a fixed frequency (cpuspeed)
	Energy float64 // joules
	Delay  float64 // seconds
}

// Crescendo is a sweep of operating points for one workload — the
// paper's energy-delay crescendo. Points are kept in sweep order
// (highest frequency first, by convention).
type Crescendo struct {
	Workload string
	Points   []Point
}

// Normalized returns the crescendo with energy and delay divided by the
// reference point's values (the paper normalizes to the highest, i.e.
// fastest, frequency operating point). ref is an index into Points.
func (c Crescendo) Normalized(ref int) Crescendo {
	base := c.Points[ref]
	out := Crescendo{Workload: c.Workload, Points: make([]Point, len(c.Points))}
	for i, p := range c.Points {
		out.Points[i] = Point{
			Label:  p.Label,
			Freq:   p.Freq,
			Energy: p.Energy / base.Energy,
			Delay:  p.Delay / base.Delay,
		}
	}
	return out
}

// Best applies Equation 6: it returns the index of the point minimizing
// the weighted ED2P under weight factor d. Ties go to the earlier
// (faster) point.
func (c Crescendo) Best(d float64) int {
	best, bestVal := -1, math.Inf(1)
	for i, p := range c.Points {
		v := WeightedED2P(p.Energy, p.Delay, d)
		if v < bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// Improvement reports how much more power-performance efficient point i
// is than point ref under weight d, as the paper quotes it ("16.9%
// higher efficiency than the maximum frequency"): 1 − W(i)/W(ref).
func (c Crescendo) Improvement(i, ref int, d float64) float64 {
	wi := WeightedED2P(c.Points[i].Energy, c.Points[i].Delay, d)
	wr := WeightedED2P(c.Points[ref].Energy, c.Points[ref].Delay, d)
	return 1 - wi/wr
}

// OperatingPoints summarizes a crescendo into the paper's Table 1/3
// form: the best point for the HPC, energy, and performance weights.
type OperatingPoints struct {
	HPC         Point
	Energy      Point
	Performance Point
}

// SelectOperatingPoints evaluates the three preset weights.
func (c Crescendo) SelectOperatingPoints() OperatingPoints {
	return OperatingPoints{
		HPC:         c.Points[c.Best(DeltaHPC)],
		Energy:      c.Points[c.Best(DeltaEnergy)],
		Performance: c.Points[c.Best(DeltaPerformance)],
	}
}

// RequiredEnergyFraction answers Figure 2's question: for weight factor
// d, if delay grows by factor x ≥ 1, to what fraction must energy fall
// for the slower point to tie the baseline under weighted ED2P?
// Solving E^(1-d)·x^(2(1+d)) = 1 gives E = x^(-2(1+d)/(1-d)).
// d = 1 (all weight on performance) admits no energy saving that
// compensates any slowdown: the function returns 0 for x > 1 and 1 for
// x = 1.
func RequiredEnergyFraction(d, x float64) float64 {
	if d < -1 || d > 1 {
		panic(fmt.Sprintf("core: weight factor %v outside [-1,1]", d)) //lint:allow panicfree (metric-domain validation; weights and fractions are validated literals)
	}
	if x < 1 {
		panic(fmt.Sprintf("core: delay factor %v below 1", x)) //lint:allow panicfree (metric-domain validation; weights and fractions are validated literals)
	}
	// d is validated into [-1,1] and x into [1,∞), so the closed-end
	// boundaries are reached with ordered comparisons rather than exact
	// float equality (the repolint floateq gate).
	if d >= 1 {
		if x <= 1 {
			return 1
		}
		return 0
	}
	return math.Pow(x, -2*(1+d)/(1-d))
}

// TradeoffCurve samples RequiredEnergyFraction for one weight line of
// Figure 2 over delay factors [1, xMax] in n steps.
func TradeoffCurve(d, xMax float64, n int) (xs, ys []float64) {
	if n < 2 {
		panic("core: need at least 2 samples") //lint:allow panicfree (metric-domain validation; weights and fractions are validated literals)
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		x := 1 + (xMax-1)*float64(i)/float64(n-1)
		xs[i] = x
		ys[i] = RequiredEnergyFraction(d, x)
	}
	return xs, ys
}
