package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestED2P(t *testing.T) {
	if ED2P(2, 3) != 18 {
		t.Fatal("E*D^2")
	}
}

func TestWeightedED2PReductions(t *testing.T) {
	e, d := 0.7, 1.3
	// d=0 reduces to plain ED2P.
	if !almost(WeightedED2P(e, d, 0), ED2P(e, d), 1e-12) {
		t.Fatal("delta 0")
	}
	// d=-1 reduces to E² (all weight on energy).
	if !almost(WeightedED2P(e, d, -1), e*e, 1e-12) {
		t.Fatal("delta -1")
	}
	// d=1 reduces to D⁴ (all weight on performance).
	if !almost(WeightedED2P(e, d, 1), d*d*d*d, 1e-12) {
		t.Fatal("delta 1")
	}
}

func TestWeightedED2PValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { WeightedED2P(1, 1, 1.5) },
		func() { WeightedED2P(1, 1, -2) },
		func() { WeightedED2P(0, 1, 0) },
		func() { WeightedED2P(1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

// The paper's worked example: under d=0.2, two points differing 5% in
// performance need about a 13-14% energy saving to tie.
func TestPaperWorkedExample(t *testing.T) {
	frac := RequiredEnergyFraction(DeltaHPC, 1.05)
	saving := 1 - frac
	if saving < 0.12 || saving < 0.131-0.02 || saving > 0.15 {
		t.Fatalf("required saving %.4f, paper says ≈13.1%%", saving)
	}
	// Check it really ties.
	w1 := WeightedED2P(1, 1, DeltaHPC)
	w2 := WeightedED2P(frac, 1.05, DeltaHPC)
	if !almost(w1, w2, 1e-9) {
		t.Fatalf("not a tie: %v vs %v", w1, w2)
	}
}

// Figure 2's d=0.4 line: 10% slowdown needs roughly 32-36% energy
// saving (the paper reads ~32% off the plot).
func TestFigure2Line(t *testing.T) {
	frac := RequiredEnergyFraction(0.4, 1.1)
	if frac < 0.60 || frac > 0.70 {
		t.Fatalf("fraction %.4f outside plot-read band", frac)
	}
}

func TestRequiredEnergyFractionEdges(t *testing.T) {
	if RequiredEnergyFraction(1, 1) != 1 {
		t.Fatal("d=1, x=1")
	}
	if RequiredEnergyFraction(1, 1.01) != 0 {
		t.Fatal("d=1, x>1: no saving can compensate")
	}
	if RequiredEnergyFraction(-1, 2) != 1 {
		// d=-1: delay exponent is 0 and energy exponent 2; equality
		// needs E=1 regardless of x.
		t.Fatal("d=-1")
	}
	for _, bad := range []func(){
		func() { RequiredEnergyFraction(2, 1.1) },
		func() { RequiredEnergyFraction(0, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestLargerDeltaDemandsMoreSavings(t *testing.T) {
	// Paper: "For the same performance loss, larger d values require
	// increased energy savings."
	x := 1.2
	prev := RequiredEnergyFraction(-0.8, x)
	for _, d := range []float64{-0.4, 0, 0.2, 0.4, 0.8} {
		frac := RequiredEnergyFraction(d, x)
		if frac >= prev {
			t.Fatalf("fraction not decreasing at d=%v: %v >= %v", d, frac, prev)
		}
		prev = frac
	}
}

func TestTradeoffCurve(t *testing.T) {
	xs, ys := TradeoffCurve(0.2, 2.0, 11)
	if len(xs) != 11 || len(ys) != 11 {
		t.Fatal("lengths")
	}
	if xs[0] != 1 || xs[10] != 2 {
		t.Fatalf("range: %v..%v", xs[0], xs[10])
	}
	if ys[0] != 1 {
		t.Fatalf("y at x=1 is %v", ys[0])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] >= ys[i-1] {
			t.Fatal("curve must decrease")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n<2")
		}
	}()
	TradeoffCurve(0, 2, 1)
}

// mkCrescendo builds a swim-like crescendo: steady energy decrease,
// modest delay increase.
func mkCrescendo() Crescendo {
	tab := dvfs.PentiumM14()
	pts := []Point{
		{Label: "1400MHz", Freq: tab.At(0).Freq, Energy: 100, Delay: 10},
		{Label: "1200MHz", Freq: tab.At(1).Freq, Energy: 90, Delay: 10.3},
		{Label: "1000MHz", Freq: tab.At(2).Freq, Energy: 78, Delay: 10.8},
		{Label: "800MHz", Freq: tab.At(3).Freq, Energy: 68, Delay: 11.6},
		{Label: "600MHz", Freq: tab.At(4).Freq, Energy: 60, Delay: 13.0},
	}
	return Crescendo{Workload: "swim-like", Points: pts}
}

func TestNormalized(t *testing.T) {
	c := mkCrescendo().Normalized(0)
	if c.Points[0].Energy != 1 || c.Points[0].Delay != 1 {
		t.Fatal("reference point must normalize to 1")
	}
	if !almost(c.Points[4].Energy, 0.6, 1e-12) || !almost(c.Points[4].Delay, 1.3, 1e-12) {
		t.Fatalf("600MHz point: %+v", c.Points[4])
	}
	if c.Workload != "swim-like" {
		t.Fatal("workload label lost")
	}
}

func TestBestPerWeight(t *testing.T) {
	c := mkCrescendo()
	// All weight on performance: fastest point wins.
	if got := c.Best(DeltaPerformance); got != 0 {
		t.Fatalf("performance best = %d", got)
	}
	// All weight on energy: lowest-energy point wins.
	if got := c.Best(DeltaEnergy); got != 4 {
		t.Fatalf("energy best = %d", got)
	}
	// HPC weight picks an interior point for this swim-like shape.
	got := c.Best(DeltaHPC)
	if got == 0 || got == len(c.Points)-1 {
		t.Fatalf("HPC best = %d, expected interior", got)
	}
	ops := c.SelectOperatingPoints()
	if ops.Performance.Freq != 1400*dvfs.MHz || ops.Energy.Freq != 600*dvfs.MHz {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestBestOnMgridLikeShape(t *testing.T) {
	// mgrid: energy barely falls while delay balloons — the HPC best
	// stays at the top frequency (paper Table 1).
	c := Crescendo{Points: []Point{
		{Label: "1400MHz", Energy: 100, Delay: 10},
		{Label: "1200MHz", Energy: 99, Delay: 11.6},
		{Label: "1000MHz", Energy: 97, Delay: 13.9},
		{Label: "800MHz", Energy: 95, Delay: 17.4},
		{Label: "600MHz", Energy: 96, Delay: 23.2},
	}}
	if got := c.Best(DeltaHPC); got != 0 {
		t.Fatalf("HPC best = %d, want 0 for compute-bound shape", got)
	}
}

func TestImprovement(t *testing.T) {
	c := mkCrescendo()
	best := c.Best(DeltaHPC)
	imp := c.Improvement(best, 0, DeltaHPC)
	if imp <= 0 || imp >= 1 {
		t.Fatalf("improvement %.4f", imp)
	}
	if got := c.Improvement(0, 0, DeltaHPC); got != 0 {
		t.Fatalf("self improvement %v", got)
	}
}

// Property: Best always returns the argmin of the metric, and
// normalization never changes the selection.
func TestBestInvariantProperty(t *testing.T) {
	f := func(raw [5]uint16, dRaw uint8) bool {
		d := (float64(dRaw)/255)*2 - 1
		c := Crescendo{}
		for i, r := range raw {
			c.Points = append(c.Points, Point{
				Energy: 1 + float64(r%1000),
				Delay:  1 + float64(i)*0.1 + float64(r%97)/100,
			})
		}
		best := c.Best(d)
		w := WeightedED2P(c.Points[best].Energy, c.Points[best].Delay, d)
		for _, p := range c.Points {
			if WeightedED2P(p.Energy, p.Delay, d)+1e-12 < w {
				return false
			}
		}
		return c.Normalized(0).Best(d) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
