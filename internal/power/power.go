// Package power models where the watts go in a DVS-capable compute node
// and integrates them into energy over simulated time.
//
// The CPU model follows the paper's Section 2: dynamic power is
// proportional to C·f·V² (Equation 2) scaled by an activity factor that
// captures how hard the workload actually drives the core, plus a
// leakage term that depends on supply voltage only. Non-CPU components
// (memory, disk, NIC, board) contribute a base draw plus per-component
// active increments, so that — as with the paper's PowerPack suite — the
// power profile of each system component can be examined individually.
package power

import (
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/sim"
)

// Watts is instantaneous power draw.
type Watts float64

// Joules is accumulated energy.
type Joules float64

// MilliwattHours converts energy to the mWh unit reported by ACPI smart
// batteries (1 mWh = 3.6 J).
func (j Joules) MilliwattHours() float64 { return float64(j) / 3.6 }

// JoulesFromMilliwattHours converts an ACPI capacity reading to joules.
//
//lint:range mwh [0,inf]
func JoulesFromMilliwattHours(mwh float64) Joules { return Joules(mwh * 3.6) }

// Component identifies a power-consuming subsystem of a node, matching
// the component breakdown PowerPack profiles.
type Component int

// The modeled node components.
const (
	CPU Component = iota
	Memory
	Disk
	NIC
	Board
	numComponents
)

// NumComponents is the number of modeled components, for sizing
// per-component arrays.
const NumComponents = int(numComponents)

// Components lists all modeled components in order.
func Components() []Component { return []Component{CPU, Memory, Disk, NIC, Board} }

// String names the component.
func (c Component) String() string {
	switch c {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	case NIC:
		return "nic"
	case Board:
		return "board"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// CPUModel computes processor power from the operating point and an
// activity factor in [0,1]. Power is
//
//	P = activity · Ceff · f · V²  +  LeakPerV2 · V²
//
// with Ceff calibrated from the power at the highest operating point.
type CPUModel struct {
	// Ceff is the effective switched capacitance in watts per (Hz·V²).
	Ceff float64
	// LeakPerV2 is the leakage coefficient in watts per V².
	LeakPerV2 float64
	// IdleActivity is the activity floor of a halted core (clock
	// gating is imperfect; timer interrupts keep firing).
	IdleActivity float64
}

// NewCPUModel calibrates a CPUModel so that dynamic power at the table's
// highest operating point equals dynAtTop watts under full activity.
//
//lint:range dynAtTop [0,inf]
//lint:range idleActivity [0,1]
func NewCPUModel(table dvfs.Table, dynAtTop Watts, leakPerV2, idleActivity float64) CPUModel {
	top := table.Highest()
	ceff := float64(dynAtTop) / (float64(top.Freq) * top.Voltage * top.Voltage)
	return CPUModel{Ceff: ceff, LeakPerV2: leakPerV2, IdleActivity: idleActivity}
}

// Dynamic returns the dynamic (switching) power at op under the given
// activity factor, clamped to [IdleActivity, 1].
func (m CPUModel) Dynamic(op dvfs.OperatingPoint, activity float64) Watts {
	if activity < m.IdleActivity {
		activity = m.IdleActivity
	}
	if activity > 1 {
		activity = 1
	}
	return Watts(activity * m.Ceff * float64(op.Freq) * op.Voltage * op.Voltage)
}

// Leakage returns the static power at op's supply voltage.
func (m CPUModel) Leakage(op dvfs.OperatingPoint) Watts {
	return Watts(m.LeakPerV2 * op.Voltage * op.Voltage)
}

// Power returns total CPU power (dynamic + leakage) at op under the
// given activity factor.
func (m CPUModel) Power(op dvfs.OperatingPoint, activity float64) Watts {
	return m.Dynamic(op, activity) + m.Leakage(op)
}

// ComponentModel holds the non-CPU power budget of a node: a constant
// idle draw per component plus an increment while the component is
// actively used.
type ComponentModel struct {
	// Idle draw per component in watts (CPU entry unused).
	Idle [numComponents]Watts
	// Active increment per component in watts (CPU entry unused).
	Active [numComponents]Watts
}

// Integrator turns a piecewise-constant power signal into energy. Power
// changes are reported with SetPower; EnergyAt integrates exactly.
// The zero Integrator starts at the epoch drawing zero watts.
type Integrator struct {
	last    sim.Time
	power   Watts
	total   Joules
	started bool
}

// SetPower records that from time t onward the signal draws w watts.
// Calls must have nondecreasing t; regressions panic because they would
// corrupt the integral silently.
//
//lint:range w [0,inf]
func (in *Integrator) SetPower(t sim.Time, w Watts) {
	in.advance(t)
	in.power = w
}

// AddEnergy deposits a discrete quantum of energy (e.g. a DVS
// transition's switching cost) at the current point of the integral.
//
//lint:range j [0,inf]
func (in *Integrator) AddEnergy(j Joules) { in.total += j }

// EnergyAt returns the energy accumulated from the epoch through t.
func (in *Integrator) EnergyAt(t sim.Time) Joules {
	if !in.started || t <= in.last {
		return in.total
	}
	return in.total + Joules(float64(in.power)*t.Sub(in.last).Seconds())
}

// Power returns the current power level of the signal.
func (in *Integrator) Power() Watts { return in.power }

// advance folds the elapsed interval into the running total.
func (in *Integrator) advance(t sim.Time) {
	if in.started && t < in.last {
		panic(fmt.Sprintf("power: SetPower time regressed: %v < %v", t, in.last)) //lint:allow panicfree (time-regression breaks the integrator; kernel invariant)
	}
	if in.started && t > in.last {
		in.total += Joules(float64(in.power) * t.Sub(in.last).Seconds())
	}
	in.last = t
	in.started = true
}
