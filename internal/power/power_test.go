package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/sim"
)

func TestJoulesMilliwattHours(t *testing.T) {
	if got := Joules(3.6).MilliwattHours(); got != 1 {
		t.Fatalf("3.6J = %v mWh", got)
	}
	if got := JoulesFromMilliwattHours(1000); got != 3600 {
		t.Fatalf("1000 mWh = %v J", got)
	}
	// Round trip.
	if got := JoulesFromMilliwattHours(Joules(123.4).MilliwattHours()); math.Abs(float64(got)-123.4) > 1e-9 {
		t.Fatalf("round trip: %v", got)
	}
}

func TestComponentString(t *testing.T) {
	want := map[Component]string{CPU: "cpu", Memory: "memory", Disk: "disk", NIC: "nic", Board: "board"}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d: got %q", int(c), c.String())
		}
	}
	if len(Components()) != int(numComponents) {
		t.Fatal("Components() incomplete")
	}
	if Component(99).String() != "component(99)" {
		t.Error("unknown component formatting")
	}
}

func TestCPUModelCalibration(t *testing.T) {
	tab := dvfs.PentiumM14()
	m := NewCPUModel(tab, 20.0, 0.5, 0.1)
	// Full activity at the top point must reproduce the calibration power.
	if got := m.Dynamic(tab.Highest(), 1.0); math.Abs(float64(got)-20.0) > 1e-9 {
		t.Fatalf("dyn at top = %v", got)
	}
	// Dynamic power scales as f·V²: check the 600 MHz point's known ratio.
	low := tab.Lowest()
	top := tab.Highest()
	wantRatio := (float64(low.Freq) * low.Voltage * low.Voltage) /
		(float64(top.Freq) * top.Voltage * top.Voltage)
	gotRatio := float64(m.Dynamic(low, 1.0)) / float64(m.Dynamic(top, 1.0))
	if math.Abs(gotRatio-wantRatio) > 1e-12 {
		t.Fatalf("ratio = %v want %v", gotRatio, wantRatio)
	}
	// The paper's motivation: P ∝ f³ roughly, so the 600 MHz point draws
	// a small fraction of the 1.4 GHz point.
	if gotRatio > 0.25 {
		t.Fatalf("600MHz dynamic fraction %v too high", gotRatio)
	}
}

func TestCPUModelActivityClamp(t *testing.T) {
	tab := dvfs.PentiumM14()
	m := NewCPUModel(tab, 20.0, 0.5, 0.1)
	top := tab.Highest()
	if m.Dynamic(top, -1) != m.Dynamic(top, 0.1) {
		t.Error("activity below idle floor not clamped up")
	}
	if m.Dynamic(top, 2) != m.Dynamic(top, 1) {
		t.Error("activity above 1 not clamped down")
	}
	if m.Dynamic(top, 0.05) != m.Dynamic(top, 0.1) {
		t.Error("idle floor not applied")
	}
}

func TestCPUModelLeakage(t *testing.T) {
	tab := dvfs.PentiumM14()
	m := NewCPUModel(tab, 20.0, 1.0, 0.1)
	top, low := tab.Highest(), tab.Lowest()
	if got := m.Leakage(top); math.Abs(float64(got)-1.484*1.484) > 1e-9 {
		t.Fatalf("leak at top = %v", got)
	}
	if m.Leakage(low) >= m.Leakage(top) {
		t.Fatal("leakage must fall with voltage")
	}
	if got, want := m.Power(top, 1.0), m.Dynamic(top, 1.0)+m.Leakage(top); got != want {
		t.Fatalf("Power = %v want %v", got, want)
	}
}

func TestIntegratorPiecewise(t *testing.T) {
	var in Integrator
	in.SetPower(0, 10)
	in.SetPower(sim.Time(2*sim.Second), 20) // 10W for 2s = 20J
	in.SetPower(sim.Time(3*sim.Second), 0)  // 20W for 1s = 20J
	if got := in.EnergyAt(sim.Time(3 * sim.Second)); math.Abs(float64(got)-40) > 1e-9 {
		t.Fatalf("energy = %v", got)
	}
	// Zero power afterwards adds nothing.
	if got := in.EnergyAt(sim.Time(10 * sim.Second)); math.Abs(float64(got)-40) > 1e-9 {
		t.Fatalf("energy = %v", got)
	}
}

func TestIntegratorMidInterval(t *testing.T) {
	var in Integrator
	in.SetPower(0, 8)
	// Query inside an open interval integrates the current power.
	if got := in.EnergyAt(sim.Time(500 * sim.Millisecond)); math.Abs(float64(got)-4) > 1e-9 {
		t.Fatalf("energy = %v", got)
	}
	// Query before the last set-point returns the total so far.
	in.SetPower(sim.Time(sim.Second), 0)
	if got := in.EnergyAt(0); math.Abs(float64(got)-8) > 1e-9 {
		t.Fatalf("energy before last = %v", got)
	}
}

func TestIntegratorAddEnergy(t *testing.T) {
	var in Integrator
	in.SetPower(0, 1)
	in.AddEnergy(5)
	if got := in.EnergyAt(sim.Time(sim.Second)); math.Abs(float64(got)-6) > 1e-9 {
		t.Fatalf("energy = %v", got)
	}
}

func TestIntegratorRegressionPanics(t *testing.T) {
	var in Integrator
	in.SetPower(sim.Time(100), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time regression")
		}
	}()
	in.SetPower(sim.Time(50), 2)
}

func TestIntegratorSameTimeUpdate(t *testing.T) {
	var in Integrator
	in.SetPower(0, 10)
	in.SetPower(0, 5) // replace power at the same instant: no energy yet
	if got := in.EnergyAt(sim.Time(sim.Second)); math.Abs(float64(got)-5) > 1e-9 {
		t.Fatalf("energy = %v", got)
	}
	if in.Power() != 5 {
		t.Fatalf("power = %v", in.Power())
	}
}

// Property: integrating a random step signal equals the sum of
// rectangle areas computed independently.
func TestIntegratorMatchesRectangles(t *testing.T) {
	f := func(steps []uint16) bool {
		if len(steps) > 40 {
			steps = steps[:40]
		}
		var in Integrator
		tNow := sim.Time(0)
		in.SetPower(tNow, 0)
		var want float64
		prevPower := 0.0
		prevT := tNow
		for _, s := range steps {
			dt := sim.Duration(s%1000+1) * sim.Millisecond
			p := float64(s % 37)
			tNow = tNow.Add(dt)
			want += prevPower * tNow.Sub(prevT).Seconds()
			in.SetPower(tNow, Watts(p))
			prevPower, prevT = p, tNow
		}
		final := tNow.Add(sim.Second)
		want += prevPower * 1.0
		got := float64(in.EnergyAt(final))
		return math.Abs(got-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CPU power is monotone in activity and in operating point.
func TestCPUPowerMonotoneProperty(t *testing.T) {
	tab := dvfs.PentiumM14()
	m := NewCPUModel(tab, 21.0, 0.5, 0.08)
	f := func(rawA uint8, idx uint8) bool {
		a := float64(rawA) / 255
		i := int(idx) % tab.Len()
		p := m.Power(tab.At(i), a)
		if p <= 0 {
			return false
		}
		if a < 1 && m.Power(tab.At(i), a+0.001) < p {
			return false
		}
		if i+1 < tab.Len() && m.Power(tab.At(i+1), a) > p {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
