package netsim

import (
	"testing"

	"repro/internal/sim"
)

func newTree(ports, perEdge int) (*sim.Engine, *Tree) {
	e := sim.NewEngine()
	return e, NewTree(e, ports, TreeConfig{
		Host:                       Config{BandwidthBytesPerSec: 1e6, Latency: 50 * sim.Microsecond},
		PortsPerEdge:               perEdge,
		UplinkBandwidthBytesPerSec: 2e6, // 2:1 host oversubscription at 4 ports/edge
		CoreLatency:                20 * sim.Microsecond,
	})
}

func TestTreeTopology(t *testing.T) {
	_, tr := newTree(8, 4)
	if tr.Ports() != 8 || tr.Edges() != 2 {
		t.Fatalf("ports=%d edges=%d", tr.Ports(), tr.Edges())
	}
	if tr.EdgeOf(0) != 0 || tr.EdgeOf(3) != 0 || tr.EdgeOf(4) != 1 || tr.EdgeOf(7) != 1 {
		t.Fatal("edge mapping")
	}
}

func TestTreeIntraEdgeMatchesSwitch(t *testing.T) {
	_, tr := newTree(8, 4)
	start, deliver := tr.Transfer(0, 1, 500_000)
	if start != 0 {
		t.Fatalf("start %v", start)
	}
	want := sim.Time(500*sim.Millisecond + 50*sim.Microsecond)
	if deliver != want {
		t.Fatalf("deliver %v want %v", deliver, want)
	}
}

func TestTreeInterEdgeAddsCoreLatency(t *testing.T) {
	_, tr := newTree(8, 4)
	_, deliver := tr.Transfer(0, 4, 500_000)
	// Host serialization dominates (uplink is faster); latency is two
	// edge hops plus the core.
	want := sim.Time(500*sim.Millisecond + 2*50*sim.Microsecond + 20*sim.Microsecond)
	if deliver != want {
		t.Fatalf("deliver %v want %v", deliver, want)
	}
}

func TestTreeUplinkContention(t *testing.T) {
	_, tr := newTree(8, 4)
	// Three hosts on edge 0 send cross-edge simultaneously: their
	// host links are distinct but they share one 2 MB/s uplink, so the
	// third transfer's delivery is pushed out by uplink serialization.
	_, d1 := tr.Transfer(0, 4, 1_000_000)
	_, d2 := tr.Transfer(1, 5, 1_000_000)
	_, d3 := tr.Transfer(2, 6, 1_000_000)
	if !(d1 < d2 && d2 < d3) {
		t.Fatalf("uplink contention not serializing: %v %v %v", d1, d2, d3)
	}
	// Uplink spacing is the 0.5 s uplink serialization, not the 1 s
	// host serialization.
	if gap := d2.Sub(d1); gap != 500*sim.Millisecond {
		t.Fatalf("uplink spacing %v", gap)
	}
	// Intra-edge traffic on the other edge (on ports whose host links
	// are idle) is unaffected.
	_, d4 := tr.Transfer(5, 7, 1_000_000)
	if d4 >= d3 {
		t.Fatalf("intra-edge transfer blocked by uplink: %v vs %v", d4, d3)
	}
}

func TestTreeSlowUplinkIsBottleneck(t *testing.T) {
	e := sim.NewEngine()
	tr := NewTree(e, 8, TreeConfig{
		Host:                       Config{BandwidthBytesPerSec: 1e6, Latency: 50 * sim.Microsecond},
		PortsPerEdge:               4,
		UplinkBandwidthBytesPerSec: 0.25e6, // 4x slower than a host link
		CoreLatency:                20 * sim.Microsecond,
	})
	_, deliver := tr.Transfer(0, 4, 1_000_000)
	// The uplink's 4 s serialization dominates the 1 s host link.
	want := sim.Time(4*sim.Second + 120*sim.Microsecond)
	if deliver != want {
		t.Fatalf("deliver %v want %v", deliver, want)
	}
}

func TestTreeControlPath(t *testing.T) {
	_, tr := newTree(8, 4)
	intra := tr.Control(0, 1, 64, 0)
	inter := tr.Control(0, 4, 64, 0)
	if inter <= intra {
		t.Fatal("inter-edge control must pay the core hop")
	}
	msgs, _ := tr.Stats()
	if msgs != 2 {
		t.Fatalf("stats %d", msgs)
	}
}

func TestTreeValidation(t *testing.T) {
	e := sim.NewEngine()
	good := TreeConfig{
		Host:                       Config{BandwidthBytesPerSec: 1e6, Latency: 1},
		PortsPerEdge:               2,
		UplinkBandwidthBytesPerSec: 1e6,
	}
	for _, fn := range []func(){
		func() { NewTree(e, 0, good) },
		func() {
			bad := good
			bad.PortsPerEdge = 0
			NewTree(e, 4, bad)
		},
		func() {
			bad := good
			bad.UplinkBandwidthBytesPerSec = 0
			NewTree(e, 4, bad)
		},
		func() {
			bad := good
			bad.CoreLatency = -1
			NewTree(e, 4, bad)
		},
		func() {
			tr := NewTree(e, 4, good)
			tr.Transfer(1, 1, 8)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFabricInterfaceCompliance(t *testing.T) {
	e := sim.NewEngine()
	var f Fabric = New(e, 2, Default100Mb())
	if f.Ports() != 2 {
		t.Fatal("switch as fabric")
	}
	f = NewTree(e, 4, TreeConfig{
		Host:                       Default100Mb(),
		PortsPerEdge:               2,
		UplinkBandwidthBytesPerSec: 9.5e6,
	})
	if f.Ports() != 4 {
		t.Fatal("tree as fabric")
	}
}
