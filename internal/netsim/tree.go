package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Fabric is the interconnect abstraction the MPI runtime drives. Switch
// (single-tier) and Tree (two-tier, oversubscribed) both implement it.
// Bulk transfers are booked in two stages so sender and receiver can
// live on different event-core shards: Send from sender context,
// Accept from receiver context when the arrival fires.
type Fabric interface {
	// Ports reports the number of host ports.
	Ports() int
	// SerializationTime returns how long size bytes occupy a host link.
	SerializationTime(size int64) sim.Duration
	// MinLatency reports the minimum sender-to-receiver delay; it bounds
	// the conservative lookahead for sharded runs.
	MinLatency() sim.Duration
	// Send books the transmit side of a bulk message at time now and
	// returns when its first byte leaves the sender and when it reaches
	// the receiver port.
	Send(src, dst int, size int64, now sim.Time) (start, arrive sim.Time)
	// Accept books the receive side at the arrival time returned by Send
	// and returns when the last byte lands.
	Accept(src, dst int, size int64, arrive sim.Time) (deliver sim.Time)
	// Control delivers a small protocol message sent at time now on the
	// priority path.
	Control(src, dst int, size int64, now sim.Time) (deliver sim.Time)
}

// Switch implements Fabric.
var _ Fabric = (*Switch)(nil)

// TreeConfig describes a two-tier interconnect: hosts attach to edge
// switches; edge switches attach to a core switch through uplinks that
// may be oversubscribed (slower than the sum of their host links).
type TreeConfig struct {
	// Host is the host-link model (bandwidth, edge-hop latency).
	Host Config
	// PortsPerEdge is the number of hosts per edge switch.
	PortsPerEdge int
	// UplinkBandwidthBytesPerSec is the edge-to-core link speed.
	UplinkBandwidthBytesPerSec float64
	// CoreLatency is the extra latency of crossing the core.
	CoreLatency sim.Duration
}

// Tree is a two-tier fabric. Intra-edge traffic behaves like a single
// switch; inter-edge traffic additionally serializes on the source
// edge's uplink and the destination edge's downlink, which is where
// oversubscription bites.
type Tree struct {
	eng    *sim.Engine
	cfg    TreeConfig
	ports  int
	txFree []sim.Time
	rxFree []sim.Time
	upFree []sim.Time // per edge switch: uplink toward the core
	dnFree []sim.Time // per edge switch: downlink from the core

	messages int64
	bytes    int64
}

// NewTree builds a tree fabric with the given number of host ports.
func NewTree(eng *sim.Engine, ports int, cfg TreeConfig) *Tree {
	if ports <= 0 {
		panic(fmt.Sprintf("netsim: %d ports", ports)) //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	if cfg.PortsPerEdge <= 0 || cfg.PortsPerEdge > ports {
		panic("netsim: invalid PortsPerEdge") //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	if cfg.Host.BandwidthBytesPerSec <= 0 || cfg.UplinkBandwidthBytesPerSec <= 0 {
		panic("netsim: non-positive bandwidth") //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	if cfg.Host.Latency < 0 || cfg.CoreLatency < 0 {
		panic("netsim: negative latency") //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	edges := (ports + cfg.PortsPerEdge - 1) / cfg.PortsPerEdge
	return &Tree{
		eng:    eng,
		cfg:    cfg,
		ports:  ports,
		txFree: make([]sim.Time, ports),
		rxFree: make([]sim.Time, ports),
		upFree: make([]sim.Time, edges),
		dnFree: make([]sim.Time, edges),
	}
}

// Ports implements Fabric.
func (t *Tree) Ports() int { return t.ports }

// Edges reports the number of edge switches.
func (t *Tree) Edges() int { return len(t.upFree) }

// EdgeOf reports which edge switch a host port attaches to.
func (t *Tree) EdgeOf(port int) int {
	t.checkPort(port)
	return port / t.cfg.PortsPerEdge
}

// SerializationTime implements Fabric (host-link rate).
func (t *Tree) SerializationTime(size int64) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.DurationOf(float64(size) / t.cfg.Host.BandwidthBytesPerSec)
}

func (t *Tree) uplinkSer(size int64) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.DurationOf(float64(size) / t.cfg.UplinkBandwidthBytesPerSec)
}

// MinLatency implements Fabric: the intra-edge hop is the fastest path.
func (t *Tree) MinLatency() sim.Duration { return t.cfg.Host.Latency }

// Send implements Fabric. Unlike the flat switch, the tree's shared
// uplink/downlink state couples ports on the same edge, so a Tree is
// only valid on a single shard (cluster.Config.Validate enforces this);
// the two-stage split still applies, with fan-in to the receive link
// resolved by Accept in arrival order.
func (t *Tree) Send(src, dst int, size int64, now sim.Time) (start, arrive sim.Time) {
	if src == dst {
		t.selfTransferPanic(src)
	}
	t.checkPort(src)
	t.checkPort(dst)
	serHost := t.SerializationTime(size)
	lat := t.cfg.Host.Latency

	es, ed := t.EdgeOf(src), t.EdgeOf(dst)
	if es == ed {
		// Intra-edge: identical to the single switch.
		start = maxTime(now, t.txFree[src])
		t.txFree[src] = start.Add(serHost)
		arrive = start.Add(lat)
	} else {
		// Inter-edge pipeline: host tx → uplink → core → downlink →
		// host rx. The slowest stage dominates the transfer; every
		// stage is booked busy for its own serialization time at its
		// pipeline offset.
		serUp := t.uplinkSer(size)
		totalLat := 2*lat + t.cfg.CoreLatency
		start = maxTime(now, t.txFree[src],
			t.upFree[es]-sim.Time(lat),
			t.dnFree[ed]-sim.Time(lat+t.cfg.CoreLatency))
		t.txFree[src] = start.Add(serHost)
		t.upFree[es] = start.Add(sim.Duration(lat) + serUp)
		t.dnFree[ed] = start.Add(sim.Duration(lat) + t.cfg.CoreLatency + serUp)
		arrive = start.Add(sim.Duration(totalLat))
	}
	t.messages++
	t.bytes += size
	return start, arrive
}

// Accept implements Fabric: the last byte lands one bottleneck-stage
// serialization behind whatever is still occupying the receive link.
func (t *Tree) Accept(src, dst int, size int64, arrive sim.Time) (deliver sim.Time) {
	t.checkPort(src)
	t.checkPort(dst)
	bottleneck := t.SerializationTime(size)
	if t.EdgeOf(src) != t.EdgeOf(dst) {
		if serUp := t.uplinkSer(size); serUp > bottleneck {
			bottleneck = serUp
		}
	}
	deliver = maxTime(arrive, t.rxFree[dst]).Add(bottleneck)
	t.rxFree[dst] = deliver
	return deliver
}

// Transfer books a whole message at the engine clock: Send followed
// immediately by Accept, the single-engine convenience form.
func (t *Tree) Transfer(src, dst int, size int64) (start, deliver sim.Time) {
	start, arrive := t.Send(src, dst, size, t.eng.Now())
	deliver = t.Accept(src, dst, size, arrive)
	return start, deliver
}

// Control implements Fabric: latency-only priority delivery, with the
// core hop added for inter-edge pairs.
func (t *Tree) Control(src, dst int, size int64, now sim.Time) (deliver sim.Time) {
	if src == dst {
		t.selfTransferPanic(src)
	}
	t.checkPort(src)
	t.checkPort(dst)
	t.messages++
	t.bytes += size
	lat := t.cfg.Host.Latency
	if t.EdgeOf(src) != t.EdgeOf(dst) {
		lat += t.cfg.Host.Latency + t.cfg.CoreLatency
	}
	return now.Add(t.SerializationTime(size) + lat)
}

func (t *Tree) selfTransferPanic(port int) {
	panic(fmt.Sprintf("netsim: self-transfer on port %d", port)) //lint:allow panicfree (network-model invariant; port/size misuse is a simulator bug)
}

// Stats reports the total messages and bytes transferred.
func (t *Tree) Stats() (messages, bytes int64) { return t.messages, t.bytes }

func (t *Tree) checkPort(p int) {
	if p < 0 || p >= t.ports {
		panic(fmt.Sprintf("netsim: port %d out of range [0,%d)", p, t.ports)) //lint:allow panicfree (network-model invariant; port/size misuse is a simulator bug)
	}
}

func maxTime(ts ...sim.Time) sim.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}
