// Package netsim models the cluster interconnect: a non-blocking
// store-and-forward Ethernet switch (the paper's Cisco Catalyst 2950)
// with one full-duplex 100 Mb port per node.
//
// The model is message-granular rather than frame-granular: a transfer
// occupies the sender's transmit link and the receiver's receive link
// for its serialization time, pipelined through the switch with a fixed
// cut-through latency. Per-link "next free" bookkeeping gives exact
// first-come-first-served contention (fan-in to one receiver serializes
// on its port, which is what makes the parallel-transpose gather a
// bottleneck) without simulating millions of frames.
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes the interconnect fabric.
type Config struct {
	// BandwidthBytesPerSec is the effective per-direction link
	// bandwidth after protocol overheads. Raw 100 Mb/s Ethernet under
	// MPICH-over-TCP sustains roughly 9.5 MB/s.
	BandwidthBytesPerSec float64
	// Latency is the end-to-end message latency excluding
	// serialization: switch cut-through plus wire plus interrupt
	// plumbing.
	Latency sim.Duration
}

// Default100Mb returns the calibrated model of the paper's fabric:
// switched 100 Mb Ethernet under MPICH 1.2.5/TCP.
func Default100Mb() Config {
	return Config{
		BandwidthBytesPerSec: 9.5e6,
		Latency:              45 * sim.Microsecond,
	}
}

// Switch is the interconnect instance. All methods must be called from
// engine context (process bodies or event callbacks).
type Switch struct {
	eng    *sim.Engine
	cfg    Config
	txFree []sim.Time
	rxFree []sim.Time

	messages  int64
	bytes     int64
	portBytes []int64 // per source port
}

// New builds a switch with ports full-duplex ports.
func New(eng *sim.Engine, ports int, cfg Config) *Switch {
	if ports <= 0 {
		panic(fmt.Sprintf("netsim: %d ports", ports)) //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		panic("netsim: non-positive bandwidth") //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	if cfg.Latency < 0 {
		panic("netsim: negative latency") //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	return &Switch{
		eng:       eng,
		cfg:       cfg,
		txFree:    make([]sim.Time, ports),
		rxFree:    make([]sim.Time, ports),
		portBytes: make([]int64, ports),
	}
}

// Ports returns the number of switch ports.
func (s *Switch) Ports() int { return len(s.txFree) }

// Config returns the fabric configuration.
func (s *Switch) Config() Config { return s.cfg }

// SerializationTime returns how long size bytes occupy a link.
func (s *Switch) SerializationTime(size int64) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.DurationOf(float64(size) / s.cfg.BandwidthBytesPerSec)
}

// Transfer books a message of size bytes from port src to port dst
// starting no earlier than now, and returns the interval it occupies:
// start (when the first byte leaves the sender, i.e. when both links are
// free) and deliver (when the last byte arrives at the receiver). The
// caller schedules delivery; the switch only does the accounting.
func (s *Switch) Transfer(src, dst int, size int64) (start, deliver sim.Time) {
	if src == dst {
		panic(fmt.Sprintf("netsim: self-transfer on port %d", src)) //lint:allow panicfree (network-model invariant; port/size misuse is a simulator bug)
	}
	s.checkPort(src)
	s.checkPort(dst)
	now := s.eng.Now()
	ser := s.SerializationTime(size)
	lat := s.cfg.Latency

	start = now
	if s.txFree[src] > start {
		start = s.txFree[src]
	}
	// The receive link is occupied [start+lat, start+lat+ser]; push the
	// start until the pipelined copy fits behind earlier arrivals.
	if rxEarliest := s.rxFree[dst] - sim.Time(lat); rxEarliest > start {
		start = rxEarliest
	}
	s.txFree[src] = start.Add(ser)
	deliver = start.Add(ser + lat)
	s.rxFree[dst] = deliver

	s.messages++
	s.bytes += size
	s.portBytes[src] += size
	return start, deliver
}

// Control books a small protocol message (RTS/CTS handshakes, ACKs)
// from src to dst without occupying the links: real stacks interleave
// tiny control packets into bulk streams rather than queueing them
// behind megabytes of data, so they see only serialization plus switch
// latency. It returns the delivery time.
func (s *Switch) Control(src, dst int, size int64) (deliver sim.Time) {
	if src == dst {
		panic(fmt.Sprintf("netsim: self-transfer on port %d", src)) //lint:allow panicfree (network-model invariant; port/size misuse is a simulator bug)
	}
	s.checkPort(src)
	s.checkPort(dst)
	s.messages++
	s.bytes += size
	s.portBytes[src] += size
	return s.eng.Now().Add(s.SerializationTime(size) + s.cfg.Latency)
}

// TxBusyUntil reports when the port's transmit link frees up.
func (s *Switch) TxBusyUntil(port int) sim.Time {
	s.checkPort(port)
	return s.txFree[port]
}

// RxBusyUntil reports when the port's receive link frees up.
func (s *Switch) RxBusyUntil(port int) sim.Time {
	s.checkPort(port)
	return s.rxFree[port]
}

// Stats reports the total messages and bytes transferred.
func (s *Switch) Stats() (messages, bytes int64) { return s.messages, s.bytes }

// PortBytes reports the bytes sent from port.
func (s *Switch) PortBytes(port int) int64 {
	s.checkPort(port)
	return s.portBytes[port]
}

func (s *Switch) checkPort(p int) {
	if p < 0 || p >= len(s.txFree) {
		panic(fmt.Sprintf("netsim: port %d out of range [0,%d)", p, len(s.txFree))) //lint:allow panicfree (network-model invariant; port/size misuse is a simulator bug)
	}
}

// Gigabit returns a switched gigabit Ethernet model (an interconnect
// upgrade ablation: as the network gets faster, communication slack —
// and with it DVS savings on comm-bound codes — shrinks).
func Gigabit() Config {
	return Config{
		BandwidthBytesPerSec: 85e6,
		Latency:              25 * sim.Microsecond,
	}
}
