// Package netsim models the cluster interconnect: a non-blocking
// store-and-forward Ethernet switch (the paper's Cisco Catalyst 2950)
// with one full-duplex 100 Mb port per node.
//
// The model is message-granular rather than frame-granular: a transfer
// occupies the sender's transmit link and the receiver's receive link
// for its serialization time, pipelined through the switch with a fixed
// cut-through latency. Per-link "next free" bookkeeping gives exact
// first-come-first-served contention (fan-in to one receiver serializes
// on its port, which is what makes the parallel-transpose gather a
// bottleneck) without simulating millions of frames.
//
// Booking is split in two so the model works when sender and receiver
// live on different event-core shards: Send books the transmit link
// from sender context and computes the arrival time (first byte at the
// receiver port); Accept books the receive link from receiver context
// when that arrival fires, serializing fan-in in arrival order. The
// receive-side queueing that used to be resolved by a shared
// "earliest rx slot" lookup at send time is instead resolved by the
// receiver shard's O(log n) event heap ordering the arrival events —
// no state is read across the shard boundary, and for a fixed arrival
// order the delivery times are identical to the old single-stage
// model: max(arrive, rxFree) + ser == max(arrive - lat, rxFree - lat)
// + lat + ser.
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes the interconnect fabric.
type Config struct {
	// BandwidthBytesPerSec is the effective per-direction link
	// bandwidth after protocol overheads. Raw 100 Mb/s Ethernet under
	// MPICH-over-TCP sustains roughly 9.5 MB/s.
	BandwidthBytesPerSec float64
	// Latency is the end-to-end message latency excluding
	// serialization: switch cut-through plus wire plus interrupt
	// plumbing.
	Latency sim.Duration
}

// Default100Mb returns the calibrated model of the paper's fabric:
// switched 100 Mb Ethernet under MPICH 1.2.5/TCP.
func Default100Mb() Config {
	return Config{
		BandwidthBytesPerSec: 9.5e6,
		Latency:              45 * sim.Microsecond,
	}
}

// Switch is the interconnect instance. All methods must be called from
// engine context (process bodies or event callbacks). Under a sharded
// group, Send/Control must run on the source port's shard and Accept on
// the destination port's shard: every field below is indexed by the
// port whose shard writes it, so shards never touch each other's
// cachelines and the model needs no locks.
type Switch struct {
	eng    *sim.Engine
	cfg    Config
	txFree []sim.Time
	rxFree []sim.Time

	portMsgs  []int64 // messages sent, per source port
	portBytes []int64 // bytes sent, per source port
}

// New builds a switch with ports full-duplex ports.
//
//lint:range ports [1,inf]
func New(eng *sim.Engine, ports int, cfg Config) *Switch {
	if ports <= 0 {
		panic(fmt.Sprintf("netsim: %d ports", ports)) //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		panic("netsim: non-positive bandwidth") //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	if cfg.Latency < 0 {
		panic("netsim: negative latency") //lint:allow panicfree (constructor misuse; topology config is fixed at build time)
	}
	return &Switch{
		eng:       eng,
		cfg:       cfg,
		txFree:    make([]sim.Time, ports),
		rxFree:    make([]sim.Time, ports),
		portMsgs:  make([]int64, ports),
		portBytes: make([]int64, ports),
	}
}

// Ports returns the number of switch ports.
func (s *Switch) Ports() int { return len(s.txFree) }

// Config returns the fabric configuration.
func (s *Switch) Config() Config { return s.cfg }

// SerializationTime returns how long size bytes occupy a link.
func (s *Switch) SerializationTime(size int64) sim.Duration {
	if size <= 0 {
		return 0
	}
	return sim.DurationOf(float64(size) / s.cfg.BandwidthBytesPerSec)
}

// MinLatency reports the smallest delay any message can experience
// between leaving a sender and becoming visible at a receiver. It is
// the conservative lookahead bound for sharded runs: a cross-shard
// interaction initiated at t can never matter to its target before
// t + MinLatency().
func (s *Switch) MinLatency() sim.Duration { return s.cfg.Latency }

// Send books the transmit side of a message of size bytes from port src
// to port dst, starting no earlier than now. It returns start (when the
// first byte leaves the sender, i.e. when the transmit link is free)
// and arrive (when the first byte reaches the receiver port, one switch
// latency later). The caller must complete the booking by calling
// Accept from receiver context at arrive; fan-in contention on the
// receive link is resolved there, in arrival order.
//
//lint:hotpath runs once per simulated message
func (s *Switch) Send(src, dst int, size int64, now sim.Time) (start, arrive sim.Time) {
	if src == dst {
		s.selfTransferPanic(src)
	}
	s.checkPort(src)
	s.checkPort(dst)
	start = now
	if s.txFree[src] > start {
		start = s.txFree[src]
	}
	s.txFree[src] = start.Add(s.SerializationTime(size))
	arrive = start.Add(s.cfg.Latency)
	s.portMsgs[src]++
	s.portBytes[src] += size
	return start, arrive
}

// Accept books the receive side of a message whose first byte reaches
// dst at arrive (as returned by Send) and returns deliver, when the
// last byte has been copied in behind any earlier arrivals still
// occupying the receive link.
//
//lint:hotpath runs once per simulated message
func (s *Switch) Accept(src, dst int, size int64, arrive sim.Time) (deliver sim.Time) {
	s.checkPort(src)
	s.checkPort(dst)
	deliver = arrive
	if s.rxFree[dst] > deliver {
		deliver = s.rxFree[dst]
	}
	deliver = deliver.Add(s.SerializationTime(size))
	s.rxFree[dst] = deliver
	return deliver
}

// Transfer books a whole message from port src to port dst starting no
// earlier than the engine clock, and returns the interval it occupies:
// start (when the first byte leaves the sender) and deliver (when the
// last byte arrives at the receiver). It is the single-engine
// convenience form of Send followed immediately by Accept; sharded
// callers split the two stages across the owning shards instead.
func (s *Switch) Transfer(src, dst int, size int64) (start, deliver sim.Time) {
	start, arrive := s.Send(src, dst, size, s.eng.Now())
	deliver = s.Accept(src, dst, size, arrive)
	return start, deliver
}

// Control books a small protocol message (RTS/CTS handshakes, ACKs)
// from src to dst at time now without occupying the links: real stacks
// interleave tiny control packets into bulk streams rather than
// queueing them behind megabytes of data, so they see only
// serialization plus switch latency. It returns the delivery time.
func (s *Switch) Control(src, dst int, size int64, now sim.Time) (deliver sim.Time) {
	if src == dst {
		s.selfTransferPanic(src)
	}
	s.checkPort(src)
	s.checkPort(dst)
	s.portMsgs[src]++
	s.portBytes[src] += size
	return now.Add(s.SerializationTime(size) + s.cfg.Latency)
}

func (s *Switch) selfTransferPanic(port int) {
	panic(fmt.Sprintf("netsim: self-transfer on port %d", port)) //lint:allow panicfree (network-model invariant; port/size misuse is a simulator bug)
}

// TxBusyUntil reports when the port's transmit link frees up.
func (s *Switch) TxBusyUntil(port int) sim.Time {
	s.checkPort(port)
	return s.txFree[port]
}

// RxBusyUntil reports when the port's receive link frees up.
func (s *Switch) RxBusyUntil(port int) sim.Time {
	s.checkPort(port)
	return s.rxFree[port]
}

// Stats reports the total messages and bytes transferred. The totals
// are summed from per-source-port counters (each written only by the
// port's owning shard), so call it only between windows or after a run.
func (s *Switch) Stats() (messages, bytes int64) {
	for p := range s.portMsgs {
		messages += s.portMsgs[p]
		bytes += s.portBytes[p]
	}
	return messages, bytes
}

// PortBytes reports the bytes sent from port.
func (s *Switch) PortBytes(port int) int64 {
	s.checkPort(port)
	return s.portBytes[port]
}

func (s *Switch) checkPort(p int) {
	if p < 0 || p >= len(s.txFree) {
		s.portRangePanic(p)
	}
}

// portRangePanic is the cold half of checkPort, split out so the hot
// Send/Accept paths stay allocation-free and inlinable.
func (s *Switch) portRangePanic(p int) {
	panic(fmt.Sprintf("netsim: port %d out of range [0,%d)", p, len(s.txFree))) //lint:allow panicfree (network-model invariant; port/size misuse is a simulator bug)
}

// Gigabit returns a switched gigabit Ethernet model (an interconnect
// upgrade ablation: as the network gets faster, communication slack —
// and with it DVS savings on comm-bound codes — shrinks).
func Gigabit() Config {
	return Config{
		BandwidthBytesPerSec: 85e6,
		Latency:              25 * sim.Microsecond,
	}
}
