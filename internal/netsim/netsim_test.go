package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newSwitch(ports int) (*sim.Engine, *Switch) {
	e := sim.NewEngine()
	return e, New(e, ports, Config{BandwidthBytesPerSec: 1e6, Latency: 50 * sim.Microsecond})
}

func TestSerializationTime(t *testing.T) {
	_, s := newSwitch(2)
	if got := s.SerializationTime(1_000_000); got != sim.Second {
		t.Fatalf("1MB at 1MB/s = %v", got)
	}
	if got := s.SerializationTime(0); got != 0 {
		t.Fatalf("0 bytes = %v", got)
	}
	if got := s.SerializationTime(-5); got != 0 {
		t.Fatalf("negative = %v", got)
	}
}

func TestSingleTransfer(t *testing.T) {
	_, s := newSwitch(2)
	start, deliver := s.Transfer(0, 1, 500_000) // 0.5s serialization
	if start != 0 {
		t.Fatalf("start = %v", start)
	}
	want := sim.Time(500*sim.Millisecond + 50*sim.Microsecond)
	if deliver != want {
		t.Fatalf("deliver = %v want %v", deliver, want)
	}
}

func TestBackToBackSendsSerializeOnTxLink(t *testing.T) {
	_, s := newSwitch(3)
	_, d1 := s.Transfer(0, 1, 1_000_000)
	start2, d2 := s.Transfer(0, 2, 1_000_000)
	// Second message waits for the first to leave the sender's link.
	if start2 != sim.Time(sim.Second) {
		t.Fatalf("start2 = %v", start2)
	}
	if d2.Sub(d1) != sim.Duration(sim.Second) {
		t.Fatalf("spacing = %v", d2.Sub(d1))
	}
}

func TestFanInSerializesOnRxLink(t *testing.T) {
	_, s := newSwitch(3)
	_, d1 := s.Transfer(1, 0, 1_000_000)
	start2, d2 := s.Transfer(2, 0, 1_000_000)
	// Different senders, same receiver: the receive link is the
	// bottleneck and deliveries are spaced by serialization time.
	if d2.Sub(d1) != sim.Duration(sim.Second) {
		t.Fatalf("fan-in spacing = %v", d2.Sub(d1))
	}
	if start2 >= d1 {
		t.Fatalf("pipelining lost: start2=%v d1=%v", start2, d1)
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	_, s := newSwitch(2)
	_, d1 := s.Transfer(0, 1, 1_000_000)
	_, d2 := s.Transfer(1, 0, 1_000_000)
	// Opposite directions share no link: both complete at the same time.
	if d1 != d2 {
		t.Fatalf("full duplex broken: %v vs %v", d1, d2)
	}
}

func TestDistinctPairsDoNotInterfere(t *testing.T) {
	_, s := newSwitch(4)
	_, d1 := s.Transfer(0, 1, 1_000_000)
	_, d2 := s.Transfer(2, 3, 1_000_000)
	if d1 != d2 {
		t.Fatalf("non-blocking switch violated: %v vs %v", d1, d2)
	}
}

func TestTransferAfterIdleStartsNow(t *testing.T) {
	e, s := newSwitch(2)
	s.Transfer(0, 1, 1000)
	e.Schedule(sim.Time(10*sim.Second), func() {
		start, _ := s.Transfer(0, 1, 1000)
		if start != sim.Time(10*sim.Second) {
			t.Errorf("start = %v", start)
		}
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	_, s := newSwitch(3)
	s.Transfer(0, 1, 100)
	s.Transfer(1, 2, 200)
	s.Transfer(0, 2, 300)
	msgs, bytes := s.Stats()
	if msgs != 3 || bytes != 600 {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
	if s.PortBytes(0) != 400 || s.PortBytes(1) != 200 || s.PortBytes(2) != 0 {
		t.Fatalf("port bytes: %d %d %d", s.PortBytes(0), s.PortBytes(1), s.PortBytes(2))
	}
}

func TestBusyUntil(t *testing.T) {
	_, s := newSwitch(2)
	_, deliver := s.Transfer(0, 1, 1_000_000)
	if s.TxBusyUntil(0) != sim.Time(sim.Second) {
		t.Fatalf("tx busy until %v", s.TxBusyUntil(0))
	}
	if s.RxBusyUntil(1) != deliver {
		t.Fatalf("rx busy until %v", s.RxBusyUntil(1))
	}
}

func TestPanics(t *testing.T) {
	e, s := newSwitch(2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("self transfer", func() { s.Transfer(0, 0, 10) })
	mustPanic("bad port", func() { s.Transfer(0, 5, 10) })
	mustPanic("zero ports", func() { New(e, 0, Default100Mb()) })
	mustPanic("bad bandwidth", func() { New(e, 2, Config{BandwidthBytesPerSec: 0}) })
	mustPanic("neg latency", func() {
		New(e, 2, Config{BandwidthBytesPerSec: 1, Latency: -1})
	})
}

func TestDefault100Mb(t *testing.T) {
	cfg := Default100Mb()
	// Effective bandwidth must be below the 12.5 MB/s raw line rate and
	// above half of it (TCP on 100 Mb does better than 50%).
	if cfg.BandwidthBytesPerSec <= 6.25e6 || cfg.BandwidthBytesPerSec >= 12.5e6 {
		t.Fatalf("bandwidth %v implausible", cfg.BandwidthBytesPerSec)
	}
	if cfg.Latency <= 0 || cfg.Latency > sim.Millisecond {
		t.Fatalf("latency %v implausible", cfg.Latency)
	}
}

// Property: deliveries respect causality and per-link ordering.
func TestTransferInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		e := sim.NewEngine()
		s := New(e, 4, Config{BandwidthBytesPerSec: 1e6, Latency: 10 * sim.Microsecond})
		lastDeliver := make(map[[2]int]sim.Time)
		ok := true
		for _, op := range ops {
			src := int(op % 4)
			dst := int((op / 4) % 4)
			if src == dst {
				continue
			}
			size := int64(op%1000) + 1
			start, deliver := s.Transfer(src, dst, size)
			if start < e.Now() {
				ok = false
			}
			if deliver < start.Add(s.SerializationTime(size)) {
				ok = false
			}
			// Per-pair FIFO: a later transfer never arrives earlier.
			key := [2]int{src, dst}
			if deliver < lastDeliver[key] {
				ok = false
			}
			lastDeliver[key] = deliver
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestControlBypassesLinkOccupancy(t *testing.T) {
	_, s := newSwitch(2)
	// Saturate the 0→1 direction with bulk data.
	_, bulkDeliver := s.Transfer(0, 1, 10_000_000) // 10s serialization
	// A control message in the same direction is not queued behind it.
	ctrlDeliver := s.Control(0, 1, 64, 0)
	if ctrlDeliver >= bulkDeliver {
		t.Fatalf("control queued behind bulk: %v vs %v", ctrlDeliver, bulkDeliver)
	}
	want := sim.Time(s.SerializationTime(64) + s.Config().Latency)
	if ctrlDeliver != want {
		t.Fatalf("control deliver %v want %v", ctrlDeliver, want)
	}
	// Control traffic still counts in the stats.
	msgs, _ := s.Stats()
	if msgs != 2 {
		t.Fatalf("stats msgs = %d", msgs)
	}
	if s.Ports() != 2 {
		t.Fatal("ports")
	}
}

func TestControlValidation(t *testing.T) {
	_, s := newSwitch(2)
	for _, fn := range []func(){
		func() { s.Control(0, 0, 8, 0) },
		func() { s.Control(0, 9, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGigabitConfig(t *testing.T) {
	g := Gigabit()
	if g.BandwidthBytesPerSec <= Default100Mb().BandwidthBytesPerSec*5 {
		t.Fatal("gigabit should be much faster than 100Mb")
	}
	if g.Latency >= Default100Mb().Latency {
		t.Fatal("gigabit latency should be lower")
	}
}
