package mpi

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestGathervCollectsVariableSizes(t *testing.T) {
	n := 5
	root := 2
	e, w := testWorld(n, nil)
	var got []any
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(i+1) << 10
		}
		res := r.Gatherv(p, root, sizes, fmt.Sprintf("blk%d", r.ID()))
		if r.ID() == root {
			got = res
		} else if res != nil {
			t.Errorf("non-root got %v", res)
		}
	})
	mustRun(t, e)
	for i, v := range got {
		if v != fmt.Sprintf("blk%d", i) {
			t.Fatalf("slot %d = %v", i, v)
		}
	}
	// Root received exactly the declared byte counts.
	var want int64
	for i := 0; i < n; i++ {
		if i != root {
			want += int64(i+1) << 10
		}
	}
	if gotB := w.Rank(root).Stats().BytesRecv; gotB != want {
		t.Fatalf("root received %d want %d", gotB, want)
	}
}

func TestScattervDistributesVariableSizes(t *testing.T) {
	n := 4
	e, w := testWorld(n, nil)
	got := make([]any, n)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		var sizes []int64
		var parts []any
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				sizes = append(sizes, int64(i+1)*100)
				parts = append(parts, i*11)
			}
		}
		got[r.ID()] = r.Scatterv(p, 0, sizes, parts)
	})
	mustRun(t, e)
	for i, v := range got {
		if v != i*11 {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestScanPrefixSums(t *testing.T) {
	n := 6
	e, w := testWorld(n, nil)
	got := make([]any, n)
	sum := func(a, b any) any { return a.(int) + b.(int) }
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		got[r.ID()] = r.Scan(p, 8, r.ID()+1, sum)
	})
	mustRun(t, e)
	for i, v := range got {
		want := (i + 1) * (i + 2) / 2
		if v != want {
			t.Fatalf("rank %d scan = %v want %d", i, v, want)
		}
	}
}

func TestScanSingleRank(t *testing.T) {
	e, w := testWorld(1, nil)
	var got any
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		got = r.Scan(p, 8, 42, func(a, b any) any { return a.(int) + b.(int) })
	})
	mustRun(t, e)
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestReduceScatter(t *testing.T) {
	n := 4
	e, w := testWorld(n, nil)
	got := make([]any, n)
	sum := func(a, b any) any { return a.(int) + b.(int) }
	split := func(total any) []any {
		out := make([]any, n)
		for i := range out {
			out[i] = total.(int) + i // each block derived from the total
		}
		return out
	}
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		got[r.ID()] = r.ReduceScatter(p, 1024, 10, sum, split)
	})
	mustRun(t, e)
	for i, v := range got {
		if v != 40+i {
			t.Fatalf("rank %d got %v want %d", i, v, 40+i)
		}
	}
}

func TestReduceScatterNilSplit(t *testing.T) {
	e, w := testWorld(3, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		if got := r.ReduceScatter(p, 300, nil, nil, nil); got != nil {
			t.Errorf("rank %d got %v", r.ID(), got)
		}
	})
	mustRun(t, e)
}

func TestVariableCollectiveValidation(t *testing.T) {
	e, w := testWorld(2, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		if r.ID() != 0 {
			// Rank 1 must still participate in nothing; validation
			// panics fire before any traffic.
			return
		}
		for _, fn := range []func(){
			func() { r.Gatherv(p, 0, []int64{1}, nil) },
			func() { r.Scatterv(p, 0, []int64{1}, []any{nil}) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("expected panic")
					}
				}()
				fn()
			}()
		}
	})
	mustRun(t, e)
}
