// Package mpi is a message-passing runtime for the simulated cluster,
// modeled on MPICH 1.2.5 over TCP (the paper's stack): an eager protocol
// for small messages, a rendezvous protocol for large ones, busy-polling
// progress (which is why MPI wait time looks like 100% CPU utilization
// to the OS), and the standard binomial/pairwise collective algorithms.
//
// Every rank runs as a simulated process bound to one machine.Node; all
// CPU costs of the library (per-message overhead, per-byte copies and
// checksumming, spinning) are charged to that node so the power model
// sees exactly what the workload does.
package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config holds the software cost model of the MPI library.
type Config struct {
	// EagerThreshold is the message size (bytes) up to which messages
	// are sent eagerly (fire-and-forget into the receiver's buffer).
	// Larger messages use the rendezvous protocol.
	EagerThreshold int64
	// SpinThreshold is how long a wait busy-polls before the library
	// falls back to blocking in the kernel. MPICH 1.2.5's p4 device
	// polls aggressively; waits shorter than this look 100% busy to
	// the OS. Negative means spin forever.
	SpinThreshold sim.Duration
	// SendOverheadCycles and RecvOverheadCycles are the per-message
	// software costs (matching, headers, syscalls) on each side.
	SendOverheadCycles float64
	RecvOverheadCycles float64
	// PerByteCycles is the per-byte CPU cost on each side for
	// rendezvous (large) messages: staging copies plus TCP
	// checksumming. It is what makes communication time slightly
	// frequency dependent (paper Fig. 8a: +6% at 600 MHz).
	PerByteCycles float64
	// PerByteCyclesEager is the per-byte cost for eager (small)
	// messages, whose single copy stays cache-resident and is much
	// cheaper (paper Fig. 8b: only +4% at 600 MHz).
	PerByteCyclesEager float64
	// ControlBytes is the wire size of RTS/CTS handshake messages.
	ControlBytes int64
	// ReduceFlopsPerByte converts reduction payload bytes into
	// combine work (1 flop per 8-byte element by default).
	ReduceFlopsPerByte float64
}

// DefaultConfig returns the calibrated MPICH-1.2.5-over-TCP cost model.
func DefaultConfig() Config {
	return Config{
		EagerThreshold:     64 << 10,
		SpinThreshold:      4 * sim.Second,
		SendOverheadCycles: 25_000,
		RecvOverheadCycles: 25_000,
		PerByteCycles:      3.3,
		PerByteCyclesEager: 1.8,
		ControlBytes:       64,
		ReduceFlopsPerByte: 0.125,
	}
}

// World is a communicator spanning one rank per node.
type World struct {
	eng   *sim.Engine
	sw    netsim.Fabric
	cfg   Config
	ranks []*Rank
	nic   []int // active-transfer refcount per node

	nextCommSlot int // next sub-communicator tag-space slot (1-based)
}

// NewWorld builds a world with one rank bound to each node. The fabric
// must have at least as many ports as nodes (rank i uses port i).
func NewWorld(eng *sim.Engine, nodes []*machine.Node, sw netsim.Fabric, cfg Config) *World {
	if len(nodes) == 0 {
		panic("mpi: empty world") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	if sw.Ports() < len(nodes) {
		panic(fmt.Sprintf("mpi: %d nodes but only %d switch ports", len(nodes), sw.Ports())) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	w := &World{
		eng:          eng,
		sw:           sw,
		cfg:          cfg,
		nic:          make([]int, len(nodes)),
		nextCommSlot: 1,
	}
	for i, n := range nodes {
		w.ranks = append(w.ranks, &Rank{
			w:          w,
			id:         i,
			node:       n,
			rendezvous: make(map[int64]*sim.Cond),
			dataWait:   make(map[int64]*sim.Cond),
			sendSeq:    make(map[int]int64),
			expectSeq:  make(map[int]int64),
			stashed:    make(map[int]map[int64]*Message),
		})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i's handle.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Config returns the library cost model.
func (w *World) Config() Config { return w.cfg }

// SpawnRanks starts body as the main program of every rank, SPMD-style,
// and returns the spawned processes.
func (w *World) SpawnRanks(body func(p *sim.Proc, r *Rank)) []*sim.Proc {
	procs := make([]*sim.Proc, len(w.ranks))
	for i, r := range w.ranks {
		r := r
		procs[i] = w.eng.Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			body(p, r)
		})
	}
	return procs
}

// nicWindow marks node's NIC active over [from, to] (refcounted, since
// transfer windows from different messages overlap).
func (w *World) nicWindow(node int, from, to sim.Time) {
	if to <= from {
		return
	}
	n := w.ranks[node].node
	w.eng.Schedule(from, func() {
		w.nic[node]++
		n.SetNICActive(true)
	})
	w.eng.Schedule(to, func() {
		w.nic[node]--
		if w.nic[node] == 0 {
			n.SetNICActive(false)
		}
	})
}

// Message is a delivered MPI message.
type Message struct {
	Src, Dst int
	Tag      int
	Size     int64
	Payload  any

	kind   msgKind
	handle int64
	seq    int64 // per-(src,dst) envelope sequence for non-overtaking
}

type msgKind int

const (
	kindEager msgKind = iota
	kindRTS           // rendezvous request-to-send (carries envelope)
	kindCTS           // rendezvous clear-to-send
	kindRData         // rendezvous payload
)

// Stats aggregates a rank's traffic counters.
type Stats struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
}

// Rank is one MPI process.
type Rank struct {
	w    *World
	id   int
	node *machine.Node

	posted     []*postedRecv
	unexpected []*Message

	nextHandle int64
	rendezvous map[int64]*sim.Cond // sender side: waiting for CTS
	dataWait   map[int64]*sim.Cond // receiver side: waiting for payload

	// Non-overtaking machinery (MPI ordering semantics): envelopes from
	// one sender carry a sequence number; a receiver only admits them
	// to matching in order, stashing early arrivals. Without this, a
	// latency-only RTS could overtake an eager message still
	// serializing on the wire.
	sendSeq   map[int]int64
	expectSeq map[int]int64
	stashed   map[int]map[int64]*Message

	collSeq int // per-rank collective sequence (SPMD-aligned)

	stats Stats
}

type postedRecv struct {
	src, tag int
	cond     *sim.Cond
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Node returns the machine this rank runs on.
func (r *Rank) Node() *machine.Node { return r.node }

// World returns the communicator.
func (r *Rank) World() *World { return r.w }

// Stats returns the rank's traffic counters.
func (r *Rank) Stats() Stats { return r.stats }

// matches reports whether a posted (src,tag) pattern accepts msg.
// Only eager data and RTS envelopes participate in matching.
func matches(src, tag int, m *Message) bool {
	if m.kind != kindEager && m.kind != kindRTS {
		return false
	}
	if src != AnySource && m.Src != src {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// deliver runs at the message's arrival time on the receiving rank.
func (r *Rank) deliver(m *Message) {
	switch m.kind {
	case kindEager, kindRTS:
		// Enforce per-sender envelope order: admit in sequence,
		// stashing early arrivals until their predecessors land.
		if m.seq != r.expectSeq[m.Src] {
			st := r.stashed[m.Src]
			if st == nil {
				st = make(map[int64]*Message)
				r.stashed[m.Src] = st
			}
			st[m.seq] = m
			return
		}
		r.admit(m)
		r.expectSeq[m.Src]++
		for {
			next, ok := r.stashed[m.Src][r.expectSeq[m.Src]]
			if !ok {
				break
			}
			delete(r.stashed[m.Src], r.expectSeq[m.Src])
			r.admit(next)
			r.expectSeq[m.Src]++
		}
	case kindCTS:
		c, ok := r.rendezvous[m.handle]
		if !ok {
			panic(fmt.Sprintf("mpi: rank %d: CTS for unknown handle %d", r.id, m.handle)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
		delete(r.rendezvous, m.handle)
		c.Signal(m)
	case kindRData:
		c, ok := r.dataWait[m.handle]
		if !ok {
			panic(fmt.Sprintf("mpi: rank %d: data for unknown handle %d", r.id, m.handle)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
		delete(r.dataWait, m.handle)
		c.Signal(m)
	}
}

// admit runs envelope matching for an in-order envelope.
func (r *Rank) admit(m *Message) {
	for i, pr := range r.posted {
		if matches(pr.src, pr.tag, m) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			pr.cond.Signal(m)
			return
		}
	}
	r.unexpected = append(r.unexpected, m)
}

// transmit books wire bytes on the network for m and schedules its
// delivery; it returns the delivery time. wire differs from m.Size for
// rendezvous control messages, whose envelope describes a large payload
// but whose own footprint is a small header. Control messages are too
// small to bother marking NIC activity.
func (r *Rank) transmit(m *Message, wire int64, markNIC bool) sim.Time {
	start, deliverAt := r.w.sw.Transfer(m.Src, m.Dst, wire)
	if markNIC {
		ser := r.w.sw.SerializationTime(wire)
		r.w.nicWindow(m.Src, start, start.Add(ser))
		r.w.nicWindow(m.Dst, deliverAt-sim.Time(ser), deliverAt)
	}
	dst := r.w.ranks[m.Dst]
	r.w.eng.Schedule(deliverAt, func() { dst.deliver(m) })
	return deliverAt
}

// transmitControl sends a protocol control message on the priority path
// (no link occupancy) and schedules its delivery.
func (r *Rank) transmitControl(m *Message) sim.Time {
	deliverAt := r.w.sw.Control(m.Src, m.Dst, r.w.cfg.ControlBytes)
	dst := r.w.ranks[m.Dst]
	r.w.eng.Schedule(deliverAt, func() { dst.deliver(m) })
	return deliverAt
}

// waitOn parks the process on c with the library's spin-then-block
// behaviour, leaving the node Idle afterwards and returning the value
// the waker delivered.
func (r *Rank) waitOn(p *sim.Proc, c *sim.Cond) any {
	n := r.node
	n.SetState(machine.Spin)
	if thr := r.w.cfg.SpinThreshold; thr >= 0 {
		token := n.StateToken()
		r.w.eng.After(thr, func() {
			// Still in the same uninterrupted spin: fall back to a
			// blocking kernel wait (idle in /proc/stat).
			n.RestoreState(token, machine.Blocked)
		})
	}
	v := c.Wait(p)
	n.SetState(machine.Idle)
	return v
}

// byteWork charges the per-byte software cost (copies + checksums) for
// a message of the given size, in the Copy activity state. Messages at
// or below the eager threshold use the cheaper cache-resident rate.
func (r *Rank) byteWork(p *sim.Proc, size int64) {
	if size <= 0 {
		return
	}
	rate := r.w.cfg.PerByteCycles
	if size <= r.w.cfg.EagerThreshold {
		rate = r.w.cfg.PerByteCyclesEager
	}
	r.node.CopyCycles(p, float64(size)*rate)
}

// overhead charges fixed per-message software cost.
func (r *Rank) overhead(p *sim.Proc, cycles float64) {
	r.node.Compute(p, cycles)
}
