// Package mpi is a message-passing runtime for the simulated cluster,
// modeled on MPICH 1.2.5 over TCP (the paper's stack): an eager protocol
// for small messages, a rendezvous protocol for large ones, busy-polling
// progress (which is why MPI wait time looks like 100% CPU utilization
// to the OS), and the standard binomial/pairwise collective algorithms.
//
// Every rank runs as a simulated process bound to one machine.Node; all
// CPU costs of the library (per-message overhead, per-byte copies and
// checksumming, spinning) are charged to that node so the power model
// sees exactly what the workload does.
package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config holds the software cost model of the MPI library.
type Config struct {
	// EagerThreshold is the message size (bytes) up to which messages
	// are sent eagerly (fire-and-forget into the receiver's buffer).
	// Larger messages use the rendezvous protocol.
	EagerThreshold int64
	// SpinThreshold is how long a wait busy-polls before the library
	// falls back to blocking in the kernel. MPICH 1.2.5's p4 device
	// polls aggressively; waits shorter than this look 100% busy to
	// the OS. Negative means spin forever.
	SpinThreshold sim.Duration
	// SendOverheadCycles and RecvOverheadCycles are the per-message
	// software costs (matching, headers, syscalls) on each side.
	SendOverheadCycles float64
	RecvOverheadCycles float64
	// PerByteCycles is the per-byte CPU cost on each side for
	// rendezvous (large) messages: staging copies plus TCP
	// checksumming. It is what makes communication time slightly
	// frequency dependent (paper Fig. 8a: +6% at 600 MHz).
	PerByteCycles float64
	// PerByteCyclesEager is the per-byte cost for eager (small)
	// messages, whose single copy stays cache-resident and is much
	// cheaper (paper Fig. 8b: only +4% at 600 MHz).
	PerByteCyclesEager float64
	// ControlBytes is the wire size of RTS/CTS handshake messages.
	ControlBytes int64
	// ReduceFlopsPerByte converts reduction payload bytes into
	// combine work (1 flop per 8-byte element by default).
	ReduceFlopsPerByte float64
	// AllreduceLargeThreshold is the payload size (bytes) at or above
	// which Allreduce switches from reduce+bcast (two binomial trees
	// rooted at rank 0 — fine for latency-bound sizes, but the root's
	// links carry every byte twice) to recursive doubling, whose
	// bandwidth load is spread across all links, MPICH-style. Zero or
	// negative disables the large path.
	AllreduceLargeThreshold int64
}

// DefaultConfig returns the calibrated MPICH-1.2.5-over-TCP cost model.
func DefaultConfig() Config {
	return Config{
		EagerThreshold:          64 << 10,
		SpinThreshold:           4 * sim.Second,
		SendOverheadCycles:      25_000,
		RecvOverheadCycles:      25_000,
		PerByteCycles:           3.3,
		PerByteCyclesEager:      1.8,
		ControlBytes:            64,
		ReduceFlopsPerByte:      0.125,
		AllreduceLargeThreshold: 64 << 10,
	}
}

// World is a communicator spanning one rank per node. Each rank lives
// on its node's engine; when the nodes are partitioned across the
// shards of a sim.Group, cross-shard deliveries travel through the
// group's inboxes with a shard-count-invariant (source, sequence)
// arrival key, so a sharded run is byte-identical to a sequential one.
type World struct {
	group *sim.Group // nil when every rank shares one engine
	sw    netsim.Fabric
	cfg   Config
	ranks []*Rank
	nic   []int    // active-transfer refcount per node
	xseq  []uint64 // per-source-rank arrival sequence (claimed on the source shard)
	shard []int    // rank -> shard index; nil when group is nil

	nextCommSlot int // next sub-communicator tag-space slot (1-based)
}

// NewWorld builds a world with one rank bound to each node, all of them
// on the single engine eng. The fabric must have at least as many ports
// as nodes (rank i uses port i).
func NewWorld(eng *sim.Engine, nodes []*machine.Node, sw netsim.Fabric, cfg Config) *World {
	for _, n := range nodes {
		if n.Engine() != eng {
			panic("mpi: node not on the world's engine") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
	}
	return newWorld(nil, nil, nodes, sw, cfg)
}

// NewWorldOn builds a world whose nodes are partitioned across the
// shards of g: rank i runs on nodes[i].Engine(), which must be one of
// the group's shard engines. Message delivery between ranks on
// different shards is routed through the group; the fabric's MinLatency
// must be at least the group's lookahead for the conservative window to
// be sound.
func NewWorldOn(g *sim.Group, nodes []*machine.Node, sw netsim.Fabric, cfg Config) *World {
	if g == nil {
		panic("mpi: NewWorldOn needs a group") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	if g.Size() > 1 && sw.MinLatency() < g.Lookahead() {
		// A single-shard group never crosses a shard boundary, so the
		// lookahead only paces windows and any fabric is safe.
		panic("mpi: fabric minimum latency below group lookahead") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	shard := make([]int, len(nodes))
	for i, n := range nodes {
		s := -1
		for j := 0; j < g.Size(); j++ {
			if g.Engine(j) == n.Engine() {
				s = j
				break
			}
		}
		if s < 0 {
			panic(fmt.Sprintf("mpi: node %d not on a group shard", i)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
		shard[i] = s
	}
	return newWorld(g, shard, nodes, sw, cfg)
}

func newWorld(g *sim.Group, shard []int, nodes []*machine.Node, sw netsim.Fabric, cfg Config) *World {
	if len(nodes) == 0 {
		panic("mpi: empty world") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	if sw.Ports() < len(nodes) {
		panic(fmt.Sprintf("mpi: %d nodes but only %d switch ports", len(nodes), sw.Ports())) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	w := &World{
		group:        g,
		sw:           sw,
		cfg:          cfg,
		nic:          make([]int, len(nodes)),
		xseq:         make([]uint64, len(nodes)),
		shard:        shard,
		nextCommSlot: 1,
	}
	for i, n := range nodes {
		w.ranks = append(w.ranks, &Rank{
			w:          w,
			id:         i,
			node:       n,
			rendezvous: make(map[int64]*sim.Cond),
			dataWait:   make(map[rdKey]*sim.Cond),
			sendSeq:    make(map[int]int64),
			expectSeq:  make(map[int]int64),
			stashed:    make(map[int]map[int64]*Message),
		})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i's handle.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Config returns the library cost model.
func (w *World) Config() Config { return w.cfg }

// SpawnRanks starts body as the main program of every rank, SPMD-style
// on each rank's own engine, and returns the spawned processes.
func (w *World) SpawnRanks(body func(p *sim.Proc, r *Rank)) []*sim.Proc {
	procs := make([]*sim.Proc, len(w.ranks))
	for i, r := range w.ranks {
		r := r
		procs[i] = r.eng().Spawn(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			body(p, r)
		})
	}
	return procs
}

// post schedules fn at absolute time t in rank dst's engine, ordered by
// the shard-count-invariant (src, sequence) arrival key. Same-shard
// deliveries enqueue directly; cross-shard deliveries park in the
// group's inbox until the next window barrier. Both paths use the same
// key, so the heap order — and therefore the simulation — is identical
// at any shard count.
//
//lint:ownedby rank dst
func (w *World) post(src, dst int, t sim.Time, fn func()) {
	w.xseq[src]++
	if w.group != nil && w.shard[src] != w.shard[dst] {
		w.group.Post(w.shard[dst], t, src, w.xseq[src], fn)
		return
	}
	w.ranks[dst].eng().PostArrival(t, src, w.xseq[src], fn)
}

// nicOn marks node's NIC active over [from, to] (refcounted, since
// transfer windows from different messages overlap). It must be called
// from the node's own shard: the sender marks its side at Send time,
// the receiver marks its side when the arrival fires.
func (w *World) nicOn(node int, from, to sim.Time) {
	if to <= from {
		return
	}
	n := w.ranks[node].node
	eng := n.Engine()
	eng.Schedule(from, func() {
		w.nic[node]++
		n.SetNICActive(true)
	})
	eng.Schedule(to, func() {
		w.nic[node]--
		if w.nic[node] == 0 {
			n.SetNICActive(false)
		}
	})
}

// Message is a delivered MPI message.
type Message struct {
	Src, Dst int
	Tag      int
	Size     int64
	Payload  any

	kind   msgKind
	handle int64
	seq    int64 // per-(src,dst) envelope sequence for non-overtaking
}

type msgKind int

const (
	kindEager msgKind = iota
	kindRTS           // rendezvous request-to-send (carries envelope)
	kindCTS           // rendezvous clear-to-send
	kindRData         // rendezvous payload
)

// rdKey identifies an in-flight rendezvous transfer on the receiver.
// Handles are allocated from the sender's counter, so they are only
// unique per source rank — concurrent transfers from different senders
// can share a handle number and must not collide in dataWait.
type rdKey struct {
	src    int
	handle int64
}

// Stats aggregates a rank's traffic counters.
type Stats struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
}

// Rank is one MPI process.
type Rank struct {
	w    *World
	id   int
	node *machine.Node

	posted     []*postedRecv
	unexpected []*Message

	nextHandle int64
	rendezvous map[int64]*sim.Cond // sender side: waiting for CTS
	dataWait   map[rdKey]*sim.Cond // receiver side: waiting for payload

	// Non-overtaking machinery (MPI ordering semantics): envelopes from
	// one sender carry a sequence number; a receiver only admits them
	// to matching in order, stashing early arrivals. Without this, a
	// latency-only RTS could overtake an eager message still
	// serializing on the wire.
	sendSeq   map[int]int64
	expectSeq map[int]int64
	stashed   map[int]map[int64]*Message

	collSeq int // per-rank collective sequence (SPMD-aligned)

	stats Stats
}

type postedRecv struct {
	src, tag int
	cond     *sim.Cond
}

// eng returns the engine this rank (and all its helper processes and
// delivery events) runs on: its node's.
func (r *Rank) eng() *sim.Engine { return r.node.Engine() }

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Node returns the machine this rank runs on.
func (r *Rank) Node() *machine.Node { return r.node }

// World returns the communicator.
func (r *Rank) World() *World { return r.w }

// Stats returns the rank's traffic counters.
func (r *Rank) Stats() Stats { return r.stats }

// matches reports whether a posted (src,tag) pattern accepts msg.
// Only eager data and RTS envelopes participate in matching.
func matches(src, tag int, m *Message) bool {
	if m.kind != kindEager && m.kind != kindRTS {
		return false
	}
	if src != AnySource && m.Src != src {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}

// deliver runs at the message's arrival time on the receiving rank.
//
//lint:allow profgate (per-message protocol bookkeeping — stash maps, queue appends, cond signals — allocates a bounded handful of objects by design; the zero-alloc discipline lives in the event core below)
func (r *Rank) deliver(m *Message) {
	switch m.kind {
	case kindEager, kindRTS:
		// Enforce per-sender envelope order: admit in sequence,
		// stashing early arrivals until their predecessors land.
		if m.seq != r.expectSeq[m.Src] {
			st := r.stashed[m.Src]
			if st == nil {
				st = make(map[int64]*Message)
				r.stashed[m.Src] = st
			}
			st[m.seq] = m
			return
		}
		r.admit(m)
		r.expectSeq[m.Src]++
		for {
			next, ok := r.stashed[m.Src][r.expectSeq[m.Src]]
			if !ok {
				break
			}
			delete(r.stashed[m.Src], r.expectSeq[m.Src])
			r.admit(next)
			r.expectSeq[m.Src]++
		}
	case kindCTS:
		c, ok := r.rendezvous[m.handle]
		if !ok {
			panic(fmt.Sprintf("mpi: rank %d: CTS for unknown handle %d", r.id, m.handle)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
		delete(r.rendezvous, m.handle)
		c.Signal(m)
	case kindRData:
		k := rdKey{src: m.Src, handle: m.handle}
		c, ok := r.dataWait[k]
		if !ok {
			panic(fmt.Sprintf("mpi: rank %d: data from rank %d for unknown handle %d", r.id, m.Src, m.handle)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
		delete(r.dataWait, k)
		c.Signal(m)
	}
}

// admit runs envelope matching for an in-order envelope.
func (r *Rank) admit(m *Message) {
	for i, pr := range r.posted {
		if matches(pr.src, pr.tag, m) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			pr.cond.Signal(m)
			return
		}
	}
	r.unexpected = append(r.unexpected, m)
}

// transmit books the transmit side of m on the network from sender
// context and posts its arrival to the receiving rank's shard; the
// arrival handler books the receive side (fan-in contention resolves in
// deterministic arrival order) and schedules delivery. It returns when
// the last byte leaves the sender — the only instant the sender can
// know without reading receiver state across the shard boundary. wire
// differs from m.Size for rendezvous control messages, whose envelope
// describes a large payload but whose own footprint is a small header.
// Control messages are too small to bother marking NIC activity.
func (r *Rank) transmit(m *Message, wire int64, markNIC bool) sim.Time {
	w := r.w
	start, arrive := w.sw.Send(m.Src, m.Dst, wire, r.eng().Now())
	ser := w.sw.SerializationTime(wire)
	if markNIC {
		w.nicOn(m.Src, start, start.Add(ser))
	}
	dst := w.ranks[m.Dst]
	w.post(m.Src, m.Dst, arrive, func() {
		deliver := w.sw.Accept(m.Src, m.Dst, wire, arrive)
		if markNIC {
			w.nicOn(m.Dst, deliver-sim.Time(ser), deliver)
		}
		dst.eng().Schedule(deliver, func() { dst.deliver(m) })
	})
	return start.Add(ser)
}

// transmitControl sends a protocol control message on the priority path
// (no link occupancy) and posts its delivery to the receiver's shard.
func (r *Rank) transmitControl(m *Message) sim.Time {
	w := r.w
	deliverAt := w.sw.Control(m.Src, m.Dst, w.cfg.ControlBytes, r.eng().Now())
	dst := w.ranks[m.Dst]
	w.post(m.Src, m.Dst, deliverAt, func() { dst.deliver(m) })
	return deliverAt
}

// waitOn parks the process on c with the library's spin-then-block
// behaviour, leaving the node Idle afterwards and returning the value
// the waker delivered.
func (r *Rank) waitOn(p *sim.Proc, c *sim.Cond) any {
	n := r.node
	n.SetState(machine.Spin)
	if thr := r.w.cfg.SpinThreshold; thr >= 0 {
		token := n.StateToken()
		r.eng().After(thr, func() {
			// Still in the same uninterrupted spin: fall back to a
			// blocking kernel wait (idle in /proc/stat).
			n.RestoreState(token, machine.Blocked)
		})
	}
	v := c.Wait(p)
	n.SetState(machine.Idle)
	return v
}

// byteWork charges the per-byte software cost (copies + checksums) for
// a message of the given size, in the Copy activity state. Messages at
// or below the eager threshold use the cheaper cache-resident rate.
func (r *Rank) byteWork(p *sim.Proc, size int64) {
	if size <= 0 {
		return
	}
	rate := r.w.cfg.PerByteCycles
	if size <= r.w.cfg.EagerThreshold {
		rate = r.w.cfg.PerByteCyclesEager
	}
	r.node.CopyCycles(p, float64(size)*rate)
}

// overhead charges fixed per-message software cost.
func (r *Rank) overhead(p *sim.Proc, cycles float64) {
	r.node.Compute(p, cycles)
}
