package mpi

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// runSharded builds an n-rank world partitioned over the given number
// of shards and runs body on every rank, returning one trace per rank.
// Each rank appends only to its own trace slot (its shard), so the
// traces are race-free and shard-count-invariant if — and only if —
// the sharded core is deterministic.
func runSharded(t *testing.T, shards, n int, tweak func(*Config),
	body func(p *sim.Proc, r *Rank, trace *[]string)) [][]string {
	t.Helper()
	g := sim.NewGroup(shards, netsim.Default100Mb().Latency)
	defer g.Close()
	nodes := make([]*machine.Node, n)
	for i := range nodes {
		nodes[i] = machine.NewNode(g.Engine(i*shards/n), i, machine.DefaultParams())
	}
	sw := netsim.New(g.Engine(0), n, netsim.Default100Mb())
	cfg := DefaultConfig()
	if tweak != nil {
		tweak(&cfg)
	}
	w := NewWorldOn(g, nodes, sw, cfg)
	traces := make([][]string, n)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		body(p, r, &traces[r.ID()])
		traces[r.ID()] = append(traces[r.ID()], fmt.Sprintf("done@%v", p.Now()))
	})
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	return traces
}

// requireShardInvariance runs body at 1, 2, 3 and n shards and demands
// byte-identical per-rank traces.
func requireShardInvariance(t *testing.T, n int, tweak func(*Config),
	body func(p *sim.Proc, r *Rank, trace *[]string)) {
	t.Helper()
	want := runSharded(t, 1, n, tweak, body)
	for _, k := range []int{2, 3, n} {
		if k > n {
			continue
		}
		got := runSharded(t, k, n, tweak, body)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d shards: traces differ from 1 shard\n got %v\nwant %v", k, got, want)
		}
	}
}

// TestShardedEqualityMessageStorm crosses every pair of ranks with a
// burst of mixed eager and rendezvous traffic — maximal cross-shard
// pressure with heavy same-destination fan-in, the case the receiver-
// side Accept ordering has to serialize identically at any shard
// count.
func TestShardedEqualityMessageStorm(t *testing.T) {
	const n, rounds = 6, 5
	requireShardInvariance(t, n, nil, func(p *sim.Proc, r *Rank, trace *[]string) {
		me := r.ID()
		for round := 0; round < rounds; round++ {
			var reqs []*Request
			for peer := 0; peer < n; peer++ {
				if peer == me {
					continue
				}
				// Vary size across (round, sender, receiver): every few
				// messages cross the eager/rendezvous threshold.
				size := int64(1024 + 37*me + 101*peer + 250_000*((round+me+peer)%2))
				reqs = append(reqs, r.Isend(p, peer, round, size, fmt.Sprintf("m%d.%d>%d", round, me, peer)))
				reqs = append(reqs, r.Irecv(p, peer, round))
			}
			for _, q := range reqs {
				if m := r.Wait(p, q); m != nil {
					*trace = append(*trace, fmt.Sprintf("%v src%d tag%d sz%d %v", p.Now(), m.Src, m.Tag, m.Size, m.Payload))
				}
			}
		}
	})
}

// TestShardedEqualityCollectives runs the full collective repertoire —
// including the binomial gather/scatter trees and the large-message
// recursive-doubling Allreduce — across shard counts.
func TestShardedEqualityCollectives(t *testing.T) {
	const n = 8
	sum := func(a, b any) any { return a.(int) + b.(int) }
	requireShardInvariance(t, n, nil, func(p *sim.Proc, r *Rank, trace *[]string) {
		me := r.ID()
		log := func(f string, args ...any) {
			*trace = append(*trace, fmt.Sprintf("%v ", p.Now())+fmt.Sprintf(f, args...))
		}
		r.Barrier(p)
		log("barrier")
		log("bcast=%v", r.Bcast(p, 2, 4096, fmt.Sprintf("root-payload")))
		log("reduce=%v", r.Reduce(p, 1, 2048, me+1, sum))
		log("small-allreduce=%v", r.Allreduce(p, 512, me*me, sum))
		log("large-allreduce=%v", r.Allreduce(p, 256<<10, me+10, sum))
		log("gather=%v", r.Gather(p, 3, 8192, fmt.Sprintf("g%d", me)))
		parts := make([]any, n)
		for i := range parts {
			parts[i] = fmt.Sprintf("s%d", i)
		}
		log("scatter=%v", r.Scatter(p, 5, 16384, parts))
		r.Alltoall(p, 32<<10)
		log("alltoall")
	})
}

// TestShardedEqualityUnbalancedRanks puts computation imbalance and a
// non-power-of-two rank count (exercising the recursive-doubling
// fold/unfold) through the shard sweep.
func TestShardedEqualityUnbalancedRanks(t *testing.T) {
	const n = 5
	sum := func(a, b any) any { return a.(int) + b.(int) }
	requireShardInvariance(t, n, nil, func(p *sim.Proc, r *Rank, trace *[]string) {
		me := r.ID()
		for i := 0; i < 3; i++ {
			p.Sleep(sim.Duration(me+1) * 3 * sim.Millisecond)
			got := r.Allreduce(p, 128<<10, me+i, sum)
			*trace = append(*trace, fmt.Sprintf("%v rd=%v", p.Now(), got))
		}
	})
}

// TestShardedOneShardMatchesLegacyEngine pins the migration contract:
// a 1-shard group run is event-for-event identical to the plain
// single-engine world (same event keys, same heap order), so moving
// the cluster onto groups changed nothing at Shards=1.
func TestShardedOneShardMatchesLegacyEngine(t *testing.T) {
	const n = 4
	body := func(p *sim.Proc, r *Rank, trace *[]string) {
		me := r.ID()
		next, prev := (me+1)%n, (me+n-1)%n
		for round := 0; round < 4; round++ {
			m := r.Sendrecv(p, next, round, 300_000, me, prev, round)
			*trace = append(*trace, fmt.Sprintf("%v ring %v", p.Now(), m.Payload))
		}
	}

	e := sim.NewEngine()
	defer e.Close()
	nodes := make([]*machine.Node, n)
	for i := range nodes {
		nodes[i] = machine.NewNode(e, i, machine.DefaultParams())
	}
	w := NewWorld(e, nodes, netsim.New(e, n, netsim.Default100Mb()), DefaultConfig())
	legacy := make([][]string, n)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		body(p, r, &legacy[r.ID()])
		legacy[r.ID()] = append(legacy[r.ID()], fmt.Sprintf("done@%v", p.Now()))
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}

	grouped := runSharded(t, 1, n, nil, body)
	if !reflect.DeepEqual(grouped, legacy) {
		t.Fatalf("1-shard group differs from legacy engine\n got %v\nwant %v", grouped, legacy)
	}
}
