package mpi

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/machine"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// testWorld builds an n-rank world on fresh nodes with the default
// configuration, optionally tweaked.
func testWorld(n int, tweak func(*Config)) (*sim.Engine, *World) {
	e := sim.NewEngine()
	nodes := make([]*machine.Node, n)
	for i := range nodes {
		nodes[i] = machine.NewNode(e, i, machine.DefaultParams())
	}
	sw := netsim.New(e, n, netsim.Default100Mb())
	cfg := DefaultConfig()
	if tweak != nil {
		tweak(&cfg)
	}
	return e, NewWorld(e, nodes, sw, cfg)
}

func mustRun(t *testing.T, e *sim.Engine) sim.Time {
	t.Helper()
	end, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func TestEagerSendRecv(t *testing.T) {
	e, w := testWorld(2, nil)
	var got *Message
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 7, 1024, "hello")
		case 1:
			got = r.Recv(p, 0, 7)
		}
	})
	mustRun(t, e)
	if got == nil || got.Payload != "hello" || got.Src != 0 || got.Tag != 7 || got.Size != 1024 {
		t.Fatalf("got %+v", got)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	e, w := testWorld(2, nil)
	var got *Message
	var sendDone, recvDone sim.Time
	const size = 10 << 20 // 10 MB, well above eager
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 1, size, "big")
			sendDone = p.Now()
		case 1:
			got = r.Recv(p, 0, 1)
			recvDone = p.Now()
		}
	})
	mustRun(t, e)
	if got == nil || got.Payload != "big" {
		t.Fatalf("got %+v", got)
	}
	// 10MB at 9.5MB/s is about a second; both sides must have waited
	// for the wire.
	wire := sim.DurationOf(float64(size) / netsim.Default100Mb().BandwidthBytesPerSec)
	if sendDone < sim.Time(wire) || recvDone < sim.Time(wire) {
		t.Fatalf("completed before wire time: send=%v recv=%v wire=%v", sendDone, recvDone, wire)
	}
	// MPI_Send semantics: the sender drains before (or with) the receiver.
	if sendDone > recvDone+sim.Time(sim.Millisecond) {
		t.Fatalf("sender finished long after receiver: %v vs %v", sendDone, recvDone)
	}
}

func TestMessageOrderingSameSourceTag(t *testing.T) {
	e, w := testWorld(2, nil)
	var got []int
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < 5; i++ {
				r.Send(p, 1, 3, 128, i)
			}
		case 1:
			for i := 0; i < 5; i++ {
				got = append(got, r.Recv(p, 0, 3).Payload.(int))
			}
		}
	})
	mustRun(t, e)
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("out of order: %v", got)
	}
}

func TestTagSelectivity(t *testing.T) {
	e, w := testWorld(2, nil)
	var first, second any
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 10, 64, "ten")
			r.Send(p, 1, 20, 64, "twenty")
		case 1:
			// Receive tag 20 first even though tag 10 arrived first.
			first = r.Recv(p, 0, 20).Payload
			second = r.Recv(p, 0, 10).Payload
		}
	})
	mustRun(t, e)
	if first != "twenty" || second != "ten" {
		t.Fatalf("first=%v second=%v", first, second)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	e, w := testWorld(3, nil)
	var srcs []int
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < 2; i++ {
				m := r.Recv(p, AnySource, AnyTag)
				srcs = append(srcs, m.Src)
			}
		default:
			r.Send(p, 0, r.ID(), 64, nil)
		}
	})
	mustRun(t, e)
	sort.Ints(srcs)
	if fmt.Sprint(srcs) != "[1 2]" {
		t.Fatalf("srcs = %v", srcs)
	}
}

func TestSelfSend(t *testing.T) {
	e, w := testWorld(1, nil)
	var got *Message
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		r.Send(p, 0, 5, 256, "self")
		got = r.Recv(p, 0, 5)
	})
	mustRun(t, e)
	if got == nil || got.Payload != "self" {
		t.Fatalf("got %+v", got)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	e, w := testWorld(2, nil)
	var got *Message
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			q := r.Isend(p, 1, 2, 100<<10, "async") // rendezvous size
			r.Wait(p, q)
			if !q.Done() {
				t.Error("request not done after Wait")
			}
		case 1:
			q := r.Irecv(p, 0, 2)
			got = r.Wait(p, q)
		}
	})
	mustRun(t, e)
	if got == nil || got.Payload != "async" {
		t.Fatalf("got %+v", got)
	}
}

func TestSendrecvExchange(t *testing.T) {
	e, w := testWorld(2, nil)
	vals := make([]any, 2)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		other := 1 - r.ID()
		m := r.Sendrecv(p, other, 9, 200<<10, fmt.Sprintf("from%d", r.ID()), other, 9)
		vals[r.ID()] = m.Payload
	})
	mustRun(t, e)
	if vals[0] != "from1" || vals[1] != "from0" {
		t.Fatalf("vals = %v", vals)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		e, w := testWorld(n, nil)
		exits := make([]sim.Time, n)
		var latestEntry sim.Time
		w.SpawnRanks(func(p *sim.Proc, r *Rank) {
			// Stagger entries.
			d := sim.Duration(r.ID()) * 10 * sim.Millisecond
			r.Node().IdleFor(p, d)
			if p.Now() > latestEntry {
				latestEntry = p.Now()
			}
			r.Barrier(p)
			exits[r.ID()] = p.Now()
		})
		mustRun(t, e)
		for i, x := range exits {
			if x < latestEntry {
				t.Fatalf("n=%d rank %d exited at %v before last entry %v", n, i, x, latestEntry)
			}
		}
	}
}

func TestBcastDeliversPayload(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		for root := 0; root < n; root += 2 {
			e, w := testWorld(n, nil)
			got := make([]any, n)
			w.SpawnRanks(func(p *sim.Proc, r *Rank) {
				var val any
				if r.ID() == root {
					val = "payload"
				}
				got[r.ID()] = r.Bcast(p, root, 4096, val)
			})
			mustRun(t, e)
			for i, v := range got {
				if v != "payload" {
					t.Fatalf("n=%d root=%d rank %d got %v", n, root, i, v)
				}
			}
		}
	}
}

func TestReduceCombines(t *testing.T) {
	sum := func(a, b any) any { return a.(int) + b.(int) }
	for _, n := range []int{1, 2, 3, 6, 8} {
		root := n / 2
		e, w := testWorld(n, nil)
		var got any
		w.SpawnRanks(func(p *sim.Proc, r *Rank) {
			res := r.Reduce(p, root, 1024, r.ID()+1, sum)
			if r.ID() == root {
				got = res
			} else if res != nil {
				t.Errorf("non-root rank %d got %v", r.ID(), res)
			}
		})
		mustRun(t, e)
		want := n * (n + 1) / 2
		if got != want {
			t.Fatalf("n=%d: sum = %v want %d", n, got, want)
		}
	}
}

func TestAllreduce(t *testing.T) {
	sum := func(a, b any) any { return a.(int) + b.(int) }
	e, w := testWorld(5, nil)
	got := make([]any, 5)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		got[r.ID()] = r.Allreduce(p, 512, r.ID()+1, sum)
	})
	mustRun(t, e)
	for i, v := range got {
		if v != 15 {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestAlltoallCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		e, w := testWorld(n, nil)
		w.SpawnRanks(func(p *sim.Proc, r *Rank) {
			r.Alltoall(p, 128<<10)
		})
		mustRun(t, e)
		// Every rank sent (n-1) data messages of the given size.
		for i := 0; i < n; i++ {
			st := w.Rank(i).Stats()
			if st.BytesRecv < int64(n-1)*128<<10 {
				t.Fatalf("n=%d rank %d received %d bytes", n, i, st.BytesRecv)
			}
		}
	}
}

func TestAlltoallvSizes(t *testing.T) {
	n := 4
	e, w := testWorld(n, nil)
	// Rank i sends (j+1) KB to rank j.
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		sizes := make([]int64, n)
		for j := range sizes {
			sizes[j] = int64(j+1) << 10
		}
		r.Alltoallv(p, sizes)
	})
	mustRun(t, e)
	for j := 0; j < n; j++ {
		want := int64(n-1) * int64(j+1) << 10
		if got := w.Rank(j).Stats().BytesRecv; got != want {
			t.Fatalf("rank %d received %d want %d", j, got, want)
		}
	}
}

func TestGatherCollectsInRankOrder(t *testing.T) {
	n := 6
	root := 2
	e, w := testWorld(n, nil)
	var got []any
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		res := r.Gather(p, root, 32<<10, fmt.Sprintf("r%d", r.ID()))
		if r.ID() == root {
			got = res
		}
	})
	mustRun(t, e)
	if len(got) != n {
		t.Fatalf("gathered %d", len(got))
	}
	for i, v := range got {
		if v != fmt.Sprintf("r%d", i) {
			t.Fatalf("slot %d = %v", i, v)
		}
	}
}

func TestScatter(t *testing.T) {
	n := 4
	e, w := testWorld(n, nil)
	got := make([]any, n)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		var parts []any
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				parts = append(parts, i*10)
			}
		}
		got[r.ID()] = r.Scatter(p, 0, 2048, parts)
	})
	mustRun(t, e)
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestAllgatherCompletes(t *testing.T) {
	n := 5
	e, w := testWorld(n, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		r.Allgather(p, 16<<10)
	})
	mustRun(t, e)
	for i := 0; i < n; i++ {
		if got := w.Rank(i).Stats().MsgsRecv; got != int64(n-1) {
			t.Fatalf("rank %d received %d messages", i, got)
		}
	}
}

func TestSpinThenBlockStates(t *testing.T) {
	// A receiver waiting far longer than the spin threshold must book
	// spin time up to the threshold and blocked time beyond it.
	e, w := testWorld(2, func(c *Config) { c.SpinThreshold = 100 * sim.Millisecond })
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Node().IdleFor(p, 2*sim.Second) // make rank 1 wait
			r.Send(p, 1, 1, 64, nil)
		case 1:
			r.Recv(p, 0, 1)
		}
	})
	mustRun(t, e)
	n1 := w.Rank(1).Node()
	spin := n1.StateTime(machine.Spin)
	blocked := n1.StateTime(machine.Blocked)
	if spin < 90*sim.Millisecond || spin > 150*sim.Millisecond {
		t.Fatalf("spin time %v, want ~100ms", spin)
	}
	if blocked < 1700*sim.Millisecond {
		t.Fatalf("blocked time %v, want ~1.9s", blocked)
	}
}

func TestPureSpinWhenThresholdNegative(t *testing.T) {
	e, w := testWorld(2, func(c *Config) { c.SpinThreshold = -1 })
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Node().IdleFor(p, sim.Second)
			r.Send(p, 1, 1, 64, nil)
		case 1:
			r.Recv(p, 0, 1)
		}
	})
	mustRun(t, e)
	n1 := w.Rank(1).Node()
	if b := n1.StateTime(machine.Blocked); b != 0 {
		t.Fatalf("blocked time %v with spin-forever", b)
	}
	if s := n1.StateTime(machine.Spin); s < 900*sim.Millisecond {
		t.Fatalf("spin time %v", s)
	}
}

func TestUtilizationDuringSpinLooksBusy(t *testing.T) {
	// The cpuspeed-defeating property: a rank spinning in MPI wait
	// appears ~100% busy in /proc/stat terms.
	e, w := testWorld(2, func(c *Config) { c.SpinThreshold = -1 })
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Node().IdleFor(p, sim.Second)
			r.Send(p, 1, 1, 64, nil)
		case 1:
			r.Recv(p, 0, 1)
		}
	})
	mustRun(t, e)
	busy, idle := w.Rank(1).Node().Utilization()
	frac := float64(busy) / float64(busy+idle)
	if frac < 0.99 {
		t.Fatalf("busy fraction %.3f; spinning should look busy", frac)
	}
}

func TestCommunicationEnergyAccrues(t *testing.T) {
	e, w := testWorld(2, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		other := 1 - r.ID()
		for i := 0; i < 3; i++ {
			if r.ID() == 0 {
				r.Send(p, other, 1, 256<<10, nil)
				r.Recv(p, other, 2)
			} else {
				r.Recv(p, other, 1)
				r.Send(p, other, 2, 256<<10, nil)
			}
		}
	})
	end := mustRun(t, e)
	for i := 0; i < 2; i++ {
		if eJ := w.Rank(i).Node().EnergyAt(end); eJ <= 0 {
			t.Fatalf("rank %d energy %v", i, eJ)
		}
	}
	// NIC refcounts must be balanced at the end.
	for i, c := range w.nic {
		if c != 0 {
			t.Fatalf("node %d NIC refcount %d", i, c)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	e, w := testWorld(2, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 1, 1000, nil)
			r.Send(p, 1, 1, 2000, nil)
		case 1:
			r.Recv(p, 0, 1)
			r.Recv(p, 0, 1)
		}
	})
	mustRun(t, e)
	s0, s1 := w.Rank(0).Stats(), w.Rank(1).Stats()
	if s0.MsgsSent != 2 || s0.BytesSent != 3000 {
		t.Fatalf("sender stats %+v", s0)
	}
	if s1.MsgsRecv != 2 || s1.BytesRecv != 3000 {
		t.Fatalf("receiver stats %+v", s1)
	}
}

func TestUserTagValidation(t *testing.T) {
	e, w := testWorld(2, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		if r.ID() != 0 {
			return
		}
		for _, tag := range []int{-1, collectiveTagBase} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("tag %d: expected panic", tag)
					}
				}()
				r.Send(p, 1, tag, 8, nil)
			}()
		}
	})
	mustRun(t, e)
}

func TestDeterministicSchedule(t *testing.T) {
	runOnce := func() sim.Time {
		e, w := testWorld(4, nil)
		w.SpawnRanks(func(p *sim.Proc, r *Rank) {
			r.Alltoall(p, 300<<10)
			r.Barrier(p)
			r.Alltoall(p, 300<<10)
		})
		end, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestCollectivesDoNotLeakWaiters(t *testing.T) {
	e, w := testWorld(4, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		r.Barrier(p)
		r.Bcast(p, 0, 1<<20, nil)
		r.Alltoall(p, 1<<20)
		r.Barrier(p)
	})
	mustRun(t, e)
	if e.Live() != 0 {
		t.Fatalf("%d processes still live", e.Live())
	}
	for i := 0; i < 4; i++ {
		r := w.Rank(i)
		if len(r.posted) != 0 || len(r.unexpected) != 0 || len(r.rendezvous) != 0 || len(r.dataWait) != 0 {
			t.Fatalf("rank %d leaked matching state: posted=%d unexpected=%d rv=%d dw=%d",
				i, len(r.posted), len(r.unexpected), len(r.rendezvous), len(r.dataWait))
		}
	}
}

func TestProbeAndIprobe(t *testing.T) {
	e, w := testWorld(2, nil)
	var probed, received *Message
	var early bool
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Node().IdleFor(p, 100*sim.Millisecond)
			r.Send(p, 1, 9, 4096, "probed")
		case 1:
			_, early = r.Iprobe(p, 0, 9) // nothing there yet
			probed = r.Probe(p, 0, 9)    // blocks until the envelope lands
			if m, ok := r.Iprobe(p, 0, 9); !ok || m != probed {
				t.Error("Iprobe after Probe should see the same envelope")
			}
			received = r.Recv(p, 0, 9)
		}
	})
	mustRun(t, e)
	if early {
		t.Fatal("Iprobe saw a message before it was sent")
	}
	if probed == nil || probed.Size != 4096 || probed.Src != 0 {
		t.Fatalf("probe envelope %+v", probed)
	}
	if received == nil || received.Payload != "probed" {
		t.Fatalf("recv after probe %+v", received)
	}
}

func TestProbeRendezvousEnvelope(t *testing.T) {
	// Probe must see the RTS envelope of a large message (with its
	// true size) before any payload moves.
	e, w := testWorld(2, nil)
	var sizeSeen int64
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(p, 1, 3, 8<<20, nil)
		case 1:
			m := r.Probe(p, 0, 3)
			sizeSeen = m.Size
			r.Recv(p, 0, 3)
		}
	})
	mustRun(t, e)
	if sizeSeen != 8<<20 {
		t.Fatalf("probed size %d", sizeSeen)
	}
}
