package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Send transmits size bytes to rank dst with the given tag, blocking
// with MPI_Send semantics: eager messages return once handed to the
// transport; rendezvous messages return when the payload has drained to
// the receiver. payload travels with the message for tests and
// workloads that care about content.
func (r *Rank) Send(p *sim.Proc, dst, tag int, size int64, payload any) {
	r.checkRank(dst)
	checkUserTag(tag)
	r.send(p, dst, tag, size, payload)
}

// checkUserTag rejects tags outside the application range: negative
// values are wildcards and tags at or above the collective base are
// reserved for the collective algorithms.
func checkUserTag(tag int) {
	if tag < 0 || tag >= collectiveTagBase {
		panic(fmt.Sprintf("mpi: tag %d outside application range [0,%d)", tag, collectiveTagBase)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
}

// send is Send without the tag guard, shared with the collectives
// (which use the reserved tag space). The envelope sequence number is
// claimed on entry so posting order defines matching order.
func (r *Rank) send(p *sim.Proc, dst, tag int, size int64, payload any) {
	r.sendSeqed(p, r.claimSeq(dst), dst, tag, size, payload)
}

// claimSeq reserves the next envelope sequence number toward dst.
func (r *Rank) claimSeq(dst int) int64 {
	seq := r.sendSeq[dst]
	r.sendSeq[dst] = seq + 1
	return seq
}

// sendSeqed is the send body with a pre-claimed sequence number
// (Isend claims at call time, before its helper process runs).
func (r *Rank) sendSeqed(p *sim.Proc, seq int64, dst, tag int, size int64, payload any) {
	r.overhead(p, r.w.cfg.SendOverheadCycles)
	r.byteWork(p, size)
	r.stats.MsgsSent++
	r.stats.BytesSent += size

	if dst == r.id {
		// Self-send: local copy only, delivered immediately.
		r.deliverLocal(&Message{Src: r.id, Dst: dst, Tag: tag, Size: size, Payload: payload, kind: kindEager, seq: seq})
		return
	}

	if size <= r.w.cfg.EagerThreshold {
		m := &Message{Src: r.id, Dst: dst, Tag: tag, Size: size, Payload: payload, kind: kindEager, seq: seq}
		r.transmit(m, size, size >= 1024)
		return
	}

	// Rendezvous: RTS → wait for CTS → stream payload → wait for drain.
	r.nextHandle++
	h := r.nextHandle
	cts := sim.NewCond(r.eng())
	r.rendezvous[h] = cts
	rts := &Message{Src: r.id, Dst: dst, Tag: tag, Size: size, kind: kindRTS, handle: h, seq: seq}
	r.transmitControl(rts)
	r.waitOn(p, cts)

	data := &Message{Src: r.id, Dst: dst, Tag: tag, Size: size, Payload: payload, kind: kindRData, handle: h}
	txDone := r.transmit(data, size, true)
	// The sender's progress engine actively pushes the payload through
	// the socket until the last byte leaves its transmit link; it polls
	// (and eventually blocks) exactly like a receive-side wait. The
	// drain time is sender-local, so it needs no cross-shard state.
	r.spinUntil(p, txDone)
}

// spinUntil holds the node in the spin-then-block wait pattern until
// absolute time t.
func (r *Rank) spinUntil(p *sim.Proc, t sim.Time) {
	now := p.Now()
	if t <= now {
		return
	}
	n := r.node
	remaining := t.Sub(now)
	thr := r.w.cfg.SpinThreshold
	if thr < 0 || remaining <= thr {
		n.SetState(machine.Spin)
		token := n.StateToken()
		p.Sleep(remaining)
		n.RestoreState(token, machine.Idle)
		return
	}
	n.SetState(machine.Spin)
	tokenSpin := n.StateToken()
	p.Sleep(thr)
	n.RestoreState(tokenSpin, machine.Blocked)
	tokenBlocked := n.StateToken()
	p.Sleep(remaining - thr)
	n.RestoreState(tokenBlocked, machine.Idle)
}

// deliverLocal routes a self-send through matching at the current time.
func (r *Rank) deliverLocal(m *Message) {
	r.deliver(m)
}

// Recv blocks until a message matching (src, tag) arrives and returns
// it. src may be AnySource and tag may be AnyTag.
func (r *Rank) Recv(p *sim.Proc, src, tag int) *Message {
	if src != AnySource {
		r.checkRank(src)
	}
	r.overhead(p, r.w.cfg.RecvOverheadCycles)

	m := r.matchOrWait(p, src, tag)
	return r.completeRecv(p, m)
}

// matchOrWait finds a matching envelope in the unexpected queue or
// parks until one is delivered.
//
//lint:allow profgate (posting a receive allocates its queue entry and cond by design — bounded per-message protocol state, not an event-core loop)
func (r *Rank) matchOrWait(p *sim.Proc, src, tag int) *Message {
	for i, m := range r.unexpected {
		if matches(src, tag, m) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			return m
		}
	}
	pr := &postedRecv{src: src, tag: tag, cond: sim.NewCond(r.eng())}
	r.posted = append(r.posted, pr)
	return r.waitOn(p, pr.cond).(*Message)
}

// completeRecv finishes the protocol for a matched envelope: copy-out
// for eager data, or the CTS/data exchange for a rendezvous RTS.
//
//lint:allow profgate (the rendezvous reply path allocates its CTS message and data cond by design — bounded per-message protocol state, not an event-core loop)
func (r *Rank) completeRecv(p *sim.Proc, m *Message) *Message {
	switch m.kind {
	case kindEager:
		r.byteWork(p, m.Size)
		r.stats.MsgsRecv++
		r.stats.BytesRecv += m.Size
		return m
	case kindRTS:
		h := m.handle
		dw := sim.NewCond(r.eng())
		r.dataWait[rdKey{src: m.Src, handle: h}] = dw
		cts := &Message{Src: r.id, Dst: m.Src, Tag: m.Tag, Size: r.w.cfg.ControlBytes, kind: kindCTS, handle: h}
		r.transmitControl(cts)
		data := r.waitOn(p, dw).(*Message)
		r.byteWork(p, data.Size)
		r.stats.MsgsRecv++
		r.stats.BytesRecv += data.Size
		return data
	default:
		panic("mpi: matched a non-envelope message") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
}

// Request tracks an outstanding Isend or Irecv.
type Request struct {
	done bool
	cond *sim.Cond
	msg  *Message
}

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.done }

// Isend starts a send in the background (a helper process on the same
// node, so its CPU costs still hit this node) and returns a Request for
// Wait.
func (r *Rank) Isend(p *sim.Proc, dst, tag int, size int64, payload any) *Request {
	r.checkRank(dst)
	checkUserTag(tag)
	return r.isend(p, dst, tag, size, payload)
}

func (r *Rank) isend(_ *sim.Proc, dst, tag int, size int64, payload any) *Request {
	q := &Request{cond: sim.NewCond(r.eng())}
	seq := r.claimSeq(dst) // posting order, not helper execution order
	r.eng().Spawn(fmt.Sprintf("rank%d.isend", r.id), func(hp *sim.Proc) {
		r.sendSeqed(hp, seq, dst, tag, size, payload)
		q.done = true
		q.cond.Broadcast()
	})
	return q
}

// Irecv posts a receive immediately (so envelope matching sees it) and
// completes it in the background; the matched message is available from
// Wait.
func (r *Rank) Irecv(p *sim.Proc, src, tag int) *Request {
	if src != AnySource {
		r.checkRank(src)
	}
	return r.irecv(p, src, tag)
}

func (r *Rank) irecv(_ *sim.Proc, src, tag int) *Request {
	q := &Request{cond: sim.NewCond(r.eng())}
	r.eng().Spawn(fmt.Sprintf("rank%d.irecv", r.id), func(hp *sim.Proc) {
		q.msg = r.Recv(hp, src, tag)
		q.done = true
		q.cond.Broadcast()
	})
	return q
}

// Wait blocks until the request completes and returns its message
// (nil for sends).
func (r *Rank) Wait(p *sim.Proc, q *Request) *Message {
	if !q.done {
		r.waitOn(p, q.cond)
	}
	return q.msg
}

// Waitall waits for every request in order.
func (r *Rank) Waitall(p *sim.Proc, qs ...*Request) {
	for _, q := range qs {
		r.Wait(p, q)
	}
}

// Sendrecv runs a simultaneous send and receive — the pattern used by
// exchange steps — and returns the received message.
func (r *Rank) Sendrecv(p *sim.Proc, dst, sendTag int, size int64, payload any, src, recvTag int) *Message {
	sq := r.Isend(p, dst, sendTag, size, payload)
	m := r.Recv(p, src, recvTag)
	r.Wait(p, sq)
	return m
}

func (r *Rank) checkRank(id int) {
	if id < 0 || id >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", id, len(r.w.ranks))) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
}

// Iprobe reports whether a message matching (src, tag) is available
// without receiving it, and if so returns its envelope (source and
// size). It charges a small progress-poll cost.
func (r *Rank) Iprobe(p *sim.Proc, src, tag int) (m *Message, ok bool) {
	r.overhead(p, r.w.cfg.RecvOverheadCycles/8)
	for _, u := range r.unexpected {
		if matches(src, tag, u) {
			return u, true
		}
	}
	return nil, false
}

// Probe blocks until a message matching (src, tag) is available and
// returns its envelope without consuming it; a subsequent Recv with the
// same pattern returns the message itself.
func (r *Rank) Probe(p *sim.Proc, src, tag int) *Message {
	if m, ok := r.Iprobe(p, src, tag); ok {
		return m
	}
	// Park on a posted recv, then put the envelope back at the front
	// of the unexpected queue so Recv can claim it.
	pr := &postedRecv{src: src, tag: tag, cond: sim.NewCond(r.eng())}
	r.posted = append(r.posted, pr)
	m := r.waitOn(p, pr.cond).(*Message)
	r.unexpected = append([]*Message{m}, r.unexpected...)
	return m
}
