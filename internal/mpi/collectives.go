package mpi

// Collective operations, implemented over the point-to-point layer with
// the classic MPICH algorithms: dissemination barrier, binomial
// broadcast and reduction, pairwise-exchange all-to-all, and linear
// gather/scatter rooted at a single process.
//
// Each algorithm is written once against a group view — a rank's
// position within an ordered set of world ranks plus a private tag
// space — so the world communicator and sub-communicators (Comm) share
// the same implementations. Collective traffic uses a reserved tag
// space derived from a per-group call sequence number; SPMD programs
// call collectives in the same order on every member, so the sequence
// numbers agree.

import (
	"fmt"

	"repro/internal/sim"
)

// Reserved tag-space layout (all at or above collectiveTagBase, which
// user tags must stay below):
//
//	collectiveTagBase + slot*commTagStride + seq*64 + phase
//
// slot 0 is the world communicator; sub-communicators get slots 1+.
const (
	collectiveTagBase = 1 << 30
	commTagStride     = 1 << 24
	maxCommSlots      = 63 // (2^30 of headroom) / stride, minus the world
)

// view adapts the collective algorithms to a rank group: the world
// (identity mapping, slot 0) or a sub-communicator.
type view struct {
	r     *Rank
	size  int
	me    int       // position within the group
	ranks []int     // group position → world rank (nil = identity)
	slot  int       // tag-space slot
	seq   *int      // per-group collective sequence
	p     *sim.Proc // the calling process
}

func (v view) world(pos int) int {
	if v.ranks == nil {
		return pos
	}
	return v.ranks[pos]
}

func (v view) begin() { *v.seq++ }

func (v view) tag(phase int) int {
	return collectiveTagBase + v.slot*commTagStride + *v.seq*64 + phase
}

func (v view) send(pos, tag int, size int64, payload any) {
	v.r.send(v.p, v.world(pos), tag, size, payload)
}

func (v view) isend(pos, tag int, size int64, payload any) *Request {
	return v.r.isend(v.p, v.world(pos), tag, size, payload)
}

func (v view) recv(pos, tag int) *Message {
	return v.r.recvColl(v.p, v.world(pos), tag)
}

func (v view) wait(q *Request) { v.r.Wait(v.p, q) }

// worldView is the whole-world group for this rank.
func (r *Rank) worldView(p *sim.Proc) view {
	return view{r: r, size: len(r.w.ranks), me: r.id, slot: 0, seq: &r.collSeq, p: p}
}

// recvColl is Recv for the reserved tag space.
func (r *Rank) recvColl(p *sim.Proc, src, tag int) *Message {
	r.overhead(p, r.w.cfg.RecvOverheadCycles)
	m := r.matchOrWait(p, src, tag)
	return r.completeRecv(p, m)
}

// checkPos validates a group position.
func (v view) checkPos(pos int) {
	if pos < 0 || pos >= v.size {
		panic(fmt.Sprintf("mpi: group position %d out of range [0,%d)", pos, v.size)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
}

// --- Algorithm bodies (shared by world and sub-communicators) --------

// barrierV: dissemination barrier, ceil(log2 P) rounds.
func barrierV(v view) {
	v.begin()
	if v.size == 1 {
		return
	}
	phase := 0
	for dist := 1; dist < v.size; dist <<= 1 {
		to := (v.me + dist) % v.size
		from := (v.me - dist + v.size) % v.size
		tag := v.tag(phase)
		sq := v.isend(to, tag, 8, nil)
		v.recv(from, tag)
		v.wait(sq)
		phase++
	}
}

// bcastV: binomial tree from root.
func bcastV(v view, root int, size int64, payload any) any {
	v.begin()
	v.checkPos(root)
	n := v.size
	if n == 1 {
		return payload
	}
	tag := v.tag(0)
	rel := (v.me - root + n) % n

	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := v.me - mask
			if src < 0 {
				src += n
			}
			m := v.recv(src, tag)
			payload = m.Payload
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := v.me + mask
			if dst >= n {
				dst -= n
			}
			v.send(dst, tag, size, payload)
		}
		mask >>= 1
	}
	return payload
}

// reduceV: binomial reduction to root.
func reduceV(v view, root int, size int64, payload any, combine func(a, b any) any) any {
	v.begin()
	v.checkPos(root)
	n := v.size
	if n == 1 {
		return payload
	}
	tag := v.tag(0)
	rel := (v.me - root + n) % n
	acc := payload

	mask := 1
	for mask < n {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < n {
				src := (srcRel + root) % n
				m := v.recv(src, tag)
				v.r.node.ComputeFlops(v.p, float64(size)*v.r.w.cfg.ReduceFlopsPerByte)
				if combine != nil {
					acc = combine(acc, m.Payload)
				}
			}
		} else {
			dst := (rel&^mask + root) % n
			v.send(dst, tag, size, acc)
			break
		}
		mask <<= 1
	}
	if v.me == root {
		return acc
	}
	return nil
}

// alltoallV: pairwise exchange, P-1 rounds; sizes[pos] to each peer.
func alltoallV(v view, sizes func(pos int) int64) {
	v.begin()
	n := v.size
	for i := 1; i < n; i++ {
		dst := (v.me + i) % n
		src := (v.me - i + n) % n
		tag := v.tag(i)
		sq := v.isend(dst, tag, sizes(dst), nil)
		v.recv(src, tag)
		v.wait(sq)
	}
}

// gatherV: linear gather to root, group-position order.
func gatherV(v view, root int, sizes func(pos int) int64, payload any) []any {
	v.begin()
	v.checkPos(root)
	n := v.size
	tag := v.tag(0)
	if v.me != root {
		v.send(root, tag, sizes(v.me), payload)
		return nil
	}
	out := make([]any, n)
	out[v.me] = payload
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		m := v.recv(i, tag)
		out[i] = m.Payload
	}
	return out
}

// scatterV: linear scatter from root.
func scatterV(v view, root int, sizes func(pos int) int64, payloads []any) any {
	v.begin()
	v.checkPos(root)
	n := v.size
	tag := v.tag(0)
	if v.me == root {
		if payloads != nil && len(payloads) != n {
			panic("mpi: scatter payloads length mismatch") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			var pl any
			if payloads != nil {
				pl = payloads[i]
			}
			v.send(i, tag, sizes(i), pl)
		}
		if payloads != nil {
			return payloads[root]
		}
		return nil
	}
	m := v.recv(root, tag)
	return m.Payload
}

// allgatherV: ring, P-1 steps.
func allgatherV(v view, size int64) {
	v.begin()
	n := v.size
	next := (v.me + 1) % n
	prev := (v.me - 1 + n) % n
	for step := 0; step < n-1; step++ {
		tag := v.tag(step)
		sq := v.isend(next, tag, size, nil)
		v.recv(prev, tag)
		v.wait(sq)
	}
}

// --- World-communicator methods ---------------------------------------

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier(p *sim.Proc) { barrierV(r.worldView(p)) }

// Bcast distributes size bytes from root to every rank (binomial tree).
// It returns the payload as seen at this rank.
func (r *Rank) Bcast(p *sim.Proc, root int, size int64, payload any) any {
	return bcastV(r.worldView(p), root, size, payload)
}

// Reduce combines size bytes from every rank at root (binomial tree).
// combine, if non-nil, folds payloads pairwise; the CPU cost of each
// combine step is charged from the configured flops-per-byte rate.
func (r *Rank) Reduce(p *sim.Proc, root int, size int64, payload any, combine func(a, b any) any) any {
	return reduceV(r.worldView(p), root, size, payload, combine)
}

// Allreduce is Reduce to rank 0 followed by Bcast, MPICH-1 style.
func (r *Rank) Allreduce(p *sim.Proc, size int64, payload any, combine func(a, b any) any) any {
	acc := r.Reduce(p, 0, size, payload, combine)
	return r.Bcast(p, 0, size, acc)
}

// Alltoall exchanges bytesPerPeer with every other rank (pairwise
// exchange: P-1 rounds of simultaneous send/receive). This is the
// communication pattern of the NAS FT transpose.
func (r *Rank) Alltoall(p *sim.Proc, bytesPerPeer int64) {
	alltoallV(r.worldView(p), func(int) int64 { return bytesPerPeer })
}

// Alltoallv is Alltoall with per-destination sizes; sizes[i] is sent to
// rank i (sizes[r.id] is ignored). Every rank must pass a consistent
// matrix, i.e. what i sends to j is what j expects from i.
func (r *Rank) Alltoallv(p *sim.Proc, sizes []int64) {
	if len(sizes) != r.Size() {
		panic("mpi: Alltoallv sizes length mismatch") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	alltoallV(r.worldView(p), func(pos int) int64 { return sizes[pos] })
}

// Gather collects size bytes from every rank at root (linear: each
// leaf sends directly; arrivals serialize on root's receive link —
// the bottleneck the parallel transpose exhibits in step 3). It
// returns, at root, the payloads indexed by rank.
func (r *Rank) Gather(p *sim.Proc, root int, size int64, payload any) []any {
	return gatherV(r.worldView(p), root, func(int) int64 { return size }, payload)
}

// Scatter distributes size bytes from root to each rank (linear) and
// returns the payload for this rank. payloads is only read at root and
// must have one entry per rank.
func (r *Rank) Scatter(p *sim.Proc, root int, size int64, payloads []any) any {
	if r.id == root && payloads == nil {
		panic("mpi: Scatter needs payloads at root") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	return scatterV(r.worldView(p), root, func(int) int64 { return size }, payloads)
}

// Allgather shares size bytes from every rank with every rank (ring:
// P-1 steps, each forwarding the block received in the previous step).
func (r *Rank) Allgather(p *sim.Proc, size int64) {
	allgatherV(r.worldView(p), size)
}
