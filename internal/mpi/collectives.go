package mpi

// Collective operations, implemented over the point-to-point layer with
// the classic MPICH algorithms: dissemination barrier, binomial
// broadcast, reduction, gather and scatter, pairwise-exchange
// all-to-all, and a recursive-doubling Allreduce selected above a size
// threshold (below it, reduce+bcast matches MPICH-1's default).
//
// Each algorithm is written once against a group view — a rank's
// position within an ordered set of world ranks plus a private tag
// space — so the world communicator and sub-communicators (Comm) share
// the same implementations. Collective traffic uses a reserved tag
// space derived from a per-group call sequence number; SPMD programs
// call collectives in the same order on every member, so the sequence
// numbers agree.

import (
	"fmt"

	"repro/internal/sim"
)

// Reserved tag-space layout (all at or above collectiveTagBase, which
// user tags must stay below):
//
//	collectiveTagBase + slot*commTagStride + seq*64 + phase
//
// slot 0 is the world communicator; sub-communicators get slots 1+.
const (
	collectiveTagBase = 1 << 30
	commTagStride     = 1 << 24
	maxCommSlots      = 63 // (2^30 of headroom) / stride, minus the world
)

// view adapts the collective algorithms to a rank group: the world
// (identity mapping, slot 0) or a sub-communicator.
type view struct {
	r     *Rank
	size  int
	me    int       // position within the group
	ranks []int     // group position → world rank (nil = identity)
	slot  int       // tag-space slot
	seq   *int      // per-group collective sequence
	p     *sim.Proc // the calling process
}

func (v view) world(pos int) int {
	if v.ranks == nil {
		return pos
	}
	return v.ranks[pos]
}

func (v view) begin() { *v.seq++ }

func (v view) tag(phase int) int {
	return collectiveTagBase + v.slot*commTagStride + *v.seq*64 + phase
}

func (v view) send(pos, tag int, size int64, payload any) {
	v.r.send(v.p, v.world(pos), tag, size, payload)
}

func (v view) isend(pos, tag int, size int64, payload any) *Request {
	return v.r.isend(v.p, v.world(pos), tag, size, payload)
}

func (v view) recv(pos, tag int) *Message {
	return v.r.recvColl(v.p, v.world(pos), tag)
}

func (v view) wait(q *Request) { v.r.Wait(v.p, q) }

// worldView is the whole-world group for this rank.
func (r *Rank) worldView(p *sim.Proc) view {
	return view{r: r, size: len(r.w.ranks), me: r.id, slot: 0, seq: &r.collSeq, p: p}
}

// recvColl is Recv for the reserved tag space.
func (r *Rank) recvColl(p *sim.Proc, src, tag int) *Message {
	r.overhead(p, r.w.cfg.RecvOverheadCycles)
	m := r.matchOrWait(p, src, tag)
	return r.completeRecv(p, m)
}

// checkPos validates a group position.
func (v view) checkPos(pos int) {
	if pos < 0 || pos >= v.size {
		panic(fmt.Sprintf("mpi: group position %d out of range [0,%d)", pos, v.size)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
}

// --- Algorithm bodies (shared by world and sub-communicators) --------

// barrierV: dissemination barrier, ceil(log2 P) rounds.
func barrierV(v view) {
	v.begin()
	if v.size == 1 {
		return
	}
	phase := 0
	for dist := 1; dist < v.size; dist <<= 1 {
		to := (v.me + dist) % v.size
		from := (v.me - dist + v.size) % v.size
		tag := v.tag(phase)
		sq := v.isend(to, tag, 8, nil)
		v.recv(from, tag)
		v.wait(sq)
		phase++
	}
}

// bcastV: binomial tree from root.
func bcastV(v view, root int, size int64, payload any) any {
	v.begin()
	v.checkPos(root)
	n := v.size
	if n == 1 {
		return payload
	}
	tag := v.tag(0)
	rel := (v.me - root + n) % n

	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := v.me - mask
			if src < 0 {
				src += n
			}
			m := v.recv(src, tag)
			payload = m.Payload
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := v.me + mask
			if dst >= n {
				dst -= n
			}
			v.send(dst, tag, size, payload)
		}
		mask >>= 1
	}
	return payload
}

// reduceV: binomial reduction to root.
func reduceV(v view, root int, size int64, payload any, combine func(a, b any) any) any {
	v.begin()
	v.checkPos(root)
	n := v.size
	if n == 1 {
		return payload
	}
	tag := v.tag(0)
	rel := (v.me - root + n) % n
	acc := payload

	mask := 1
	for mask < n {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < n {
				src := (srcRel + root) % n
				m := v.recv(src, tag)
				v.r.node.ComputeFlops(v.p, float64(size)*v.r.w.cfg.ReduceFlopsPerByte)
				if combine != nil {
					acc = combine(acc, m.Payload)
				}
			}
		} else {
			dst := (rel&^mask + root) % n
			v.send(dst, tag, size, acc)
			break
		}
		mask <<= 1
	}
	if v.me == root {
		return acc
	}
	return nil
}

// alltoallV: pairwise exchange, P-1 rounds; sizes[pos] to each peer.
func alltoallV(v view, sizes func(pos int) int64) {
	v.begin()
	n := v.size
	for i := 1; i < n; i++ {
		dst := (v.me + i) % n
		src := (v.me - i + n) % n
		tag := v.tag(i)
		sq := v.isend(dst, tag, sizes(dst), nil)
		v.recv(src, tag)
		v.wait(sq)
	}
}

// gatherV: binomial-tree gather to root. Each subtree leader bundles
// its subtree's payloads and forwards them upward in one message, so
// the root completes ceil(log2 P) receives instead of P-1 — at 4096
// ranks the per-message matching and overhead no longer serialize at
// one process. Relative to root, rank rel's subtree spans positions
// [rel, rel+lowbit(rel)), and children report in ascending span order,
// so bundles concatenate contiguously.
func gatherV(v view, root int, sizes func(pos int) int64, payload any) []any {
	v.begin()
	v.checkPos(root)
	n := v.size
	tag := v.tag(0)
	rel := (v.me - root + n) % n

	bundle := []any{payload} // bundle[i] is position (rel+i+root)%n's payload
	bytes := sizes(v.me)
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			// Subtree complete: hand the bundle to the parent.
			parent := (rel&^mask + root) % n
			v.send(parent, tag, bytes, bundle)
			return nil
		}
		childRel := rel | mask
		if childRel >= n {
			continue
		}
		m := v.recv((childRel+root)%n, tag)
		bundle = append(bundle, m.Payload.([]any)...)
		bytes += m.Size
	}
	// Only the root (rel 0) clears every mask.
	out := make([]any, n)
	for i, pl := range bundle {
		out[(root+i)%n] = pl
	}
	return out
}

// scatterV: binomial-tree scatter from root — gatherV's mirror. Each
// parent forwards a child's whole subtree bundle in one message,
// largest subtree first, so the root completes ceil(log2 P) sends
// instead of P-1.
func scatterV(v view, root int, sizes func(pos int) int64, payloads []any) any {
	v.begin()
	v.checkPos(root)
	n := v.size
	tag := v.tag(0)
	rel := (v.me - root + n) % n

	var bundle []any // this rank's subtree payloads; bundle[0] is its own
	span := 0        // subtree width in positions (power of two, may overhang n)
	if v.me == root {
		if payloads != nil && len(payloads) != n {
			panic("mpi: scatter payloads length mismatch") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
		for span = 1; span < n; span <<= 1 {
		}
		bundle = make([]any, n)
		for i := range bundle {
			if payloads != nil {
				bundle[i] = payloads[(root+i)%n]
			}
		}
	} else {
		for span = 1; rel&span == 0; span <<= 1 {
		}
		parent := (rel&^span + root) % n
		m := v.recv(parent, tag)
		bundle = m.Payload.([]any)
	}
	for mask := span >> 1; mask >= 1; mask >>= 1 {
		childRel := rel + mask
		if childRel >= n {
			continue
		}
		hi := childRel + mask
		if hi > n {
			hi = n
		}
		var bytes int64
		for q := childRel; q < hi; q++ {
			bytes += sizes((q + root) % n)
		}
		v.send((childRel+root)%n, tag, bytes, bundle[mask:hi-rel])
	}
	return bundle[0]
}

// allreduceRD: recursive-doubling allreduce — the large-message path.
// Non-power-of-two counts fold the first 2*rem ranks into rem pairs,
// run log2(pof2) simultaneous-exchange rounds over the survivors, and
// unfold at the end. Every pairwise combine brackets the lower group
// position as the left operand, so all ranks apply the identical
// association and finish with byte-identical values even for
// non-commutative (e.g. floating-point) combine functions.
func allreduceRD(v view, size int64, payload any, combine func(a, b any) any) any {
	v.begin()
	n := v.size
	if n == 1 {
		return payload
	}
	acc := payload
	merge := func(peer int, other any) {
		v.r.node.ComputeFlops(v.p, float64(size)*v.r.w.cfg.ReduceFlopsPerByte)
		if combine == nil {
			return
		}
		if peer < v.me {
			acc = combine(other, acc)
		} else {
			acc = combine(acc, other)
		}
	}
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2

	// Fold phase: evens below 2*rem hand their contribution to the odd
	// neighbour and sit out the doubling.
	newpos := -1
	switch {
	case v.me < 2*rem && v.me%2 == 0:
		v.send(v.me+1, v.tag(0), size, acc)
	case v.me < 2*rem:
		m := v.recv(v.me-1, v.tag(0))
		merge(v.me-1, m.Payload)
		newpos = v.me / 2
	default:
		newpos = v.me - rem
	}

	if newpos >= 0 {
		phase := 1
		for mask := 1; mask < pof2; mask <<= 1 {
			peerNew := newpos ^ mask
			peer := peerNew + rem
			if peerNew < rem {
				peer = peerNew*2 + 1
			}
			tag := v.tag(phase)
			sq := v.isend(peer, tag, size, acc)
			m := v.recv(peer, tag)
			v.wait(sq)
			merge(peer, m.Payload)
			phase++
		}
	}

	// Unfold phase: the odds hand the full result back to their evens.
	// Phase 62 keeps the tag clear of the doubling rounds at any scale.
	if v.me < 2*rem {
		if v.me%2 == 0 {
			m := v.recv(v.me+1, v.tag(62))
			acc = m.Payload
		} else {
			v.send(v.me-1, v.tag(62), size, acc)
		}
	}
	return acc
}

// allgatherV: ring, P-1 steps.
func allgatherV(v view, size int64) {
	v.begin()
	n := v.size
	next := (v.me + 1) % n
	prev := (v.me - 1 + n) % n
	for step := 0; step < n-1; step++ {
		tag := v.tag(step)
		sq := v.isend(next, tag, size, nil)
		v.recv(prev, tag)
		v.wait(sq)
	}
}

// --- World-communicator methods ---------------------------------------

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier(p *sim.Proc) { barrierV(r.worldView(p)) }

// Bcast distributes size bytes from root to every rank (binomial tree).
// It returns the payload as seen at this rank.
//
//lint:range size [0,inf]
func (r *Rank) Bcast(p *sim.Proc, root int, size int64, payload any) any {
	return bcastV(r.worldView(p), root, size, payload)
}

// Reduce combines size bytes from every rank at root (binomial tree).
// combine, if non-nil, folds payloads pairwise; the CPU cost of each
// combine step is charged from the configured flops-per-byte rate.
//
//lint:range size [0,inf]
func (r *Rank) Reduce(p *sim.Proc, root int, size int64, payload any, combine func(a, b any) any) any {
	return reduceV(r.worldView(p), root, size, payload, combine)
}

// Allreduce combines size bytes across all ranks and leaves the result
// everywhere. Below the configured large-message threshold it is
// Reduce to rank 0 followed by Bcast, MPICH-1 style; at or above it,
// recursive doubling spreads the bandwidth over every link instead of
// concentrating it at rank 0.
//
//lint:range size [0,inf]
func (r *Rank) Allreduce(p *sim.Proc, size int64, payload any, combine func(a, b any) any) any {
	if thr := r.w.cfg.AllreduceLargeThreshold; thr > 0 && size >= thr {
		return allreduceRD(r.worldView(p), size, payload, combine)
	}
	acc := r.Reduce(p, 0, size, payload, combine)
	return r.Bcast(p, 0, size, acc)
}

// Alltoall exchanges bytesPerPeer with every other rank (pairwise
// exchange: P-1 rounds of simultaneous send/receive). This is the
// communication pattern of the NAS FT transpose.
//
//lint:range bytesPerPeer [0,inf]
func (r *Rank) Alltoall(p *sim.Proc, bytesPerPeer int64) {
	alltoallV(r.worldView(p), func(int) int64 { return bytesPerPeer })
}

// Alltoallv is Alltoall with per-destination sizes; sizes[i] is sent to
// rank i (sizes[r.id] is ignored). Every rank must pass a consistent
// matrix, i.e. what i sends to j is what j expects from i.
func (r *Rank) Alltoallv(p *sim.Proc, sizes []int64) {
	if len(sizes) != r.Size() {
		panic("mpi: Alltoallv sizes length mismatch") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	alltoallV(r.worldView(p), func(pos int) int64 { return sizes[pos] })
}

// Gather collects size bytes from every rank at root (linear: each
// leaf sends directly; arrivals serialize on root's receive link —
// the bottleneck the parallel transpose exhibits in step 3). It
// returns, at root, the payloads indexed by rank.
//
//lint:range size [0,inf]
func (r *Rank) Gather(p *sim.Proc, root int, size int64, payload any) []any {
	return gatherV(r.worldView(p), root, func(int) int64 { return size }, payload)
}

// Scatter distributes size bytes from root to each rank (linear) and
// returns the payload for this rank. payloads is only read at root and
// must have one entry per rank.
//
//lint:range size [0,inf]
func (r *Rank) Scatter(p *sim.Proc, root int, size int64, payloads []any) any {
	if r.id == root && payloads == nil {
		panic("mpi: Scatter needs payloads at root") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	return scatterV(r.worldView(p), root, func(int) int64 { return size }, payloads)
}

// Allgather shares size bytes from every rank with every rank (ring:
// P-1 steps, each forwarding the block received in the previous step).
func (r *Rank) Allgather(p *sim.Proc, size int64) {
	allgatherV(r.worldView(p), size)
}
