package mpi_test

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// A four-rank allreduce over the simulated cluster: ranks contribute
// their id+1 and every rank receives the sum.
func Example() {
	eng := sim.NewEngine()
	nodes := make([]*machine.Node, 4)
	for i := range nodes {
		nodes[i] = machine.NewNode(eng, i, machine.DefaultParams())
	}
	sw := netsim.New(eng, 4, netsim.Default100Mb())
	world := mpi.NewWorld(eng, nodes, sw, mpi.DefaultConfig())

	sum := func(a, b any) any { return a.(int) + b.(int) }
	results := make([]any, 4)
	world.SpawnRanks(func(p *sim.Proc, r *mpi.Rank) {
		results[r.ID()] = r.Allreduce(p, 8, r.ID()+1, sum)
	})
	if _, err := eng.Run(0); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(results)
	// Output:
	// [10 10 10 10]
}
