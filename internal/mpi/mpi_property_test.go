package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Property: a random traffic matrix is delivered exactly once per
// message, with per-(src,dst,tag) FIFO ordering, regardless of message
// sizes straddling the eager/rendezvous boundary.
func TestRandomTrafficDeliveredExactlyOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		e, w := testWorld(n, nil)

		// Plan: each rank sends a random number of messages to random
		// peers; receivers know exactly what to expect per (src, tag).
		type plan struct {
			dst, tag int
			size     int64
			id       int
		}
		sends := make([][]plan, n)
		expect := make([]map[int]int, n) // per dst: count by src
		for i := range expect {
			expect[i] = make(map[int]int)
		}
		id := 0
		for src := 0; src < n; src++ {
			for k := 0; k < rng.Intn(6); k++ {
				dst := rng.Intn(n)
				if dst == src {
					continue
				}
				size := int64(rng.Intn(200 << 10)) // straddles eager cutoff
				sends[src] = append(sends[src], plan{dst: dst, tag: 5, size: size, id: id})
				expect[dst][src]++
				id++
			}
		}

		received := make([]map[int][]int, n) // per dst, per src: payload ids
		for i := range received {
			received[i] = make(map[int][]int)
		}
		w.SpawnRanks(func(p *sim.Proc, r *Rank) {
			me := r.ID()
			var reqs []*Request
			for _, s := range sends[me] {
				reqs = append(reqs, r.Isend(p, s.dst, s.tag, s.size, s.id))
			}
			total := 0
			for _, c := range expect[me] {
				total += c
			}
			for k := 0; k < total; k++ {
				m := r.Recv(p, AnySource, 5)
				received[me][m.Src] = append(received[me][m.Src], m.Payload.(int))
			}
			r.Waitall(p, reqs...)
		})
		if _, err := e.Run(0); err != nil {
			return false
		}
		// Check counts and FIFO per (src, dst).
		for dst := 0; dst < n; dst++ {
			for src, want := range expect[dst] {
				got := received[dst][src]
				if len(got) != want {
					return false
				}
				// ids from one src to one dst were issued in increasing
				// order; FIFO delivery preserves it.
				for i := 1; i < len(got); i++ {
					if got[i] <= got[i-1] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: collectives complete for every world size and leave no
// matching state behind.
func TestCollectivesCompleteForAllSizes(t *testing.T) {
	for n := 1; n <= 9; n++ {
		e, w := testWorld(n, nil)
		w.SpawnRanks(func(p *sim.Proc, r *Rank) {
			r.Barrier(p)
			r.Bcast(p, n/2, 4096, nil)
			r.Reduce(p, 0, 2048, nil, nil)
			r.Allreduce(p, 64, nil, nil)
			if n > 1 {
				r.Alltoall(p, 8<<10)
			}
			r.Gather(p, n-1, 16<<10, nil)
			r.Allgather(p, 4<<10)
			r.Barrier(p)
		})
		if _, err := e.Run(0); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			r := w.Rank(i)
			if len(r.posted) != 0 || len(r.unexpected) != 0 {
				t.Fatalf("n=%d rank %d leaked matching state", n, i)
			}
		}
	}
}

// Messages exactly at the eager threshold stay eager; one byte more
// goes rendezvous. Both must deliver.
func TestEagerThresholdBoundary(t *testing.T) {
	for _, delta := range []int64{0, 1} {
		e, w := testWorld(2, nil)
		size := DefaultConfig().EagerThreshold + delta
		var got *Message
		w.SpawnRanks(func(p *sim.Proc, r *Rank) {
			if r.ID() == 0 {
				r.Send(p, 1, 1, size, "x")
			} else {
				got = r.Recv(p, 0, 1)
			}
		})
		mustRun(t, e)
		if got == nil || got.Size != size {
			t.Fatalf("delta=%d: %+v", delta, got)
		}
	}
}

// A mismatched receive is a deadlock the kernel must detect and report,
// not hang on.
func TestMismatchedRecvReportsDeadlock(t *testing.T) {
	e, w := testWorld(2, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			r.Send(p, 1, 1, 64, nil)
			return
		}
		r.Recv(p, 0, 2) // wrong tag: never arrives
	})
	_, err := e.Run(0)
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	e.Close()
}

// Head-to-head rendezvous sends without matching receives posted first
// must still progress (the handshake decouples them).
func TestHeadToHeadLargeSends(t *testing.T) {
	e, w := testWorld(2, nil)
	const size = 5 << 20
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		other := 1 - r.ID()
		// Both send first via Isend, then receive: classic exchange
		// that would deadlock with blocking sends and no buffering.
		sq := r.Isend(p, other, 1, size, nil)
		r.Recv(p, other, 1)
		r.Wait(p, sq)
	})
	mustRun(t, e)
}

// Wildcard Irecv matches whichever source arrives first.
func TestIrecvAnySource(t *testing.T) {
	e, w := testWorld(3, nil)
	var got *Message
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			q := r.Irecv(p, AnySource, AnyTag)
			got = r.Wait(p, q)
		case 1:
			r.Node().IdleFor(p, sim.Second)
			r.Send(p, 0, 7, 64, "late")
		case 2:
			r.Send(p, 0, 9, 64, "early")
		}
	})
	mustRun(t, e)
	if got == nil || got.Src != 2 {
		t.Fatalf("got %+v", got)
	}
}

// Many outstanding requests on one rank complete under Waitall in any
// completion order.
func TestManyOutstandingRequests(t *testing.T) {
	e, w := testWorld(4, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		if r.ID() == 0 {
			var reqs []*Request
			for peer := 1; peer < 4; peer++ {
				for k := 0; k < 3; k++ {
					reqs = append(reqs, r.Irecv(p, peer, k))
					reqs = append(reqs, r.Isend(p, peer, 10+k, int64(1+k*40<<10), nil))
				}
			}
			r.Waitall(p, reqs...)
			return
		}
		for k := 0; k < 3; k++ {
			r.Send(p, 0, k, 512, nil)
			r.Recv(p, 0, 10+k)
		}
	})
	mustRun(t, e)
	if got := w.Rank(0).Stats().MsgsRecv; got != 9 {
		t.Fatalf("rank0 received %d", got)
	}
}

// The MPI software costs must charge the node: communication at a
// lower operating point takes measurably longer for the CPU-bound
// portion.
func TestSoftwareOverheadScalesWithFrequency(t *testing.T) {
	elapsed := func(opIdx int) sim.Duration {
		e, w := testWorld(2, nil)
		var end sim.Time
		w.SpawnRanks(func(p *sim.Proc, r *Rank) {
			r.Node().SetOperatingPointIndex(p, opIdx)
			other := 1 - r.ID()
			for i := 0; i < 50; i++ {
				if r.ID() == 0 {
					r.Send(p, other, 1, 256<<10, nil)
					r.Recv(p, other, 1)
				} else {
					r.Recv(p, 0, 1)
					r.Send(p, 0, 1, 256<<10, nil)
				}
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
		mustRun(t, e)
		return end.Sub(0)
	}
	fast, slow := elapsed(0), elapsed(4)
	ratio := float64(slow) / float64(fast)
	if ratio < 1.02 || ratio > 1.12 {
		t.Fatalf("comm slowdown at 600MHz = %.4f, want Fig 8a's ~1.06", ratio)
	}
}

// Reduce must work with a non-commutative-safe combine order: the
// binomial tree applies combine(acc, incoming); verify associativity
// usage by string concatenation length (order may vary, length must
// cover all ranks).
func TestReduceCombineCoverage(t *testing.T) {
	n := 7
	e, w := testWorld(n, nil)
	var got any
	concat := func(a, b any) any { return a.(string) + b.(string) }
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		res := r.Reduce(p, 0, 64, fmt.Sprintf("%d", r.ID()), concat)
		if r.ID() == 0 {
			got = res
		}
	})
	mustRun(t, e)
	s := got.(string)
	seen := map[rune]bool{}
	for _, c := range s {
		seen[c] = true
	}
	if len(seen) != n {
		t.Fatalf("reduce covered %d ranks: %q", len(seen), s)
	}
}

// Spin-state bookkeeping: after a full collective storm, the node ends
// Idle and all NIC windows are closed.
func TestNodeStateCleanAfterCollectives(t *testing.T) {
	e, w := testWorld(4, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		r.Alltoall(p, 2<<20)
		r.Barrier(p)
	})
	mustRun(t, e)
	for i := 0; i < 4; i++ {
		if st := w.Rank(i).Node().State(); st != machine.Idle {
			t.Fatalf("node %d left in state %v", i, st)
		}
	}
}
