package mpi

// Variable-count and scan-family collectives, completing the MPI-1
// collective set the substrate offers (the paper's codes use the
// uniform forms; these exist for downstream workloads with irregular
// distributions, like the transpose's block remap).

import "repro/internal/sim"

// Gatherv collects a variable amount from every rank at root (linear,
// rank order). sizes must be consistent on all ranks: sizes[i] is what
// rank i contributes. It returns, at root, the payloads indexed by
// rank; nil elsewhere.
func (r *Rank) Gatherv(p *sim.Proc, root int, sizes []int64, payload any) []any {
	if len(sizes) != r.Size() {
		panic("mpi: Gatherv sizes length mismatch") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	return gatherV(r.worldView(p), root, func(pos int) int64 { return sizes[pos] }, payload)
}

// Scatterv distributes a variable amount from root to each rank
// (linear) and returns this rank's payload. sizes and payloads are only
// read at root.
func (r *Rank) Scatterv(p *sim.Proc, root int, sizes []int64, payloads []any) any {
	if r.id == root {
		if len(sizes) != r.Size() || len(payloads) != r.Size() {
			panic("mpi: Scatterv sizes/payloads length mismatch") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
		}
	}
	var sizeFn func(pos int) int64
	if r.id == root {
		sizeFn = func(pos int) int64 { return sizes[pos] }
	} else {
		sizeFn = func(int) int64 { return 0 } // unused off-root
	}
	return scatterV(r.worldView(p), root, sizeFn, payloads)
}

// Scan computes the inclusive prefix reduction: rank i returns
// combine(payload_0, ..., payload_i). Linear chain: each rank receives
// the prefix from its predecessor, folds its own value, and forwards.
func (r *Rank) Scan(p *sim.Proc, size int64, payload any, combine func(a, b any) any) any {
	v := r.worldView(p)
	v.begin()
	n := v.size
	tag := v.tag(0)
	acc := payload
	if v.me > 0 {
		m := v.recv(v.me-1, tag)
		r.node.ComputeFlops(p, float64(size)*r.w.cfg.ReduceFlopsPerByte)
		if combine != nil {
			acc = combine(m.Payload, acc)
		}
	}
	if v.me < n-1 {
		v.send(v.me+1, tag, size, acc)
	}
	return acc
}

// ReduceScatter reduces size bytes across all ranks and scatters equal
// blocks of the result: MPICH-1 implements it as Reduce to rank 0
// followed by Scatter, and so does this substrate. blockPayloads, the
// per-rank result blocks, are produced by split at rank 0 from the
// reduced value (nil split scatters nils). It returns this rank's
// block.
func (r *Rank) ReduceScatter(p *sim.Proc, size int64, payload any,
	combine func(a, b any) any, split func(total any) []any) any {
	n := r.Size()
	total := r.Reduce(p, 0, size, payload, combine)
	var parts []any
	if r.id == 0 {
		if split != nil {
			parts = split(total)
			if len(parts) != n {
				panic("mpi: ReduceScatter split length mismatch") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
			}
		} else {
			parts = make([]any, n)
		}
	}
	return scatterV(r.worldView(p), 0, func(int) int64 { return size / int64(n) }, parts)
}
