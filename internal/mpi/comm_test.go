package mpi

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestSplitRowsAndColumns(t *testing.T) {
	// A 2×3 process grid split into row and column communicators.
	const rows, cols = 2, 3
	e, w := testWorld(rows*cols, nil)
	rowSums := make([]any, rows*cols)
	colSums := make([]any, rows*cols)
	sum := func(a, b any) any { return a.(int) + b.(int) }
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		row := r.ID() / cols
		col := r.ID() % cols
		rowComm := r.Split(p, row, col)
		colComm := r.Split(p, col, row)
		if rowComm.Size() != cols || colComm.Size() != rows {
			t.Errorf("rank %d: comm sizes %d/%d", r.ID(), rowComm.Size(), colComm.Size())
		}
		if rowComm.Rank() != col || colComm.Rank() != row {
			t.Errorf("rank %d: comm ranks %d/%d", r.ID(), rowComm.Rank(), colComm.Rank())
		}
		rowSums[r.ID()] = rowComm.Allreduce(p, 8, r.ID(), sum)
		colSums[r.ID()] = colComm.Allreduce(p, 8, r.ID(), sum)
	})
	mustRun(t, e)
	// Row 0 = ranks {0,1,2} sum 3; row 1 = {3,4,5} sum 12.
	for i := 0; i < rows*cols; i++ {
		wantRow := 3
		if i >= cols {
			wantRow = 12
		}
		if rowSums[i] != wantRow {
			t.Fatalf("rank %d row sum %v want %d", i, rowSums[i], wantRow)
		}
		// Column c = {c, c+3}: sum 2c+3.
		wantCol := 2*(i%cols) + 3
		if colSums[i] != wantCol {
			t.Fatalf("rank %d col sum %v want %d", i, colSums[i], wantCol)
		}
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	e, w := testWorld(4, nil)
	positions := make([]int, 4)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		// Reverse ordering: higher world rank gets lower key.
		c := r.Split(p, 0, -r.ID())
		positions[r.ID()] = c.Rank()
	})
	mustRun(t, e)
	for world, pos := range positions {
		if want := 3 - world; pos != want {
			t.Fatalf("world %d at comm pos %d want %d", world, pos, want)
		}
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	e, w := testWorld(3, nil)
	var excluded *Comm = &Comm{} // sentinel non-nil
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		color := 0
		if r.ID() == 2 {
			color = -1 // MPI_UNDEFINED
		}
		c := r.Split(p, color, 0)
		if r.ID() == 2 {
			excluded = c
		} else if c == nil || c.Size() != 2 {
			t.Errorf("rank %d comm %+v", r.ID(), c)
		}
	})
	mustRun(t, e)
	if excluded != nil {
		t.Fatal("negative color must yield a nil comm")
	}
}

func TestCommP2PIsolation(t *testing.T) {
	// Two disjoint communicators use the same comm-local tag; traffic
	// must not cross.
	e, w := testWorld(4, nil)
	got := make([]any, 4)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		c := r.Split(p, r.ID()%2, 0)
		if c.Rank() == 0 {
			c.Send(p, 1, 5, 64, fmt.Sprintf("group%d", r.ID()%2))
		} else {
			got[r.ID()] = c.Recv(p, 0, 5).Payload
		}
	})
	mustRun(t, e)
	// World ranks 2 and 3 are comm rank 1 of groups 0 and 1.
	if got[2] != "group0" || got[3] != "group1" {
		t.Fatalf("isolation broken: %v", got)
	}
}

func TestCommRecvTranslatesSource(t *testing.T) {
	e, w := testWorld(4, nil)
	var m *Message
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		// Comm of the odd ranks: world 1 → comm 0, world 3 → comm 1.
		color := r.ID() % 2
		c := r.Split(p, color, 0)
		if color != 1 {
			return
		}
		if c.Rank() == 1 {
			c.Send(p, 0, 2, 128, "hi")
		} else {
			m = c.Recv(p, AnySource, 2)
		}
	})
	mustRun(t, e)
	if m == nil || m.Src != 1 || m.Tag != 2 || m.Payload != "hi" {
		t.Fatalf("message %+v", m)
	}
}

func TestCommCollectives(t *testing.T) {
	e, w := testWorld(6, nil)
	sum := func(a, b any) any { return a.(int) + b.(int) }
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		c := r.Split(p, r.ID()%2, 0)
		c.Barrier(p)
		val := c.Bcast(p, 0, 1024, c.Rank()*0+r.ID()%2*100)
		if val != r.ID()%2*100 && c.Rank() != 0 {
			t.Errorf("bcast got %v", val)
		}
		res := c.Reduce(p, 0, 64, 1, sum)
		if c.Rank() == 0 && res != 3 {
			t.Errorf("reduce got %v", res)
		}
		c.Alltoall(p, 4096)
		c.Allgather(p, 2048)
		out := c.Gather(p, 0, 512, c.Rank())
		if c.Rank() == 0 {
			if len(out) != 3 || out[1] != 1 || out[2] != 2 {
				t.Errorf("gather %v", out)
			}
		}
		c.Barrier(p)
	})
	mustRun(t, e)
}

func TestCommSendrecvRing(t *testing.T) {
	e, w := testWorld(4, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		c := r.Split(p, 0, 0) // everyone, same order
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		m := c.Sendrecv(p, next, 1, 100<<10, c.Rank(), prev, 1)
		if m.Payload != prev {
			t.Errorf("rank %d got %v want %d", c.Rank(), m.Payload, prev)
		}
	})
	mustRun(t, e)
}

func TestCommTagValidation(t *testing.T) {
	e, w := testWorld(2, nil)
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		c := r.Split(p, 0, 0)
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for oversized comm tag")
			}
		}()
		c.Send(p, 1, MaxCommTag+1, 8, nil)
	})
	mustRun(t, e)
}

func TestCommSlotExhaustion(t *testing.T) {
	// Only rank 0 allocates slots; when it runs out its panic unwinds
	// mid-split, leaving the peer parked — the engine must surface
	// that as a deadlock rather than hang.
	e, w := testWorld(2, nil)
	panicked := false
	w.SpawnRanks(func(p *sim.Proc, r *Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		for i := 0; i < maxCommSlots+2; i++ {
			r.Split(p, 0, 0)
		}
	})
	if _, err := e.Run(0); err == nil {
		t.Fatal("expected a deadlock error from the orphaned peer")
	}
	e.Close()
	if !panicked {
		t.Fatal("rank 0 never hit slot exhaustion")
	}
}
