package mpi

// Sub-communicators: MPI_Comm_split-style groups over subsets of the
// world, with their own rank numbering, tag space, and collective
// sequence. Point-to-point traffic inside a communicator is isolated
// from world traffic by a reserved tag context, so a row communicator's
// exchanges cannot be matched by a column communicator's receives.

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Comm p2p context layout: user tags inside a communicator are remapped
// to commP2PBase + slot*commP2PStride + tag, below the collective space.
const (
	commP2PBase   = 1 << 28
	commP2PStride = 1 << 16
	// MaxCommTag is the largest user tag allowed inside a communicator.
	MaxCommTag = commP2PStride - 1
)

// Comm is this rank's handle on a sub-communicator.
type Comm struct {
	r     *Rank
	ranks []int // comm rank → world rank
	me    int   // my comm rank
	slot  int   // tag-space slot (1-based; 0 is the world)
	seq   int   // collective sequence
}

// splitEntry travels through the split's gather/bcast.
type splitEntry struct {
	color, key, world int
}

// splitResult is what rank 0 broadcasts: the sorted table plus the
// first tag-space slot allocated for this split's communicators.
type splitResult struct {
	table    []splitEntry
	baseSlot int
}

// Split partitions the world into sub-communicators, MPI_Comm_split
// style: ranks passing the same color land in the same communicator,
// ordered by (key, world rank). A negative color returns nil (the rank
// joins nothing). Split is collective over the world and costs real
// communication (a gather of the color/key table and a broadcast of
// the result).
func (r *Rank) Split(p *sim.Proc, color, key int) *Comm {
	// Exchange (color, key) via rank 0, which also allocates the slot
	// block for this split deterministically.
	entries := r.Gather(p, 0, 16, splitEntry{color: color, key: key, world: r.id})
	var res splitResult
	if r.id == 0 {
		for _, e := range entries {
			res.table = append(res.table, e.(splitEntry))
		}
		sort.Slice(res.table, func(i, j int) bool {
			a, b := res.table[i], res.table[j]
			if a.color != b.color {
				return a.color < b.color
			}
			if a.key != b.key {
				return a.key < b.key
			}
			return a.world < b.world
		})
		// Rank 0 allocates the slot block once for the whole split and
		// ships the base with the table, so every member agrees on the
		// communicators' tag spaces.
		res.baseSlot = r.w.allocCommSlots(countColors(res.table))
	}
	payload := r.Bcast(p, 0, int64(16*r.Size()), res)
	res = payload.(splitResult)
	table := res.table

	// Distinct non-negative colors, in sorted-table order, get
	// consecutive slots starting at the broadcast base. Every rank
	// walks the same table, so the mapping agrees.
	slot := res.baseSlot - 1
	prevColor := -1 << 62
	var myComm *Comm
	for _, e := range table {
		if e.color < 0 {
			continue
		}
		if e.color != prevColor {
			slot++
			prevColor = e.color
		}
		if e.color == color {
			// Collect this communicator's members.
			var members []int
			for _, m := range table {
				if m.color == color {
					members = append(members, m.world)
				}
			}
			me := -1
			for i, wrank := range members {
				if wrank == r.id {
					me = i
				}
			}
			if me < 0 {
				panic("mpi: split table missing self") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
			}
			myComm = &Comm{r: r, ranks: members, me: me, slot: slot}
			break
		}
	}
	return myComm
}

// countColors returns the number of distinct non-negative colors in a
// sorted split table.
func countColors(table []splitEntry) int {
	n := 0
	prev := -1 << 62
	for _, e := range table {
		if e.color >= 0 && e.color != prev {
			n++
			prev = e.color
		}
	}
	return n
}

// allocCommSlots reserves n consecutive tag-space slots and returns the
// first. Slots are a finite resource (the tag space is fixed); a
// program creating more than 63 communicators over its lifetime is
// outside this substrate's envelope.
func (w *World) allocCommSlots(n int) int {
	first := w.nextCommSlot
	if first+n-1 > maxCommSlots {
		panic(fmt.Sprintf("mpi: out of communicator tag slots (%d allocated)", w.nextCommSlot-1)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	w.nextCommSlot += n
	return first
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the communicator's member count.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a comm rank to its world rank.
func (c *Comm) WorldRank(pos int) int {
	if pos < 0 || pos >= len(c.ranks) {
		panic(fmt.Sprintf("mpi: comm rank %d out of range [0,%d)", pos, len(c.ranks))) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	return c.ranks[pos]
}

// view builds the group view for collective algorithms.
func (c *Comm) view(p *sim.Proc) view {
	return view{r: c.r, size: len(c.ranks), me: c.me, ranks: c.ranks, slot: c.slot, seq: &c.seq, p: p}
}

// ctag maps a user tag into this communicator's p2p context.
func (c *Comm) ctag(tag int) int {
	if tag < 0 || tag > MaxCommTag {
		panic(fmt.Sprintf("mpi: comm tag %d outside [0,%d]", tag, MaxCommTag)) //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
	}
	return commP2PBase + c.slot*commP2PStride + tag
}

// Send transmits within the communicator (dst is a comm rank).
func (c *Comm) Send(p *sim.Proc, dst, tag int, size int64, payload any) {
	c.r.send(p, c.WorldRank(dst), c.ctag(tag), size, payload)
}

// Recv receives within the communicator (src is a comm rank, or
// AnySource). Tag wildcards are not supported inside communicators.
func (c *Comm) Recv(p *sim.Proc, src, tag int) *Message {
	worldSrc := AnySource
	if src != AnySource {
		worldSrc = c.WorldRank(src)
	}
	m := c.r.recvColl(p, worldSrc, c.ctag(tag))
	// Translate the source back into comm numbering.
	for pos, wrank := range c.ranks {
		if wrank == m.Src {
			m = &Message{Src: pos, Dst: c.me, Tag: tag, Size: m.Size, Payload: m.Payload}
			return m
		}
	}
	panic("mpi: comm received from non-member") //lint:allow panicfree (models MPI_Abort; rank/tag/count errors abort the MPI job)
}

// Isend is Send in the background.
func (c *Comm) Isend(p *sim.Proc, dst, tag int, size int64, payload any) *Request {
	return c.r.isend(p, c.WorldRank(dst), c.ctag(tag), size, payload)
}

// Wait blocks until the request completes.
func (c *Comm) Wait(p *sim.Proc, q *Request) *Message { return c.r.Wait(p, q) }

// Sendrecv exchanges within the communicator.
func (c *Comm) Sendrecv(p *sim.Proc, dst, sendTag int, size int64, payload any, src, recvTag int) *Message {
	sq := c.Isend(p, dst, sendTag, size, payload)
	m := c.Recv(p, src, recvTag)
	c.r.Wait(p, sq)
	return m
}

// Barrier blocks until every member has entered it.
func (c *Comm) Barrier(p *sim.Proc) { barrierV(c.view(p)) }

// Bcast distributes size bytes from the comm-rank root.
func (c *Comm) Bcast(p *sim.Proc, root int, size int64, payload any) any {
	return bcastV(c.view(p), root, size, payload)
}

// Reduce combines size bytes at the comm-rank root.
func (c *Comm) Reduce(p *sim.Proc, root int, size int64, payload any, combine func(a, b any) any) any {
	return reduceV(c.view(p), root, size, payload, combine)
}

// Allreduce is Reduce to comm rank 0 followed by Bcast.
func (c *Comm) Allreduce(p *sim.Proc, size int64, payload any, combine func(a, b any) any) any {
	acc := c.Reduce(p, 0, size, payload, combine)
	return c.Bcast(p, 0, size, acc)
}

// Alltoall exchanges bytesPerPeer with every other member.
func (c *Comm) Alltoall(p *sim.Proc, bytesPerPeer int64) {
	alltoallV(c.view(p), func(int) int64 { return bytesPerPeer })
}

// Gather collects size bytes from every member at the comm-rank root.
func (c *Comm) Gather(p *sim.Proc, root int, size int64, payload any) []any {
	return gatherV(c.view(p), root, func(int) int64 { return size }, payload)
}

// Allgather shares size bytes among all members (ring).
func (c *Comm) Allgather(p *sim.Proc, size int64) {
	allgatherV(c.view(p), size)
}
