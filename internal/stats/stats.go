// Package stats provides the small statistics toolkit the experiment
// runner needs: summary statistics, normalization, and the
// repeat-and-reject-outliers protocol the paper applies ("we repeated
// each experiment at least 3 times or more to identify outliers").
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation (0 for fewer than two
// values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MinMax returns the smallest and largest values (0,0 for empty).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// RejectOutliers drops values farther than k median-absolute-deviations
// from the median (a robust filter that tolerates the small sample
// sizes of repeated runs). With fewer than three values, or when all
// deviations are zero, it returns the input unchanged. k of 3.5 is a
// conventional cutoff.
func RejectOutliers(xs []float64, k float64) []float64 {
	if len(xs) < 3 {
		return append([]float64(nil), xs...)
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	mad := Median(devs)
	if mad == 0 {
		return append([]float64(nil), xs...)
	}
	var out []float64
	for _, x := range xs {
		if math.Abs(x-med)/mad <= k {
			out = append(out, x)
		}
	}
	if len(out) == 0 { // pathological: keep the median at least
		return []float64{med}
	}
	return out
}

// Normalize divides every value by base, which must be non-zero.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}
