package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
}

func TestStddev(t *testing.T) {
	if !almost(Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7)) {
		t.Fatal("stddev")
	}
	if Stddev([]float64{5}) != 0 {
		t.Fatal("single-value stddev")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("minmax = %v %v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Fatal("empty minmax")
	}
}

func TestRejectOutliers(t *testing.T) {
	xs := []float64{10, 10.1, 9.9, 10.05, 50}
	out := RejectOutliers(xs, 3.5)
	if len(out) != 4 {
		t.Fatalf("kept %d values: %v", len(out), out)
	}
	for _, x := range out {
		if x == 50 {
			t.Fatal("outlier survived")
		}
	}
	// Small samples pass through.
	if got := RejectOutliers([]float64{1, 100}, 3.5); len(got) != 2 {
		t.Fatal("pairs must pass through")
	}
	// All-identical values (MAD = 0) pass through.
	if got := RejectOutliers([]float64{5, 5, 5, 5}, 3.5); len(got) != 4 {
		t.Fatal("identical values must pass through")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	if !almost(got[0], 1) || !almost(got[1], 2) || !almost(got[2], 3) {
		t.Fatalf("normalize = %v", got)
	}
}

// Property: the filtered set is a subset containing the median, and
// mean lies within [min, max].
func TestStatsProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		min, max := MinMax(xs)
		m := Mean(xs)
		if m < min-1e-9 || m > max+1e-9 {
			return false
		}
		kept := RejectOutliers(xs, 3.5)
		if len(kept) > len(xs) || len(kept) == 0 {
			return false
		}
		counts := map[float64]int{}
		for _, x := range xs {
			counts[x]++
		}
		for _, x := range kept {
			counts[x]--
			if counts[x] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
