// Package repolint assembles the repository's analyzer suite. The
// cmd/repolint multichecker, the go vet -vettool integration, and the
// repo-wide clean-lint meta-test all call All() for exactly the same
// list, so adding an analyzer to the registry here is the single step
// that wires it into every gate — and no driver can end up running a
// private subset, which is what let a suppression name a registered-
// but-never-loaded analyzer before the inventory test caught it.
package repolint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/concsafety"
	"repro/internal/lint/determinism"
	"repro/internal/lint/detflow"
	"repro/internal/lint/erraudit"
	"repro/internal/lint/floateq"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/lookahead"
	"repro/internal/lint/panicfree"
	"repro/internal/lint/profgate"
	"repro/internal/lint/rangecheck"
	"repro/internal/lint/shardown"
	"repro/internal/lint/sharedstate"
	"repro/internal/lint/typestate"
	"repro/internal/lint/unitsafety"
)

// registry is the full repolint suite, in reporting order: the four
// intra-function gates from v1, the v2 interprocedural gates built on
// internal/lint/callgraph, the v3 flow-sensitive gates built on
// internal/lint/dataflow, the v4 profile-guided gate (a no-op unless
// REPOLINT_PROFILES points at benchmark CPU profiles; see `make
// profgate`), the v5 shard-ownership and API-protocol gates for the
// parallel core, and the v6 numeric range gates built on the interval
// abstract domain (dataflow.RunIntervals).
var registry = []*analysis.Analyzer{
	determinism.Analyzer,
	floateq.Analyzer,
	unitsafety.Analyzer,
	panicfree.Analyzer,
	sharedstate.Analyzer,
	concsafety.Analyzer,
	erraudit.Analyzer,
	detflow.Analyzer,
	hotalloc.Analyzer,
	profgate.Analyzer,
	shardown.Analyzer,
	typestate.Analyzer,
	rangecheck.Analyzer,
	lookahead.Analyzer,
}

// All returns the registered analyzers in reporting order. The slice
// is a copy: a driver reordering or subsetting its run cannot perturb
// the registry other drivers see.
func All() []*analysis.Analyzer {
	out := make([]*analysis.Analyzer, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range registry {
		if a.Name == name {
			return a
		}
	}
	return nil
}
