// Package repolint assembles the repository's analyzer suite. The
// cmd/repolint multichecker, the go vet -vettool integration, and the
// repo-wide clean-lint meta-test all run exactly this list, so adding
// an analyzer here is the single step that wires it into every gate.
package repolint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/concsafety"
	"repro/internal/lint/determinism"
	"repro/internal/lint/detflow"
	"repro/internal/lint/erraudit"
	"repro/internal/lint/floateq"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/panicfree"
	"repro/internal/lint/profgate"
	"repro/internal/lint/sharedstate"
	"repro/internal/lint/unitsafety"
)

// Analyzers is the full repolint suite, in reporting order: the four
// intra-function gates from v1, the v2 interprocedural gates built on
// internal/lint/callgraph, the v3 flow-sensitive gates built on
// internal/lint/dataflow, then the v4 profile-guided gate (a no-op
// unless REPOLINT_PROFILES points at benchmark CPU profiles; see `make
// profgate`).
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	floateq.Analyzer,
	unitsafety.Analyzer,
	panicfree.Analyzer,
	sharedstate.Analyzer,
	concsafety.Analyzer,
	erraudit.Analyzer,
	detflow.Analyzer,
	hotalloc.Analyzer,
	profgate.Analyzer,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
