package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/repolint"
)

// boldName matches the bold analyzer mentions the README's static
// analysis sections use (for example "**rangecheck**"). The lowercase
// anchor keeps ordinary bold prose (capitalized or multi-word) out of
// the inventory.
var boldName = regexp.MustCompile(`\*\*([a-z][a-z0-9]*)\*\*`)

// TestReadmeAnalyzerInventory holds README.md's "Static analysis
// gates" chapter to the registry: every analyzer repolint.All()
// registers must be documented there as a bold **name**, and every
// bold lowercase name in the chapter must be a registered analyzer.
// Registering a v7 analyzer without documenting it — or documenting
// one that was never wired into the suite — fails here, the same way
// the suppression inventory catches allows naming unloaded analyzers.
func TestReadmeAnalyzerInventory(t *testing.T) {
	root := moduleRoot(t)
	raw, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}

	// The chapter spans from the "## Static analysis gates" heading to
	// the next top-level "## " heading; "### " subsections stay inside.
	text := string(raw)
	const heading = "## Static analysis gates"
	start := strings.Index(text, heading)
	if start < 0 {
		t.Fatalf("README.md has no %q heading", heading)
	}
	body := text[start+len(heading):]
	if end := strings.Index(body, "\n## "); end >= 0 {
		body = body[:end]
	}

	documented := make(map[string]bool)
	for _, m := range boldName.FindAllStringSubmatch(body, -1) {
		documented[m[1]] = true
	}

	registered := make(map[string]bool)
	for _, a := range repolint.All() {
		registered[a.Name] = true
		if !documented[a.Name] {
			t.Errorf("analyzer %q is registered in repolint.All() but not documented under %q in README.md", a.Name, heading)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("README.md documents **%s** under %q, but repolint.All() registers no such analyzer", name, heading)
		}
	}
}
