// Package hotalloc defines the hot-path allocation analyzer. PR 2 made
// the simulator's Schedule/Sleep/wake round trip allocation-free (48 B
// and 3 allocs per ProcessSwitch down to 0/0), which is worth real
// throughput at campaign scale; hotalloc turns that from a sampled
// benchmark property into a statically enforced one.
//
// A function opts in with the annotation
//
//	//lint:hotpath
//
// written in a declaration's doc comment, or on the line immediately
// above a function literal. Every function transitively reachable from
// an annotated root over the package-local call graph
// (internal/lint/callgraph) is then checked for allocation-inducing
// constructs:
//
//   - append (may grow the backing array)
//   - make, new, and map/slice composite literals, &T{...}
//   - function literals that capture variables (a capturing closure
//     heap-allocates its environment; non-capturing literals are free)
//   - any fmt call (formatting boxes its operands and builds strings)
//   - storing or passing a non-pointer-shaped concrete value where an
//     interface is expected (boxing; constants are ignored because the
//     compiler materializes them statically)
//   - go statements (a goroutine allocates its stack)
//
// Helpers whose entire body is a single panic call are exempt: they
// are the cold "impossible input" path, executed at most once per
// process death. Everything else needs either a fix or a
// //lint:allow hotalloc (reason) suppression, and a //lint:hotpath
// marker that fails to attach to a function is itself reported so
// annotations cannot rot silently.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Marker is the annotation that declares a hot-path root.
const Marker = "//lint:hotpath"

// Analyzer enforces allocation-free code on //lint:hotpath routes.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocation-inducing constructs (append, make/new, capturing " +
		"closures, fmt, interface boxing, go statements) in functions reachable " +
		"from a //lint:hotpath annotation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	g := callgraph.Build(pass.Fset, files, pass.TypesInfo)

	roots, dangling := FindRoots(pass, files, g)
	for _, pos := range dangling {
		pass.Reportf(pos, "//lint:hotpath does not attach to a function declaration's "+
			"doc comment or the line above a function literal")
	}
	if len(roots) == 0 {
		return nil
	}

	reached := g.Reachable(roots...)
	c := &checker{pass: pass, g: g}
	for node, root := range reached {
		if node.Body == nil || isColdPanicHelper(node, pass.TypesInfo) {
			continue
		}
		c.checkBody(node, "//lint:hotpath root "+root.Name)
	}
	return nil
}

// FindRoots resolves every Marker comment to the function it annotates:
// a declaration whose doc group contains it, or a literal starting on
// the marker's line or the one below. Unattached markers are returned
// as dangling positions. The profgate analyzer shares this resolution
// so its hot-root discovery and hotalloc's enforcement agree on what an
// annotated root is.
func FindRoots(pass *analysis.Pass, files []*ast.File, g *callgraph.Graph) (roots []*callgraph.Node, dangling []token.Pos) {
	type marker struct {
		pos  token.Pos
		line int
		used bool
	}
	markersByFile := make(map[*ast.File][]*marker)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if isMarkerComment(cm.Text) {
					markersByFile[f] = append(markersByFile[f], &marker{
						pos:  cm.Pos(),
						line: pass.Fset.Position(cm.Pos()).Line,
					})
				}
			}
		}
	}
	for _, f := range files {
		marks := markersByFile[f]
		if len(marks) == 0 {
			continue
		}
		claim := func(line int) bool {
			for _, m := range marks {
				if m.line == line {
					m.used = true
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Doc != nil {
					docClaimed := false
					for _, cm := range n.Doc.List {
						if isMarkerComment(cm.Text) {
							claim(pass.Fset.Position(cm.Pos()).Line)
							docClaimed = true
						}
					}
					if docClaimed {
						if node := nodeOfDecl(pass.TypesInfo, g, n); node != nil {
							roots = append(roots, node)
						}
					}
				}
			case *ast.FuncLit:
				line := pass.Fset.Position(n.Pos()).Line
				if claim(line-1) || claim(line) {
					if node := g.LitNode(n); node != nil {
						roots = append(roots, node)
					}
				}
			}
			return true
		})
		for _, m := range marks {
			if !m.used {
				dangling = append(dangling, m.pos)
			}
		}
	}
	return roots, dangling
}

func isMarkerComment(text string) bool {
	return text == Marker || strings.HasPrefix(text, Marker+" ")
}

func nodeOfDecl(info *types.Info, g *callgraph.Graph, fd *ast.FuncDecl) *callgraph.Node {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return g.NodeOf(fn)
}

// isColdPanicHelper reports whether the node's whole body is one panic
// call — the "impossible input" pattern, cold by construction.
func isColdPanicHelper(node *callgraph.Node, info *types.Info) bool {
	if node.Body == nil || len(node.Body.List) != 1 {
		return false
	}
	es, ok := node.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

type checker struct {
	pass *analysis.Pass
	g    *callgraph.Graph
}

// checkBody scans one function's own statements (nested literals are
// their own reachable nodes) for allocation-inducing constructs.
func (c *checker) checkBody(node *callgraph.Node, why string) {
	info := c.pass.TypesInfo
	first := true
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && !first {
			// Report the allocation of the closure itself here; its
			// body is checked as its own node.
			if cap := capturedVar(info, lit); cap != nil {
				kind := "variable"
				if isLoopVar(c.pass, node.Body, cap) {
					kind = "loop variable"
				}
				c.reportf(n.Pos(), node, why, "closure captures %s %q and heap-allocates its environment", kind, cap.Name())
			}
			return false
		}
		first = false
		switch n := n.(type) {
		case *ast.GoStmt:
			c.reportf(n.Pos(), node, why, "go statement allocates a goroutine stack")
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				c.reportf(n.Pos(), node, why, "map literal allocates")
			case *types.Slice:
				c.reportf(n.Pos(), node, why, "slice literal allocates its backing array")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.reportf(n.Pos(), node, why, "&composite literal escapes to the heap")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n, node, why)
		case *ast.AssignStmt:
			c.checkAssignBoxing(n, node, why)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr, node *callgraph.Node, why string) {
	info := c.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				c.reportf(call.Pos(), node, why, "append may grow the backing array")
			case "make":
				c.reportf(call.Pos(), node, why, "make allocates")
			case "new":
				c.reportf(call.Pos(), node, why, "new allocates")
			}
			return
		}
		if _, ok := info.Uses[id].(*types.TypeName); ok {
			return // conversion, handled by boxing check below if ifacial
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.reportf(call.Pos(), node, why, "fmt.%s formats into freshly allocated storage", fn.Name())
			return
		}
	}
	c.checkCallBoxing(call, node, why)
}

// checkCallBoxing flags concrete non-pointer-shaped arguments passed in
// interface positions (including variadic ...any), which the compiler
// boxes on the heap. Constants and nil are exempt: they are
// materialized statically.
func (c *checker) checkCallBoxing(call *ast.CallExpr, node *callgraph.Node, why string) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice through: no boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if boxes(info, arg, pt) {
			c.reportf(arg.Pos(), node, why, "passing %s where %s is expected boxes the value on the heap",
				typeString(info, arg), pt.String())
		}
	}
}

// checkAssignBoxing flags stores of concrete values into
// interface-typed variables.
func (c *checker) checkAssignBoxing(as *ast.AssignStmt, node *callgraph.Node, why string) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	info := c.pass.TypesInfo
	for i, lhs := range as.Lhs {
		lt, ok := info.Types[lhs]
		if !ok || lt.Type == nil {
			continue
		}
		if boxes(info, as.Rhs[i], lt.Type) {
			c.reportf(as.Rhs[i].Pos(), node, why, "storing %s into interface-typed %s boxes the value on the heap",
				typeString(info, as.Rhs[i]), lt.Type.String())
		}
	}
}

// boxes reports whether assigning expr to an interface of type dst
// heap-allocates: dst is an interface, expr is a non-constant concrete
// value whose representation does not already fit in a pointer word.
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	src := tv.Type
	switch src.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface carries the existing box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if src.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func typeString(info *types.Info, expr ast.Expr) string {
	if tv, ok := info.Types[expr]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "value"
}

// capturedVar returns one variable the literal captures from its
// enclosing function, or nil if the literal is capture-free (and so
// does not allocate an environment).
func capturedVar(info *types.Info, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() == nil || v.Parent() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture
		}
		// Declared outside the literal's extent ⇒ captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
		}
		return true
	})
	return captured
}

// isLoopVar reports whether v is declared by a for/range statement in
// body — the classic capture-the-iteration-variable allocation.
func isLoopVar(pass *analysis.Pass, body ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			for _, x := range []ast.Expr{n.Key, n.Value} {
				if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.Defs[id] == v {
					found = true
				}
			}
		case *ast.ForStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok {
				for _, x := range as.Lhs {
					if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.Defs[id] == v {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

func (c *checker) reportf(pos token.Pos, node *callgraph.Node, why, format string, args ...any) {
	msg := "hot path: " + format + " in " + node.Name + " (reachable from " + why + ")"
	c.pass.Reportf(pos, msg, args...)
}
