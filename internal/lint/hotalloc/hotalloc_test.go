package hotalloc_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotalloc"
)

// TestHotalloc runs the fixture covering direct allocation in an
// annotated root, allocation via a reached callee, the suppression
// escape hatch, the cold-panic-helper exemption, closure capture
// (including loop variables), fmt on the hot path, interface boxing,
// and the dangling-annotation diagnostic.
func TestHotalloc(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, hotalloc.Analyzer,
		"fixtures/hotalloc",
	)
}
