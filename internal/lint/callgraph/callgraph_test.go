package callgraph_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/loader"
)

const src = `package p

import (
	"sync"
	"sync/atomic"
)

var (
	counter int
	total   atomic.Int64
	mu      sync.Mutex
	guarded int
)

func leaf() { counter++ }

func middle() { leaf() }

func Root() { middle() }

func Locked() {
	mu.Lock()
	guarded++
	mu.Unlock()
}

func Atomic() { total.Add(1) }

func Closure() func() {
	return func() { counter = 5 }
}

func External(f func()) { f() }

func Send(ch chan int) { ch <- 1 }
`

func buildGraph(t *testing.T) (*callgraph.Graph, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := loader.NewInfo()
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return callgraph.Build(fset, []*ast.File{f}, info), pkg
}

func node(t *testing.T, g *callgraph.Graph, pkg *types.Package, name string) *callgraph.Node {
	t.Helper()
	fn, ok := pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in package scope", name)
	}
	n := g.NodeOf(fn)
	if n == nil {
		t.Fatalf("no node for %s", name)
	}
	return n
}

func TestFactsAndEdges(t *testing.T) {
	g, pkg := buildGraph(t)

	leaf := node(t, g, pkg, "leaf")
	if len(leaf.GlobalWrites) != 1 || leaf.GlobalWrites[0].Var.Name() != "counter" {
		t.Errorf("leaf.GlobalWrites = %+v, want one write to counter", leaf.GlobalWrites)
	}
	if leaf.GlobalWrites[0].Guarded {
		t.Error("leaf's write must be unguarded")
	}

	locked := node(t, g, pkg, "Locked")
	if len(locked.GlobalWrites) != 1 || !locked.GlobalWrites[0].Guarded {
		t.Errorf("Locked.GlobalWrites = %+v, want one guarded write", locked.GlobalWrites)
	}
	if !locked.Syncs {
		t.Error("Locked must have Syncs (mutex calls)")
	}

	atomicN := node(t, g, pkg, "Atomic")
	if len(atomicN.GlobalWrites) != 0 {
		t.Errorf("Atomic.GlobalWrites = %+v, want none (atomic ops are calls)", atomicN.GlobalWrites)
	}
	if !atomicN.Syncs {
		t.Error("Atomic must have Syncs (sync/atomic call)")
	}

	ext := node(t, g, pkg, "External")
	if !ext.UnknownCalls {
		t.Error("External calls a function value; UnknownCalls must be set")
	}

	send := node(t, g, pkg, "Send")
	if !send.Syncs {
		t.Error("Send must have Syncs (channel send)")
	}

	closure := node(t, g, pkg, "Closure")
	if len(closure.Calls) != 1 || closure.Calls[0].Lit == nil {
		t.Fatalf("Closure.Calls = %+v, want one containment edge to its literal", closure.Calls)
	}
	lit := closure.Calls[0]
	if lit.Name != "Closure$1" {
		t.Errorf("literal node name = %q, want Closure$1", lit.Name)
	}
	if len(lit.GlobalWrites) != 1 || lit.GlobalWrites[0].Var.Name() != "counter" {
		t.Errorf("literal GlobalWrites = %+v, want one write to counter", lit.GlobalWrites)
	}
	if len(closure.GlobalWrites) != 0 {
		t.Errorf("Closure.GlobalWrites = %+v, want none (the literal owns its facts)", closure.GlobalWrites)
	}
}

func TestReachability(t *testing.T) {
	g, pkg := buildGraph(t)
	root := node(t, g, pkg, "Root")
	middle := node(t, g, pkg, "middle")
	leaf := node(t, g, pkg, "leaf")
	locked := node(t, g, pkg, "Locked")

	reached := g.Reachable(root)
	if reached[root] != root || reached[middle] != root || reached[leaf] != root {
		t.Errorf("Reachable(Root) = %v, want Root, middle, leaf all with provenance Root", reached)
	}
	if _, ok := reached[locked]; ok {
		t.Error("Locked must not be reachable from Root")
	}

	// Multi-root provenance: first root wins for shared nodes.
	reached = g.Reachable(locked, root)
	if reached[leaf] != root {
		t.Errorf("leaf's provenance = %v, want Root", reached[leaf])
	}
}
