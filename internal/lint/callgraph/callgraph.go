// Package callgraph builds a package-local call graph with per-function
// facts for the interprocedural repolint analyzers. Each function
// declaration and each function literal in the package is a node; edges
// record same-package static calls plus lexical containment (a function
// "may execute" every literal it creates — conservatively true for the
// closures this repository schedules on the sim engine or hands to
// exec.Map). Per-node facts summarize what the sharedstate and
// concsafety analyzers need:
//
//   - which package-level variables the function writes (and whether a
//     mutex Lock lexically precedes the write),
//   - whether the function performs any synchronization (channel
//     operations, sync.* or sync/atomic calls, select), and
//   - whether it calls anything whose body this package cannot see.
//
// Facts propagate by graph reachability: an analyzer picks root nodes
// (an exec.Map worker closure, an exported hot-path entry point) and
// folds the facts of everything reachable from them. Cross-package
// calls are not followed — instead every intra-module package is
// analyzed with its own roots, which closes the module-wide argument
// package by package without needing whole-program loading under the
// "go vet -vettool" driver.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// A Write is one store to a package-level variable.
type Write struct {
	Pos token.Pos
	Var *types.Var
	// Guarded reports that a sync.Mutex/RWMutex Lock call lexically
	// precedes the write inside the same function body — the
	// straight-line "mu.Lock(); v++; mu.Unlock()" shape. This is a
	// lexical approximation, not a lockset analysis: it accepts the
	// discipline the repository uses and documents, nothing fancier.
	Guarded bool
}

// A Node is one function declaration or function literal.
type Node struct {
	// Name is the display name: "Run", "(*Runner).Run", or
	// "RunOnce$2" for the second literal created inside RunOnce.
	Name string
	// Fn is the declared function's object; nil for literals.
	Fn *types.Func
	// Decl is the declaration syntax (signature, doc comment); nil for
	// literals. Summary-building analyzers need it to interpret a
	// node's results and annotations.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function's own body (nested literals excluded —
	// they are their own nodes, linked by a containment edge).
	Body *ast.BlockStmt

	// GlobalWrites lists stores whose base resolves to a package-level
	// variable (of this package or an imported one).
	GlobalWrites []Write
	// Calls holds same-package static callees plus lexically contained
	// literals, in source order, deduplicated.
	Calls []*Node
	// Syncs reports any synchronization in the body: channel send,
	// receive, or close, select, or a call into sync or sync/atomic.
	Syncs bool
	// UnknownCalls reports calls whose target body this package cannot
	// see (cross-package functions, function-typed values, interface
	// methods). Analyzers that must avoid false positives treat an
	// unknown call as "could do anything", including synchronize.
	UnknownCalls bool

	// locks holds positions of Lock/RLock calls on sync mutexes within
	// this body, for the lexical guard check.
	locks []token.Pos
}

// A Graph is the package-local call graph.
type Graph struct {
	Nodes []*Node

	byFn  map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// NodeOf returns the node for a declared function's object, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// LitNode returns the node for a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the call graph for one type-checked package.
func Build(fset *token.FileSet, files []*ast.File, info *types.Info) *Graph {
	g := &Graph{
		byFn:  make(map[*types.Func]*Node),
		byLit: make(map[*ast.FuncLit]*Node),
	}

	// First pass: create a node per declaration, then one per literal
	// (attributed to the enclosing declaration for naming).
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &Node{Name: declName(fd), Body: fd.Body, Decl: fd}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				n.Fn = obj
				g.byFn[obj] = n
			}
			g.Nodes = append(g.Nodes, n)
			g.addLiterals(n, fd.Body)
		}
		// Package-level variable initializers can hold literals too.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					holder := &Node{Name: "init"}
					count := len(g.Nodes)
					g.addLiterals(holder, v)
					if len(holder.Calls) > 0 || len(g.Nodes) > count {
						// Only keep the synthetic holder if it found
						// literals to anchor.
						g.Nodes = append(g.Nodes, holder)
					}
				}
			}
		}
	}

	// Second pass: facts and edges for every node's own body.
	for _, n := range g.Nodes {
		if n.Body != nil {
			g.analyze(n, n.Body, info)
		}
	}
	return g
}

// addLiterals creates nodes for every function literal inside root
// (which belongs to parent) and links containment edges parent -> lit.
// Nesting is preserved: a literal inside a literal belongs to the inner
// one.
func (g *Graph) addLiterals(parent *Node, root ast.Node) {
	var walk func(owner *Node, node ast.Node)
	walk = func(owner *Node, node ast.Node) {
		ast.Inspect(node, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			child := &Node{
				Name: fmt.Sprintf("%s$%d", owner.Name, countLits(owner)+1),
				Lit:  lit,
				Body: lit.Body,
			}
			g.byLit[lit] = child
			g.Nodes = append(g.Nodes, child)
			owner.Calls = append(owner.Calls, child)
			walk(child, lit.Body)
			return false // children of lit belong to child
		})
	}
	// Inspect root's immediate subtree but skip root itself if it is
	// the parent's own body.
	walk(parent, root)
}

func countLits(owner *Node) int {
	c := 0
	for _, n := range owner.Calls {
		if n.Lit != nil {
			c++
		}
	}
	return c
}

// analyze fills facts and call edges for node, walking its own body but
// not descending into nested literals (their facts are their own).
func (g *Graph) analyze(node *Node, body ast.Node, info *types.Info) {
	inspectOwn(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return // := introduces locals; it cannot store to a global
			}
			for _, lhs := range n.Lhs {
				g.recordWrite(node, lhs, info)
			}
		case *ast.IncDecStmt:
			g.recordWrite(node, n.X, info)
		case *ast.SendStmt:
			node.Syncs = true
		case *ast.SelectStmt:
			node.Syncs = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				node.Syncs = true
			}
		case *ast.CallExpr:
			g.recordCall(node, n, info)
		}
	})
	// Guard resolution: a write is guarded when some Lock call in the
	// same body lexically precedes it.
	for i := range node.GlobalWrites {
		node.GlobalWrites[i].Guarded = LockedBefore(node, node.GlobalWrites[i].Pos)
	}
}

// LockedBefore reports whether a mutex Lock/RLock call inside node's
// own body lexically precedes pos.
func LockedBefore(node *Node, pos token.Pos) bool {
	for _, l := range node.locks {
		if l < pos {
			return true
		}
	}
	return false
}

// inspectOwn walks body without entering nested function literals.
func inspectOwn(body ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && !first {
			return false
		}
		first = false
		fn(n)
		return true
	})
}

// recordWrite adds a GlobalWrites entry when the store's base variable
// is package-level.
func (g *Graph) recordWrite(node *Node, lhs ast.Expr, info *types.Info) {
	v := BaseVar(lhs, info)
	if v == nil || v.Pkg() == nil {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return // local, parameter, or field
	}
	node.GlobalWrites = append(node.GlobalWrites, Write{Pos: lhs.Pos(), Var: v})
}

// BaseVar unwraps an lvalue chain (x, x.f, x[i], *x, pkg.V, and
// combinations) to the variable at its base, or nil when the base is
// not a simple variable.
func BaseVar(e ast.Expr, info *types.Info) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					v, _ := info.Uses[x.Sel].(*types.Var)
					return v
				}
			}
			e = x.X
		case *ast.Ident:
			if v, ok := identObj(x, info).(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func identObj(id *ast.Ident, info *types.Info) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// recordCall classifies one call: a same-package static call becomes an
// edge; sync/atomic and mutex calls set the synchronization facts;
// anything unresolvable marks UnknownCalls.
func (g *Graph) recordCall(node *Node, call *ast.CallExpr, info *types.Info) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiations: exec.Map[int](...) arrives as an index
	// expression over the selector.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := identObj(fn, info).(type) {
		case *types.Func:
			g.edge(node, obj)
		case *types.Builtin:
			if obj.Name() == "close" {
				node.Syncs = true
			}
		case *types.TypeName:
			// conversion: no call
		default:
			node.UnknownCalls = true // function-typed value
		}
	case *ast.SelectorExpr:
		obj, ok := identObj(fn.Sel, info).(*types.Func)
		if !ok {
			if _, isType := identObj(fn.Sel, info).(*types.TypeName); !isType {
				node.UnknownCalls = true
			}
			return
		}
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				node.Syncs = true
				if obj.Name() == "Lock" || obj.Name() == "RLock" {
					node.locks = append(node.locks, call.Pos())
				}
				return
			}
		}
		g.edge(node, obj)
	case *ast.FuncLit:
		// Immediately-invoked literal: the containment edge added in
		// addLiterals already covers it.
	default:
		node.UnknownCalls = true
	}
}

// edge links node to the callee when the callee is declared in this
// package; otherwise it records an unknown (cross-package) call.
func (g *Graph) edge(node *Node, callee *types.Func) {
	target, ok := g.byFn[callee]
	if !ok {
		node.UnknownCalls = true
		return
	}
	for _, c := range node.Calls {
		if c == target {
			return
		}
	}
	node.Calls = append(node.Calls, target)
}

// Reachable returns every node reachable from the roots (including the
// roots themselves) together with, for each node, the root it was first
// reached from — for diagnostics that explain why a function is on a
// hot path.
func (g *Graph) Reachable(roots ...*Node) map[*Node]*Node {
	seen := make(map[*Node]*Node)
	var visit func(n, root *Node)
	visit = func(n, root *Node) {
		if n == nil {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = root
		for _, c := range n.Calls {
			visit(c, root)
		}
	}
	for _, r := range roots {
		visit(r, r)
	}
	return seen
}

// declName renders a function declaration's display name, qualifying
// methods with their receiver type: "(*Runner).Run" or "Table.At".
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	return "(" + typeText(recv) + ")." + fd.Name.Name
}

func typeText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeText(t.X)
	case *ast.IndexExpr:
		return typeText(t.X)
	case *ast.IndexListExpr:
		return typeText(t.X)
	}
	return "?"
}
