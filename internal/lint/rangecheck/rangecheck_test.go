package rangecheck_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/rangecheck"
)

// TestRangecheck runs the fixture package: seeded violations of the
// built-in physics contracts (negative watts, unguarded IndexOf miss
// sentinels, degenerate subdivision/shard counts), declared
// //lint:range params and results, provably/possibly zero divisors,
// and directive hygiene — each beside the clean guarded shape that
// must stay quiet, plus one //lint:allow suppression.
func TestRangecheck(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, rangecheck.Analyzer, "fixtures/rangecheck")
}
