// Package rangecheck defines the numeric-contract analyzer: interval
// abstract interpretation (internal/lint/dataflow.RunIntervals) proves
// or refutes value-range obligations at API boundaries.
//
// Obligations come from two places:
//
//   - Declared contracts: a `//lint:range <param|recv|result> [lo,hi]`
//     line in a function's doc comment. Bounds are inclusive floats;
//     `inf`, `+inf`, and `-inf` are accepted endpoints. A param
//     contract is both checked at every same-package call site and
//     assumed when analyzing the function's own body (assume/guarantee
//     in the small); a result contract is checked at every return
//     statement and strengthens the function's call-site summary.
//
//   - Built-in physics contracts: the power-performance model's
//     dvfs/power/machine/netsim/trace/sim APIs take frequencies,
//     voltages, powers, energies, sizes, and times that must be
//     nonnegative, operating-point indices that must be in-bounds, and
//     step/shard counts with hard floors. These are keyed on the real
//     import paths, so they bind cross-package without a fact system.
//
// Additionally every division or modulo in analyzed code is checked
// for a divisor interval that is provably zero, or that straddles
// zero with both bounds finite (half-open intervals such as len()'s
// [0, +inf) carry no evidence of a zero and stay silent) — the
// energy/utilization math must never divide by zero.
//
// Verdicts come in two tiers: "provably outside" when the value
// interval and the contract are disjoint, and "may" when a finite
// interval endpoint crosses the bound (the finiteness requirement
// keeps widening-to-infinity loops from flagging every loop-carried
// value). Interprocedural precision inside a package comes from
// memoized per-function result summaries over internal/lint/callgraph,
// the same shape detflow uses for taint.
package rangecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/dataflow"
)

// Analyzer reports numeric values that provably (or possibly, with
// finite evidence) violate declared //lint:range contracts, built-in
// physics ranges, or nonzero-divisor obligations.
var Analyzer = &analysis.Analyzer{
	Name: "rangecheck",
	Doc: "interval-check numeric contracts: declared //lint:range bounds, nonnegative " +
		"physics values entering dvfs/power/machine/netsim/trace/sim APIs, in-bounds " +
		"operating-point indices, and provably nonzero divisors",
	Run: run,
}

// contract is one bounded numeric obligation, with the phrase the
// diagnostic uses to name the value ("power draw (watts)").
type contract struct {
	iv   dataflow.Interval
	what string
}

var (
	nonneg   = dataflow.AtLeast(0)
	atLeast1 = dataflow.AtLeast(1)
	atLeast2 = dataflow.AtLeast(2)
	unit     = dataflow.Interval{Lo: 0, Hi: 1}
)

// builtinArgs are the physics contracts of the model's own APIs,
// keyed "pkgpath.Name" for functions and "pkgpath.Recv.Name" for
// methods, value keyed by argument index.
var builtinArgs = map[string]map[int]contract{
	// power: watts, joules, and sample times are magnitudes.
	"repro/internal/power.Integrator.SetPower":      {0: {nonneg, "sample time"}, 1: {nonneg, "power draw (watts)"}},
	"repro/internal/power.Integrator.AddEnergy":     {0: {nonneg, "energy quantum (joules)"}},
	"repro/internal/power.NewCPUModel":              {1: {nonneg, "dynamic power at top frequency (watts)"}, 2: {nonneg, "leakage coefficient (W/V^2)"}, 3: {unit, "idle activity factor"}},
	"repro/internal/power.JoulesFromMilliwattHours": {0: {nonneg, "energy (mWh)"}},

	// dvfs: operating-point indices are in-bounds, frequencies are
	// magnitudes, and subdividing a table needs at least two steps.
	"repro/internal/dvfs.Table.At":            {0: {nonneg, "operating-point index"}},
	"repro/internal/dvfs.Table.StepDown":      {0: {nonneg, "operating-point index"}},
	"repro/internal/dvfs.Table.StepUp":        {0: {nonneg, "operating-point index"}},
	"repro/internal/dvfs.Table.Subdivide":     {0: {atLeast2, "subdivision steps"}},
	"repro/internal/dvfs.Table.MustSubdivide": {0: {atLeast2, "subdivision steps"}},
	"repro/internal/dvfs.Table.IndexOf":       {0: {nonneg, "frequency (Hz)"}},
	"repro/internal/dvfs.Table.ByFreq":        {0: {nonneg, "frequency (Hz)"}},
	"repro/internal/dvfs.Table.ClosestTo":     {0: {nonneg, "frequency (Hz)"}},
	"repro/internal/dvfs.Table.VoltageAt":     {0: {nonneg, "frequency (Hz)"}},

	// machine: work quanta (cycles, flops, rounds, bytes, idle time)
	// are magnitudes; the operating-point setter takes an index.
	"repro/internal/machine.Node.Compute":                {1: {nonneg, "cycle count"}},
	"repro/internal/machine.Node.ComputeFlops":           {1: {nonneg, "flop count"}},
	"repro/internal/machine.Node.MemoryRounds":           {1: {nonneg, "access count"}},
	"repro/internal/machine.Node.L2Rounds":               {1: {nonneg, "access count"}},
	"repro/internal/machine.Node.CopyBytes":              {1: {nonneg, "byte count"}},
	"repro/internal/machine.Node.CopyCycles":             {1: {nonneg, "cycle count"}},
	"repro/internal/machine.Node.IdleFor":                {1: {nonneg, "idle duration"}},
	"repro/internal/machine.Node.SetOperatingPointIndex": {1: {nonneg, "operating-point index"}},

	// netsim: ports, sizes, and booking times are magnitudes; a
	// switch needs at least one port.
	"repro/internal/netsim.New":                      {1: {atLeast1, "port count"}},
	"repro/internal/netsim.Switch.Send":              {0: {nonneg, "source port"}, 1: {nonneg, "destination port"}, 2: {nonneg, "message size (bytes)"}, 3: {nonneg, "send time"}},
	"repro/internal/netsim.Switch.Accept":            {0: {nonneg, "source port"}, 1: {nonneg, "destination port"}, 2: {nonneg, "message size (bytes)"}, 3: {nonneg, "arrival time"}},
	"repro/internal/netsim.Switch.Transfer":          {0: {nonneg, "source port"}, 1: {nonneg, "destination port"}, 2: {nonneg, "message size (bytes)"}},
	"repro/internal/netsim.Switch.Control":           {0: {nonneg, "source port"}, 1: {nonneg, "destination port"}, 2: {nonneg, "message size (bytes)"}, 3: {nonneg, "send time"}},
	"repro/internal/netsim.Switch.SerializationTime": {0: {nonneg, "message size (bytes)"}},

	// trace and sim: the simulated clock never runs backwards past
	// zero, and a group needs at least one shard and one tick of
	// lookahead.
	"repro/internal/trace.Writer.Tick":      {0: {nonneg, "tick time"}},
	"repro/internal/sim.Engine.Schedule":    {0: {nonneg, "event time"}},
	"repro/internal/sim.Engine.PostArrival": {0: {nonneg, "arrival time"}},
	"repro/internal/sim.Engine.SpawnAt":     {0: {nonneg, "spawn time"}},
	"repro/internal/sim.NewGroup":           {0: {atLeast1, "shard count"}, 1: {atLeast1, "group lookahead"}},
}

// builtinResults are known result ranges of the model's APIs (and a
// few stdlib magnitudes), used as call summaries so caller analysis
// stays precise across package boundaries.
var builtinResults = map[string][]dataflow.Interval{
	"repro/internal/dvfs.Table.IndexOf":                   {dataflow.AtLeast(-1)},
	"repro/internal/dvfs.Table.Len":                       {nonneg},
	"repro/internal/dvfs.OperatingPoint.CyclesToDuration": {nonneg},
	"repro/internal/power.CPUModel.Dynamic":               {nonneg},
	"repro/internal/power.CPUModel.Power":                 {nonneg},
	"repro/internal/machine.Node.OPIndex":                 {nonneg},
	"repro/internal/netsim.Switch.Ports":                  {nonneg},
	"repro/internal/netsim.Switch.MinLatency":             {nonneg},
	"repro/internal/netsim.Switch.SerializationTime":      {nonneg},
	"repro/internal/sim.Engine.Now":                       {nonneg},
	"repro/internal/sim.Group.Now":                        {nonneg},
	"repro/internal/sim.Proc.Now":                         {nonneg},
	"repro/internal/sim.Group.Lookahead":                  {nonneg},
	"repro/internal/sim.Group.Size":                       {nonneg},
	"math.Abs":                                            {nonneg},
	"math.Sqrt":                                           {nonneg},
}

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	c := &checker{
		pass:    pass,
		g:       callgraph.Build(pass.Fset, files, pass.TypesInfo),
		sums:    make(map[*types.Func][]dataflow.Interval),
		running: make(map[*types.Func]bool),
		decls:   make(map[*types.Func]*declared),
		byLine:  make(map[*ast.File]map[int]*rangeDirective),
	}
	c.parseDirectives(files)
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil {
					c.claimDoc(f, fd, fn)
				}
			}
		}
	}
	for _, d := range c.dirs {
		switch {
		case d.bad != "":
			pass.Reportf(d.pos, "malformed //lint:range directive: %s", d.bad)
		case !d.claimed:
			pass.Reportf(d.pos, "dangling //lint:range directive: not in a function doc comment")
		}
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			res := dataflow.RunIntervals(fd.Type, fd.Body, c.config(c.seedFor(fn)))
			c.checkReturns(fd, fn, res)
			c.checkBody(fd, res)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	g       *callgraph.Graph
	sums    map[*types.Func][]dataflow.Interval
	running map[*types.Func]bool
	decls   map[*types.Func]*declared
	dirs    []*rangeDirective
	byLine  map[*ast.File]map[int]*rangeDirective
}

// declared aggregates the //lint:range contracts bound to one
// function: per-parameter-index, receiver, and first-result bounds.
type declared struct {
	params map[int]contract
	recv   *contract
	result *contract
}

// rangeDirective is one //lint:range comment, before binding.
type rangeDirective struct {
	pos     token.Pos
	target  string
	iv      dataflow.Interval
	bad     string // non-empty when malformed
	claimed bool
}

// parseDirectives collects every //lint:range comment, indexed by file
// and line so claimDoc can bind doc-comment lines to their functions.
func (c *checker) parseDirectives(files []*ast.File) {
	for _, f := range files {
		byLine := make(map[int]*rangeDirective)
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				rest, ok := strings.CutPrefix(cm.Text, "//lint:range")
				if !ok {
					continue
				}
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				d := &rangeDirective{pos: cm.Pos()}
				if fields := strings.Fields(rest); len(fields) < 2 {
					d.bad = "want //lint:range <param|recv|result> [lo,hi]"
				} else {
					d.target = fields[0]
					d.iv, d.bad = parseBounds(strings.Join(fields[1:], ""))
				}
				byLine[c.pass.Fset.Position(cm.Pos()).Line] = d
				c.dirs = append(c.dirs, d)
			}
		}
		c.byLine[f] = byLine
	}
}

// parseBounds parses "[lo,hi]" with numeric, inf, +inf, or -inf
// endpoints. The second result is an error description, empty on
// success.
func parseBounds(s string) (dataflow.Interval, string) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return dataflow.Interval{}, "bounds must look like [lo,hi]"
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	if len(parts) != 2 {
		return dataflow.Interval{}, "bounds must have exactly two endpoints"
	}
	lo, ok1 := parseBound(parts[0])
	hi, ok2 := parseBound(parts[1])
	if !ok1 || !ok2 {
		return dataflow.Interval{}, "endpoints must be numbers, inf, +inf, or -inf"
	}
	if lo > hi {
		return dataflow.Interval{}, "empty range: lo > hi"
	}
	return dataflow.Interval{Lo: lo, Hi: hi}, ""
}

func parseBound(s string) (float64, bool) {
	switch s = strings.TrimSpace(s); s {
	case "inf", "+inf":
		return math.Inf(1), true
	case "-inf":
		return math.Inf(-1), true
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// claimDoc binds the //lint:range lines of fd's doc comment to fn,
// validating each target against the signature.
func (c *checker) claimDoc(f *ast.File, fd *ast.FuncDecl, fn *types.Func) {
	if fd.Doc == nil {
		return
	}
	byLine := c.byLine[f]
	sig := fn.Type().(*types.Signature)
	for _, cm := range fd.Doc.List {
		d := byLine[c.pass.Fset.Position(cm.Pos()).Line]
		if d == nil {
			continue
		}
		d.claimed = true
		if d.bad != "" {
			continue // reported by the malformed sweep
		}
		switch d.target {
		case "recv":
			if r := sig.Recv(); r == nil || !isNumeric(r.Type()) {
				c.pass.Reportf(d.pos, "//lint:range recv on %s, which has no numeric receiver", fn.Name())
				continue
			}
			c.declFor(fn).recv = &contract{d.iv, "receiver"}
		case "result":
			if sig.Results().Len() == 0 || !isNumeric(sig.Results().At(0).Type()) {
				c.pass.Reportf(d.pos, "//lint:range result on %s, whose first result is not numeric", fn.Name())
				continue
			}
			c.declFor(fn).result = &contract{d.iv, "result"}
		default:
			idx := -1
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i).Name() == d.target {
					idx = i
					break
				}
			}
			if idx < 0 {
				c.pass.Reportf(d.pos, "//lint:range names %q, which is not a parameter of %s", d.target, fn.Name())
				continue
			}
			if !isNumeric(sig.Params().At(idx).Type()) {
				c.pass.Reportf(d.pos, "//lint:range on non-numeric parameter %q of %s", d.target, fn.Name())
				continue
			}
			c.declFor(fn).params[idx] = contract{d.iv, "parameter " + strconv.Quote(d.target)}
		}
	}
}

func (c *checker) declFor(fn *types.Func) *declared {
	dc := c.decls[fn]
	if dc == nil {
		dc = &declared{params: make(map[int]contract)}
		c.decls[fn] = dc
	}
	return dc
}

// isNumeric reports whether t (possibly a named type like sim.Time)
// has a real-numeric underlying type.
func isNumeric(t types.Type) bool {
	bt, ok := t.Underlying().(*types.Basic)
	return ok && bt.Info()&types.IsNumeric != 0 && bt.Info()&types.IsComplex == 0
}

func (c *checker) config(seed map[*types.Var]dataflow.Interval) *dataflow.IntervalAnalysis {
	return &dataflow.IntervalAnalysis{
		Info: c.pass.TypesInfo,
		Fset: c.pass.Fset,
		Call: c.effect,
		Seed: seed,
	}
}

// seedFor turns fn's declared param/recv contracts into engine seeds,
// so the body is analyzed under its own preconditions.
func (c *checker) seedFor(fn *types.Func) map[*types.Var]dataflow.Interval {
	dc := c.decls[fn]
	if dc == nil {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	seed := make(map[*types.Var]dataflow.Interval)
	for i, ct := range dc.params {
		if i < sig.Params().Len() {
			seed[sig.Params().At(i)] = ct.iv
		}
	}
	if dc.recv != nil && sig.Recv() != nil {
		seed[sig.Recv()] = dc.recv.iv
	}
	return seed
}

// effect is the interval engine's call hook: built-in result ranges
// first, then memoized same-package summaries; anything else falls to
// the engine's conservative default.
func (c *checker) effect(call *ast.CallExpr, recv dataflow.Interval, args []dataflow.Interval) (dataflow.IntervalEffect, bool) {
	fn := dataflow.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return dataflow.IntervalEffect{}, false
	}
	if rs, ok := builtinResults[dataflow.FuncKey(fn)]; ok {
		return dataflow.IntervalEffect{Results: rs, NoMutation: true}, true
	}
	if fn.Pkg() == c.pass.Pkg {
		if n := c.g.NodeOf(fn); n != nil && n.Decl != nil {
			return dataflow.IntervalEffect{Results: c.summaryOf(fn, n)}, true
		}
	}
	return dataflow.IntervalEffect{}, false
}

// summaryOf computes (memoized) the result intervals of a same-package
// function: run the body under its declared param contracts, join the
// per-result intervals across return sites, and strengthen the first
// result with any declared result contract. Cycles resolve to Top.
func (c *checker) summaryOf(fn *types.Func, n *callgraph.Node) []dataflow.Interval {
	if s, ok := c.sums[fn]; ok {
		return s
	}
	sig := fn.Type().(*types.Signature)
	arity := sig.Results().Len()
	if c.running[fn] || arity == 0 {
		return nil
	}
	c.running[fn] = true
	defer delete(c.running, fn)

	res := dataflow.RunIntervals(n.Decl.Type, n.Body, c.config(c.seedFor(fn)))
	var out []dataflow.Interval
	for _, ret := range res.Returns {
		if len(ret.Results) != arity {
			continue
		}
		if out == nil {
			out = append([]dataflow.Interval(nil), ret.Results...)
			continue
		}
		for i := range out {
			out[i] = out[i].Join(ret.Results[i])
		}
	}
	if out == nil {
		out = make([]dataflow.Interval, arity)
		for i := range out {
			out[i] = dataflow.TopInterval()
		}
	}
	if dc := c.decls[fn]; dc != nil && dc.result != nil {
		if m, ok := out[0].Meet(dc.result.iv); ok {
			out[0] = m
		}
	}
	c.sums[fn] = out
	return out
}

// checkReturns checks every return site of fd against its declared
// result contract.
func (c *checker) checkReturns(fd *ast.FuncDecl, fn *types.Func, res *dataflow.IntervalResult) {
	dc := c.decls[fn]
	if dc == nil || dc.result == nil {
		return
	}
	for _, ret := range res.Returns {
		if len(ret.Results) == 0 {
			continue
		}
		c.checkOne(ret.Pos, ret.Results[0], dc.result.iv,
			"result of "+funcDisplayLocal(fd), "declared //lint:range")
	}
}

// checkBody walks fd for call-argument contracts and zero divisors.
func (c *checker) checkBody(fd *ast.FuncDecl, res *dataflow.IntervalResult) {
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			c.checkCall(n, res)
		case *ast.BinaryExpr:
			if n.Op == token.QUO || n.Op == token.REM {
				c.checkDivisor(n.Y, res)
			}
		case *ast.AssignStmt:
			if (n.Tok == token.QUO_ASSIGN || n.Tok == token.REM_ASSIGN) && len(n.Rhs) == 1 {
				c.checkDivisor(n.Rhs[0], res)
			}
		}
		return true
	})
}

// checkCall checks call arguments against built-in physics contracts
// and (same-package) declared //lint:range contracts, and the
// receiver expression against a declared recv contract.
func (c *checker) checkCall(call *ast.CallExpr, res *dataflow.IntervalResult) {
	fn := dataflow.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	want := builtinArgs[dataflow.FuncKey(fn)]
	var dc *declared
	if fn.Pkg() == c.pass.Pkg {
		dc = c.decls[fn]
	}
	if want == nil && dc == nil {
		return
	}
	display := funcDisplay(fn)
	check := func(idx int, ct contract, why string) {
		if idx >= len(call.Args) {
			return
		}
		if iv, ok := res.Expr[call.Args[idx]]; ok {
			c.checkOne(call.Args[idx].Pos(), iv, ct.iv, ct.what+" passed to "+display, why)
		}
	}
	for idx, ct := range want {
		if dc != nil {
			if _, dup := dc.params[idx]; dup {
				continue // the declared contract wins
			}
		}
		check(idx, ct, "required range")
	}
	if dc == nil {
		return
	}
	for idx, ct := range dc.params {
		check(idx, ct, "declared //lint:range")
	}
	if dc.recv != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if iv, ok := res.Expr[sel.X]; ok {
				c.checkOne(sel.X.Pos(), iv, dc.recv.iv, "receiver of "+display, "declared //lint:range")
			}
		}
	}
}

// checkDivisor reports divisors provably zero, or possibly zero with
// finite evidence on both sides (a half-open interval like [0, +inf)
// says nothing about the value and stays silent). For float divisors
// the zero must sit strictly inside the interval: strict float
// comparisons refine to closed bounds (no epsilon to step by), so an
// endpoint exactly at zero is usually a `d < 1` guard seen as d <= 1,
// not evidence of a reachable zero. Integer refinement steps by one,
// so a zero endpoint there is real and stays reported.
func (c *checker) checkDivisor(y ast.Expr, res *dataflow.IntervalResult) {
	tv, ok := c.pass.TypesInfo.Types[y]
	if !ok || tv.Type == nil || !isNumeric(tv.Type) {
		return
	}
	iv, ok := res.Expr[y]
	if !ok {
		return
	}
	bt := tv.Type.Underlying().(*types.Basic)
	integral := bt.Info()&types.IsInteger != 0
	straddles := iv.Lo < 0 && iv.Hi > 0
	if integral {
		straddles = iv.Contains(0)
	}
	switch {
	case iv.Lo == 0 && iv.Hi == 0:
		c.pass.Reportf(y.Pos(), "divisor is provably zero (interval %v)", iv)
	case straddles && !math.IsInf(iv.Lo, -1) && !math.IsInf(iv.Hi, 1):
		c.pass.Reportf(y.Pos(), "divisor may be zero (interval %v); guard the denominator", iv)
	}
}

// checkOne reports got escaping want: "provably outside" when the
// intervals are disjoint, "may" when a finite endpoint crosses the
// bound. Infinite endpoints from widening are not evidence.
func (c *checker) checkOne(pos token.Pos, got, want dataflow.Interval, what, why string) {
	switch {
	case got.Hi < want.Lo || got.Lo > want.Hi:
		c.pass.Reportf(pos, "%s is provably outside its %s %v: interval %v",
			what, why, want, got)
	case got.Lo < want.Lo && !math.IsInf(got.Lo, -1):
		c.pass.Reportf(pos, "%s may fall below its %s %v: interval %v; clamp or guard first",
			what, why, want, got)
	case got.Hi > want.Hi && !math.IsInf(got.Hi, 1):
		c.pass.Reportf(pos, "%s may exceed its %s %v: interval %v; clamp or guard first",
			what, why, want, got)
	}
}

// funcDisplay renders "(power.Integrator).SetPower" or
// "power.NewCPUModel" for diagnostics.
func funcDisplay(fn *types.Func) string {
	pkg := fn.Pkg().Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + pkg + "." + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// funcDisplayLocal renders "Run" or "(*Runner).Run" from the decl.
func funcDisplayLocal(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
