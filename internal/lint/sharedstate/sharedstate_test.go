package sharedstate_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/sharedstate"
)

func TestSharedState(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, sharedstate.Analyzer,
		"fixtures/sharedstate",
		"repro/internal/sim/statefixture",
	)
}
