// Package sharedstate defines the analyzer that turns the repository's
// seq-vs-parallel byte-equality tests from a sampled property into a
// verified one. Since internal/exec fans simulation cells out across
// worker goroutines, a run is only a pure function of (config, seed) if
// nothing a worker executes writes shared memory: no package-level
// scratch state, no stores through variables captured from the
// submitting goroutine (other than the worker's own index slot).
//
// Roots are chosen per package and facts propagate over the
// package-local call graph (internal/lint/callgraph):
//
//   - every function literal passed as the fn argument to exec.Map is a
//     worker root: everything it reaches in the same package must not
//     write package-level variables unguarded, and the literal itself
//     must not write captured memory except through its own index
//     parameter;
//   - in the simulator hot-path packages (internal/sim and everything a
//     running cell executes: machine, cluster, dvs, dvfs, workloads,
//     mpi, netsim, power, meter, powerpack, trace, core, stats,
//     campaign), every exported function and method is a root, because
//     any of them may be called from inside a concurrently running
//     cell. This is how the argument closes module-wide without
//     whole-program analysis: each package is policed with its own
//     roots in its own pass.
//
// Writes that go through sync/atomic appear as method or function calls
// rather than stores, so they pass naturally; a store lexically
// preceded by a sync.Mutex/RWMutex Lock in the same function counts as
// guarded. Anything else needs //lint:allow sharedstate (reason).
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer flags unsynchronized shared-state writes reachable from
// exec.Map worker closures or simulator hot-path entry points.
var Analyzer = &analysis.Analyzer{
	Name: "sharedstate",
	Doc: "forbid unsynchronized writes to package-level variables or captured " +
		"memory in code reachable from exec.Map workers or the sim hot path; " +
		"use sync/atomic, a mutex, or per-cell state",
	Run: run,
}

// execPkg is the worker-pool package whose Map calls mark worker roots.
const execPkg = "repro/internal/exec"

// hotPathPkgs are the packages a concurrently running simulation cell
// executes; every exported function in them is treated as reachable
// from a worker. Prefix match, so subpackages inherit the restriction.
var hotPathPkgs = []string{
	"repro/internal/sim",
	"repro/internal/machine",
	"repro/internal/cluster",
	"repro/internal/dvs",
	"repro/internal/dvfs",
	"repro/internal/workloads",
	"repro/internal/mpi",
	"repro/internal/netsim",
	"repro/internal/power",
	"repro/internal/meter",
	"repro/internal/powerpack",
	"repro/internal/trace",
	"repro/internal/core",
	"repro/internal/stats",
	"repro/internal/campaign",
}

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	g := callgraph.Build(pass.Fset, files, pass.TypesInfo)

	// Collect roots: exec.Map worker closures first (they also get the
	// captured-write check), then hot-path exported entry points.
	workers := findWorkers(files, pass.TypesInfo, g)
	roots := make([]*callgraph.Node, 0, len(workers))
	rootWhy := make(map[*callgraph.Node]string)
	for _, w := range workers {
		roots = append(roots, w.node)
		rootWhy[w.node] = "exec.Map worker " + w.node.Name
	}
	if isHotPath(pass.Pkg.Path()) {
		for _, n := range g.Nodes {
			if n.Fn != nil && n.Fn.Exported() {
				roots = append(roots, n)
				rootWhy[n] = "hot-path entry " + n.Name
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Interprocedural: unguarded package-level writes anywhere
	// reachable from a root.
	reached := g.Reachable(roots...)
	for node, root := range reached {
		for _, w := range node.GlobalWrites {
			if w.Guarded {
				continue
			}
			pass.Reportf(w.Pos, "unsynchronized write to package-level variable %s in %s "+
				"(reachable from %s); use sync/atomic, a mutex, or per-cell state",
				w.Var.Name(), node.Name, rootWhy[root])
		}
	}

	// Worker-local: captured-memory writes inside the worker literal
	// (including its nested closures), exempting the worker's own
	// index slot and mutex-guarded stores.
	for _, w := range workers {
		checkCaptured(pass, g, w)
	}
	return nil
}

func isHotPath(path string) bool {
	for _, p := range hotPathPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// worker is one closure passed as fn to exec.Map.
type worker struct {
	lit  *ast.FuncLit
	node *callgraph.Node
}

// findWorkers locates every call to exec.Map and resolves its fn
// argument: a function literal becomes a worker; a named same-package
// function becomes a plain root (no captured state to check).
func findWorkers(files []*ast.File, info *types.Info, g *callgraph.Graph) []worker {
	var out []worker
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isExecMap(info, call) || len(call.Args) != 3 {
				return true
			}
			switch arg := ast.Unparen(call.Args[2]).(type) {
			case *ast.FuncLit:
				if node := g.LitNode(arg); node != nil {
					out = append(out, worker{lit: arg, node: node})
				}
			case *ast.Ident:
				if fn, ok := info.Uses[arg].(*types.Func); ok {
					if node := g.NodeOf(fn); node != nil {
						out = append(out, worker{node: node})
					}
				}
			}
			return true
		})
	}
	return out
}

// isExecMap reports whether call invokes repro/internal/exec.Map,
// including explicitly instantiated forms like exec.Map[int].
func isExecMap(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Map" {
		return false
	}
	path, ok := analysis.UsedPackage(info, sel)
	return ok && path == execPkg
}

// checkCaptured flags stores inside the worker literal (or its nested
// closures) whose target is declared outside the literal, unless the
// store goes to the worker's own index slot, is mutex-guarded, or hits
// a package-level variable (already reported by the reachability pass).
func checkCaptured(pass *analysis.Pass, g *callgraph.Graph, w worker) {
	if w.lit == nil {
		return
	}
	params := paramObjs(pass.TypesInfo, w.lit)
	check := func(lhs ast.Expr, pos ast.Node) {
		v := callgraph.BaseVar(lhs, pass.TypesInfo)
		if v == nil || v.Pkg() == nil {
			return
		}
		if v.Parent() == v.Pkg().Scope() {
			return // package-level: the reachability pass owns it
		}
		if v.Pos() >= w.lit.Pos() && v.Pos() < w.lit.End() {
			return // declared inside the worker: worker-private
		}
		if indexedByParam(pass.TypesInfo, lhs, params) {
			return // the worker's own slot: out[i] = v
		}
		if lockPrecedes(pass.TypesInfo, w.lit, pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), "exec.Map worker writes captured variable %s; workers may "+
			"only write their own index's slot — return the value, use the result "+
			"slice, or synchronize", v.Name())
	}
	ast.Inspect(w.lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				check(lhs, n)
			}
		case *ast.IncDecStmt:
			check(n.X, n)
		}
		return true
	})
}

// paramObjs returns the objects of the literal's parameters (for a Map
// worker, the index parameter).
func paramObjs(info *types.Info, lit *ast.FuncLit) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out[v] = true
			}
		}
	}
	return out
}

// indexedByParam reports whether the lvalue chain contains an index
// expression whose index mentions one of the worker's parameters —
// the sanctioned out[i] = v pattern (including out[i].Field = v and
// out[f(i)] = v).
func indexedByParam(info *types.Info, lhs ast.Expr, params map[*types.Var]bool) bool {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.IndexExpr:
			if mentionsAny(info, x.Index, params) {
				return true
			}
			lhs = x.X
		default:
			return false
		}
	}
}

func mentionsAny(info *types.Info, e ast.Expr, params map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && params[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockPrecedes reports whether a sync mutex Lock/RLock call inside the
// worker literal lexically precedes pos.
func lockPrecedes(info *types.Info, lit *ast.FuncLit, pos token.Pos) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if fn.Name() == "Lock" || fn.Name() == "RLock" {
			found = true
		}
		return !found
	})
	return found
}
