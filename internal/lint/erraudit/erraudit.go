// Package erraudit defines the analyzer that keeps the module's error
// returns meaningful: a call to an intra-module function whose result
// list includes an error must have that error consumed. Dropping the
// whole result list (a bare call statement) is flagged; explicitly
// assigning the error to the blank identifier is flagged too, unless a
// "//lint:allow erraudit (<reason>)" directive explains why discarding
// is sound. Cross-module calls (stdlib, mostly fmt printing) are out of
// scope — their error contracts are not this repository's to police,
// and flagging fmt.Println would bury the signal.
package erraudit

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags discarded error returns from intra-module calls.
var Analyzer = &analysis.Analyzer{
	Name: "erraudit",
	Doc: "forbid discarding error returns from intra-module calls, either by " +
		"ignoring the result list or assigning the error to _; handle it, " +
		"return it, or suppress with //lint:allow erraudit (reason)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	modulePrefix := moduleOf(pass.Pkg.Path())
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := dropsError(pass.TypesInfo, call, modulePrefix); ok {
					pass.Reportf(call.Pos(), "result of %s ignored but it returns an error; "+
						"handle it, return it, or assign with //lint:allow erraudit (reason)",
						name)
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, n, modulePrefix)
			case *ast.GoStmt:
				if name, ok := dropsError(pass.TypesInfo, n.Call, modulePrefix); ok {
					pass.Reportf(n.Call.Pos(), "goroutine discards the error returned by %s; "+
						"collect it through a channel or error slot", name)
				}
			case *ast.DeferStmt:
				if name, ok := dropsError(pass.TypesInfo, n.Call, modulePrefix); ok {
					pass.Reportf(n.Call.Pos(), "deferred call discards the error returned by %s; "+
						"wrap it in a closure that records the error", name)
				}
			}
			return true
		})
	}
	return nil
}

// checkBlankAssign flags assignments that bind an error-typed result
// from an intra-module call to the blank identifier.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt, modulePrefix string) {
	// Multi-value form: v, _ := f() — one call, results spread over Lhs.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := intraModuleCallee(pass.TypesInfo, call, modulePrefix)
		if !ok {
			return
		}
		tuple, ok := pass.TypesInfo.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < tuple.Len() && i < len(as.Lhs); i++ {
			if !isBlank(as.Lhs[i]) || !isErrorType(tuple.At(i).Type()) {
				continue
			}
			pass.Reportf(as.Lhs[i].Pos(), "error returned by %s assigned to _; handle it "+
				"or suppress with //lint:allow erraudit (reason)", name)
		}
		return
	}
	// Parallel form: _ = f() with a single error result.
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		name, ok := intraModuleCallee(pass.TypesInfo, call, modulePrefix)
		if !ok {
			continue
		}
		if t := pass.TypesInfo.TypeOf(call); t != nil && isErrorType(t) {
			pass.Reportf(as.Lhs[i].Pos(), "error returned by %s assigned to _; handle it "+
				"or suppress with //lint:allow erraudit (reason)", name)
		}
	}
}

// dropsError reports whether call discards a result list containing an
// error, returning the callee's display name.
func dropsError(info *types.Info, call *ast.CallExpr, modulePrefix string) (string, bool) {
	name, ok := intraModuleCallee(info, call, modulePrefix)
	if !ok {
		return "", false
	}
	switch t := info.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return name, true
			}
		}
	case nil:
	default:
		if isErrorType(t) {
			return name, true
		}
	}
	return "", false
}

// intraModuleCallee resolves call's static callee and reports whether
// it belongs to this module (same first path segment as the analyzed
// package). Interface methods and function values resolve through
// their declared object, which still carries the defining package.
func intraModuleCallee(info *types.Info, call *ast.CallExpr, modulePrefix string) (string, bool) {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		return "", false
	}
	f, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	pkg := f.Pkg()
	if pkg == nil || moduleOf(pkg.Path()) != modulePrefix {
		return "", false
	}
	return f.Name(), true
}

// moduleOf returns the first segment of an import path — the module
// identity used to separate intra-module calls from dependencies.
func moduleOf(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
