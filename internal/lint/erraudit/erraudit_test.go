package erraudit_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/erraudit"
)

func TestErrAudit(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, erraudit.Analyzer, "fixtures/erraudit")
}
