// Package profgate defines the profile-guided perf-gate analyzer. The
// hotalloc analyzer enforces allocation-freedom on everything reachable
// from a //lint:hotpath annotation — but the annotations themselves
// were hand-placed, so two failure modes rot silently: a function that
// benchmark CPU profiles show to be hot but that no annotated root
// reaches (the allocation gate is not guarding it), and an annotated
// subtree that no profile touches anymore (enforcement effort pinned to
// a path that stopped being hot). profgate closes the loop: it parses
// the pprof CPU profiles that `make bench-profile` emits, attributes
// flat and cumulative samples to this package's declared functions
// (closure and inline frames fold into their declaring function), joins
// them against the //lint:hotpath reachability set from
// internal/lint/callgraph, and reports
//
//   - hot-but-unannotated functions: cumulative share ≥ the cum
//     threshold AND flat share ≥ the flat threshold in at least one
//     profile, yet not reachable from any annotated root. The flat
//     floor keeps high-level drivers (whose cumulative share is large
//     but who burn no CPU themselves) out of the report; the fix for
//     those lives in whichever callee holds the flat time.
//   - stale roots: an annotated root whose entire reachable subtree
//     stays below the cold threshold in every profile that otherwise
//     attributes samples to this package.
//
// Profiles are supplied out of band so the analyzer is a no-op in
// ordinary `make lint`/`go vet` runs: the REPOLINT_PROFILES environment
// variable names a directory of .pprof files or a comma-separated file
// list (see `make profgate`). Thresholds are percentages of the
// profile's total samples, overridable with REPOLINT_PROFGATE_CUM,
// REPOLINT_PROFGATE_FLAT, and REPOLINT_PROFGATE_COLD. Findings are
// suppressed with the usual grammar:
//
//	//lint:allow profgate (reason)
package profgate

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/hotalloc"
)

// Analyzer joins benchmark CPU profiles against //lint:hotpath
// reachability.
var Analyzer = &analysis.Analyzer{
	Name: "profgate",
	Doc: "join benchmark CPU profiles (REPOLINT_PROFILES) against //lint:hotpath " +
		"reachability: report hot functions no annotated root guards, and " +
		"annotated roots that are cold in every profile",
	Run: run,
}

// Default thresholds, as percentages of a profile's total samples.
const (
	// DefaultCumPercent is the cumulative share at or above which a
	// function counts as hot.
	DefaultCumPercent = 5.0
	// DefaultFlatPercent is the flat (self) share a hot function must
	// also reach — drivers with big cumulative but ~zero self time are
	// not reported; their hot callees are.
	DefaultFlatPercent = 1.0
	// DefaultColdPercent is the cumulative share below which an
	// annotated subtree counts as cold.
	DefaultColdPercent = 0.5
)

// profiles are cached per source spec: the standalone driver runs the
// analyzer once per package of the module and must not re-read and
// re-decode the same files each time.
var (
	cacheMu sync.Mutex
	cache   = map[string][]*Profile{}
)

func run(pass *analysis.Pass) error {
	spec := os.Getenv("REPOLINT_PROFILES")
	if spec == "" {
		return nil
	}
	profs, err := loadProfiles(spec)
	if err != nil {
		return err
	}
	if len(profs) == 0 {
		return nil
	}

	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}

	cum := envPercent("REPOLINT_PROFGATE_CUM", DefaultCumPercent)
	flat := envPercent("REPOLINT_PROFGATE_FLAT", DefaultFlatPercent)
	cold := envPercent("REPOLINT_PROFGATE_COLD", DefaultColdPercent)

	g := callgraph.Build(pass.Fset, files, pass.TypesInfo)
	roots, _ := hotalloc.FindRoots(pass, files, g) // dangling markers are hotalloc's report
	reached := g.Reachable(roots...)

	// Guarded covers a declared function when its node — or any literal
	// it lexically contains, transitively — is reachable from a root:
	// samples in a closure fold into the declaring function, so
	// reachability must fold the same way.
	guarded := make(map[string]bool)
	for node := range reached {
		guarded[canonName(topDecl(g, node).Name)] = true
	}

	// Attribute each profile to this package's functions.
	pkgPath := pass.Pkg.Path()
	type metrics struct{ flatPct, cumPct float64 }
	hottest := make(map[string]metrics) // decl -> best (cum-dominant) metrics over all profiles
	hotIn := make(map[string]string)    // decl -> profile name where thresholds were met
	covering := 0                       // profiles with ≥1 sample attributed to this package

	// Per-profile cumulative share for the stale-root check.
	perProfileCum := make([]map[string]float64, len(profs))

	for pi, p := range profs {
		flatBy, cumBy := attribute(p, pkgPath)
		if len(cumBy) == 0 {
			continue
		}
		covering++
		perProfileCum[pi] = make(map[string]float64, len(cumBy))
		for name, c := range cumBy {
			fPct := 100 * float64(flatBy[name]) / float64(p.Total)
			cPct := 100 * float64(c) / float64(p.Total)
			perProfileCum[pi][name] = cPct
			if cPct > hottest[name].cumPct {
				hottest[name] = metrics{flatPct: fPct, cumPct: cPct}
			}
			if cPct >= cum && fPct >= flat && hotIn[name] == "" {
				hotIn[name] = p.Name
			}
		}
	}
	if covering == 0 {
		return nil // no profile exercises this package at all
	}

	// Hot-but-unannotated: report at the function's declaration.
	type finding struct {
		node *callgraph.Node
		name string
	}
	var hot []finding
	for _, node := range g.Nodes {
		if node.Decl == nil {
			continue
		}
		name := canonName(node.Name)
		prof := hotIn[name]
		if prof == "" || guarded[name] {
			continue
		}
		hot = append(hot, finding{node, name})
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].node.Decl.Pos() < hot[j].node.Decl.Pos() })
	for _, f := range hot {
		m := hottest[f.name]
		pass.Reportf(f.node.Decl.Pos(),
			"hot path not annotated: %s has %.1f%% cumulative (%.1f%% flat) CPU in profile %s "+
				"but is not reachable from any //lint:hotpath root; annotate it (or the caller that "+
				"owns this path) so hotalloc guards it",
			f.node.Name, m.cumPct, m.flatPct, hotIn[f.name])
	}

	// Stale roots: every covering profile leaves the root's whole
	// subtree below the cold threshold.
	for _, root := range roots {
		subtree := g.Reachable(root)
		stale := true
		for pi := range profs {
			if perProfileCum[pi] == nil {
				continue
			}
			for node := range subtree {
				if perProfileCum[pi][canonName(topDecl(g, node).Name)] >= cold {
					stale = false
					break
				}
			}
			if !stale {
				break
			}
		}
		if stale {
			pos := root.Body.Pos()
			if root.Decl != nil {
				pos = root.Decl.Pos()
			}
			pass.Reportf(pos,
				"stale //lint:hotpath root: %s and everything it reaches stays below %.1f%% "+
					"cumulative CPU in all %d profile(s) covering %s; retire the annotation or "+
					"bench-profile the workload that exercises it",
				root.Name, cold, covering, pkgPath)
		}
	}
	return nil
}

// loadProfiles resolves spec — a directory of .pprof files or a
// comma-separated list of files — and parses each profile once per
// process.
func loadProfiles(spec string) ([]*Profile, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := cache[spec]; ok {
		return p, nil
	}
	var paths []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		st, err := os.Stat(part)
		if err != nil {
			return nil, fmt.Errorf("REPOLINT_PROFILES: %v", err)
		}
		if st.IsDir() {
			entries, err := os.ReadDir(part)
			if err != nil {
				return nil, fmt.Errorf("REPOLINT_PROFILES: %v", err)
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".pprof") {
					paths = append(paths, filepath.Join(part, e.Name()))
				}
			}
		} else {
			paths = append(paths, part)
		}
	}
	sort.Strings(paths)
	var profs []*Profile
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("REPOLINT_PROFILES: %v", err)
		}
		p, err := ParseProfile(filepath.Base(path), data)
		if err != nil {
			return nil, err
		}
		profs = append(profs, p)
	}
	cache[spec] = profs
	return profs, nil
}

func envPercent(name string, def float64) float64 {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return def
	}
	return v
}

// attribute computes flat and cumulative sample totals per declared
// function of pkgPath. Flat goes to the sample's leaf frame; cumulative
// counts each declared function once per sample it appears in.
func attribute(p *Profile, pkgPath string) (flat, cum map[string]int64) {
	flat = make(map[string]int64)
	cum = make(map[string]int64)
	seen := make(map[string]bool)
	for _, s := range p.Samples {
		if len(s.Stack) == 0 {
			continue
		}
		if name, ok := declOf(s.Stack[0], pkgPath); ok {
			flat[name] += s.Value
		}
		clear(seen)
		for _, sym := range s.Stack {
			name, ok := declOf(sym, pkgPath)
			if !ok || seen[name] {
				continue
			}
			seen[name] = true
			cum[name] += s.Value
		}
	}
	return flat, cum
}

// declOf maps one runtime symbol name to the canonical name of the
// declared function of pkgPath it belongs to, folding closures
// (".func1", nested ".func1.2"), method-value wrappers ("-fm"),
// goroutine/defer wrappers (".gowrap1", ".deferwrap1"), and generic
// instantiations ("[go.shape.int]") into their declaring function.
// ok is false for symbols of other packages and the runtime.
func declOf(sym, pkgPath string) (name string, ok bool) {
	prefix := pkgPath + "."
	if !strings.HasPrefix(sym, prefix) {
		return "", false
	}
	rest := stripBrackets(sym[len(prefix):])
	rest = strings.TrimSuffix(rest, "-fm")
	segs := strings.Split(rest, ".")
	for len(segs) > 1 && isWrapperSegment(segs[len(segs)-1]) {
		segs = segs[:len(segs)-1]
	}
	return canonName(strings.Join(segs, ".")), true
}

// isWrapperSegment reports whether a dot-separated symbol segment names
// a compiler-generated nested function rather than a declaration.
func isWrapperSegment(s string) bool {
	if s == "" {
		return true
	}
	for _, prefix := range []string{"func", "gowrap", "deferwrap"} {
		if n, found := strings.CutPrefix(s, prefix); found {
			if _, err := strconv.Atoi(n); err == nil {
				return true
			}
		}
	}
	_, err := strconv.Atoi(s)
	return err == nil
}

// stripBrackets removes generic instantiation arguments: a "[...]" span
// and everything inside it (bracket content may itself contain dots and
// brackets).
func stripBrackets(s string) string {
	if !strings.ContainsRune(s, '[') {
		return s
	}
	var b strings.Builder
	depth := 0
	for _, r := range s {
		switch {
		case r == '[':
			depth++
		case r == ']' && depth > 0:
			depth--
		case depth == 0:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// canonName normalizes both runtime symbol suffixes and callgraph
// display names to one comparable form: receiver parentheses dropped,
// so runtime "(*Engine).Schedule" and "Time.Add" meet callgraph
// "(*Engine).Schedule" and "(Time).Add".
func canonName(name string) string {
	name = strings.ReplaceAll(name, "(", "")
	return strings.ReplaceAll(name, ")", "")
}

// topDecl walks containment up from a literal's node to the declared
// function whose body lexically holds it; callgraph names literals
// "Parent$n", so the declaration's name is the prefix before the first
// '$'. Declared nodes return themselves.
func topDecl(g *callgraph.Graph, node *callgraph.Node) *callgraph.Node {
	if node.Lit == nil {
		return node
	}
	base := node.Name
	if i := strings.IndexByte(base, '$'); i >= 0 {
		base = base[:i]
	}
	for _, n := range g.Nodes {
		if n.Decl != nil && n.Name == base {
			return n
		}
	}
	return node
}
