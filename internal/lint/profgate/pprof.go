// pprof.go implements a minimal decoder and encoder for the pprof
// profile.proto wire format, standard library only. The repository
// cannot vendor github.com/google/pprof, and the profgate analyzer
// needs just one projection of a CPU profile: per-sample call stacks of
// fully-qualified function names with a sample value. The decoder
// therefore resolves Sample -> Location -> Line -> Function -> name and
// discards mappings, addresses, labels, and comments; the encoder emits
// exactly the fields the decoder consumes, which is how the synthetic
// fixture profiles under testdata are built and kept round-trippable.
//
// Field numbers follow github.com/google/pprof/proto/profile.proto:
//
//	Profile:  sample_type=1 sample=2 location=4 function=5
//	          string_table=6 default_sample_type=14
//	ValueType: type=1 unit=2
//	Sample:   location_id=1 value=2
//	Location: id=1 line=4
//	Line:     function_id=1 line=2
//	Function: id=1 name=2
package profgate

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// A Sample is one stack sample: the call stack as fully-qualified
// function names, leaf (innermost frame) first, inline frames expanded,
// and the sample's value in the profile's chosen sample type.
type Sample struct {
	Stack []string
	Value int64
}

// A Profile is the projection of one pprof CPU profile that the hot-root
// join consumes.
type Profile struct {
	// Name labels the profile in diagnostics (the source file's
	// basename).
	Name string
	// SampleType and SampleUnit describe the value dimension that was
	// selected (e.g. "cpu"/"nanoseconds" or "samples"/"count").
	SampleType string
	SampleUnit string
	// Samples holds every stack sample with a nonzero value.
	Samples []Sample
	// Total is the sum of all sample values.
	Total int64
}

// ParseProfile decodes a pprof profile (gzipped or raw proto bytes),
// selecting the "cpu" sample type when present, otherwise the profile's
// default_sample_type, otherwise the last sample type — the same
// preference order the pprof tool applies to CPU profiles.
func ParseProfile(name string, data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile %s: %v", name, err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profile %s: %v", name, err)
		}
		data = raw
	}
	p, err := decodeProfile(name, data)
	if err != nil {
		return nil, fmt.Errorf("profile %s: %v", name, err)
	}
	return p, nil
}

// --- protobuf wire-format primitives ---

func readVarint(b []byte) (v uint64, n int, err error) {
	for shift := uint(0); n < len(b); shift += 7 {
		c := b[n]
		n++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, n, nil
		}
		if shift >= 63 {
			return 0, 0, fmt.Errorf("varint overflows uint64")
		}
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// walkFields iterates a protobuf message's fields. For wire type 0 the
// callback receives the varint value; for wire type 2 the payload
// bytes; 64-bit and 32-bit fields are skipped (the profile schema never
// needs them here).
func walkFields(data []byte, fn func(field int, v uint64, payload []byte) error) error {
	for len(data) > 0 {
		key, n, err := readVarint(data)
		if err != nil {
			return err
		}
		data = data[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n, err := readVarint(data)
			if err != nil {
				return err
			}
			data = data[n:]
			if err := fn(field, v, nil); err != nil {
				return err
			}
		case 1:
			if len(data) < 8 {
				return io.ErrUnexpectedEOF
			}
			data = data[8:]
		case 2:
			l, n, err := readVarint(data)
			if err != nil {
				return err
			}
			data = data[n:]
			if uint64(len(data)) < l {
				return io.ErrUnexpectedEOF
			}
			if err := fn(field, 0, data[:l]); err != nil {
				return err
			}
			data = data[l:]
		case 5:
			if len(data) < 4 {
				return io.ErrUnexpectedEOF
			}
			data = data[4:]
		default:
			return fmt.Errorf("unsupported wire type %d", wire)
		}
	}
	return nil
}

// readPacked decodes a repeated varint field that may arrive packed
// (payload) or as a single unpacked element (v).
func readPacked(v uint64, payload []byte) ([]uint64, error) {
	if payload == nil {
		return []uint64{v}, nil
	}
	var out []uint64
	for len(payload) > 0 {
		x, n, err := readVarint(payload)
		if err != nil {
			return nil, err
		}
		payload = payload[n:]
		out = append(out, x)
	}
	return out, nil
}

// --- profile decoding ---

type rawSample struct {
	locIDs []uint64
	values []int64
}

func decodeProfile(name string, data []byte) (*Profile, error) {
	var (
		strtab      []string
		sampleTypes [][2]uint64 // (type idx, unit idx)
		samples     []rawSample
		locFuncs    = make(map[uint64][]uint64) // location id -> function ids, innermost first
		funcNames   = make(map[uint64]uint64)   // function id -> name idx
		defaultType uint64
	)
	err := walkFields(data, func(field int, v uint64, payload []byte) error {
		switch field {
		case 1: // sample_type: ValueType
			var st [2]uint64
			if err := walkFields(payload, func(f int, v uint64, _ []byte) error {
				switch f {
				case 1:
					st[0] = v
				case 2:
					st[1] = v
				}
				return nil
			}); err != nil {
				return err
			}
			sampleTypes = append(sampleTypes, st)
		case 2: // sample
			var s rawSample
			if err := walkFields(payload, func(f int, v uint64, p []byte) error {
				switch f {
				case 1:
					ids, err := readPacked(v, p)
					if err != nil {
						return err
					}
					s.locIDs = append(s.locIDs, ids...)
				case 2:
					vals, err := readPacked(v, p)
					if err != nil {
						return err
					}
					for _, x := range vals {
						s.values = append(s.values, int64(x))
					}
				}
				return nil
			}); err != nil {
				return err
			}
			samples = append(samples, s)
		case 4: // location
			var id uint64
			var fids []uint64
			if err := walkFields(payload, func(f int, v uint64, p []byte) error {
				switch f {
				case 1:
					id = v
				case 4: // line
					var fid uint64
					if err := walkFields(p, func(lf int, lv uint64, _ []byte) error {
						if lf == 1 {
							fid = lv
						}
						return nil
					}); err != nil {
						return err
					}
					fids = append(fids, fid)
				}
				return nil
			}); err != nil {
				return err
			}
			locFuncs[id] = fids
		case 5: // function
			var id, nameIdx uint64
			if err := walkFields(payload, func(f int, v uint64, _ []byte) error {
				switch f {
				case 1:
					id = v
				case 2:
					nameIdx = v
				}
				return nil
			}); err != nil {
				return err
			}
			funcNames[id] = nameIdx
		case 6: // string_table
			strtab = append(strtab, string(payload))
		case 14:
			defaultType = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(sampleTypes) == 0 {
		return nil, fmt.Errorf("no sample types")
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}

	// Pick the value index: "cpu" if present, else default_sample_type,
	// else the last column.
	idx := len(sampleTypes) - 1
	for i, st := range sampleTypes {
		if str(st[0]) == "cpu" {
			idx = i
			break
		}
		if defaultType != 0 && str(st[0]) == str(defaultType) {
			idx = i
		}
	}

	p := &Profile{
		Name:       name,
		SampleType: str(sampleTypes[idx][0]),
		SampleUnit: str(sampleTypes[idx][1]),
	}
	for _, s := range samples {
		if idx >= len(s.values) {
			continue
		}
		v := s.values[idx]
		if v <= 0 {
			continue
		}
		var stack []string
		for _, lid := range s.locIDs {
			for _, fid := range locFuncs[lid] {
				if n := str(funcNames[fid]); n != "" {
					stack = append(stack, n)
				}
			}
		}
		if len(stack) == 0 {
			continue
		}
		p.Samples = append(p.Samples, Sample{Stack: stack, Value: v})
		p.Total += v
	}
	if p.Total == 0 {
		return nil, fmt.Errorf("no samples with a positive %q value", p.SampleType)
	}
	return p, nil
}

// --- profile encoding (synthetic fixtures) ---

// A Builder assembles a synthetic single-value-type profile for tests
// and committed fixtures. Stacks are given leaf-first, matching the
// decoder's Sample.Stack order.
type Builder struct {
	sampleType, unit string
	strings          []string
	stringIdx        map[string]uint64
	funcIdx          map[string]uint64 // name -> function id (== location id)
	funcs            []string          // id-1 -> name
	samples          []Sample
}

// NewBuilder returns a Builder for a profile whose single sample type
// is sampleType/unit (e.g. "samples", "count").
func NewBuilder(sampleType, unit string) *Builder {
	b := &Builder{
		sampleType: sampleType,
		unit:       unit,
		stringIdx:  make(map[string]uint64),
		funcIdx:    make(map[string]uint64),
	}
	b.intern("") // string table index 0 must be ""
	return b
}

func (b *Builder) intern(s string) uint64 {
	if i, ok := b.stringIdx[s]; ok {
		return i
	}
	i := uint64(len(b.strings))
	b.strings = append(b.strings, s)
	b.stringIdx[s] = i
	return i
}

// Add records value samples of the given leaf-first stack.
func (b *Builder) Add(value int64, stack ...string) {
	for _, fn := range stack {
		if _, ok := b.funcIdx[fn]; !ok {
			b.intern(fn)
			b.funcs = append(b.funcs, fn)
			b.funcIdx[fn] = uint64(len(b.funcs))
		}
	}
	b.samples = append(b.samples, Sample{Stack: append([]string(nil), stack...), Value: value})
}

func appendVarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func appendField(dst []byte, field int, v uint64) []byte {
	dst = appendVarint(dst, uint64(field)<<3)
	return appendVarint(dst, v)
}

func appendMessage(dst []byte, field int, payload []byte) []byte {
	dst = appendVarint(dst, uint64(field)<<3|2)
	dst = appendVarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// Bytes serializes the profile, gzipped, ready to be written as a
// .pprof file or fed back to ParseProfile.
func (b *Builder) Bytes() []byte {
	var out []byte

	// sample_type
	var st []byte
	st = appendField(st, 1, b.intern(b.sampleType))
	st = appendField(st, 2, b.intern(b.unit))
	out = appendMessage(out, 1, st)

	// samples
	for _, s := range b.samples {
		var sm []byte
		for _, fn := range s.Stack {
			sm = appendField(sm, 1, b.funcIdx[fn]) // location id == function id
		}
		sm = appendField(sm, 2, uint64(s.Value))
		out = appendMessage(out, 2, sm)
	}

	// locations: one per function, one line each
	for i := range b.funcs {
		id := uint64(i + 1)
		var line []byte
		line = appendField(line, 1, id) // function_id
		line = appendField(line, 2, 1)  // line number
		var loc []byte
		loc = appendField(loc, 1, id)
		loc = appendMessage(loc, 4, line)
		out = appendMessage(out, 4, loc)
	}

	// functions
	for i, fn := range b.funcs {
		var f []byte
		f = appendField(f, 1, uint64(i+1))
		f = appendField(f, 2, b.stringIdx[fn])
		out = appendMessage(out, 5, f)
	}

	// string table, index order
	for _, s := range b.strings {
		out = appendMessage(out, 6, []byte(s))
	}

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(out); err != nil {
		panic(err) //lint:allow panicfree (in-memory gzip cannot fail; used by tests and fixture generation only)
	}
	if err := zw.Close(); err != nil {
		panic(err) //lint:allow panicfree (in-memory gzip cannot fail; used by tests and fixture generation only)
	}
	return buf.Bytes()
}
