package profgate_test

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/profgate"
)

// fixtureDir is the shared analysistest fixture package; the synthetic
// profiles live next to the fixture source so REPOLINT_PROFILES can
// point at the package directory.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// fixtureProfiles builds the two committed synthetic profiles. Shares
// one definition between regeneration and verification so the committed
// bytes, this test, and the fixture's want comments cannot drift apart.
//
// synth.pprof, 1000 samples total:
//
//	300  HotLoop <- Driver          HotLoop flat 30%
//	100  HotLoop.func1 <- HotLoop <- Driver   (closure folds into HotLoop: flat 40%, cum 40%)
//	  5  Driver                     Driver flat 0.5% (below the flat floor), cum 40.5%
//	300  GuardedKernel              hot but annotated: clean
//	200  SuppressedHot              hot, unannotated, suppressed in the fixture
//	 95  other/pkg.Work <- runtime.main   foreign package noise
//
// cold.pprof samples only the foreign package, so it must not count as
// covering fixtures/profgate (ColdRoot is stale "in all 1 profile(s)",
// not 2).
func fixtureProfiles() map[string][]byte {
	synth := profgate.NewBuilder("samples", "count")
	synth.Add(300, "fixtures/profgate.HotLoop", "fixtures/profgate.Driver")
	synth.Add(100, "fixtures/profgate.HotLoop.func1", "fixtures/profgate.HotLoop", "fixtures/profgate.Driver")
	synth.Add(5, "fixtures/profgate.Driver")
	synth.Add(300, "fixtures/profgate.GuardedKernel")
	synth.Add(200, "fixtures/profgate.SuppressedHot")
	synth.Add(95, "other/pkg.Work", "runtime.main")

	cold := profgate.NewBuilder("samples", "count")
	cold.Add(50, "other/pkg.Work")

	return map[string][]byte{
		"synth.pprof": synth.Bytes(),
		"cold.pprof":  cold.Bytes(),
	}
}

// TestFixtureProfilesCommitted verifies the committed synthetic
// profiles byte-match the builder definition above (gzip in the
// standard library is deterministic, so this is stable). Regenerate
// after editing fixtureProfiles with:
//
//	PROFGATE_WRITE_FIXTURES=1 go test ./internal/lint/profgate -run FixtureProfiles
func TestFixtureProfilesCommitted(t *testing.T) {
	dir := filepath.Join(fixtureDir(t), "src", "fixtures", "profgate")
	for name, want := range fixtureProfiles() {
		path := filepath.Join(dir, name)
		if os.Getenv("PROFGATE_WRITE_FIXTURES") == "1" {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(want))
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with PROFGATE_WRITE_FIXTURES=1)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is stale: committed %d bytes != generated %d bytes "+
				"(regenerate with PROFGATE_WRITE_FIXTURES=1)", name, len(got), len(want))
		}
	}
}

// TestProfgate is the acceptance fixture for the profile→callgraph
// join: the committed synthetic profile makes the unannotated hot
// function and the stale root report (see the want comments in the
// fixture), the guarded kernel and the flat-floored driver stay clean,
// and the //lint:allow profgate escape hatch suppresses.
func TestProfgate(t *testing.T) {
	dir := fixtureDir(t)
	t.Setenv("REPOLINT_PROFILES", filepath.Join(dir, "src", "fixtures", "profgate"))
	analysistest.Run(t, dir, profgate.Analyzer,
		"fixtures/profgate",
	)
}

// TestProfgateOffByDefault pins the no-op contract: without
// REPOLINT_PROFILES the analyzer must report nothing and touch no
// files, so ordinary `make lint` and `go vet` runs pay nothing for the
// gate.
func TestProfgateOffByDefault(t *testing.T) {
	t.Setenv("REPOLINT_PROFILES", "")
	pass := analysis.NewPass(profgate.Analyzer, token.NewFileSet(), nil, nil, nil)
	if err := profgate.Analyzer.Run(pass); err != nil {
		t.Fatalf("profgate with no profiles configured: %v", err)
	}
	if n := len(pass.Diagnostics()); n != 0 {
		t.Errorf("profgate with no profiles configured reported %d diagnostics, want 0", n)
	}
}
