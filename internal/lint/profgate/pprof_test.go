package profgate

import (
	"reflect"
	"testing"
)

// TestBuilderRoundTrip drives a profile through the encoder and back
// through the decoder: stacks, values, totals, and the declared sample
// type must survive.
func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder("samples", "count")
	b.Add(7, "pkg.Leaf", "pkg.Mid", "pkg.Root")
	b.Add(3, "pkg.Other", "pkg.Root")
	b.Add(5, "pkg.Leaf") // repeated function: interned once

	p, err := ParseProfile("rt.pprof", b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "rt.pprof" || p.SampleType != "samples" || p.SampleUnit != "count" {
		t.Errorf("header = %q %s/%s, want rt.pprof samples/count", p.Name, p.SampleType, p.SampleUnit)
	}
	if p.Total != 15 {
		t.Errorf("Total = %d, want 15", p.Total)
	}
	want := []Sample{
		{Stack: []string{"pkg.Leaf", "pkg.Mid", "pkg.Root"}, Value: 7},
		{Stack: []string{"pkg.Other", "pkg.Root"}, Value: 3},
		{Stack: []string{"pkg.Leaf"}, Value: 5},
	}
	if !reflect.DeepEqual(p.Samples, want) {
		t.Errorf("Samples = %+v, want %+v", p.Samples, want)
	}
}

// TestParsePackedAndCPUSelection hand-encodes a two-column profile
// ("samples"/"count" then "cpu"/"nanoseconds") with packed repeated
// fields — the encoding the Go runtime emits — and checks the decoder
// unpacks them and prefers the cpu column.
func TestParsePackedAndCPUSelection(t *testing.T) {
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "pkg.F", "pkg.G"}
	idx := func(s string) uint64 {
		for i, x := range strs {
			if x == s {
				return uint64(i)
			}
		}
		t.Fatalf("unknown string %q", s)
		return 0
	}

	var out []byte
	for _, st := range [][2]string{{"samples", "count"}, {"cpu", "nanoseconds"}} {
		var vt []byte
		vt = appendField(vt, 1, idx(st[0]))
		vt = appendField(vt, 2, idx(st[1]))
		out = appendMessage(out, 1, vt)
	}
	// One sample, stack G<-F, packed location ids and values.
	var locIDs, vals []byte
	locIDs = appendVarint(locIDs, 2) // leaf: location 2 (pkg.G)
	locIDs = appendVarint(locIDs, 1)
	vals = appendVarint(vals, 9)  // samples column
	vals = appendVarint(vals, 42) // cpu column
	var sm []byte
	sm = appendMessage(sm, 1, locIDs)
	sm = appendMessage(sm, 2, vals)
	out = appendMessage(out, 2, sm)
	// Locations 1 -> pkg.F, 2 -> pkg.G.
	for i, fn := range []string{"pkg.F", "pkg.G"} {
		id := uint64(i + 1)
		var line []byte
		line = appendField(line, 1, id)
		var loc []byte
		loc = appendField(loc, 1, id)
		loc = appendMessage(loc, 4, line)
		out = appendMessage(out, 4, loc)
		var f []byte
		f = appendField(f, 1, id)
		f = appendField(f, 2, idx(fn))
		out = appendMessage(out, 5, f)
	}
	for _, s := range strs {
		out = appendMessage(out, 6, []byte(s))
	}

	p, err := ParseProfile("packed", out) // raw (ungzipped) bytes must parse too
	if err != nil {
		t.Fatal(err)
	}
	if p.SampleType != "cpu" || p.SampleUnit != "nanoseconds" {
		t.Errorf("selected %s/%s, want cpu/nanoseconds", p.SampleType, p.SampleUnit)
	}
	if p.Total != 42 {
		t.Errorf("Total = %d, want the cpu column's 42", p.Total)
	}
	want := []Sample{{Stack: []string{"pkg.G", "pkg.F"}, Value: 42}}
	if !reflect.DeepEqual(p.Samples, want) {
		t.Errorf("Samples = %+v, want %+v", p.Samples, want)
	}
}

// TestDeclOf covers the runtime-symbol → declared-function folding:
// closures, nested closures, method values, goroutine and defer
// wrappers, generic instantiation arguments, and receiver
// normalization.
func TestDeclOf(t *testing.T) {
	const pkg = "repro/internal/sim"
	cases := []struct {
		sym  string
		want string
		ok   bool
	}{
		{"repro/internal/sim.NewEngine", "NewEngine", true},
		{"repro/internal/sim.(*Engine).Schedule", "*Engine.Schedule", true},
		{"repro/internal/sim.Time.Add", "Time.Add", true},
		{"repro/internal/sim.(*Engine).Run.func1", "*Engine.Run", true},
		{"repro/internal/sim.(*Engine).Run.func1.2", "*Engine.Run", true},
		{"repro/internal/sim.(*Proc).wake-fm", "*Proc.wake", true},
		{"repro/internal/sim.run.gowrap1", "run", true},
		{"repro/internal/sim.run.deferwrap1", "run", true},
		{"repro/internal/sim.Map[go.shape.int_0,go.shape.string_1]", "Map", true},
		{"repro/internal/sim.(*Table[go.shape.int_0]).At", "*Table.At", true},
		{"repro/internal/simx.NewEngine", "", false}, // other package: prefix must match exactly
		{"runtime.mallocgc", "", false},
	}
	for _, c := range cases {
		got, ok := declOf(c.sym, pkg)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("declOf(%q) = %q, %v; want %q, %v", c.sym, got, ok, c.want, c.ok)
		}
	}
}

// TestCanonName pins the receiver normalization both name sources pass
// through before the join.
func TestCanonName(t *testing.T) {
	cases := map[string]string{
		"(*Engine).Schedule": "*Engine.Schedule", // runtime and callgraph pointer receivers
		"(Time).Add":         "Time.Add",         // callgraph value receiver
		"Time.Add":           "Time.Add",         // runtime value receiver
		"NewEngine":          "NewEngine",
	}
	for in, want := range cases {
		if got := canonName(in); got != want {
			t.Errorf("canonName(%q) = %q, want %q", in, got, want)
		}
	}
}
