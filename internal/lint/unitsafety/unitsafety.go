// Package unitsafety defines an analyzer that catches dimensional
// nonsense in power/performance arithmetic: adding an energy to a
// power, comparing a frequency against a duration, subtracting watts
// from joules. The repository names raw float64 quantities with unit
// suffixes (energyJ, powerW, delayS, freqHz) and wraps some in named
// types (power.Joules, power.Watts, sim.Duration, dvfs.Hz); this
// analyzer reads both conventions and performs expression-level
// dimensional inference over them.
//
// Dimensions are exponent vectors over (energy, time) — a quantity is
// proportional to J^(j/2)·s^t, with the joule exponent doubled so that
// voltage, which enters the CMOS power model as V² ∝ J, is
// representable as J^½. The algebra then gives exactly the identities
// the power model relies on:
//
//	W · s  = J        (power × time = energy)
//	V · V  ∝ J        (capacitive energy  E = C·V²)
//	V² · f ∝ W        (dynamic power      P = C·V²·f)
//	Hz · s = 1        (cycles are dimensionless counts)
//	X / X  = 1        (ratios are dimensionless)
//
// Multiplication adds exponent vectors, division subtracts them, and
// additive operators and comparisons require both sides to agree.
// Dimensionless values (ratios, counts, literals) are additively
// compatible with anything — scaling and offset idioms stay legal.
//
// Inference also flows through local variables: when a function binds
// "e := p * dt" the analyzer knows e is an energy, so a later
// "total += e" against a power-dimensioned total is caught even though
// "e" itself carries no unit suffix. The Go type system already rejects
// mixing the named types, but the moment a computation converts to
// float64 — as every model formula here does — that protection
// vanishes; this analyzer keeps the units sound past that boundary.
package unitsafety

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags additive arithmetic and comparisons between operands
// whose inferred physical dimensions differ.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: "forbid +, -, comparisons, and assignments between quantities whose " +
		"inferred dimensions differ (J = W·s, W ∝ V²·f, Hz·s dimensionless); " +
		"insert the conversion factor, or suppress with //lint:allow unitsafety",
	Run: run,
}

// dim is a physical dimension: a quantity proportional to
// J^(j2/2) · s^(t). The joule exponent is stored doubled so voltage
// (∝ J^½ at fixed capacitance) has an integer representation.
type dim struct {
	known  bool
	j2, t  int
	poison bool // conflicting evidence: never report through this value
}

var (
	unknown       = dim{}
	dimensionless = dim{known: true}
	voltage       = dim{known: true, j2: 1}
	energy        = dim{known: true, j2: 2}
	power         = dim{known: true, j2: 2, t: -1}
	duration      = dim{known: true, t: 1}
	frequency     = dim{known: true, t: -1}
)

func (d dim) String() string {
	switch {
	case !d.known:
		return "unknown"
	case d == energy:
		return "energy (J)"
	case d == power:
		return "power (W)"
	case d == duration:
		return "time (s)"
	case d == frequency:
		return "frequency (Hz)"
	case d == voltage:
		return "voltage (V)"
	case d == dimensionless:
		return "dimensionless"
	}
	return fmt.Sprintf("J^(%d/2)·s^%d", d.j2, d.t)
}

// mul and div combine dimensions by exponent arithmetic.
func mul(a, b dim) dim {
	if !a.known || !b.known || a.poison || b.poison {
		return unknown
	}
	return dim{known: true, j2: a.j2 + b.j2, t: a.t + b.t}
}

func div(a, b dim) dim {
	if !a.known || !b.known || a.poison || b.poison {
		return unknown
	}
	return dim{known: true, j2: a.j2 - b.j2, t: a.t - b.t}
}

// mismatch reports whether two dimensions are additively incompatible:
// both confidently known, neither dimensionless, and different.
func mismatch(a, b dim) bool {
	return a.known && b.known && !a.poison && !b.poison &&
		a != dimensionless && b != dimensionless && a != b
}

// addDim is the result dimension of a valid addition.
func addDim(a, b dim) dim {
	if !a.known || !b.known || a.poison || b.poison {
		return unknown
	}
	switch {
	case a == b:
		return a
	case a == dimensionless:
		return b
	case b == dimensionless:
		return a
	}
	return unknown
}

// suffixDims maps identifier suffixes to dimensions, longest first.
// A suffix only counts when it is a capitalized word boundary: the
// character before it must be a lowercase letter or digit, so
// "energyJ" and "lat95Ns" match but "DeltaHPC" and "NewJ" do not.
var suffixDims = []struct {
	suffix string
	d      dim
}{
	{"Joules", energy},
	{"Joule", energy},
	{"Watts", power},
	{"Watt", power},
	{"Hertz", frequency},
	{"Seconds", duration},
	{"Secs", duration},
	{"Sec", duration},
	{"Nanos", duration},
	{"Millis", duration},
	{"Volts", voltage},
	{"Volt", voltage},
	{"MHz", frequency},
	{"GHz", frequency},
	{"KHz", frequency},
	{"Hz", frequency},
	{"Ns", duration},
	{"Ms", duration},
	{"J", energy},
	{"W", power},
	{"S", duration},
	{"V", voltage},
}

// wholeNames maps complete identifier names to dimensions, for names
// that are a unit word rather than a prefixed quantity (the suffix rule
// requires a lowercase character before the suffix, so "Voltage" and
// "vdd" need their own entries).
var wholeNames = map[string]dim{
	"voltage": voltage,
	"Voltage": voltage,
	"vdd":     voltage,
	"Vdd":     voltage,
}

// typeDims maps named-type names (from this repository's unit types)
// to dimensions.
var typeDims = map[string]dim{
	"Joules":   energy,
	"Watts":    power,
	"Duration": duration,
	"Time":     duration,
	"Hz":       frequency,
	"Volts":    voltage,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		analysis.WalkFuncs([]*ast.File{f}, func(name string, body ast.Node) {
			checkBody(pass, body)
		})
	}
	return nil
}

// checkBody infers a local dimension environment for one function body
// and then checks every additive operation, comparison, and assignment
// in it.
func checkBody(pass *analysis.Pass, body ast.Node) {
	env := inferEnv(pass.TypesInfo, body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if !additiveOrOrdered(n.Op) {
				return true
			}
			dx := dimOf(pass.TypesInfo, env, n.X)
			dy := dimOf(pass.TypesInfo, env, n.Y)
			if mismatch(dx, dy) {
				pass.Reportf(n.OpPos, "unit mismatch: %s %s %s "+
					"(insert the conversion factor, or //lint:allow unitsafety)",
					dx, n.Op, dy)
			}
		case *ast.AssignStmt:
			checkAssign(pass, env, n)
		}
		return true
	})
}

// checkAssign checks += / -= with the full environment and plain = only
// when the target's dimension is declared by name or type — a variable
// whose dimension is merely inferred may legitimately be reused.
func checkAssign(pass *analysis.Pass, env map[*types.Var]dim, n *ast.AssignStmt) {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return
		}
		dx := dimOf(pass.TypesInfo, env, n.Lhs[0])
		dy := dimOf(pass.TypesInfo, env, n.Rhs[0])
		if mismatch(dx, dy) {
			pass.Reportf(n.TokPos, "unit mismatch: %s %s %s "+
				"(insert the conversion factor, or //lint:allow unitsafety)",
				dx, n.Tok, dy)
		}
	case token.ASSIGN:
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) {
				break
			}
			dx := declaredDim(pass.TypesInfo, lhs)
			dy := dimOf(pass.TypesInfo, env, n.Rhs[i])
			if mismatch(dx, dy) {
				pass.Reportf(n.TokPos, "unit mismatch: assigning %s to %s variable "+
					"(insert the conversion factor, or //lint:allow unitsafety)",
					dy, dx)
			}
		}
	}
}

// inferEnv propagates dimensions into local variables bound by := whose
// names and types carry no unit of their own. Iterated to a small
// fixpoint so chains (a := w*dt; b := a) resolve; a variable bound to
// conflicting dimensions, or plainly reassigned to a different one, is
// poisoned and never participates in reports.
func inferEnv(info *types.Info, body ast.Node) map[*types.Var]dim {
	type binding struct {
		v   *types.Var
		rhs ast.Expr
	}
	var bindings []binding
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var v *types.Var
			if as.Tok == token.DEFINE {
				v, _ = info.Defs[id].(*types.Var)
			} else if as.Tok == token.ASSIGN {
				v, _ = info.Uses[id].(*types.Var)
			}
			if v == nil {
				continue
			}
			if declaredDim(info, lhs).known {
				continue // name/type already decides; env not needed
			}
			bindings = append(bindings, binding{v, as.Rhs[i]})
		}
		return true
	})
	if len(bindings) == 0 {
		return nil
	}

	env := make(map[*types.Var]dim)
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, b := range bindings {
			d := dimOf(info, env, b.rhs)
			if !d.known {
				continue
			}
			old, seen := env[b.v]
			switch {
			case !seen:
				env[b.v] = d
				changed = true
			case old.poison:
			case old != d:
				env[b.v] = dim{poison: true}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return env
}

func additiveOrOrdered(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.EQL, token.NEQ:
		return true
	}
	return false
}

// dimOf infers the dimension of an expression: named unit types,
// suffix-annotated identifiers, and environment-tracked locals are the
// leaves; * and / combine dimensions by exponent arithmetic;
// conversions assert their target type's dimension; numeric literals
// are dimensionless. Anything else is unknown, and unknown never trips
// the analyzer — checks fire only when both sides are confidently
// dimensioned.
func dimOf(info *types.Info, env map[*types.Var]dim, e ast.Expr) dim {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if d := declaredDim(info, e); d.known {
			return d
		}
		if v, ok := info.Uses[e].(*types.Var); ok {
			return env[v]
		}
		return unknown
	case *ast.SelectorExpr:
		return declaredDim(info, e)
	case *ast.IndexExpr:
		return typeDim(info, e)
	case *ast.CallExpr:
		// An explicit conversion asserts the target type's dimension:
		// sim.Duration(n) is a duration whatever n was. A conversion to
		// a dimensionless type (float64(x)) is transparent. Function
		// and method calls carry their result type's dimension.
		if len(e.Args) == 1 && isConversion(info, e) {
			if d := typeDim(info, e); d.known {
				return d
			}
			return dimOf(info, env, e.Args[0])
		}
		return typeDim(info, e)
	case *ast.BasicLit:
		if e.Kind == token.INT || e.Kind == token.FLOAT {
			return dimensionless
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return dimOf(info, env, e.X)
		}
	case *ast.BinaryExpr:
		// When the whole expression has a named unit type, the type
		// system has already blessed the arithmetic — trust it. This is
		// what makes the Duration scaling idiom legal:
		// sim.Duration(ms) * sim.Millisecond is typed sim.Duration, not
		// s², exactly like the time package's 5*time.Millisecond.
		if d := typeDim(info, e); d.known {
			return d
		}
		dx := dimOf(info, env, e.X)
		dy := dimOf(info, env, e.Y)
		switch e.Op {
		case token.MUL:
			return mul(dx, dy)
		case token.QUO:
			return div(dx, dy)
		case token.ADD, token.SUB:
			return addDim(dx, dy)
		}
	}
	return unknown
}

// declaredDim reads the dimension an expression declares through its
// named type or its identifier spelling — the signals a human reader
// sees — without consulting the inferred environment.
func declaredDim(info *types.Info, e ast.Expr) dim {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if d := typeDim(info, e); d.known {
			return d
		}
		return nameDim(e.Name)
	case *ast.SelectorExpr:
		if d := typeDim(info, e); d.known {
			return d
		}
		return nameDim(e.Sel.Name)
	case *ast.IndexExpr:
		return typeDim(info, e)
	}
	return unknown
}

// typeDim reads the dimension from the expression's named type.
func typeDim(info *types.Info, e ast.Expr) dim {
	t := info.TypeOf(e)
	if t == nil {
		return unknown
	}
	if named, ok := t.(*types.Named); ok {
		return typeDims[named.Obj().Name()]
	}
	return unknown
}

// nameDim reads the dimension from an identifier's unit suffix or
// whole-word unit name.
func nameDim(name string) dim {
	if d, ok := wholeNames[name]; ok {
		return d
	}
	for _, s := range suffixDims {
		if !strings.HasSuffix(name, s.suffix) {
			continue
		}
		rest := name[:len(name)-len(s.suffix)]
		if rest == "" {
			continue
		}
		c := rest[len(rest)-1]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			return s.d
		}
	}
	return unknown
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
