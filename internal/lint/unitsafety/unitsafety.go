// Package unitsafety defines an analyzer that catches dimensional
// nonsense in power/performance arithmetic: adding an energy to a
// power, comparing a frequency against a duration, subtracting watts
// from joules. The repository names raw float64 quantities with unit
// suffixes (energyJ, powerW, delayS, freqHz) and wraps some in named
// types (power.Joules, power.Watts, sim.Duration, dvfs.Hz); this
// analyzer reads both conventions and checks additive operators and
// comparisons, while understanding that multiplication and division
// convert between dimensions (watts × seconds = joules, joules ÷
// seconds = watts).
//
// The Go type system already rejects mixing the named types, but the
// moment a computation converts to float64 — as every model formula
// here does — that protection vanishes. Identifier naming is the only
// remaining signal, and this analyzer makes it load-bearing.
package unitsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags additive arithmetic and comparisons between operands
// whose names or types carry different physical units.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: "forbid +, -, and comparisons between quantities with different " +
		"unit conventions (energyJ vs powerW vs delayS vs freqHz); insert " +
		"the ×time or ÷time factor, or suppress with //lint:allow unitsafety",
	Run: run,
}

// dim is a physical dimension tracked by the analyzer.
type dim int

const (
	unknown   dim = iota
	energy        // joules
	power         // watts
	duration      // seconds
	frequency     // hertz
)

func (d dim) String() string {
	switch d {
	case energy:
		return "energy (J)"
	case power:
		return "power (W)"
	case duration:
		return "time (s)"
	case frequency:
		return "frequency (Hz)"
	}
	return "unknown"
}

// suffixDims maps identifier suffixes to dimensions, longest first.
// A suffix only counts when it is a capitalized word boundary: the
// character before it must be a lowercase letter or digit, so
// "energyJ" and "lat95Ns" match but "DeltaHPC" and "NewJ" do not.
var suffixDims = []struct {
	suffix string
	d      dim
}{
	{"Joules", energy},
	{"Joule", energy},
	{"Watts", power},
	{"Watt", power},
	{"Hertz", frequency},
	{"Seconds", duration},
	{"Secs", duration},
	{"Sec", duration},
	{"Nanos", duration},
	{"Millis", duration},
	{"MHz", frequency},
	{"GHz", frequency},
	{"KHz", frequency},
	{"Hz", frequency},
	{"Ns", duration},
	{"Ms", duration},
	{"J", energy},
	{"W", power},
	{"S", duration},
}

// typeDims maps named-type names (from this repository's unit types)
// to dimensions.
var typeDims = map[string]dim{
	"Joules":   energy,
	"Watts":    power,
	"Duration": duration,
	"Time":     duration,
	"Hz":       frequency,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !additiveOrOrdered(n.Op) {
					return true
				}
				dx := dimOf(pass.TypesInfo, n.X)
				dy := dimOf(pass.TypesInfo, n.Y)
				if dx != unknown && dy != unknown && dx != dy {
					pass.Reportf(n.OpPos, "unit mismatch: %s %s %s "+
						"(insert the ×time/÷time conversion, or //lint:allow unitsafety)",
						dx, n.Op, dy)
				}
			case *ast.AssignStmt:
				if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
					return true
				}
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				dx := dimOf(pass.TypesInfo, n.Lhs[0])
				dy := dimOf(pass.TypesInfo, n.Rhs[0])
				if dx != unknown && dy != unknown && dx != dy {
					pass.Reportf(n.TokPos, "unit mismatch: %s %s %s "+
						"(insert the ×time/÷time conversion, or //lint:allow unitsafety)",
						dx, n.Tok, dy)
				}
			}
			return true
		})
	}
	return nil
}

func additiveOrOrdered(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.EQL, token.NEQ:
		return true
	}
	return false
}

// dimOf infers the dimension of an expression: named unit types and
// suffix-annotated identifiers are the leaves, and * and / combine
// dimensions algebraically. Conversions like float64(x) are
// transparent; anything else is unknown (and unknown never trips the
// analyzer — the check fires only when both sides are confidently
// dimensioned).
func dimOf(info *types.Info, e ast.Expr) dim {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if d := typeDim(info, e); d != unknown {
			return d
		}
		return nameDim(e.Name)
	case *ast.SelectorExpr:
		if d := typeDim(info, e); d != unknown {
			return d
		}
		return nameDim(e.Sel.Name)
	case *ast.CallExpr:
		// A conversion carries its operand's dimension through:
		// float64(energyJ) is still an energy. Method and function
		// calls fall back to the callee type's dimension (e.g.
		// node.Power() returning power.Watts).
		if len(e.Args) == 1 && isConversion(info, e) {
			if d := dimOf(info, e.Args[0]); d != unknown {
				return d
			}
		}
		return typeDim(info, e)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return dimOf(info, e.X)
		}
	case *ast.BinaryExpr:
		dx, dy := dimOf(info, e.X), dimOf(info, e.Y)
		switch e.Op {
		case token.MUL:
			return mulDim(dx, dy)
		case token.QUO:
			return divDim(dx, dy)
		case token.ADD, token.SUB:
			if dx == dy {
				return dx
			}
		}
	}
	return unknown
}

// mulDim applies the unit algebra for products.
func mulDim(a, b dim) dim {
	switch {
	case a == power && b == duration, a == duration && b == power:
		return energy
	case a == frequency && b == duration, a == duration && b == frequency:
		return unknown // cycles: dimensionless count
	}
	return unknown
}

// divDim applies the unit algebra for quotients.
func divDim(a, b dim) dim {
	switch {
	case a == energy && b == duration:
		return power
	case a == energy && b == power:
		return duration
	case a == b && a != unknown:
		return unknown // ratio: dimensionless
	}
	return unknown
}

// typeDim reads the dimension from the expression's named type.
func typeDim(info *types.Info, e ast.Expr) dim {
	t := info.TypeOf(e)
	if t == nil {
		return unknown
	}
	if named, ok := t.(*types.Named); ok {
		return typeDims[named.Obj().Name()]
	}
	return unknown
}

// nameDim reads the dimension from an identifier's unit suffix.
func nameDim(name string) dim {
	for _, s := range suffixDims {
		if !strings.HasSuffix(name, s.suffix) {
			continue
		}
		rest := name[:len(name)-len(s.suffix)]
		if rest == "" {
			continue
		}
		c := rest[len(rest)-1]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			return s.d
		}
	}
	return unknown
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
