package unitsafety_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/unitsafety"
)

func TestUnitSafety(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, unitsafety.Analyzer, "fixtures/unitsafety")
}
