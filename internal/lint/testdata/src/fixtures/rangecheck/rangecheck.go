// Package rangecheck exercises the numeric-contract analyzer: seeded
// violations of the built-in physics contracts (negative watts into
// the integrator, unguarded operating-point indices, degenerate
// subdivision and shard counts), declared //lint:range bounds on
// params and results, provably/possibly zero divisors, the
// assume/guarantee use of declared bounds, and the //lint:allow
// escape hatch — each beside the clean shape that must stay quiet.
package rangecheck

import (
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/sim"
)

// ---- built-in physics contracts ----

func negativePower(in *power.Integrator, t sim.Time) {
	in.SetPower(t, -8) // want `power draw \(watts\) passed to \(power\.Integrator\)\.SetPower is provably outside its required range \[0, \+inf\): interval \[-8, -8\]`
	in.SetPower(t, 8)  // clean: nonnegative constant
	delta := 2.5 - 5.0
	in.AddEnergy(power.Joules(delta)) // want `energy quantum \(joules\) passed to \(power\.Integrator\)\.AddEnergy is provably outside its required range \[0, \+inf\): interval \[-2\.5, -2\.5\]`
}

func unguardedIndex(tab dvfs.Table) dvfs.OperatingPoint {
	i := tab.IndexOf(2e9)
	return tab.At(i) // want `operating-point index passed to \(dvfs\.Table\)\.At may fall below its required range \[0, \+inf\): interval \[-1, \+inf\); clamp or guard first`
}

func guardedIndex(tab dvfs.Table) dvfs.OperatingPoint {
	i := tab.IndexOf(2e9)
	if i < 0 {
		i = 0
	}
	return tab.At(i) // clean: the guard clamps the miss sentinel
}

func degenerateSubdivide(tab dvfs.Table) {
	tab.MustSubdivide(1) // want `subdivision steps passed to \(dvfs\.Table\)\.MustSubdivide is provably outside its required range \[2, \+inf\): interval \[1, 1\]`
	tab.MustSubdivide(4) // clean
}

func emptyGroup() *sim.Group {
	return sim.NewGroup(0, 10) // want `shard count passed to sim\.NewGroup is provably outside its required range \[1, \+inf\): interval \[0, 0\]`
}

// ---- declared //lint:range contracts ----

// scale applies an activity factor to a power draw.
//
//lint:range f [0,1]
//lint:range w [0,inf]
func scale(w float64, f float64) float64 {
	return w * f
}

func callsScale() float64 {
	return scale(5, 2) // want `parameter "f" passed to rangecheck\.scale is provably outside its declared //lint:range \[0, 1\]: interval \[2, 2\]`
}

// brokenResult promises a nonnegative result and breaks the promise.
//
//lint:range result [0,inf]
func brokenResult() float64 {
	return -1 // want `result of brokenResult is provably outside its declared //lint:range \[0, \+inf\): interval \[-1, -1\]`
}

// width assumes its declared floor: steps-1 is provably nonzero, so
// the division below stays quiet (assume/guarantee in the small).
//
//lint:range steps [2,inf]
func width(span float64, steps int) float64 {
	return span / float64(steps-1)
}

// find narrows IndexOf's miss sentinel through a declared result
// contract, which call sites below consume as a summary.
//
//lint:range result [-1,inf]
func find(tab dvfs.Table) int {
	return tab.IndexOf(1e9)
}

func usesFindGuarded(tab dvfs.Table) dvfs.OperatingPoint {
	i := find(tab)
	if i < 0 {
		return dvfs.OperatingPoint{}
	}
	return tab.At(i) // clean: the guard refined [-1,+inf) to [0,+inf)
}

func usesFindUnguarded(tab dvfs.Table) dvfs.OperatingPoint {
	return tab.At(find(tab)) // want `operating-point index passed to \(dvfs\.Table\)\.At may fall below its required range \[0, \+inf\): interval \[-1, \+inf\); clamp or guard first`
}

// ---- divisors ----

func provablyZeroDivisor(n int) int {
	d := 0
	return n / d // want `divisor is provably zero \(interval \[0, 0\]\)`
}

func maybeZeroDivisor(n int) int {
	if n >= -3 && n <= 3 {
		return 100 / n // want `divisor may be zero \(interval \[-3, 3\]\); guard the denominator`
	}
	return 100 / n // clean: half-open evidence says nothing
}

func guardedDivisor(total float64, count int) float64 {
	if count <= 0 {
		return 0
	}
	return total / float64(count) // clean: count is provably >= 1
}

// ---- suppression and directive hygiene ----

func calibrationOffset(in *power.Integrator, t sim.Time) {
	in.SetPower(t, -1) //lint:allow rangecheck (calibration fixture: the negative delta is injected deliberately)
}

//lint:range ghost [0,1] // want `//lint:range names "ghost", which is not a parameter of noSuchParam`
func noSuchParam(w float64) float64 { return w }

//lint:range w (0;1) // want `malformed //lint:range directive: bounds must look like \[lo,hi\]`
func badBounds(w float64) float64 { return w }

//lint:range name [0,1] // want `//lint:range on non-numeric parameter "name" of notNumeric`
func notNumeric(name string) string { return name }

//lint:range w [0,1] // want `dangling //lint:range directive: not in a function doc comment`

var unrelated = 0
