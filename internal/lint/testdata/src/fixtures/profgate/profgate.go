// Package profgate exercises the profile→callgraph join: a hot
// function no //lint:hotpath root reaches (reported, including when the
// samples land in one of its closures), a hot driver whose time is all
// in callees (not reported: flat floor), an annotated kernel that is
// hot (clean), an annotated root that is cold in every profile
// (reported stale), and the suppression escape hatch.
//
// The matching CPU profile is committed next to this file as
// synth.pprof (see fixtureProfiles in internal/lint/profgate, which
// regenerates and verifies it); cold.pprof covers only a foreign
// package and must not count as covering this one.
package profgate

// Driver owns 40.5% cumulative but only 0.5% flat time: the report
// belongs to HotLoop below, not to this caller.
func Driver(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += HotLoop(i)
	}
	return total
}

// HotLoop burns 40% of the profile (some of it inside its closure,
// which must fold back into this declaration) and no annotated root
// reaches it.
func HotLoop(n int) int { // want `hot path not annotated: HotLoop has 40\.0% cumulative \(40\.0% flat\) CPU in profile synth\.pprof`
	add := func(a, b int) int { return a + b }
	total := 0
	for i := 0; i < n; i++ {
		total = add(total, i*i)
	}
	return total
}

// GuardedKernel is hot and annotated: the gate is already guarding it,
// so profgate stays quiet.
//
//lint:hotpath
func GuardedKernel(xs []int) int {
	total := 0
	for _, x := range xs {
		total += guardedHelper(x)
	}
	return total
}

func guardedHelper(x int) int { return x * x }

// ColdRoot is annotated but no committed profile ever samples it or
// anything it reaches: the annotation is stale and hotalloc effort is
// pinned to a path that stopped being hot.
//
//lint:hotpath
func ColdRoot(xs []int) int { // want `stale //lint:hotpath root: ColdRoot and everything it reaches stays below 0\.5% cumulative CPU in all 1 profile\(s\)`
	total := 0
	for _, x := range xs {
		total += coldHelper(x)
	}
	return total
}

func coldHelper(x int) int { return x + 1 }

// SuppressedHot is hot and unannotated, but carries a justified
// suppression: the diagnostic is recorded as suppressed, not reported.
//
//lint:allow profgate (interpreter warm-up path; hot only in the synthetic fixture profile)
func SuppressedHot(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total ^= i << 1
	}
	return total
}
