// Package floateq exercises the floateq analyzer: exact equality
// between floating-point operands is flagged, while zero guards,
// epsilon helpers, integer comparisons, and suppressed lines pass.
package floateq

// Volts is a named float type; the underlying kind is what matters.
type Volts float64

// Bad compares floats exactly.
func Bad(a, b float64, v, w Volts) bool {
	if a == b { // want `exact floating-point == comparison`
		return true
	}
	if v != w { // want `exact floating-point != comparison`
		return true
	}
	return a != b // want `exact floating-point != comparison`
}

// ZeroGuard is the sanctioned exact comparison: against the constant
// zero (IEEE-exact, used to detect "unset" and guard division).
func ZeroGuard(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

// approxEqual is an epsilon helper; the raw comparison inside is its
// reason to exist and must not be flagged.
func approxEqual(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps || a == b
}

// Ints compares integers; nothing to report.
func Ints(a, b int64) bool { return a == b }

// Suppressed uses the escape hatch.
func Suppressed(a, b float64) bool {
	return a == b //lint:allow floateq (bit-identity check on purpose)
}

// Consts fold at compile time; exact by definition.
func Consts() bool {
	const x = 0.1
	const y = 0.2
	return x+x == y
}
