// Package unitsafety exercises the unit-suffix analyzer: additive
// arithmetic between operands of different physical dimensions is
// flagged; multiplying or dividing through time converts dimensions
// and passes.
package unitsafety

// Bad mixes dimensions without conversion.
func Bad(energyJ, powerW, delayS, freqHz float64) float64 {
	x := energyJ + powerW // want `unit mismatch: energy \(J\) \+ power \(W\)`
	if energyJ < powerW { // want `unit mismatch: energy \(J\) < power \(W\)`
		x++
	}
	if freqHz > delayS { // want `unit mismatch: frequency \(Hz\) > time \(s\)`
		x++
	}
	total := 0.0
	_ = total
	energyJ -= powerW // want `unit mismatch: energy \(J\) -= power \(W\)`
	return x + energyJ
}

// Good converts through the unit algebra: watts × seconds is joules,
// joules ÷ seconds is watts.
func Good(energyJ, powerW, delayS float64) float64 {
	total := energyJ + powerW*delayS // P×T = E: legal
	avgW := energyJ / delayS
	if avgW > powerW { // W vs W: legal
		total++
	}
	ratio := energyJ / (powerW * delayS) // dimensionless
	return total + ratio
}

// Unsuffixed identifiers carry no dimension; nothing to report.
func Unsuffixed(a, b float64) float64 { return a + b }

// Suppressed uses the escape hatch for a deliberate mixed sum (e.g. a
// weighted objective function).
func Suppressed(energyJ, delayS float64) float64 {
	return energyJ + delayS //lint:allow unitsafety (weighted objective, dimensionless by construction)
}
