// V2 cases: expression-level dimensional inference — dimensions flow
// through unsuffixed locals, the voltage axis (V ∝ J^½) makes the CMOS
// power identities exact, and the named-type Duration scaling idiom
// stays legal.
package unitsafety

// IntermediateEnergy catches a mismatch that flows through an
// unsuffixed local: e is inferred to be an energy from its definition.
func IntermediateEnergy(powerW, delayS float64) float64 {
	e := powerW * delayS
	totalW := 1.0
	totalW += e // want `unit mismatch: power \(W\) \+= energy \(J\)`
	return totalW
}

// InferredQuotient infers power from an energy/time quotient.
func InferredQuotient(energyJ, delayS, freqHz float64) bool {
	avg := energyJ / delayS
	return avg > freqHz // want `unit mismatch: power \(W\) > frequency \(Hz\)`
}

// CMOSPower uses the half-joule voltage axis: V·V ∝ J (capacitive
// energy) and V²·f ∝ W (dynamic power), so mixing the product with the
// wrong side is caught.
func CMOSPower(voltage, freqHz, powerW, energyJ float64) (float64, float64) {
	dyn := voltage * voltage * freqHz
	total := powerW + dyn                // V²·f ∝ W: legal
	stored := energyJ + voltage*voltage  // V·V ∝ J: legal
	_ = energyJ + voltage*voltage*freqHz // want `unit mismatch: energy \(J\) \+ power \(W\)`
	return total, stored
}

// AssignDeclared flags a plain assignment into a variable whose name
// declares its dimension.
func AssignDeclared(powerW float64) float64 {
	var totalJ float64
	totalJ = powerW // want `unit mismatch: assigning power \(W\) to energy \(J\) variable`
	return totalJ
}

// CyclesAreCounts: Hz·s is a dimensionless cycle count; dividing it
// back out of an energy keeps the energy dimension.
func CyclesAreCounts(energyJ, freqHz, delayS float64) float64 {
	cycles := freqHz * delayS
	perCycle := energyJ / cycles
	return perCycle + energyJ // J + J: legal
}

// Duration mirrors the repository's named time type; typeDims matches
// by type name.
type Duration int64

// Millisecond is a unit constant in the time-package style.
const Millisecond Duration = 1000 * 1000

// ScaledDuration: count × unit is typed Duration by the Go type
// system, not s², exactly like 5*time.Millisecond.
func ScaledDuration(ms int) Duration {
	d := Duration(ms) * Millisecond
	return d + Millisecond
}

// SuppressedInferred documents a deliberate mixed sum reached through
// an inferred local.
func SuppressedInferred(powerW, delayS float64) float64 {
	e := powerW * delayS
	return powerW + e //lint:allow unitsafety (EDP-style mixed objective, weighted upstream)
}
