// Package typestate_fixture seeds one violation of each built-in
// protocol spec — Tick after End (the acceptance case), Tick before
// Begin, double Begin, a Writer abandoned on an error exit, a double
// Replay, Spawn after Close, Post after Close, a Group that never
// reaches Close, and exec.Map results read before the error check —
// next to the clean shapes (defer-discharged obligations, err-guarded
// constructors, sinks handed off to a Recorder) that must stay quiet.
package typestate_fixture

import (
	"io"

	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TickAfterEnd is the acceptance case: a sink driven past End.
func TickAfterEnd(row []trace.Sample) {
	s := trace.NewStats()
	_ = s.Begin(trace.Meta{})
	_ = s.Tick(0, row)
	_ = s.End()
	_ = s.Tick(1, row) // want `trace\.Sink\.Tick called in state "ended"`
}

// TickBeforeBegin drives a sink that was never begun.
func TickBeforeBegin(row []trace.Sample) {
	s := trace.NewStats()
	_ = s.Tick(0, row) // want `trace\.Sink\.Tick called in state "fresh"`
	_ = s.End()
}

// DoubleBegin begins twice.
func DoubleBegin() {
	d := trace.NewDownsampler(0, 128)
	_ = d.Begin(trace.Meta{})
	_ = d.Begin(trace.Meta{}) // want `trace\.Sink\.Begin called in state "active"`
	_ = d.End()
}

// MaybeEnded joins an ended branch with an active one: the following
// Tick can observe "ended".
func MaybeEnded(row []trace.Sample, early bool) {
	s := trace.NewStats()
	_ = s.Begin(trace.Meta{})
	if early {
		_ = s.End()
	}
	_ = s.Tick(0, row) // want `trace\.Sink\.Tick called in state "ended"`
	_ = s.End()
}

// WriterAbandonedOnError loses a begun archive on the error exit: the
// return leaves the writer active, so the header is never flushed.
func WriterAbandonedOnError(out io.Writer, row []trace.Sample) error {
	w := trace.NewWriter(out)
	if err := w.Begin(trace.Meta{}); err != nil {
		return err
	}
	if err := w.Tick(0, row); err != nil {
		return err // want `trace\.Writer value does not reach End`
	}
	return w.End()
}

// WriterDeferredEnd is the clean version: defer discharges the
// obligation on every exit, including the same error return.
func WriterDeferredEnd(out io.Writer, row []trace.Sample) error {
	w := trace.NewWriter(out)
	defer func() { _ = w.End() }()
	if err := w.Begin(trace.Meta{}); err != nil {
		return err
	}
	if err := w.Tick(0, row); err != nil {
		return err
	}
	return nil
}

// FileWriterNeverEnded leaks the file sink entirely.
func FileWriterNeverEnded(path string, row []trace.Sample) {
	fs := trace.NewFileWriter(path)
	_ = fs.Begin(trace.Meta{})
	_ = fs.Tick(0, row)
} // want `trace\.Writer value does not reach End`

// WriterHandedOff passes the sink to Replay: protocol responsibility
// transfers with it, so nothing is owed here.
func WriterHandedOff(path string, in io.Reader) error {
	fs := trace.NewFileWriter(path)
	r, err := trace.NewReader(in)
	if err != nil {
		return err
	}
	return r.Replay(fs)
}

// DoubleReplay re-reads a one-shot stream.
func DoubleReplay(in io.Reader) error {
	r, err := trace.NewReader(in)
	if err != nil {
		return err
	}
	if err := r.Replay(trace.NewStats()); err != nil {
		return err
	}
	return r.Replay(trace.NewStats()) // want `trace\.Reader\.Replay called in state "drained"`
}

// SpawnAfterClose drives a recorder past Close.
func SpawnAfterClose(eng *sim.Engine) {
	rec := trace.MustNew(trace.Config{})
	_ = rec.Close()
	rec.Spawn(eng, func() bool { return true }) // want `trace\.Recorder\.Spawn called in state "closed"`
}

// RecorderNeverClosed owes a Close on the fall-off exit.
func RecorderNeverClosed(g *sim.Group, done func() bool) {
	rec := trace.MustNew(trace.Config{})
	rec.SpawnGroup(g, done)
} // want `trace\.Recorder value does not reach Close`

// RecorderErrGuarded is the canonical clean shape: the err != nil
// branch owes nothing (rec is nil there), defer covers the rest.
func RecorderErrGuarded(g *sim.Group, done func() bool) error {
	rec, err := trace.New(trace.Config{})
	if err != nil {
		return err
	}
	defer func() { _ = rec.Close() }()
	rec.SpawnGroup(g, done)
	return nil
}

// PostAfterClose schedules onto a closed group.
func PostAfterClose() {
	g := sim.NewGroup(2, 10)
	g.Close()
	g.Post(0, 5, 0, 0, func() {}) // want `sim\.Group\.Post called in state "closed"`
}

// RunAfterClose runs a closed group.
func RunAfterClose() {
	g := sim.NewGroup(2, 10)
	g.Close()
	_, _ = g.Run(100) // want `sim\.Group\.Run called in state "closed"`
}

// GroupNeverClosed abandons the group's engines.
func GroupNeverClosed() {
	g := sim.NewGroup(2, 10)
	_, _ = g.Run(100)
} // want `sim\.Group value does not reach Close`

// GroupHeldThroughCalls proves passing a group around does not hand
// off the Close obligation (EscapeOnPass=false): the recorder is
// closed, the group is not.
func GroupHeldThroughCalls(done func() bool) {
	g := sim.NewGroup(2, 10)
	rec := trace.MustNew(trace.Config{})
	rec.SpawnGroup(g, done)
	_ = rec.Close()
} // want `sim\.Group value does not reach Close`

// GroupLifecycleClean is the canonical coordinator shape.
func GroupLifecycleClean() error {
	g := sim.NewGroup(4, 10)
	defer g.Close()
	g.ScheduleGlobal(5, 1, func() {})
	if _, err := g.Run(100); err != nil {
		return err
	}
	return nil
}

// EndedInClosure shows closures driving the shared machine: the End
// inside the literal is observed, so the later Tick is flagged.
func EndedInClosure(row []trace.Sample) {
	s := trace.NewStats()
	_ = s.Begin(trace.Meta{})
	finish := func() { _ = s.End() }
	finish()
	_ = s.Tick(0, row) // want `trace\.Sink\.Tick called in state "ended"`
}

// endSink is a same-package helper: summaries see the End inside it.
func endSink(s *trace.Stats) { _ = s.End() }

// EndedViaHelper transitions through an interprocedural summary.
func EndedViaHelper(row []trace.Sample) {
	s := trace.NewStats()
	_ = s.Begin(trace.Meta{})
	endSink(s)
	_ = s.Tick(0, row) // want `trace\.Sink\.Tick called in state "ended"`
}

// Suppressed shows the escape hatch; the analyzer must stay silent.
func Suppressed(row []trace.Sample) {
	s := trace.NewStats()
	_ = s.Begin(trace.Meta{})
	_ = s.End()
	_ = s.Tick(0, row) //lint:allow typestate (demonstrating the suppression grammar)
}

func work(i int) (int, error) { return i, nil }

// MapUseBeforeCheck reads a result slot before consulting the error.
func MapUseBeforeCheck() int {
	res, err := exec.Map(2, 4, work)
	total := res[0] // want `exec\.Map results used before the error is checked`
	if err != nil {
		return 0
	}
	return total
}

// MapErrDiscarded throws the error away entirely.
func MapErrDiscarded() int {
	res, _ := exec.Map(2, 4, work)
	return len(res) // want `exec\.Map results used with the error result discarded`
}

// MapClean is the sanctioned order: error first, slots second.
func MapClean() (int, error) {
	res, err := exec.Map(2, 4, work)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, v := range res {
		total += v
	}
	return total, nil
}
