// Package shardown_fixture seeds one violation of each shard-ownership
// rule — a per-rank slot written at a foreign index, a foreign-slot
// read, a whole-slot capture, scheduling on another shard's engine, a
// write to a captured coordinator local, and the reconstructed PR 7
// rendezvous collision (receiver-side state keyed from a sender-shard
// closure) — next to the clean shapes (own-index slot writes, engine
// aliases, annotated relays, coordinator globals) that must stay quiet.
package shardown_fixture

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// ForeignSlotWrite infers `finished` as a per-rank slot from the
// own-index writes, then catches the cross-shard write.
func ForeignSlotWrite(g *sim.Group) {
	finished := make([]bool, g.Size())
	for i := 0; i < g.Size(); i++ {
		i := i
		g.Post(i, 5, 0, 0, func() {
			finished[i] = true // own index: clean
		})
	}
	g.Post(0, 6, 0, 0, func() {
		finished[1] = true // want `write to per-rank slot finished\[1\] from the shard owning shard 0`
	})
}

// ForeignSlotRead catches the read at a neighbour's index; len is fine.
func ForeignSlotRead(g *sim.Group) {
	ready := make([]bool, g.Size())
	for i := 0; i < g.Size(); i++ {
		i := i
		g.Post(i, 5, 0, 0, func() {
			ready[i] = true
			if i > 0 && ready[i-1] { // want `access to per-rank slot ready\[i - 1\] from the shard owning shard i`
				return
			}
			_ = len(ready) // len does not touch foreign elements: clean
		})
	}
}

// WholeSlotCapture passes the whole slot slice out of a shard closure.
func WholeSlotCapture(g *sim.Group, report func([]bool)) {
	done := make([]bool, g.Size())
	for i := 0; i < g.Size(); i++ {
		i := i
		g.Post(i, 5, 0, 0, func() {
			done[i] = true
			report(done) // want `per-rank slot slice "done" captured as a whole in the shard owning shard i`
		})
	}
}

// AnnotatedSlot shows the explicit form: the annotation marks the
// ownership directly, no inferring write needed.
func AnnotatedSlot(g *sim.Group) {
	counts := make([]int, g.Size()) //lint:ownedby rank
	g.Post(2, 5, 0, 0, func() {
		counts[0]++ // want `write to per-rank slot counts\[0\] from the shard owning shard 2`
	})
}

// CrossSchedule schedules directly onto another shard's engine.
func CrossSchedule(g *sim.Group) {
	g.Post(0, 5, 0, 0, func() {
		g.Engine(1).Schedule(6, func() {}) // want `Schedule on the engine owned by shard 1 from the shard owning shard 0`
	})
}

// CapturedCoordinatorWrite mutates coordinator state from a shard:
// captured locals are window-barrier globals, read-only inside shards.
func CapturedCoordinatorWrite(g *sim.Group) int {
	total := 0
	g.Post(0, 5, 0, 0, func() {
		total++ // want `write to "total", a captured local of the enclosing function, from the shard owning shard 0`
	})
	_, _ = g.Run(100)
	return total
}

// CapturedReadClean reads coordinator state from a shard — sanctioned.
func CapturedReadClean(g *sim.Group, limit sim.Time) {
	g.Post(0, 5, 0, 0, func() {
		deadline := limit.Add(10)
		_ = deadline
	})
}

// EngineAliasClean mirrors the mpi nicOn shape: ownership resolves
// through range variables, method calls, and field selections.
func EngineAliasClean(nodes []*machine.Node) {
	for i, n := range nodes {
		eng := n.Engine()
		eng.Schedule(sim.Time(i), func() {
			n.SetNICActive(true)
		})
	}
}

// CrossNodeSchedule reaches a ring neighbour's engine from inside a
// node's own closure.
func CrossNodeSchedule(nodes []*machine.Node, ring []int) {
	for i, n := range nodes {
		next := nodes[ring[i]]
		n.Engine().Schedule(5, func() {
			next.Engine().Schedule(6, func() {}) // want `Schedule on the engine owned by rank ring\[i\] from the shard owning rank i`
		})
	}
}

// peer mirrors the mpi rendezvous bookkeeping: per-rank wait maps
// keyed by send handles.
//
//lint:ownedby rank
type peer struct {
	eng      *sim.Engine
	dataWait map[int]func()
}

func (p *peer) engine() *sim.Engine { return p.eng }

// RendezvousCollision reconstructs the PR 7 mpi bug: the sender-side
// closure books the receiver's dataWait map under a handle allocated
// from the sender's counter, so concurrent senders collide on the key
// — and the write itself races with the receiver's shard.
func RendezvousCollision(peers []*peer, src, dst, handle int) {
	sender := peers[src]
	recv := peers[dst]
	sender.engine().Schedule(5, func() {
		recv.dataWait[handle] = func() {} // want `access to state owned by rank dst from the shard owning rank src`
	})
}

// post relays fn to the shard owning rank dst, the way mpi.World.post
// does.
//
//lint:ownedby rank dst
func post(g *sim.Group, shardOf []int, dst int, t sim.Time, fn func()) {
	g.Post(shardOf[dst], t, 0, 0, fn)
}

func pairKey(src, handle int) int { return src<<16 | handle }

// RendezvousFixed is the corrected shape: the booking runs on the
// receiver's shard (via the annotated relay) under a sender-scoped key.
func RendezvousFixed(g *sim.Group, shardOf []int, peers []*peer, src, dst, handle int) {
	post(g, shardOf, dst, 5, func() {
		me := peers[dst]
		me.dataWait[pairKey(src, handle)] = func() {}
	})
}

// flushAll runs its argument at the window barrier on behalf of the
// coordinator.
//
//lint:ownedby coordinator
func flushAll(g *sim.Group, fn func()) { g.ScheduleGlobal(5, 0, fn) }

// CoordinatorRelayClean: closures handed to a coordinator-annotated
// relay run sequentially at the barrier and may write captured locals.
func CoordinatorRelayClean(g *sim.Group) int {
	total := 0
	flushAll(g, func() { total++ })
	return total
}

// BoundLiteral shows ident-bound closures classified by their use
// site: handler is handed to shard 1, so the write at index 0 is
// foreign.
func BoundLiteral(g *sim.Group) {
	acks := make([]int, g.Size()) //lint:ownedby rank
	handler := func() {
		acks[0]++ // want `write to per-rank slot acks\[0\] from the shard owning shard 1`
	}
	g.Post(1, 5, 0, 0, handler)
}

// SuppressedCross shows the escape hatch; the analyzer must stay
// silent.
func SuppressedCross(g *sim.Group) {
	g.Post(0, 5, 0, 0, func() {
		g.Engine(1).Schedule(6, func() {}) //lint:allow shardown (window-local handoff audited by hand)
	})
}

//lint:ownedby sideways // want `malformed //lint:ownedby directive`
func Sideways(g *sim.Group) { _ = g }

//lint:ownedby rank ghost // want `function Relay has no parameter "ghost"`
func Relay(g *sim.Group, fn func()) { g.ScheduleGlobal(5, 0, fn) }

//lint:ownedby rank // want `dangling //lint:ownedby directive`
var orphanHandles int
