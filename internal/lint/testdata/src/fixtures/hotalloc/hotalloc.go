// Package hotalloc exercises the //lint:hotpath allocation discipline:
// direct allocation in an annotated root, allocation via a transitively
// reached callee, the suppression escape hatch, the cold-panic-helper
// exemption, and closure-capture detection.
package hotalloc

import "fmt"

// Direct allocates in the annotated function itself.
//
//lint:hotpath
func Direct(buf []int, v int) []int {
	return append(buf, v) // want `append may grow`
}

// ViaCallee reaches the allocation through a call.
//
//lint:hotpath
func ViaCallee(n int) int {
	return helper(n)
}

func helper(n int) int {
	m := make([]int, n) // want `make allocates`
	return len(m)
}

// Suppressed shows the escape hatch: a justified //lint:allow keeps the
// finding quiet, and the suppression inventory keeps the directive
// honest.
//
//lint:hotpath
func Suppressed(buf []byte, b byte) []byte {
	return append(buf, b) //lint:allow hotalloc (amortized growth; capacity is reused)
}

// Checked calls a cold panic helper, which is exempt even though its
// body formats with fmt: a function whose whole body is one panic call
// runs at most once per process death.
//
//lint:hotpath
func Checked(v int) int {
	if v < 0 {
		reject(v)
	}
	return v * 2
}

func reject(v int) {
	panic(fmt.Sprintf("hotalloc fixture: bad value %d", v))
}

// Closures: a non-capturing literal is allocation-free, a capturing one
// heap-allocates its environment.
//
//lint:hotpath
func Closures(step int) func() {
	add := func(a, b int) int { return a + b }
	_ = add(step, step)
	total := 0
	return func() { total += step } // want `closure captures variable "total"`
}

// Loop-variable capture gets called out by name.
//
//lint:hotpath
func PerItem(xs []int) []func() int {
	var fns []func() int // escape-free declaration, no alloc yet
	for _, x := range xs {
		fns = append(fns, func() int { return x }) // want `append may grow` `closure captures loop variable "x"`
	}
	return fns
}

// Formatting on the hot path is flagged: fmt boxes operands and builds
// fresh strings.
//
//lint:hotpath
func Label(v int) string {
	return fmt.Sprintf("v=%d", v) // want `fmt\.Sprintf formats`
}

// Boxing: passing a concrete non-pointer value where an interface is
// expected allocates; constants and pointer-shaped values do not.
//
//lint:hotpath
func Box(s sink, v int, p *int) {
	s.take(v) // want `boxes the value`
	s.take(p)
	s.take(42)
}

type sink struct{}

func (sink) take(any) {}

//lint:hotpath // want `does not attach`
var notAFunction = 3
