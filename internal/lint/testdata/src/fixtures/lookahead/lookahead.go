// Package lookahead exercises the cross-shard delay analyzer: seeded
// variants of the engine past-event panic (arrivals and schedules
// provably before Now()), window bookings that cannot clear the
// horizon, bookings provably below a known group lookahead, fabric
// bookings in the past, offsets composed through a same-package
// helper, and the //lint:allow escape hatch — each beside the clean
// forward-looking shape that must stay quiet.
package lookahead

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ---- window sites: Group.Post / Group.ScheduleGlobal ----

func postInPast(g *sim.Group) {
	g.Post(1, g.Now().Add(-5), 0, 0, func() {}) // want `cross-shard \(sim\.Group\)\.Post books an event provably before Now\(\) \(offset interval \[-5, -5\]\); it can never clear the window horizon`
}

func belowLookahead() {
	g := sim.NewGroup(4, 100)
	g.Post(1, g.Now().Add(50), 0, 0, func() {})  // want `cross-shard \(sim\.Group\)\.Post books an event only \[50, 50\] past Now\(\), below the group's lookahead \[100, 100\]; the window-barrier contract panics at run time`
	g.Post(1, g.Now().Add(150), 0, 0, func() {}) // clean: one full lookahead past now
}

func globalBookings(g *sim.Group) {
	g.ScheduleGlobal(g.Now().Add(-7), 0, func() {})  // want `\(sim\.Group\)\.ScheduleGlobal books an event provably before Now\(\)`
	g.ScheduleGlobal(g.Now(), 0, func() {})          // clean: setup-time globals book the first tick at Now()
	g.ScheduleGlobal(g.Now().Add(200), 0, func() {}) // clean
}

func negativeConstant(g *sim.Group) {
	g.ScheduleGlobal(-5, 0, func() {})  // want `\(sim\.Group\)\.ScheduleGlobal books an event provably before Now\(\) \(offset interval \(-inf, -5\]\)`
	g.ScheduleGlobal(500, 0, func() {}) // clean: an absolute stamp may or may not clear the horizon
}

// ---- past-event sites: the engine.go:80 contract ----

func pastArrival(e *sim.Engine) {
	e.PostArrival(e.Now().Add(-3), 0, 0, func() {}) // want `\(sim\.Engine\)\.PostArrival schedules an event provably before Now\(\) \(offset interval \[-3, -3\]\); the engine's past-event guard panics at run time`
	e.PostArrival(e.Now(), 0, 0, func() {})         // clean: arrival at now is legal
}

func schedulePast(e *sim.Engine) {
	t := e.Now()
	e.Schedule(t.Add(-1), func() {}) // want `\(sim\.Engine\)\.Schedule schedules an event provably before Now\(\)`
	e.Schedule(t, func() {})         // clean
}

// backdated composes an offset through a same-package helper; its
// summary carries [-2, -2] to every caller.
func backdated(e *sim.Engine) sim.Time {
	return e.Now().Add(-2)
}

func viaHelper(e *sim.Engine) {
	e.Schedule(backdated(e), func() {}) // want `\(sim\.Engine\)\.Schedule schedules an event provably before Now\(\)`
}

func convertedStamp(e *sim.Engine, raw int64) {
	if raw < 0 {
		e.Schedule(sim.Time(raw), func() {}) // want `\(sim\.Engine\)\.Schedule schedules an event provably before Now\(\)`
	}
	e.Schedule(sim.Time(raw), func() {}) // clean: nothing is known about raw here
}

// ---- fabric bookings ----

func bookPast(sw *netsim.Switch, e *sim.Engine) {
	now := e.Now()
	sw.Send(0, 1, 4096, now.Add(-10)) // want `\(netsim\.Switch\)\.Send schedules an event provably before Now\(\)`
	_, arrive := sw.Send(0, 1, 4096, now)
	sw.Accept(0, 1, 4096, arrive) // clean: the fabric only moves time forward
}

// ---- suppression ----

func replayArrival(e *sim.Engine) {
	e.PostArrival(e.Now().Add(-1), 0, 0, func() {}) //lint:allow lookahead (replay fixture: re-delivers a recorded past arrival)
}
