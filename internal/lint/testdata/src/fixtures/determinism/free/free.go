// Package free sits outside the restricted simulator package paths, so
// the determinism analyzer must report nothing here even though every
// forbidden construct appears.
package free

import (
	"math/rand"
	"os"
	"time"
)

// WallClock is legal outside the simulator: cmd front-ends may time
// themselves and read their environment.
func WallClock() (time.Time, int, string) {
	return time.Now(), rand.Intn(10), os.Getenv("HOME")
}
