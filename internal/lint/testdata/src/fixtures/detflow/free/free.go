// Package free shows detflow's allowances outside the deterministic
// result packages: wall-clock use for operator feedback and exported
// returns are legal here, while encoders stay sinks module-wide.
package free

import (
	"encoding/json"
	"log"
	"sort"
	"time"
)

// Elapsed returns a wall-clock duration from an exported function —
// fine here, because this package makes no determinism promise.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// LogDone logs the wall clock; the log package is always exempt.
func LogDone() {
	log.Printf("done at %v", time.Now())
}

// Dump shows that JSON encoding is a sink everywhere: encoded bytes
// are results no matter which package produces them.
func Dump(m map[string]int) ([]byte, error) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return json.Marshal(ks) // want `map iteration order`
}

// DumpSorted is the sanitized version of the same encoding.
func DumpSorted(m map[string]int) ([]byte, error) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return json.Marshal(ks)
}
