// Package erraudit exercises the discarded-error analyzer: error
// returns from intra-module calls must be consumed; stdlib calls are
// out of scope.
package erraudit

import (
	"errors"
	"fmt"
	"os"
)

// step is an intra-module call with an error result.
func step() error { return errors.New("boom") }

// measure returns a value and an error.
func measure() (float64, error) { return 0, errors.New("boom") }

// BadIgnored drops the whole result list.
func BadIgnored() {
	step() // want `result of step ignored but it returns an error`
}

// BadBlank discards the error explicitly but without a reason.
func BadBlank() {
	_ = step() // want `error returned by step assigned to _`
}

// BadBlankTuple discards the error half of a tuple.
func BadBlankTuple() float64 {
	v, _ := measure() // want `error returned by measure assigned to _`
	return v
}

// BadGoDiscard spawns the call, losing the error with no collection
// path.
func BadGoDiscard() {
	go step() // want `goroutine discards the error returned by step`
}

// BadDeferDiscard defers the call bare, so the error evaporates at
// function exit.
func BadDeferDiscard() {
	defer step() // want `deferred call discards the error returned by step`
}

// GoodHandled consumes the error.
func GoodHandled() error {
	if err := step(); err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	v, err := measure()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// GoodStdlib ignores a stdlib error: not this module's contract to
// police (and fmt.Println noise would bury the signal).
func GoodStdlib() {
	fmt.Println("hello")
	os.Remove("nonexistent")
}

// Suppressed documents why dropping the error is sound.
func Suppressed() {
	_ = step() //lint:allow erraudit (best-effort cleanup; failure leaves only a stale temp file)
}
