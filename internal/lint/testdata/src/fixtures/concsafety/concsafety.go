// Package concsafety exercises the goroutine/channel/WaitGroup
// discipline analyzer.
package concsafety

import "sync"

// BadAddInside increments the WaitGroup counter inside the spawned
// goroutine: Wait can observe zero and return before the goroutine is
// counted.
func BadAddInside(work func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// GoodAddOutside counts before spawning.
func GoodAddOutside(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// BadNoJoin spawns a goroutine that synchronizes with nothing and calls
// nothing that could: the caller has no way to wait for it.
func BadNoJoin(xs []int) {
	go func() { // want `goroutine has no join path`
		s := 0
		for _, x := range xs {
			s += x
		}
	}()
}

// GoodJoinViaChannel publishes its result on a channel.
func GoodJoinViaChannel(xs []int) int {
	ch := make(chan int)
	go func() {
		s := 0
		for _, x := range xs {
			s += x
		}
		ch <- s
	}()
	return <-ch
}

// GoodJoinViaHelper reaches synchronization through a call the graph
// can see.
func GoodJoinViaHelper(done chan struct{}) {
	go func() {
		signal(done)
	}()
	<-done
}

func signal(done chan struct{}) { close(done) }

// BadDeadSend sends on an unbuffered channel that never leaves the
// function and has no receiver: it blocks forever.
func BadDeadSend() {
	ch := make(chan int)
	ch <- 1 // want `send on unbuffered channel ch with no possible receiver`
	_ = 0
}

// GoodBufferedSend has capacity; the analyzer only reasons about
// unbuffered make calls.
func GoodBufferedSend() {
	ch := make(chan int, 1)
	ch <- 1
}

// GoodEscapingSend hands the channel to another function, which may
// receive.
func GoodEscapingSend(sink func(chan int)) {
	ch := make(chan int)
	sink(ch)
	ch <- 1
}

// lockBox embeds a mutex, so copying it by value forks the lock state.
type lockBox struct {
	mu sync.Mutex
	n  int
}

// BadValueReceiver copies the lock on every call.
func (b lockBox) BadValueReceiver() int { // want `receiver copies lock`
	return b.n
}

// BadValueParam copies the lock at every call site.
func BadValueParam(b lockBox) int { // want `parameter copies lock`
	return b.n
}

// GoodPointerParam shares the lock.
func GoodPointerParam(b *lockBox) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// BadCopyAssign duplicates an existing lock-bearing value.
func BadCopyAssign(b *lockBox) int {
	c := *b // want `assignment copies lock`
	return c.n
}

// BadRangeCopy copies a lock per iteration.
func BadRangeCopy(bs []lockBox) int {
	s := 0
	for _, b := range bs { // want `range value copies lock`
		s += b.n
	}
	return s
}

// SuppressedCopy documents a deliberate copy of a never-used zero lock.
func SuppressedCopy(b *lockBox) int {
	c := *b //lint:allow concsafety (snapshot of a quiesced box; lock is never used again)
	return c.n
}
