// Package sharedstate exercises the interprocedural shared-state
// analyzer: exec.Map worker closures and everything they reach must not
// write package-level variables or captured memory without
// synchronization.
package sharedstate

import (
	"sync"
	"sync/atomic"

	"repro/internal/exec"
)

var (
	counter   int
	total     atomic.Int64
	mu        sync.Mutex
	guarded   int
	helperHit int
)

// BadGlobal's worker bumps a package-level counter with a plain store —
// the race the analyzer exists to forbid.
func BadGlobal(n int) ([]int, error) {
	return exec.Map(0, n, func(i int) (int, error) {
		counter++ // want `unsynchronized write to package-level variable counter`
		return i, nil
	})
}

// GoodAtomic performs the same accumulation through sync/atomic: the
// write is a method call, not a store, and passes.
func GoodAtomic(n int) ([]int, error) {
	return exec.Map(0, n, func(i int) (int, error) {
		total.Add(1)
		return i, nil
	})
}

// GoodMutex holds the package mutex across the store.
func GoodMutex(n int) ([]int, error) {
	return exec.Map(0, n, func(i int) (int, error) {
		mu.Lock()
		guarded++
		mu.Unlock()
		return i, nil
	})
}

// bumpHelper is only dangerous because a worker reaches it — the
// interprocedural propagation is what finds this.
func bumpHelper() {
	helperHit++ // want `unsynchronized write to package-level variable helperHit`
}

// BadViaHelper's worker looks clean in isolation; the write hides one
// call away.
func BadViaHelper(n int) ([]int, error) {
	return exec.Map(0, n, func(i int) (int, error) {
		bumpHelper()
		return i, nil
	})
}

// BadCaptured writes a local captured from the submitting goroutine —
// a cross-worker race even though no package-level state is involved.
func BadCaptured(n int) (int, error) {
	sum := 0
	_, err := exec.Map(0, n, func(i int) (int, error) {
		sum += i // want `worker writes captured variable sum`
		return i, nil
	})
	return sum, err
}

// GoodIndexSlot writes only its own index's slot of a captured slice —
// the sanctioned way for workers to publish results.
func GoodIndexSlot(n int) ([]int, error) {
	extra := make([]int, n)
	_, err := exec.Map(0, n, func(i int) (int, error) {
		extra[i] = i * i
		return i, nil
	})
	return extra, err
}

// Suppressed documents a deliberate exception: a monotonic gauge whose
// readers tolerate staleness.
func Suppressed(n int) ([]int, error) {
	return exec.Map(0, n, func(i int) (int, error) {
		counter = i //lint:allow sharedstate (approximate progress gauge; readers tolerate races)
		return i, nil
	})
}
