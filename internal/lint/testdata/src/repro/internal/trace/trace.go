// Package trace is a fixture stub of the real streaming trace
// pipeline: the typestate analyzer matches its constructors (NewStats,
// NewWriter, NewReader, New, ...) by this import path, so fixtures
// import it exactly as production code does. Bodies are inert — only
// the signatures and method names matter to the protocol specs.
package trace

import (
	"io"

	"repro/internal/sim"
)

// Sample mirrors one node's power sample.
type Sample struct{ Power float64 }

// Meta mirrors the trace geometry handed to Begin.
type Meta struct {
	Version    int
	Interval   sim.Duration
	NodeIDs    []int
	Components int
}

// Sink mirrors the streaming consumer interface.
type Sink interface {
	Begin(m Meta) error
	Tick(at sim.Time, row []Sample) error
	End() error
}

// Stats mirrors the incremental per-node statistics sink.
type Stats struct{}

func NewStats() *Stats                        { return &Stats{} }
func NewWindowStats(from, to sim.Time) *Stats { return &Stats{} }

func (s *Stats) Begin(m Meta) error                   { return nil }
func (s *Stats) Tick(at sim.Time, row []Sample) error { return nil }
func (s *Stats) End() error                           { return nil }

// Downsampler mirrors the online chart-series sink.
type Downsampler struct{}

func NewDownsampler(nodeID, maxPoints int) *Downsampler { return &Downsampler{} }

func (d *Downsampler) Begin(m Meta) error                   { return nil }
func (d *Downsampler) Tick(at sim.Time, row []Sample) error { return nil }
func (d *Downsampler) End() error                           { return nil }

// CSV mirrors the streaming CSV sink.
type CSV struct{}

func NewCSV(w io.Writer) *CSV { return &CSV{} }

func (c *CSV) Begin(m Meta) error                   { return nil }
func (c *CSV) Tick(at sim.Time, row []Sample) error { return nil }
func (c *CSV) End() error                           { return nil }

// Writer mirrors the binary archive writer.
type Writer struct{}

func NewWriter(w io.Writer) *Writer { return &Writer{} }

func (w *Writer) Begin(m Meta) error                   { return nil }
func (w *Writer) Tick(at sim.Time, row []Sample) error { return nil }
func (w *Writer) End() error                           { return nil }

// Reader mirrors the strict archive reader.
type Reader struct{ meta Meta }

func NewReader(r io.Reader) (*Reader, error) { return &Reader{}, nil }

func (r *Reader) Meta() Meta                 { return r.meta }
func (r *Reader) Next() ([]Sample, error)    { return nil, nil }
func (r *Reader) Replay(sinks ...Sink) error { return nil }

// NewFileWriter and NewFileCSV mirror the self-managing file sinks.
func NewFileWriter(path string) Sink { return &Writer{} }
func NewFileCSV(path string) Sink    { return &CSV{} }

// Config and Recorder mirror the sampling recorder. Nodes is
// simplified to ints — the analyzers never look at it.
type Config struct {
	Interval sim.Duration
	Nodes    []int
	Sinks    []Sink
}

type Recorder struct{}

func New(cfg Config) (*Recorder, error) { return &Recorder{}, nil }
func MustNew(cfg Config) *Recorder      { return &Recorder{} }

func (r *Recorder) Spawn(eng *sim.Engine, done func() bool)   {}
func (r *Recorder) SpawnGroup(g *sim.Group, done func() bool) {}
func (r *Recorder) Close() error                              { return nil }
func (r *Recorder) Err() error                                { return nil }
