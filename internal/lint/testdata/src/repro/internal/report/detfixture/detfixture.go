// Package detfixture exercises detflow's result sinks: it mimics a
// deterministic-result package (its import path sits under
// repro/internal/report), where the return value of every exported
// function must be a pure function of (config, seed).
package detfixture

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// UnsortedKeys is the canonical finding: a map-range value reaches an
// exported result, so callers see a different order every run.
func UnsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want `map iteration order`
}

// SortedKeys is the same flow passed through a sanitizer: sorting kills
// the taint, so collecting keys and ordering them before returning is
// provably deterministic — no suppression needed.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Timestamp lets the wall clock reach an exported result.
func Timestamp() string {
	return time.Now().String() // want `wall clock via time\.Now`
}

// LogDuration uses the wall clock for stderr logging only, which is
// legal without any suppression: stderr is not a result sink.
func LogDuration(start time.Time) {
	fmt.Fprintf(os.Stderr, "elapsed %v\n", time.Since(start))
}

// keys is an unexported helper; its return is not itself a sink, but
// its summary records the internal map-order taint...
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// ViaHelper shows the taint composing interprocedurally: the helper's
// summary carries the map-order provenance to this exported result.
func ViaHelper(m map[string]int) []string {
	return keys(m) // want `map iteration order`
}

// ViaHelperSorted sanitizes the helper's tainted result before
// returning it, which the flow analysis accepts.
func ViaHelperSorted(m map[string]int) []string {
	out := keys(m)
	sort.Strings(out)
	return out
}
