// Package netsim is a fixture stub of the real switched-fabric model:
// the rangecheck and lookahead analyzers key their built-in port/size
// contracts and forward-only booking summaries on this import path,
// so fixtures exercise them exactly as production code does. Bodies
// are inert — only the signatures matter to the analyses.
package netsim

import "repro/internal/sim"

// Config mirrors the fabric latency/bandwidth configuration.
type Config struct {
	MinLatency sim.Duration
}

// Switch mirrors the output-queued switch.
type Switch struct{ ports int }

func New(eng *sim.Engine, ports int, cfg Config) *Switch { return &Switch{ports: ports} }

func (s *Switch) Ports() int               { return s.ports }
func (s *Switch) MinLatency() sim.Duration { return 0 }
func (s *Switch) SerializationTime(size int64) sim.Duration {
	return 0
}

func (s *Switch) Send(src, dst int, size int64, now sim.Time) (start, arrive sim.Time) {
	return now, now
}

func (s *Switch) Accept(src, dst int, size int64, arrive sim.Time) sim.Time {
	return arrive
}

func (s *Switch) Transfer(src, dst int, size int64) {}

func (s *Switch) Control(src, dst int, size int64, now sim.Time) sim.Time {
	return now
}

// Fabric mirrors the interface the mpi layer books traffic through.
type Fabric interface {
	Ports() int
	MinLatency() sim.Duration
	Send(src, dst int, size int64, now sim.Time) (start, arrive sim.Time)
	Accept(src, dst int, size int64, arrive sim.Time) sim.Time
	Control(src, dst int, size int64, now sim.Time) sim.Time
}
