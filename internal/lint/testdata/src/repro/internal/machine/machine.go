// Package machine is a fixture stub of the real per-rank node model:
// the shardown analyzer treats machine.Node as rank-owned by this
// import path, so fixtures exercise the builtin ownership rules the
// way production code does. Bodies are inert — only the signatures
// matter to the analyses.
package machine

import "repro/internal/sim"

// Node mirrors the per-rank machine node.
type Node struct{ eng *sim.Engine }

func NewNode(eng *sim.Engine) *Node { return &Node{eng: eng} }

func (n *Node) Engine() *sim.Engine  { return n.eng }
func (n *Node) SetNICActive(on bool) {}
