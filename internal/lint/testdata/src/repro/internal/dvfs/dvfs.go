// Package dvfs is a fixture stub of the real operating-point table:
// the rangecheck analyzer keys its built-in index/frequency/step
// contracts on this import path, so fixtures exercise them exactly as
// production code does. Bodies are inert — only the signatures matter
// to the analyses.
package dvfs

// Hz mirrors the frequency unit.
type Hz float64

// OperatingPoint mirrors one (frequency, voltage) table row.
type OperatingPoint struct {
	Freq    Hz
	Voltage float64
}

// Table mirrors the ordered operating-point table.
type Table []OperatingPoint

func (t Table) Len() int                { return len(t) }
func (t Table) At(i int) OperatingPoint { return t[i] }
func (t Table) IndexOf(freq Hz) int     { return -1 }
func (t Table) ByFreq(freq Hz) (OperatingPoint, bool) {
	return OperatingPoint{}, false
}
func (t Table) ClosestTo(freq Hz) int              { return 0 }
func (t Table) StepDown(i int) int                 { return i }
func (t Table) StepUp(i int) int                   { return i }
func (t Table) VoltageAt(freq Hz) float64          { return 0 }
func (t Table) Subdivide(steps int) (Table, error) { return t, nil }
func (t Table) MustSubdivide(steps int) Table      { return t }
