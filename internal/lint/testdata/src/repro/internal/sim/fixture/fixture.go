// Package fixture exercises the determinism analyzer inside a
// restricted package path (repro/internal/sim/...): wall-clock reads,
// global math/rand, and environment lookups must all be flagged, while
// seeded generators and suppressed lines must not.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

// Bad demonstrates each forbidden nondeterminism source.
func Bad() (int, string, time.Time) {
	wall := time.Now()                 // want `nondeterministic time\.Now`
	n := rand.Intn(10)                 // want `globally-seeded math/rand\.Intn`
	env := os.Getenv("SEED")           // want `nondeterministic os\.Getenv`
	time.Sleep(time.Nanosecond)        // want `nondeterministic time\.Sleep`
	rand.Shuffle(0, func(i, j int) {}) // want `globally-seeded math/rand\.Shuffle`
	return n, env, wall
}

// Good shows the sanctioned pattern: an explicitly seeded generator.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Suppressed shows the escape hatch; the analyzer must stay silent.
func Suppressed() time.Time {
	return time.Now() //lint:allow determinism (measuring the host, not the simulation)
}

// TypeRefsAreFine proves that mentioning rand types (not the global
// functions) is legal.
func TypeRefsAreFine(r *rand.Rand, s rand.Source) *rand.Rand {
	_ = s
	return r
}
