// Package sim is a fixture stub of the real sharded event core: the
// typestate and shardown analyzers match the sim.Group / sim.Engine
// APIs by this import path, so fixtures import it exactly as
// production code does. Bodies are inert — only the signatures matter
// to the analyses. (The fixture/ and statefixture/ subdirectories are
// separate packages exercising other analyzers.)
package sim

// Time and Duration mirror the real simulated-clock types.
type Time int64

type Duration int64

// Add mirrors sim.Time.Add.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Proc mirrors the coroutine handle passed to spawned processes.
type Proc struct{ now Time }

func (p *Proc) Now() Time { return p.now }

// Engine mirrors the per-shard event loop.
type Engine struct{ now Time }

func (e *Engine) Now() Time                                                 { return e.now }
func (e *Engine) Schedule(t Time, fn func())                                {}
func (e *Engine) PostArrival(t Time, srcPort int, srcSeq uint64, fn func()) {}
func (e *Engine) After(d Duration, fn func())                               {}
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc                 { return &Proc{} }
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc       { return &Proc{} }
func (e *Engine) Run(limit Time) (Time, error)                              { return limit, nil }

// Group mirrors the sharded engine group.
type Group struct {
	engines []*Engine
	look    Duration
}

func NewGroup(shards int, look Duration) *Group {
	g := &Group{look: look}
	for i := 0; i < shards; i++ {
		g.engines = append(g.engines, &Engine{})
	}
	return g
}

func (g *Group) Size() int                                              { return len(g.engines) }
func (g *Group) Engine(i int) *Engine                                   { return g.engines[i] }
func (g *Group) Lookahead() Duration                                    { return g.look }
func (g *Group) Now() Time                                              { return 0 }
func (g *Group) Post(shard int, t Time, src int, seq uint64, fn func()) {}
func (g *Group) ScheduleGlobal(t Time, pri uint64, fn func())           {}
func (g *Group) Run(limit Time) (Time, error)                           { return limit, nil }
func (g *Group) Close()                                                 {}
