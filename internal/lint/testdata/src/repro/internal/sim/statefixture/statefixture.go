// Package statefixture exercises the hot-path rooting rule: it lives
// under repro/internal/sim/, so every exported function is treated as
// reachable from a concurrently running simulation cell and must not
// touch package-level state unsynchronized — no exec.Map call in sight.
package statefixture

import "sync"

var (
	tick  int
	mu    sync.Mutex
	safe  int
	local int
)

// Step is exported, so it is a hot-path root.
func Step() {
	tick++ // want `unsynchronized write to package-level variable tick`
}

// Advance is exported and reaches the write through a helper.
func Advance() {
	bump()
}

func bump() {
	tick += 2 // want `unsynchronized write to package-level variable tick`
}

// Guarded takes the lock first.
func Guarded() {
	mu.Lock()
	defer mu.Unlock()
	safe++
}

// Suppressed documents a deliberate exception.
func Suppressed() {
	local = 1 //lint:allow sharedstate (single-threaded init path, set before any cell starts)
}

// unexportedScratch is not a root and nothing exported reaches it, so
// its write is not on any hot path.
func unexportedScratch() {
	local++
}
