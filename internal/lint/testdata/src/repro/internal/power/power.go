// Package power is a fixture stub of the real power model: the
// rangecheck analyzer keys its built-in watts/joules/time contracts on
// this import path, so fixtures exercise them exactly as production
// code does. Bodies are inert — only the signatures matter to the
// analyses.
package power

import (
	"repro/internal/dvfs"
	"repro/internal/sim"
)

// Watts and Joules mirror the physical units.
type Watts float64

type Joules float64

// Integrator mirrors the energy integrator.
type Integrator struct{ total Joules }

func (in *Integrator) SetPower(t sim.Time, w Watts) {}
func (in *Integrator) AddEnergy(j Joules)           { in.total += j }
func (in *Integrator) Total() Joules                { return in.total }

// CPUModel mirrors the frequency/voltage-scaled CPU power model.
type CPUModel struct{ table dvfs.Table }

func NewCPUModel(table dvfs.Table, dynAtTop Watts, leakPerV2, idleActivity float64) CPUModel {
	return CPUModel{table: table}
}

func (m CPUModel) Dynamic(op dvfs.OperatingPoint, activity float64) Watts { return 0 }
func (m CPUModel) Power(op dvfs.OperatingPoint, activity float64) Watts   { return 0 }

// JoulesFromMilliwattHours mirrors the unit conversion helper.
func JoulesFromMilliwattHours(mwh float64) Joules { return Joules(mwh * 3.6) }
