// Package exec is a fixture stub of the real worker pool: the
// sharedstate analyzer identifies worker closures by this import path
// and the Map name, so fixtures import it exactly as production code
// does. The sequential body is irrelevant to the analysis.
package exec

// Map mirrors repro/internal/exec.Map's signature.
func Map[T any](width, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
