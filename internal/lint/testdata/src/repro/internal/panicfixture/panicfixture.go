// Package panicfixture exercises the panicfree analyzer inside an
// internal library package: bare panics are flagged; Must* validation
// constructors and suppressed kernel invariants pass.
package panicfixture

import "errors"

// Config is a stand-in for a validated configuration value.
type Config struct{ N int }

// New returns an error, the sanctioned failure path.
func New(n int) (Config, error) {
	if n <= 0 {
		return Config{}, errors.New("panicfixture: non-positive n")
	}
	return Config{N: n}, nil
}

// MustNew follows the regexp.MustCompile convention; its panic is the
// allowed constructor-validation form.
func MustNew(n int) Config {
	c, err := New(n)
	if err != nil {
		panic(err)
	}
	return c
}

// mustSmall shows the unexported variant is allowed too.
func mustSmall(n int) int {
	if n > 10 {
		panic("panicfixture: too big")
	}
	return n
}

// Bad panics in an ordinary function.
func Bad(n int) int {
	if n < 0 {
		panic("panicfixture: negative") // want `panic in function Bad`
	}
	return n
}

// Closure panics inside a function literal in an ordinary function;
// it is attributed to the enclosing function.
func Closure() func() {
	return func() {
		panic("panicfixture: from closure") // want `panic in function Closure`
	}
}

// initialized panics in a package-level initializer expression.
var initialized = func() int { // body below is a package-level initializer
	panic("panicfixture: init") // want `panic in package-level initializer`
}

// Suppressed marks a genuine invariant with the escape hatch.
func Suppressed(ok bool) {
	if !ok {
		panic("panicfixture: corrupted state") //lint:allow panicfree (kernel invariant)
	}
}
