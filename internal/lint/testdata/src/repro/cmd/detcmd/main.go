// Command detcmd exercises detflow's emitted-output sinks: everything a
// command prints (except stderr logging) is program output and must be
// deterministic.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// emit prints map keys in iteration order: each run prints a different
// sequence, so the output files differ run to run.
func emit(names map[string]bool) {
	for n := range names {
		fmt.Printf("%s\n", n) // want `map iteration order`
	}
}

// emitSorted collects and sorts first — the standard fix.
func emitSorted(names map[string]bool) {
	ks := make([]string, 0, len(names))
	for n := range names {
		ks = append(ks, n)
	}
	sort.Strings(ks)
	for _, n := range ks {
		fmt.Println(n)
	}
}

// emitTo shows that a writer handed in by the caller is a sink too.
func emitTo(w *os.File, names map[string]bool) {
	for n := range names {
		fmt.Fprintln(w, n) // want `map iteration order`
	}
}

func main() {
	start := time.Now()
	names := map[string]bool{"ft.B": true, "sp.A": true}
	emit(names)
	emitSorted(names)
	emitTo(os.Stdout, names)
	// Wall-clock logging to stderr needs no suppression.
	fmt.Fprintf(os.Stderr, "took %v\n", time.Since(start))
}
