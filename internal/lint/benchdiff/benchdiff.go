// Package benchdiff turns BENCH_sim.json from a write-only archive into
// a merge gate. `make bench` records the benchmark suite as the NDJSON
// `go test -json` event stream; benchdiff parses that stream back into
// per-benchmark metrics (ns/op, B/op, allocs/op — taking the minimum
// across `-count` repetitions, which is the noise-robust statistic for
// a "did it get slower" question), compares them against a committed
// baseline, and reports regressions:
//
//   - a zero allocs/op or B/op baseline is an exact gate: the simulator
//     kernel's 0 must stay 0, and any allocation is a real code change,
//     not runner noise;
//   - everything else — ns/op always, and memory stats whose baseline
//     is nonzero (the big end-to-end benches, where goroutine stack
//     growth and map bucket jitter move allocs/op by a handful per
//     run) — tolerates a configurable percentage band.
//
// The baseline (BENCH_baseline.json) is written by Normalize/
// WriteBaseline: one canonical JSON object per benchmark, sorted by
// package and name, with the stream's per-line timestamps stripped — so
// refreshing it (`make bench-baseline`) produces a stable, reviewable
// diff instead of rewriting every line's Time field.
//
// The GOMAXPROCS suffix ("-8") is stripped from benchmark names so a
// baseline recorded on an 8-way machine still gates a 4-way CI runner.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A Result is one benchmark's merged metrics: the minimum ns/op, B/op,
// and allocs/op over every repetition present in the stream.
type Result struct {
	Package string  `json:"package"`
	Name    string  `json:"name"`
	Runs    int     `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	// BPerOp and AllocsPerOp are -1 when the benchmark did not report
	// memory statistics (no -benchmem and no b.ReportAllocs).
	BPerOp      int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Key identifies a benchmark across streams.
func (r Result) Key() string { return r.Package + "." + r.Name }

// testEvent is the subset of the `go test -json` event schema the
// parser consumes; Time is deliberately absent — it is the field the
// baseline normalization strips.
type testEvent struct {
	Action  string
	Package string
	Output  string
}

// benchLine matches one benchmark result line, with the GOMAXPROCS
// suffix split off: "BenchmarkSchedule-8  \t35257432\t  33.73 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(-\d+)?\s+(\d+)\s+(.*)$`)

// ParseStream decodes a `go test -json` NDJSON stream and extracts
// every benchmark result line, merging `-count` repetitions of the same
// benchmark by taking the per-metric minimum. The stream interleaves
// and splits Output events arbitrarily, so output is reassembled per
// package before line scanning.
func ParseStream(r io.Reader) ([]Result, error) {
	outputs := make(map[string]*strings.Builder)
	var pkgs []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("line %d: not a go test -json event: %v", lineNo, err)
		}
		if ev.Action != "output" {
			continue
		}
		b := outputs[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			outputs[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	merged := make(map[string]*Result)
	var order []string
	for _, pkg := range pkgs { // insertion order: deterministic, no map range
		for _, line := range strings.Split(outputs[pkg].String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			res, err := parseMetrics(pkg, m[1], m[4])
			if err != nil {
				return nil, fmt.Errorf("package %s: %v", pkg, err)
			}
			if prev, ok := merged[res.Key()]; ok {
				prev.Runs++
				prev.NsPerOp = math.Min(prev.NsPerOp, res.NsPerOp)
				prev.BPerOp = minMetric(prev.BPerOp, res.BPerOp)
				prev.AllocsPerOp = minMetric(prev.AllocsPerOp, res.AllocsPerOp)
			} else {
				merged[res.Key()] = res
				order = append(order, res.Key())
			}
		}
	}
	out := make([]Result, 0, len(order))
	for _, key := range order {
		out = append(out, *merged[key])
	}
	Normalize(out)
	return out, nil
}

// minMetric merges two possibly-absent (-1) memory metrics.
func minMetric(a, b int64) int64 {
	switch {
	case a < 0:
		return b
	case b < 0:
		return a
	case b < a:
		return b
	}
	return a
}

// parseMetrics decodes the value/unit pairs after the iteration count:
// "33.73 ns/op\t 0 B/op\t 0 allocs/op" (MB/s and custom units are
// ignored).
func parseMetrics(pkg, name, rest string) (*Result, error) {
	res := &Result{Package: pkg, Name: name, Runs: 1, BPerOp: -1, AllocsPerOp: -1}
	fields := strings.Fields(rest)
	seen := false
	for i := 0; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad ns/op %q", name, val)
			}
			res.NsPerOp = v
			seen = true
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad B/op %q", name, val)
			}
			res.BPerOp = v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad allocs/op %q", name, val)
			}
			res.AllocsPerOp = v
		}
	}
	if !seen {
		return nil, fmt.Errorf("%s: no ns/op metric in %q", name, rest)
	}
	return res, nil
}

// Normalize sorts results into the canonical baseline order.
func Normalize(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Package != rs[j].Package {
			return rs[i].Package < rs[j].Package
		}
		return rs[i].Name < rs[j].Name
	})
}

// WriteBaseline emits results as canonical NDJSON: sorted, one object
// per line, no timestamps — the committed BENCH_baseline.json format.
func WriteBaseline(w io.Writer, rs []Result) error {
	sorted := make([]Result, len(rs))
	copy(sorted, rs)
	Normalize(sorted)
	enc := json.NewEncoder(w)
	for _, r := range sorted {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadBaseline decodes a baseline written by WriteBaseline.
func ReadBaseline(r io.Reader) ([]Result, error) {
	var out []Result
	dec := json.NewDecoder(r)
	for {
		var res Result
		if err := dec.Decode(&res); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("baseline: %v", err)
		}
		out = append(out, res)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("baseline: no benchmark records")
	}
	Normalize(out)
	return out, nil
}

// A Verdict classifies one benchmark's comparison.
type Verdict string

const (
	OK         Verdict = "ok"         // within every gate
	Improved   Verdict = "improved"   // a metric got better; consider refreshing the baseline
	Regression Verdict = "REGRESSION" // a gated metric got worse
	Missing    Verdict = "MISSING"    // in the baseline but absent from the stream
	New        Verdict = "new"        // in the stream but not yet gated by the baseline
)

// A Delta is one benchmark's baseline-versus-current comparison.
type Delta struct {
	Key     string
	Verdict Verdict
	// Detail is the human-readable per-metric breakdown.
	Detail string
}

// Compare gates current against baseline. Every baseline benchmark must
// be present; allocs/op and B/op must not increase at all; ns/op must
// stay within bandPct percent above the baseline. A missing gated
// benchmark is a regression (a gate cannot be retired by deleting the
// bench). Returns the per-benchmark deltas in baseline order (new,
// ungated benchmarks last) and the number of failures.
func Compare(baseline, current []Result, bandPct float64) (deltas []Delta, failures int) {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Key()] = r
	}
	base := make(map[string]bool, len(baseline))

	for _, b := range baseline {
		base[b.Key()] = true
		c, ok := cur[b.Key()]
		if !ok {
			failures++
			deltas = append(deltas, Delta{
				Key:     b.Key(),
				Verdict: Missing,
				Detail:  "gated benchmark not present in the stream; a gate cannot be retired by deleting the bench (refresh with make bench-baseline if intentional)",
			})
			continue
		}
		var parts []string
		verdict := OK

		limit := b.NsPerOp * (1 + bandPct/100)
		switch {
		case c.NsPerOp > limit:
			verdict = Regression
			parts = append(parts, fmt.Sprintf("ns/op %.4g -> %.4g (+%.1f%%, band %.0f%%)",
				b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), bandPct))
		case c.NsPerOp < b.NsPerOp*(1-bandPct/100):
			verdict = Improved
			parts = append(parts, fmt.Sprintf("ns/op %.4g -> %.4g (%.1f%%)",
				b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1)))
		default:
			parts = append(parts, fmt.Sprintf("ns/op %.4g -> %.4g", b.NsPerOp, c.NsPerOp))
		}

		for _, m := range []struct {
			unit       string
			base, curr int64
		}{
			{"B/op", b.BPerOp, c.BPerOp},
			{"allocs/op", b.AllocsPerOp, c.AllocsPerOp},
		} {
			switch {
			case m.base < 0:
				// not gated: baseline has no memory stats for it
			case m.curr < 0:
				verdict = Regression
				parts = append(parts, fmt.Sprintf("%s %d -> unreported (memory stats disappeared; keep -benchmem)", m.unit, m.base))
			case m.base == 0 && m.curr > 0:
				verdict = Regression
				parts = append(parts, fmt.Sprintf("%s 0 -> %d (exact gate: the kernel's zero must stay zero)", m.unit, m.curr))
			case float64(m.curr) > float64(m.base)*(1+bandPct/100):
				verdict = Regression
				parts = append(parts, fmt.Sprintf("%s %d -> %d (+%.1f%%, band %.0f%%)",
					m.unit, m.base, m.curr, 100*(float64(m.curr)/float64(m.base)-1), bandPct))
			case m.curr != m.base:
				if verdict == OK && m.curr < m.base {
					verdict = Improved
				}
				parts = append(parts, fmt.Sprintf("%s %d -> %d", m.unit, m.base, m.curr))
			default:
				parts = append(parts, fmt.Sprintf("%s %d", m.unit, m.base))
			}
		}
		if verdict == Regression {
			failures++
		}
		deltas = append(deltas, Delta{Key: b.Key(), Verdict: verdict, Detail: strings.Join(parts, "  ")})
	}

	for _, c := range current { // already normalized order
		if !base[c.Key()] {
			deltas = append(deltas, Delta{
				Key:     c.Key(),
				Verdict: New,
				Detail:  "not in the baseline; run make bench-baseline to start gating it",
			})
		}
	}
	return deltas, failures
}
