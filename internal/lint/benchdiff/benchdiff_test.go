package benchdiff

import (
	"bytes"
	"strings"
	"testing"
)

// stream builds a minimal `go test -json` NDJSON stream from benchmark
// output lines, splitting one line across two Output events the way the
// real stream does (name first, metrics later).
func stream(lines ...string) string {
	var b strings.Builder
	b.WriteString(`{"Time":"2026-08-05T01:39:57.13Z","Action":"start","Package":"repro/internal/sim"}` + "\n")
	for _, l := range lines {
		name := l[:strings.IndexByte(l, '\t')]
		rest := l[len(name):]
		b.WriteString(`{"Time":"2026-08-05T01:39:58.36Z","Action":"output","Package":"repro/internal/sim","Output":"` + name + `"}` + "\n")
		b.WriteString(`{"Time":"2026-08-05T01:39:58.37Z","Action":"output","Package":"repro/internal/sim","Output":"` + strings.ReplaceAll(rest, "\t", `\t`) + `\n"}` + "\n")
	}
	b.WriteString(`{"Time":"2026-08-05T01:40:05.0Z","Action":"pass","Package":"repro/internal/sim"}` + "\n")
	return b.String()
}

func TestParseStreamMergesCounts(t *testing.T) {
	in := stream(
		"BenchmarkSchedule-8\t35257432\t        33.73 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkSchedule-8\t35257432\t        35.10 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkSchedule-8\t35257432\t        34.20 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkMailbox-8\t  942016\t      1138 ns/op\t       7 B/op\t       1 allocs/op",
	)
	rs, err := ParseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(rs), rs)
	}
	// Normalized order: Mailbox < Schedule.
	mb, sched := rs[0], rs[1]
	if sched.Name != "BenchmarkSchedule" || sched.Runs != 3 || sched.NsPerOp != 33.73 {
		t.Errorf("Schedule = %+v, want name without -8, 3 runs, min 33.73 ns/op", sched)
	}
	if sched.BPerOp != 0 || sched.AllocsPerOp != 0 {
		t.Errorf("Schedule memory = %d B/op %d allocs/op, want 0/0", sched.BPerOp, sched.AllocsPerOp)
	}
	if mb.Name != "BenchmarkMailbox" || mb.BPerOp != 7 || mb.AllocsPerOp != 1 {
		t.Errorf("Mailbox = %+v, want 7 B/op 1 allocs/op", mb)
	}
}

func TestBaselineRoundTripIsStable(t *testing.T) {
	rs := []Result{
		{Package: "repro/internal/sim", Name: "BenchmarkSchedule", Runs: 3, NsPerOp: 33.73, BPerOp: 0, AllocsPerOp: 0},
		{Package: "repro", Name: "BenchmarkFig3FTClassB", Runs: 1, NsPerOp: 2.1e9, BPerOp: 12345, AllocsPerOp: 678},
	}
	var a, b bytes.Buffer
	if err := WriteBaseline(&a, rs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBaseline(&b, got); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("baseline round trip not byte-stable:\n%s\nvs\n%s", a.String(), b.String())
	}
	if strings.Contains(a.String(), "Time") {
		t.Errorf("baseline must not carry timestamps:\n%s", a.String())
	}
	// Canonical order: sorted by package then name, regardless of input order.
	if !strings.HasPrefix(a.String(), `{"package":"repro",`) {
		t.Errorf("baseline not sorted canonically:\n%s", a.String())
	}
}

func mkResult(name string, ns float64, bop, allocs int64) Result {
	return Result{Package: "repro/internal/sim", Name: name, Runs: 3, NsPerOp: ns, BPerOp: bop, AllocsPerOp: allocs}
}

func TestCompareGates(t *testing.T) {
	baseline := []Result{
		mkResult("BenchmarkMailbox", 1138, 0, 0),
		mkResult("BenchmarkSchedule", 33.73, 0, 0),
		mkResult("BenchmarkSleepWake", 519.4, 0, 0),
	}
	cases := []struct {
		name     string
		current  []Result
		failures int
		verdicts map[string]Verdict
	}{
		{
			name: "clean within band",
			current: []Result{
				mkResult("BenchmarkMailbox", 1200, 0, 0),
				mkResult("BenchmarkSchedule", 34.9, 0, 0),
				mkResult("BenchmarkSleepWake", 519.4, 0, 0),
			},
			failures: 0,
		},
		{
			name: "alloc regression 0 to 1 is exact",
			current: []Result{
				mkResult("BenchmarkMailbox", 1138, 8, 1), // the seeded 0->1 regression
				mkResult("BenchmarkSchedule", 33.73, 0, 0),
				mkResult("BenchmarkSleepWake", 519.4, 0, 0),
			},
			failures: 1,
			verdicts: map[string]Verdict{"repro/internal/sim.BenchmarkMailbox": Regression},
		},
		{
			name: "ns regression outside band",
			current: []Result{
				mkResult("BenchmarkMailbox", 1138, 0, 0),
				mkResult("BenchmarkSchedule", 55.0, 0, 0), // +63% > 25% band
				mkResult("BenchmarkSleepWake", 519.4, 0, 0),
			},
			failures: 1,
			verdicts: map[string]Verdict{"repro/internal/sim.BenchmarkSchedule": Regression},
		},
		{
			name: "missing gated benchmark fails",
			current: []Result{
				mkResult("BenchmarkMailbox", 1138, 0, 0),
				mkResult("BenchmarkSchedule", 33.73, 0, 0),
			},
			failures: 1,
			verdicts: map[string]Verdict{"repro/internal/sim.BenchmarkSleepWake": Missing},
		},
		{
			name: "improvement and new bench do not fail",
			current: []Result{
				mkResult("BenchmarkMailbox", 600, 0, 0),
				mkResult("BenchmarkSchedule", 33.73, 0, 0),
				mkResult("BenchmarkSleepWake", 519.4, 0, 0),
				mkResult("BenchmarkBrandNew", 10, 0, 0),
			},
			failures: 0,
			verdicts: map[string]Verdict{
				"repro/internal/sim.BenchmarkMailbox":  Improved,
				"repro/internal/sim.BenchmarkBrandNew": New,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deltas, failures := Compare(baseline, tc.current, 25)
			if failures != tc.failures {
				t.Errorf("failures = %d, want %d; deltas: %+v", failures, tc.failures, deltas)
			}
			got := make(map[string]Verdict)
			for _, d := range deltas {
				got[d.Key] = d.Verdict
			}
			for key, want := range tc.verdicts {
				if got[key] != want {
					t.Errorf("%s: verdict %s, want %s", key, got[key], want)
				}
			}
		})
	}
}

// TestCompareMemoryBand pins the two-tier memory gate: a zero baseline
// is exact (any allocation fails), while a nonzero baseline — the big
// end-to-end benches, whose allocs/op jitters by a handful per run with
// goroutine stack growth — tolerates the same percentage band as ns/op.
func TestCompareMemoryBand(t *testing.T) {
	baseline := []Result{mkResult("BenchmarkCampaign8Par", 900000, 92000, 825)}

	inBand := []Result{mkResult("BenchmarkCampaign8Par", 900000, 92400, 831)}
	if deltas, failures := Compare(baseline, inBand, 25); failures != 0 {
		t.Errorf("in-band memory jitter failed the gate: %+v", deltas)
	}

	outOfBand := []Result{mkResult("BenchmarkCampaign8Par", 900000, 92000, 1100)} // +33% allocs
	deltas, failures := Compare(baseline, outOfBand, 25)
	if failures != 1 || deltas[0].Verdict != Regression {
		t.Errorf("out-of-band allocs/op growth not gated: failures=%d deltas=%+v", failures, deltas)
	}
}

// TestCompareMemoryStatsDisappearing pins the -benchmem guard: a
// baseline with memory stats cannot be satisfied by a stream without
// them.
func TestCompareMemoryStatsDisappearing(t *testing.T) {
	baseline := []Result{mkResult("BenchmarkSchedule", 33.73, 0, 0)}
	current := []Result{{Package: "repro/internal/sim", Name: "BenchmarkSchedule", Runs: 1, NsPerOp: 33.73, BPerOp: -1, AllocsPerOp: -1}}
	_, failures := Compare(baseline, current, 25)
	if failures != 1 {
		t.Errorf("failures = %d, want 1 when memory stats disappear", failures)
	}
}

// TestParseStreamRealArchive parses the repository's own committed
// BENCH_sim.json if present, which keeps the parser honest against the
// real `go test -json` framing (split output lines, interleaved
// packages, the lint benches' -benchtime 1x).
func TestParseStreamRealArchive(t *testing.T) {
	data, err := readRepoFile("BENCH_sim.json")
	if err != nil {
		t.Skipf("no BENCH_sim.json: %v", err)
	}
	rs, err := ParseStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no benchmarks parsed from BENCH_sim.json")
	}
	for _, r := range rs {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: ns/op %v not positive", r.Key(), r.NsPerOp)
		}
		if strings.HasSuffix(r.Name, "-8") {
			t.Errorf("%s: GOMAXPROCS suffix not stripped", r.Name)
		}
	}
}
