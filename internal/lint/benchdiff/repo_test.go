package benchdiff

import (
	"os"
	"path/filepath"
)

// readRepoFile reads a file from the module root (walking up from the
// test's working directory to go.mod).
func readRepoFile(name string) ([]byte, error) {
	dir, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return os.ReadFile(filepath.Join(dir, name))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, os.ErrNotExist
		}
		dir = parent
	}
}
