// Package panicfree defines an analyzer that enforces the repository's
// panic discipline in library code: internal packages must report
// failures as errors, not panics, so a malformed configuration or a
// modeling bug surfaces as a diagnosable failure in cmd/ front-ends
// instead of killing a long campaign half-way through its sweeps.
//
// Two escapes exist, both deliberate and visible at the call site:
//
//   - constructor-validation functions named Must* (or must*) may
//     panic, following the stdlib regexp.MustCompile convention, and
//   - a "//lint:allow panicfree (reason)" comment marks an invariant
//     panic that genuinely cannot be an error (e.g. the simulation
//     kernel detecting internal scheduler corruption).
package panicfree

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags panic calls in internal library packages.
var Analyzer = &analysis.Analyzer{
	Name: "panicfree",
	Doc: "forbid panic() in internal/* non-test code except inside Must* " +
		"constructor-validation functions; return errors at API boundaries, " +
		"or mark kernel invariants with //lint:allow panicfree (reason)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), "repro/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		analysis.WalkFuncs([]*ast.File{f}, func(name string, body ast.Node) {
			if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
					return true // a local function shadowing the builtin
				}
				where := "function " + name
				if name == "" {
					where = "package-level initializer"
				}
				pass.Reportf(call.Pos(), "panic in %s of library package %s; "+
					"return an error (or rename the constructor Must*, or "+
					"//lint:allow panicfree with a reason)", where, pass.Pkg.Path())
				return true
			})
		})
	}
	return nil
}
