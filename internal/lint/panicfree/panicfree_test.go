package panicfree_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/panicfree"
)

func TestPanicFree(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, panicfree.Analyzer, "repro/internal/panicfixture")
}
