package floateq_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/floateq"
)

func TestFloatEq(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, floateq.Analyzer, "fixtures/floateq")
}
