// Package floateq defines an analyzer that flags exact == and !=
// comparisons between floating-point operands. Energies, delays, and
// voltages in this repository are accumulated through long chains of
// floating-point arithmetic; exact equality on such values silently
// depends on evaluation order and FMA contraction and is exactly the
// kind of bug that corrupts an operating-point selection without
// failing a test.
//
// Comparisons are permitted when
//   - one operand is the constant zero (the "is it set / guard the
//     division" idiom, which is exact in IEEE 754),
//   - both operands are compile-time constants,
//   - the comparison is inside an epsilon-helper function whose name
//     says so (approxEqual, AlmostEq, withinEps, nearlyEqual, ...), or
//   - the line carries "//lint:allow floateq".
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
)

// Analyzer flags exact floating-point equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "forbid exact ==/!= between floating-point operands outside " +
		"epsilon-helper functions; compare with an epsilon helper or " +
		"suppress with //lint:allow floateq",
	Run: run,
}

// epsilonHelper matches the names of functions that exist to implement
// tolerant comparison; the raw comparison they contain is their job.
var epsilonHelper = regexp.MustCompile(`(?i)^(approx|almost|near|within|close|floateq|epsEq)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		analysis.WalkFuncs([]*ast.File{f}, func(name string, body ast.Node) {
			if epsilonHelper.MatchString(name) {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				b, ok := n.(*ast.BinaryExpr)
				if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
					return true
				}
				x := pass.TypesInfo.Types[b.X]
				y := pass.TypesInfo.Types[b.Y]
				if !isFloat(x.Type) && !isFloat(y.Type) {
					return true
				}
				if x.Value != nil && y.Value != nil {
					return true // constant-folded, exact by definition
				}
				if isZero(x.Value) || isZero(y.Value) {
					return true
				}
				pass.Reportf(b.OpPos, "exact floating-point %s comparison; "+
					"use an epsilon helper (or //lint:allow floateq with a reason)", b.Op)
				return true
			})
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZero(v constant.Value) bool {
	return v != nil && v.Kind() == constant.Float && constant.Sign(v) == 0 ||
		v != nil && v.Kind() == constant.Int && constant.Sign(v) == 0
}
