// Package analysistest runs an analyzer over golden fixture packages
// and checks its diagnostics against "// want" expectations embedded in
// the fixture source, mirroring the x/tools package of the same name.
//
// Fixtures live in GOPATH-style layout under a testdata directory:
//
//	testdata/src/<import/path>/<files>.go
//
// and each line that should trigger a diagnostic carries a comment of
// one or more quoted regular expressions:
//
//	wall := time.Now() // want `time\.Now`
//
// Every diagnostic must match a want on its exact file and line, and
// every want must be matched by exactly one diagnostic; either kind of
// mismatch fails the test. A fixture line whose diagnostic is
// suppressed by //lint:allow simply carries no want comment — if the
// suppression were to stop working, the unexpected diagnostic fails
// the test, which is how the escape hatch itself stays tested.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Run loads each fixture package from dir/src/<path>, applies the
// analyzer, and reports expectation mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		runOne(t, dir, a, path)
	}
}

// TestData returns the absolute path of the testdata directory of the
// caller's package, following the x/tools convention.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{root: filepath.Join(dir, "src"), fset: fset, loaded: make(map[string]*types.Package)}
	files, tpkg, info, err := ld.loadDir(pkgPath)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, pkgPath, err)
	}

	pass := analysis.NewPass(a, fset, files, tpkg, info)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed on %s: %v", a.Name, pkgPath, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range pass.Diagnostics() {
		p := fset.Position(d.Pos)
		if !wants.match(p.Filename, p.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
			a.Name, w.re.String(), w.file, w.line)
	}
}

// fixtureLoader parses and type-checks fixture packages, resolving
// imports first against the fixture tree and then the standard library.
type fixtureLoader struct {
	root   string
	fset   *token.FileSet
	loaded map[string]*types.Package
	std    types.Importer
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if p, ok := ld.loaded[path]; ok {
		return p, nil
	}
	if st, err := os.Stat(filepath.Join(ld.root, path)); err == nil && st.IsDir() {
		_, tpkg, _, err := ld.loadDir(path)
		return tpkg, err
	}
	if ld.std == nil {
		ld.std = importer.Default()
	}
	return ld.std.Import(path)
}

func (ld *fixtureLoader) loadDir(pkgPath string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(ld.root, pkgPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := loader.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking: %v", err)
	}
	ld.loaded[pkgPath] = tpkg
	return files, tpkg, info, nil
}

// want is one expectation: a regexp that must match a diagnostic on a
// specific line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRE matches one Go string literal, double-quoted or backquoted.
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					ws.wants = append(ws.wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return ws
}

func (ws *wantSet) match(file string, line int, message string) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
