package shardown_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/shardown"
)

// TestShardown runs the fixture package: each ownership rule's seeded
// violation (foreign slot access, cross-shard scheduling, captured
// coordinator writes, and the reconstructed mpi rendezvous collision)
// next to the clean shapes — own-index slot writes, engine aliases,
// annotated relays, coordinator globals — that must stay quiet.
func TestShardown(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, shardown.Analyzer, "fixtures/shardown")
}
