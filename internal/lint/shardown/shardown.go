// Package shardown defines the shard-ownership analyzer for the
// sharded event core. The sim.Group API partitions simulator state
// across per-shard engines; within a lookahead window each shard
// advances concurrently, so state owned by one shard may only be
// touched from another through the sanctioned channels — Group.Post,
// Group.ScheduleGlobal (coordinator globals run at window barriers),
// the two-stage netsim Send/Accept booking, or read-only
// window-barrier globals. Everything else is a data race that the
// byte-equality tests can only catch after the fact; this analyzer
// catches it at lint time.
//
// Ownership is inferred from the API itself:
//
//   - a closure handed to Engine.Schedule/Spawn/SpawnAt/After/
//     PostArrival runs on that engine's shard; the engine's owner is
//     resolved through aliases (x := g.Engine(i), n := ranks[j],
//     eng := n.Engine(), range variables, rank-owned parameters);
//   - a closure handed to Group.Post(shard, ...) runs on that shard;
//   - a closure handed to Group.ScheduleGlobal runs in coordinator
//     context (sequential at the window barrier — exempt from checks);
//   - per-rank slot slices (finished[i], finishAt[i]) are inferred
//     from writes at the closure's own index and may be annotated
//     explicitly.
//
// Rank-owned types are machine.Node and mpi.Rank plus any
// same-package type annotated "//lint:ownedby rank". Functions that
// relay closures to another rank's shard declare it with
// "//lint:ownedby rank <param>" (mpi.(*World).post) or
// "//lint:ownedby coordinator"; dangling or malformed directives are
// reported like any other finding.
//
// In a shard context with a known home the analyzer reports:
//
//   - access (read or write) to a per-rank slot at a foreign index,
//     and capturing a whole slot slice;
//   - Schedule/Spawn/... on an engine owned by a different shard
//     ("route it through Group.Post");
//   - writes to captured locals of the enclosing function (the
//     window-barrier-global rule: coordinator state may be read from
//     shards, never written);
//   - any use of a rank-owned handle (selector, index, method call)
//     whose owner differs from the context's — the shape of the PR 7
//     mpi rendezvous collision, where a sender-shard closure keyed
//     receiver-side state by a sender-local handle.
//
// Contexts the analyzer cannot resolve stay unchecked: like the rest
// of the suite, shardown only reports what it can prove, so an
// unresolvable home silences rather than guesses.
package shardown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer reports simulator state touched from a shard that does not
// own it, outside the sanctioned cross-shard channels.
var Analyzer = &analysis.Analyzer{
	Name: "shardown",
	Doc: "infer shard ownership from the sim.Group API (per-shard engines, rank-owned " +
		"types, per-rank slots, //lint:ownedby annotations) and forbid cross-shard " +
		"access outside Group.Post / Group.ScheduleGlobal / netsim Send+Accept",
	Run: run,
}

const simPkg = "repro/internal/sim"

// builtinRankOwned are the module's per-rank aggregate types: a value
// of one of these belongs to the shard its engine lives on.
var builtinRankOwned = map[[2]string]bool{
	{"repro/internal/machine", "Node"}: true,
	{"repro/internal/mpi", "Rank"}:     true,
}

// schedulingMethods are the Engine methods that enqueue a closure onto
// the engine's shard.
var schedulingMethods = map[string]bool{
	"Schedule": true, "Spawn": true, "SpawnAt": true,
	"After": true, "PostArrival": true,
}

// A homeKind distinguishes the two index spaces owners are named in.
type homeKind int

const (
	rankHome  homeKind = iota // an index into the per-rank arrays
	shardHome                 // an index into the group's engines
)

func (k homeKind) String() string {
	if k == shardHome {
		return "shard"
	}
	return "rank"
}

// A home names an owner as a canonical source expression ("i",
// "m.Dst", "0") in one index space. Two homes are comparable only
// within the same kind; differing text within a kind is reported,
// differing kinds are skipped.
type home struct {
	kind homeKind
	text string
}

// ctxKind classifies the execution context of a statement.
type ctxKind int

const (
	ctxRoot        ctxKind = iota // the function's own body: its caller's context
	ctxCoordinator                // sequential at a window barrier: exempt
	ctxShard                      // concurrent on a known shard: checked
	ctxUnknown                    // unresolvable: unchecked
)

// A context is where code runs; lit is the classified closure the
// context was established at (locals declared outside it are
// "captured").
type context struct {
	kind ctxKind
	home home
	lit  *ast.FuncLit
}

// directive is one parsed //lint:ownedby comment.
type directive struct {
	pos     token.Pos
	line    int
	file    string
	kind    string // "rank", "coordinator"
	param   string // for "rank <param>" on functions
	bad     string // non-empty for malformed directives
	claimed bool
}

// funcAnn is a function-level ownership annotation.
type funcAnn struct {
	coordinator bool
	rankParam   string
}

func run(pass *analysis.Pass) error {
	dirs := parseDirectives(pass)

	// Same-package rank-owned type annotations and function
	// annotations, claimed from declaration doc comments.
	rankOwnedTypes := make(map[*types.TypeName]bool)
	funcAnns := make(map[*types.Func]funcAnn)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				dir := dirs.claimDoc(pass.Fset, d.Doc)
				if dir == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				switch {
				case dir.kind == "coordinator":
					funcAnns[fn] = funcAnn{coordinator: true}
				case dir.kind == "rank" && dir.param != "":
					if !hasParam(fn, dir.param) {
						dir.bad = fmt.Sprintf("function %s has no parameter %q", fn.Name(), dir.param)
						continue
					}
					funcAnns[fn] = funcAnn{rankParam: dir.param}
				default:
					dir.bad = "a function directive needs \"coordinator\" or \"rank <param>\""
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				dir := dirs.claimDoc(pass.Fset, d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if dir == nil {
						dir = dirs.claimDoc(pass.Fset, ts.Doc)
					}
					if dir == nil {
						continue
					}
					if dir.kind != "rank" || dir.param != "" {
						dir.bad = "a type directive must be exactly \"//lint:ownedby rank\""
						continue
					}
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						rankOwnedTypes[tn] = true
					}
				}
			}
		}
	}

	own := &ownership{pass: pass, rankOwnedTypes: rankOwnedTypes, funcAnns: funcAnns, dirs: dirs}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			own.checkFunc(fd)
		}
	}

	// Unclaimed or malformed directives are findings themselves, like
	// hotalloc's dangling markers.
	for _, d := range dirs.all {
		if analysis.IsTestFile(pass.Fset, d.pos) {
			continue
		}
		if d.bad != "" {
			pass.Reportf(d.pos, "malformed //lint:ownedby directive: %s", d.bad)
		} else if !d.claimed {
			pass.Reportf(d.pos, "dangling //lint:ownedby directive: no type, function, or slot declaration claims it")
		}
	}
	return nil
}

func hasParam(fn *types.Func, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return true
		}
	}
	return false
}

// ---- directives ----

type directives struct {
	all    []*directive
	byLine map[string]map[int]*directive
}

// parseDirectives collects every //lint:ownedby comment.
func parseDirectives(pass *analysis.Pass) *directives {
	ds := &directives{byLine: make(map[string]map[int]*directive)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ownedby")
				if !ok {
					continue
				}
				// Tolerate a trailing comment ("//lint:ownedby rank // want ..."),
				// mirroring the hotalloc marker grammar.
				if cut, _, found := strings.Cut(rest, "//"); found {
					rest = cut
				}
				d := &directive{pos: c.Pos()}
				p := pass.Fset.Position(c.Pos())
				d.file, d.line = p.Filename, p.Line
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 1 && fields[0] == "coordinator":
					d.kind = "coordinator"
				case len(fields) >= 1 && fields[0] == "rank":
					d.kind = "rank"
					if len(fields) == 2 {
						d.param = fields[1]
					} else if len(fields) > 2 {
						d.bad = "expected \"rank\", \"rank <param>\", or \"coordinator\""
					}
				default:
					d.bad = "expected \"rank\", \"rank <param>\", or \"coordinator\""
				}
				ds.all = append(ds.all, d)
				if ds.byLine[d.file] == nil {
					ds.byLine[d.file] = make(map[int]*directive)
				}
				ds.byLine[d.file][d.line] = d
			}
		}
	}
	return ds
}

// claimDoc claims a directive attached to a doc comment group.
func (ds *directives) claimDoc(fset *token.FileSet, doc *ast.CommentGroup) *directive {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		p := fset.Position(c.Pos())
		if d := ds.byLine[p.Filename][p.Line]; d != nil && d.bad == "" {
			d.claimed = true
			return d
		}
	}
	return nil
}

// claimAt claims a slot directive ("//lint:ownedby rank", no param) on
// the statement's own line or the line above; other forms are left for
// the dangling report.
func (ds *directives) claimAt(fset *token.FileSet, pos token.Pos) *directive {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		d := ds.byLine[p.Filename][line]
		if d != nil && d.bad == "" && d.kind == "rank" && d.param == "" {
			d.claimed = true
			return d
		}
	}
	return nil
}

// ---- per-package ownership model ----

type ownership struct {
	pass           *analysis.Pass
	rankOwnedTypes map[*types.TypeName]bool
	funcAnns       map[*types.Func]funcAnn
	dirs           *directives
}

// rankOwned reports whether t (or its pointee) is a per-rank aggregate.
func (o *ownership) rankOwned(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if o.rankOwnedTypes[tn] {
		return true
	}
	if tn.Pkg() == nil {
		return false
	}
	return builtinRankOwned[[2]string{tn.Pkg().Path(), tn.Name()}]
}

// isSimType reports whether t is (a pointer to) sim.<name>.
func isSimType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Name() == name && tn.Pkg() != nil && tn.Pkg().Path() == simPkg
}

// elemType returns the element type of a slice/array/map type.
func elemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	}
	return nil
}

func (o *ownership) typeOf(x ast.Expr) types.Type {
	return o.pass.TypesInfo.Types[x].Type
}

// ---- per-function analysis ----

type funcCheck struct {
	o  *ownership
	fd *ast.FuncDecl
	// aliasHomes maps local objects (params, receivers, := aliases,
	// range variables) to their resolved owner.
	aliasHomes map[types.Object]home
	// slots are the per-rank slot slices of this function: annotated,
	// or inferred from a write at the owning index in a shard closure.
	slots map[types.Object]bool
	// litCtx pre-classifies ident-bound literals by their use sites.
	litCtx map[*ast.FuncLit]context
	// collecting is true during the slot-inference pass.
	collecting bool
	reported   map[token.Pos]bool
}

func (o *ownership) checkFunc(fd *ast.FuncDecl) {
	fc := &funcCheck{
		o:          o,
		fd:         fd,
		aliasHomes: make(map[types.Object]home),
		slots:      make(map[types.Object]bool),
		litCtx:     make(map[*ast.FuncLit]context),
		reported:   make(map[token.Pos]bool),
	}
	fc.buildAliases()
	fc.claimSlotAnnotations()
	fc.classifyBoundLits()
	// Pass 1 infers slots from own-index writes; pass 2 reports.
	fc.collecting = true
	fc.walk(fd.Body, context{kind: ctxRoot})
	fc.collecting = false
	fc.walk(fd.Body, context{kind: ctxRoot})
}

// buildAliases resolves the function's owner-carrying names: receiver
// and parameters of rank-owned types, := aliases of resolvable
// expressions, and range variables over rank-owned collections. Two
// passes settle forward references in source order.
func (fc *funcCheck) buildAliases() {
	info := fc.o.pass.TypesInfo
	if fc.fd.Recv != nil {
		for _, field := range fc.fd.Recv.List {
			for _, n := range field.Names {
				if obj := info.Defs[n]; obj != nil && fc.o.rankOwned(obj.Type()) {
					fc.aliasHomes[obj] = home{rankHome, n.Name}
				}
			}
		}
	}
	if fc.fd.Type.Params != nil {
		for _, field := range fc.fd.Type.Params.List {
			for _, n := range field.Names {
				if obj := info.Defs[n]; obj != nil && fc.o.rankOwned(obj.Type()) {
					fc.aliasHomes[obj] = home{rankHome, n.Name}
				}
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fc.fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						continue
					}
					if h, ok := fc.homeOf(s.Rhs[i]); ok {
						fc.aliasHomes[obj] = h
					}
				}
			case *ast.RangeStmt:
				if elem := elemType(fc.o.typeOf(s.X)); elem == nil || !fc.o.rankOwned(elem) {
					return true
				}
				vid, _ := s.Value.(*ast.Ident)
				if vid == nil || vid.Name == "_" {
					return true
				}
				obj := info.Defs[vid]
				if obj == nil {
					return true
				}
				// The value variable is owned by the key's index when
				// the key is named, else by its own name.
				idxText := vid.Name
				if kid, ok := s.Key.(*ast.Ident); ok && kid.Name != "_" {
					idxText = kid.Name
				}
				fc.aliasHomes[obj] = home{rankHome, idxText}
			}
			return true
		})
	}
}

// claimSlotAnnotations marks locals annotated //lint:ownedby rank (on
// the declaration's line or the line above) as per-rank slots.
func (fc *funcCheck) claimSlotAnnotations() {
	info := fc.o.pass.TypesInfo
	ast.Inspect(fc.fd.Body, func(n ast.Node) bool {
		var names []*ast.Ident
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					names = append(names, id)
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					names = append(names, vs.Names...)
				}
			}
		default:
			return true
		}
		if len(names) == 0 {
			return true
		}
		d := fc.o.dirs.claimAt(fc.o.pass.Fset, n.Pos())
		if d == nil {
			return true
		}
		for _, id := range names {
			if obj := info.Defs[id]; obj != nil {
				fc.slots[obj] = true
			}
		}
		return true
	})
}

// classifyBoundLits classifies `name := func(){...}` literals by how
// name is used: handed to ScheduleGlobal it is coordinator code,
// handed to an engine-scheduling method it belongs to that shard.
// Conflicting uses leave it unknown (and therefore unchecked).
func (fc *funcCheck) classifyBoundLits() {
	info := fc.o.pass.TypesInfo
	bound := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(fc.fd.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || s.Tok != token.DEFINE || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return true
		}
		lit, ok := s.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				bound[obj] = lit
			}
		}
		return true
	})
	if len(bound) == 0 {
		return
	}
	ast.Inspect(fc.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			lit := bound[obj]
			if lit == nil {
				continue
			}
			ctx, classifies := fc.callArgContext(call, i)
			if !classifies {
				continue
			}
			if prev, seen := fc.litCtx[lit]; seen && (prev.kind != ctx.kind || prev.home != ctx.home) {
				ctx = context{kind: ctxUnknown}
			}
			ctx.lit = lit
			fc.litCtx[lit] = ctx
		}
		return true
	})
}

// callArgContext decides the execution context a closure argument of
// call would run in, or classifies=false when the call is not a
// dispatching API.
func (fc *funcCheck) callArgContext(call *ast.CallExpr, argIdx int) (ctx context, classifies bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if isSel {
		recvType := fc.o.typeOf(sel.X)
		if isSimType(recvType, "Group") {
			switch sel.Sel.Name {
			case "ScheduleGlobal":
				return context{kind: ctxCoordinator}, true
			case "Post":
				if len(call.Args) > 0 {
					return context{kind: ctxShard, home: home{shardHome, exprText(call.Args[0])}}, true
				}
				return context{kind: ctxUnknown}, true
			}
		}
		if isSimType(recvType, "Engine") && schedulingMethods[sel.Sel.Name] {
			if h, ok := fc.homeOf(sel.X); ok {
				return context{kind: ctxShard, home: h}, true
			}
			return context{kind: ctxUnknown}, true
		}
	}
	// Same-package functions annotated //lint:ownedby.
	fn := dataflow.Callee(fc.o.pass.TypesInfo, call)
	if fn != nil {
		if ann, ok := fc.o.funcAnns[fn]; ok {
			if ann.coordinator {
				return context{kind: ctxCoordinator}, true
			}
			if idx := paramIndex(fn, ann.rankParam); idx >= 0 && idx < len(call.Args) {
				return context{kind: ctxShard, home: home{rankHome, exprText(call.Args[idx])}}, true
			}
			return context{kind: ctxUnknown}, true
		}
	}
	_ = argIdx
	return context{}, false
}

func paramIndex(fn *types.Func, name string) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i
		}
	}
	return -1
}

// homeOf resolves the owner of an expression: aliases, per-rank
// elements (ranks[j]), owner-preserving selectors and method calls
// (r.node, n.Engine(), g.Engine(i)).
func (fc *funcCheck) homeOf(x ast.Expr) (home, bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := fc.o.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = fc.o.pass.TypesInfo.Defs[x]
		}
		if obj == nil {
			return home{}, false
		}
		h, ok := fc.aliasHomes[obj]
		return h, ok
	case *ast.IndexExpr:
		if elem := elemType(fc.o.typeOf(x.X)); elem != nil && fc.o.rankOwned(elem) {
			return home{rankHome, exprText(x.Index)}, true
		}
		return home{}, false
	case *ast.SelectorExpr:
		// A rank-owned or engine-typed field keeps its base's owner
		// (w.ranks[j].node is owned by rank j).
		t := fc.o.typeOf(x)
		if fc.o.rankOwned(t) || isSimType(t, "Engine") {
			return fc.homeOf(x.X)
		}
		return home{}, false
	case *ast.CallExpr:
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok {
			return home{}, false
		}
		// g.Engine(i) names shard i directly.
		if isSimType(fc.o.typeOf(sel.X), "Group") && sel.Sel.Name == "Engine" && len(x.Args) == 1 {
			return home{shardHome, exprText(x.Args[0])}, true
		}
		// A method returning the engine or a rank-owned value keeps
		// its receiver's owner (n.Engine(), r.eng()).
		t := fc.o.typeOf(x)
		if fc.o.rankOwned(t) || isSimType(t, "Engine") {
			return fc.homeOf(sel.X)
		}
		return home{}, false
	}
	return home{}, false
}

// exprText canonicalizes an index/owner expression for comparison.
func exprText(x ast.Expr) string { return types.ExprString(ast.Unparen(x)) }

// ---- the context walker ----

// walk traverses n, tracking execution context. Closure arguments of
// dispatching calls enter the derived context; other literals inherit
// (or use their bound-ident classification).
func (fc *funcCheck) walk(n ast.Node, ctx context) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		if !fc.checkCall(n, ctx) {
			fc.walk(n.Fun, ctx)
		}
		// len/cap observe a slot slice without touching foreign
		// elements, so their ident arguments are exempt.
		lenCap := false
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if _, builtin := fc.o.pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
				lenCap = id.Name == "len" || id.Name == "cap"
			}
		}
		for i, arg := range n.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				if argCtx, classifies := fc.callArgContext(n, i); classifies {
					argCtx.lit = lit
					fc.walkLit(lit, argCtx)
					continue
				}
			}
			if lenCap {
				if _, ok := ast.Unparen(arg).(*ast.Ident); ok {
					continue
				}
			}
			fc.walk(arg, ctx)
		}
		return
	case *ast.FuncLit:
		if pre, ok := fc.litCtx[n]; ok {
			fc.walkLit(n, pre)
			return
		}
		// Unclassified literal: it runs wherever the enclosing code
		// hands it, which we cannot see — inherit the enclosing
		// context (a literal built inside a shard closure usually runs
		// there too).
		inner := ctx
		if inner.lit == nil {
			inner.lit = n
		}
		fc.walkLit(n, inner)
		return
	case *ast.AssignStmt:
		if ctx.kind == ctxShard && !fc.collecting {
			for _, lhs := range n.Lhs {
				fc.checkWrite(lhs, ctx)
			}
		}
		if ctx.kind == ctxShard && fc.collecting {
			fc.collectSlots(n, ctx)
		}
		for _, r := range n.Rhs {
			fc.walk(r, ctx)
		}
		for _, l := range n.Lhs {
			fc.walk(l, ctx)
		}
		return
	case *ast.IncDecStmt:
		if ctx.kind == ctxShard && !fc.collecting {
			fc.checkWrite(n.X, ctx)
		}
		fc.walk(n.X, ctx)
		return
	case *ast.IndexExpr:
		if ctx.kind == ctxShard && !fc.collecting {
			fc.checkSlotAccess(n, ctx)
			if fc.checkForeignHome(n, ctx) {
				fc.walk(n.Index, ctx)
				return
			}
		}
		// Indexing is the sanctioned way to touch a slot slice, so the
		// base ident is exempt from the whole-capture check.
		if _, plain := ast.Unparen(n.X).(*ast.Ident); !plain {
			fc.walk(n.X, ctx)
		}
		fc.walk(n.Index, ctx)
		return
	case *ast.SelectorExpr:
		if ctx.kind == ctxShard && !fc.collecting && fc.checkForeignHome(n, ctx) {
			return
		}
		fc.walk(n.X, ctx)
		return
	case *ast.Ident:
		if ctx.kind == ctxShard && !fc.collecting && fc.o.pass.TypesInfo.Uses[n] != nil {
			if !fc.checkWholeSlotCapture(n, ctx) {
				fc.checkForeignHome(n, ctx)
			}
		}
		return
	}
	// Generic traversal for everything else.
	seen := false
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if !seen {
			seen = true // skip n itself
			return true
		}
		fc.walk(c, ctx)
		return false
	})
}

func (fc *funcCheck) walkLit(lit *ast.FuncLit, ctx context) {
	if ctx.lit == nil {
		ctx.lit = lit
	}
	fc.walk(lit.Body, ctx)
}

func (fc *funcCheck) report(pos token.Pos, format string, args ...any) {
	if fc.reported[pos] {
		return
	}
	fc.reported[pos] = true
	fc.o.pass.Reportf(pos, format, args...)
}

// collectSlots infers per-rank slot slices: a local of the enclosing
// function written at exactly the context's own index inside a shard
// closure is a slot.
func (fc *funcCheck) collectSlots(as *ast.AssignStmt, ctx context) {
	for _, lhs := range as.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		obj := fc.localBase(ix.X, ctx)
		if obj == nil {
			continue
		}
		if exprText(ix.Index) == ctx.home.text {
			fc.slots[obj] = true
		}
	}
}

// localBase resolves x to a local of the enclosing function captured
// by the context's closure (declared inside fd but outside ctx.lit).
func (fc *funcCheck) localBase(x ast.Expr, ctx context) types.Object {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	info := fc.o.pass.TypesInfo
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() < fc.fd.Pos() || v.Pos() > fc.fd.End() {
		return nil // package-level or foreign
	}
	if ctx.lit != nil && v.Pos() >= ctx.lit.Pos() && v.Pos() <= ctx.lit.End() {
		return nil // the closure's own local
	}
	return obj
}

// checkWrite enforces the window-barrier-global rule inside shard
// contexts: captured locals of the enclosing function may be read but
// not written (slot writes are checked by index instead).
func (fc *funcCheck) checkWrite(lhs ast.Expr, ctx context) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := fc.localBase(l, ctx); obj != nil {
			fc.report(l.Pos(), "write to %q, a captured local of the enclosing function, from the shard owning %s %s; "+
				"shard closures may read coordinator state but writes must go through Group.ScheduleGlobal",
				l.Name, ctx.home.kind, ctx.home.text)
		}
	case *ast.IndexExpr:
		obj := fc.localBase(l.X, ctx)
		if obj == nil {
			return
		}
		if fc.slots[obj] {
			if exprText(l.Index) != ctx.home.text {
				fc.report(l.Pos(), "write to per-rank slot %s[%s] from the shard owning %s %s; "+
					"cross-shard updates must go through Group.Post or Group.ScheduleGlobal",
					baseName(l.X), exprText(l.Index), ctx.home.kind, ctx.home.text)
			}
			return
		}
		fc.report(l.Pos(), "write to %q, a captured local of the enclosing function, from the shard owning %s %s; "+
			"shard closures may read coordinator state but writes must go through Group.ScheduleGlobal",
			baseName(l.X), ctx.home.kind, ctx.home.text)
	}
}

// checkSlotAccess reports reads of a per-rank slot at a foreign index.
func (fc *funcCheck) checkSlotAccess(ix *ast.IndexExpr, ctx context) {
	obj := fc.localBase(ix.X, ctx)
	if obj == nil || !fc.slots[obj] {
		return
	}
	if exprText(ix.Index) != ctx.home.text {
		fc.report(ix.Pos(), "access to per-rank slot %s[%s] from the shard owning %s %s; "+
			"cross-shard reads belong in a Group.ScheduleGlobal barrier global",
			baseName(ix.X), exprText(ix.Index), ctx.home.kind, ctx.home.text)
	}
}

// checkWholeSlotCapture reports a slot slice used as a value (ranged,
// passed, aliased) inside a shard closure; len/cap and indexing are
// fine, the whole slice is not.
func (fc *funcCheck) checkWholeSlotCapture(id *ast.Ident, ctx context) bool {
	obj := fc.o.pass.TypesInfo.Uses[id]
	if obj == nil || !fc.slots[obj] {
		return false
	}
	if fc.localBase(id, ctx) == nil {
		return false
	}
	fc.report(id.Pos(), "per-rank slot slice %q captured as a whole in the shard owning %s %s; "+
		"index it with the owning rank or move the aggregate into a barrier global",
		id.Name, ctx.home.kind, ctx.home.text)
	return true
}

// checkCall reports scheduling on a foreign shard's engine; true means
// the receiver subtree was covered by the report.
func (fc *funcCheck) checkCall(call *ast.CallExpr, ctx context) bool {
	if ctx.kind != ctxShard || fc.collecting {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !isSimType(fc.o.typeOf(sel.X), "Engine") || !schedulingMethods[sel.Sel.Name] {
		return false
	}
	h, ok := fc.homeOf(sel.X)
	if !ok || h.kind != ctx.home.kind || h.text == ctx.home.text {
		return false
	}
	fc.report(call.Pos(), "%s on the engine owned by %s %s from the shard owning %s %s; "+
		"cross-shard events must go through Group.Post",
		sel.Sel.Name, h.kind, h.text, ctx.home.kind, ctx.home.text)
	return true
}

// checkForeignHome reports any use of a rank-owned handle whose owner
// is not the context's — the shape of the PR 7 rendezvous collision.
// True means the subtree is covered and need not be walked.
func (fc *funcCheck) checkForeignHome(x ast.Expr, ctx context) bool {
	h, ok := fc.homeOf(x)
	if !ok || h.kind != ctx.home.kind || h.text == ctx.home.text {
		return false
	}
	fc.report(x.Pos(), "access to state owned by %s %s from the shard owning %s %s; "+
		"route it through Group.Post or the two-stage netsim Send/Accept booking",
		h.kind, h.text, ctx.home.kind, ctx.home.text)
	return true
}

func baseName(x ast.Expr) string {
	if id, ok := ast.Unparen(x).(*ast.Ident); ok {
		return id.Name
	}
	return exprText(x)
}
