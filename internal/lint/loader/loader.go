// Package loader loads and type-checks the module's packages for the
// repolint analyzers without any dependency outside the standard
// library. It shells out to "go list -json" for package discovery
// (respecting build constraints and the testdata exclusion exactly as
// the go tool does) and then parses and type-checks each package with
// go/parser and go/types, resolving intra-module imports recursively
// and standard-library imports through the compiler's export data.
//
// It is the engine behind both "repolint ./..." standalone runs and
// the repo-wide clean-lint meta-test; when repolint runs under
// "go vet -vettool" the go tool does the loading instead and repolint
// speaks the vet config protocol (see cmd/repolint).
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of "go list -json" output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// Load discovers the packages matching patterns (e.g. "./...") relative
// to dir, parses their non-test Go files with comments, and type-checks
// them in dependency order. All packages share fset.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, order, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	ld := &moduleLoader{
		fset:   fset,
		listed: listed,
		std:    importer.Default(),
		loaded: make(map[string]*Package),
	}
	var pkgs []*Package
	for _, path := range order {
		if len(listed[path].GoFiles) == 0 {
			continue // test-only package, e.g. internal/lint itself
		}
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList runs "go list -json patterns..." in dir and returns the
// decoded packages plus their import paths in stable order.
func goList(dir string, patterns []string) (map[string]*listedPackage, []string, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	listed := make(map[string]*listedPackage)
	var order []string
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed[p.ImportPath] = &p
		order = append(order, p.ImportPath)
	}
	sort.Strings(order)
	return listed, order, nil
}

// moduleLoader type-checks listed packages on demand, memoizing results
// so shared dependencies are checked once.
type moduleLoader struct {
	fset   *token.FileSet
	listed map[string]*listedPackage
	std    types.Importer
	loaded map[string]*Package
	stack  []string // cycle detection
}

// Import implements types.Importer: intra-module imports are loaded
// from source, everything else (the standard library) comes from the
// compiler's export data.
func (ld *moduleLoader) Import(path string) (*types.Package, error) {
	if _, ok := ld.listed[path]; ok {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

func (ld *moduleLoader) load(path string) (*Package, error) {
	if p, ok := ld.loaded[path]; ok {
		return p, nil
	}
	for _, on := range ld.stack {
		if on == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	meta := ld.listed[path]
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &Package{
		ImportPath: path,
		Dir:        meta.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	ld.loaded[path] = p
	return p, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
