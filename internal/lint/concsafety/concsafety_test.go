package concsafety_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/concsafety"
)

func TestConcSafety(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, concsafety.Analyzer, "fixtures/concsafety")
}
