// Package concsafety defines the analyzer for goroutine, channel, and
// WaitGroup discipline. The repository's only sanctioned concurrency
// lives in internal/exec (the bounded worker pool) and internal/sim
// (the coroutine-style process scheduler); everything else is supposed
// to be sequential. This analyzer polices the patterns that break that
// story in ways the race detector only catches when the schedule
// cooperates:
//
//   - wg.Add called inside the spawned goroutine instead of before the
//     go statement, so Wait can return before the goroutine is counted;
//   - a send on an unbuffered channel that provably has no receiver
//     (the channel never escapes the function and the send is not
//     paired with any concurrent receive), which deadlocks;
//   - a go statement whose function performs no synchronization and
//     calls nothing that could — a goroutine with no join path, which
//     outlives the caller silently and leaks;
//   - sync.Mutex (or any type containing one) copied by value — as a
//     parameter, receiver, result, assignment, or range variable —
//     which forks the lock state.
//
// The checks use the callgraph facts (Syncs, UnknownCalls) so that a
// goroutine whose body calls a helper that does channel sends is not
// flagged: only provably join-free goroutines are.
package concsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Analyzer flags goroutine/channel/WaitGroup misuse and by-value lock
// copies.
var Analyzer = &analysis.Analyzer{
	Name: "concsafety",
	Doc: "flag WaitGroup.Add inside the spawned goroutine, sends on channels " +
		"with no possible receiver, goroutines with no join path, and " +
		"sync.Mutex values copied by value",
	Run: run,
}

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	g := callgraph.Build(pass.Fset, files, pass.TypesInfo)
	for _, f := range files {
		checkAddInsideGo(pass, f)
		checkNoJoin(pass, g, f)
		checkDeadSend(pass, f)
		checkCopyLocks(pass, f)
	}
	return nil
}

// checkAddInsideGo flags wg.Add(...) as the first actions of a function
// run by a go statement: the counter must be incremented before the
// goroutine is spawned, or Wait can win the race and return early.
func checkAddInsideGo(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isWaitGroupMethod(pass.TypesInfo, call, "Add") {
				pass.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine; "+
					"call Add before the go statement so Wait cannot return early")
			}
			return true
		})
		return true
	})
}

// isWaitGroupMethod reports whether call invokes sync.WaitGroup's
// method name.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// checkNoJoin flags go statements spawning a function literal that
// performs no synchronization and transitively calls nothing that could
// — a goroutine the rest of the program can never wait for.
func checkNoJoin(pass *analysis.Pass, g *callgraph.Graph, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // named funcs: body may be cross-package; skip
		}
		node := g.LitNode(lit)
		if node == nil {
			return true
		}
		if mayJoin(g, node) {
			return true
		}
		pass.Reportf(gs.Go, "goroutine has no join path: it performs no channel, "+
			"sync, or atomic operation and calls nothing that could; the caller "+
			"cannot wait for it")
		return true
	})
}

// mayJoin reports whether any node reachable from n could synchronize:
// its own Syncs fact, or an unknown call that might.
func mayJoin(g *callgraph.Graph, n *callgraph.Node) bool {
	for node := range g.Reachable(n) {
		if node.Syncs || node.UnknownCalls {
			return true
		}
	}
	return false
}

// checkDeadSend flags a send on an unbuffered channel that is local to
// the function, never escapes it (no goroutine, call argument, return,
// or assignment carries it away), and where the send statement itself
// is not inside a select, go statement, or nested literal — a send
// that must block forever.
func checkDeadSend(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkDeadSendIn(pass, fd.Body)
	}
}

func checkDeadSendIn(pass *analysis.Pass, body *ast.BlockStmt) {
	// Find channels created by make(chan T) with no buffer, bound by :=
	// to a simple local.
	locals := map[*types.Var]token.Pos{} // chan var -> decl pos
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue // make with a buffer arg, or not a call
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				continue
			}
			if _, isChan := pass.TypesInfo.TypeOf(call.Args[0]).(*types.Chan); !isChan {
				continue
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := pass.TypesInfo.Defs[lhs].(*types.Var); ok {
				locals[v] = lhs.Pos()
			}
		}
		return true
	})
	if len(locals) == 0 {
		return
	}

	// A channel escapes if it is mentioned anywhere other than a
	// top-level (not inside go/select/FuncLit) send or receive in this
	// body. Collect top-level sends per channel along the way.
	type use struct {
		escapes  bool
		sends    []*ast.SendStmt
		receives bool
	}
	uses := map[*types.Var]*use{}
	for v := range locals {
		uses[v] = &use{}
	}
	chanVar := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if v != nil && uses[v] != nil {
			return v
		}
		return nil
	}
	var walk func(n ast.Node, concurrent bool)
	walk = func(root ast.Node, concurrent bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case nil:
				return false
			case *ast.GoStmt:
				walk(n.Call, true)
				return false
			case *ast.SelectStmt:
				walk(n.Body, true)
				return false
			case *ast.FuncLit:
				if n != root {
					walk(n.Body, true)
					return false
				}
			case *ast.SendStmt:
				if v := chanVar(n.Chan); v != nil {
					if concurrent {
						uses[v].receives = true // paired contexts count as alive
					} else {
						uses[v].sends = append(uses[v].sends, n)
					}
					walk(n.Value, concurrent)
					return false
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if v := chanVar(n.X); v != nil {
						uses[v].receives = true
						return false
					}
				}
			case *ast.RangeStmt:
				if v := chanVar(n.X); v != nil {
					uses[v].receives = true
					walk(n.Body, concurrent)
					return false
				}
			case *ast.Ident:
				if v := chanVar(n); v != nil {
					// Any other mention: passed, returned, closed,
					// reassigned — treat as escaped.
					if locals[v] != n.Pos() {
						uses[v].escapes = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)

	for v, u := range uses {
		if u.escapes || u.receives {
			continue
		}
		for _, s := range u.sends {
			pass.Reportf(s.Arrow, "send on unbuffered channel %s with no possible receiver: "+
				"the channel never leaves this function and nothing receives from it",
				v.Name())
		}
	}
}

// checkCopyLocks flags values of types containing a sync lock being
// copied: by-value parameters, receivers, results, plain assignments
// from a dereference or variable, and range variables.
func checkCopyLocks(pass *analysis.Pass, f *ast.File) {
	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies lock: %s contains a sync lock; use a pointer",
			what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil || !containsLock(t, nil) {
				continue
			}
			pos := field.Pos()
			report(pos, what, t)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Recv, "receiver")
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				// Copying an existing lock-bearing value: x := y or
				// x := *p. Composite literals and function results
				// construct fresh values and are fine.
				switch ast.Unparen(rhs).(type) {
				case *ast.Ident, *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
				default:
					continue
				}
				t := pass.TypesInfo.TypeOf(rhs)
				if t != nil && containsLock(t, nil) {
					report(n.Pos(), "assignment", t)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := pass.TypesInfo.TypeOf(n.Value)
			if t != nil && containsLock(t, nil) {
				report(n.Value.Pos(), "range value", t)
			}
		}
		return true
	})
}

// containsLock reports whether t (passed by value) contains a sync
// lock: sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond,
// sync.Pool, sync.Map, or any struct/array embedding one. seen guards
// recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if pkg := t.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			switch t.Obj().Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}
