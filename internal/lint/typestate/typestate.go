// Package typestate defines the API-protocol analyzer: declarative
// state-machine specs over method calls, tracked value-by-value
// through the dataflow protocol engine (strong updates on the happy
// path, branch joins, defers applied at every exit, same-package
// summaries). A spec says which methods are legal in which state and
// whether abandoning the value before it reaches an accepting state is
// itself a finding — so "Tick after End" and "this Writer never
// reaches End on the error path" are both compile-time diagnostics
// instead of runtime panics or silent corruption.
//
// Built-in specs:
//
//   - trace sinks (NewStats, NewWindowStats, NewDownsampler, NewCSV):
//     Begin, then Tick*, then End — Tick before Begin, Tick after End,
//     and double Begin are violations. Handing a sink to another
//     function (trace.New, Replay, a sink slice) transfers the
//     protocol responsibility, so composed pipelines stay quiet.
//   - trace writers (NewWriter, NewFileWriter, NewFileCSV): the same
//     machine plus a completion obligation — every path that begins a
//     writer must reach End (directly, via defer, or via a callee),
//     including error exits; the archive is unreadable otherwise.
//   - trace.NewReader: Replay and Next are legal only before the
//     stream is consumed by Replay; a second Replay re-reads nothing.
//   - trace.New / trace.MustNew recorders: Spawn/SpawnGroup only while
//     open, Close required on every path (Close is idempotent, so the
//     canonical defer rec.Close() discharges it).
//   - sim.NewGroup: Post, ScheduleGlobal, and Run are illegal after
//     Close, and every group must reach Close. Passing a group around
//     (mpi.NewWorldOn, trace.SpawnGroup) does NOT hand off the
//     obligation — the creator owns the group's lifecycle.
//   - exec.Map result discipline: the results slice is meaningless
//     when Map returned an error (workers that never ran leave zero
//     slots), so using it before the error has been consulted is a
//     violation.
//
// Constructors whose (value, error) results are bound together get
// error-path sensitivity: in the branch where the error is non-nil
// the value is nil and owes nothing.
package typestate

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer enforces API protocol state machines (trace sinks/writers/
// readers/recorders, sim groups, exec.Map results) flow-sensitively.
var Analyzer = &analysis.Analyzer{
	Name: "typestate",
	Doc: "enforce API call protocols as state machines: trace.Sink Begin/Tick*/End " +
		"ordering, Writer/Recorder must-Close on all paths incl. error exits, " +
		"no sim.Group Post/Run after Close, exec.Map results only after the error check",
	Run: run,
}

const (
	tracePkg = "repro/internal/trace"
	simPkg   = "repro/internal/sim"
	execPkg  = "repro/internal/exec"
)

// The shared Begin/Tick/End machine: states fresh(0), active(1),
// ended(2).
func sinkMethods() map[string]dataflow.ProtoMethod {
	return map[string]dataflow.ProtoMethod{
		// A failed Begin cleans up after itself (fileSink closes the
		// file it opened), so its checked error branch owes no End; a
		// failed Tick does not — the file is still open.
		"Begin": {Next: []int{1, -1, -1}, ErrReleases: true},
		"Tick":  {Next: []int{-1, 1, -1}},
		"End":   {Next: []int{2, 2, 2}},
	}
}

// sinkProto covers retained-by-caller sinks with no completion
// obligation (a Stats that is never Begun owes nothing; the Recorder
// usually drives it anyway).
var sinkProto = &dataflow.Proto{
	Name:         "trace.Sink",
	Doc:          "protocol is Begin, then Tick*, then End",
	States:       []string{"fresh", "active", "ended"},
	Start:        0,
	Methods:      sinkMethods(),
	Accepting:    dataflow.SingleState(0) | dataflow.SingleState(2),
	EscapeOnPass: true,
}

// writerProto adds the must-End obligation: a begun Writer or file
// sink that never reaches End leaves a truncated archive (or an
// unclosed file).
var writerProto = &dataflow.Proto{
	Name:         "trace.Writer",
	Doc:          "protocol is Begin, then Tick*, then End; every begun writer must reach End",
	States:       []string{"fresh", "active", "ended"},
	Start:        0,
	Methods:      sinkMethods(),
	Accepting:    dataflow.SingleState(0) | dataflow.SingleState(2),
	CompleteDoc:  "End",
	MustComplete: true,
	EscapeOnPass: true,
}

// readerProto: Replay consumes the stream.
var readerProto = &dataflow.Proto{
	Name:   "trace.Reader",
	Doc:    "Next/Replay read a one-shot stream; nothing is legal after Replay",
	States: []string{"open", "drained"},
	Start:  0,
	Methods: map[string]dataflow.ProtoMethod{
		"Next":   {Next: []int{0, -1}},
		"Replay": {Next: []int{1, -1}},
	},
	Accepting:    dataflow.SingleState(0) | dataflow.SingleState(1),
	EscapeOnPass: true,
}

// recorderProto: trace.New already called Begin on the sinks, so the
// recorder owes a Close on every path (idempotent — defer is the
// canonical discharge), and spawning after Close is a bug.
var recorderProto = &dataflow.Proto{
	Name:   "trace.Recorder",
	Doc:    "Spawn/SpawnGroup while open, then Close on every path (Close is idempotent)",
	States: []string{"open", "closed"},
	Start:  0,
	Methods: map[string]dataflow.ProtoMethod{
		"Spawn":      {Next: []int{0, -1}},
		"SpawnGroup": {Next: []int{0, -1}},
		"Close":      {Next: []int{1, 1}},
	},
	Accepting:    dataflow.SingleState(1),
	CompleteDoc:  "Close",
	MustComplete: true,
	EscapeOnPass: true,
}

// groupProto: the creator owns the group — passing it to a world or
// recorder does not transfer the Close obligation, hence
// EscapeOnPass=false.
var groupProto = &dataflow.Proto{
	Name:   "sim.Group",
	Doc:    "Post/ScheduleGlobal/Run while open, then Close on every path; nothing after Close",
	States: []string{"open", "closed"},
	Start:  0,
	Methods: map[string]dataflow.ProtoMethod{
		"Run":            {Next: []int{0, -1}},
		"Post":           {Next: []int{0, -1}},
		"ScheduleGlobal": {Next: []int{0, -1}},
		"Close":          {Next: []int{1, 1}},
	},
	Accepting:    dataflow.SingleState(1),
	CompleteDoc:  "Close",
	MustComplete: true,
	EscapeOnPass: false,
}

// origins maps constructor (package path, name) to (protocol, index of
// the tracked result).
type originSpec struct {
	proto  *dataflow.Proto
	result int
}

var origins = map[[2]string]originSpec{
	{tracePkg, "NewStats"}:       {sinkProto, 0},
	{tracePkg, "NewWindowStats"}: {sinkProto, 0},
	{tracePkg, "NewDownsampler"}: {sinkProto, 0},
	{tracePkg, "NewCSV"}:         {sinkProto, 0},
	{tracePkg, "NewWriter"}:      {writerProto, 0},
	{tracePkg, "NewFileWriter"}:  {writerProto, 0},
	{tracePkg, "NewFileCSV"}:     {writerProto, 0},
	{tracePkg, "NewReader"}:      {readerProto, 0},
	{tracePkg, "New"}:            {recorderProto, 0},
	{tracePkg, "MustNew"}:        {recorderProto, 0},
	{simPkg, "NewGroup"}:         {groupProto, 0},
}

func run(pass *analysis.Pass) error {
	// Same-package declarations, for interprocedural summaries.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	origin := func(call *ast.CallExpr) (*dataflow.Proto, int, bool) {
		fn := dataflow.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return nil, 0, false
		}
		spec, ok := origins[[2]string{fn.Pkg().Path(), fn.Name()}]
		if !ok {
			return nil, 0, false
		}
		return spec.proto, spec.result, true
	}

	// Summary-found violations anchor at callee positions, so two
	// callers of the same buggy helper would report it twice without a
	// pass-level dedup.
	seen := make(map[token.Pos]bool)
	report := func(v dataflow.ProtoViolation) {
		if seen[v.Pos] {
			return
		}
		seen[v.Pos] = true
		origin := pass.Fset.Position(v.Origin)
		pass.Reportf(v.Pos, "%s (value created at %s:%d)",
			v.Msg, origin.Filename, origin.Line)
	}

	for _, fd := range decls {
		if analysis.IsTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		a := &dataflow.StateAnalysis{
			Info:   pass.TypesInfo,
			Fset:   pass.Fset,
			Origin: origin,
			Decl:   func(fn *types.Func) *ast.FuncDecl { return decls[fn] },
			Report: report,
		}
		dataflow.RunProto(fd.Body, a)
		checkMapResults(pass, fd)
	}
	return nil
}

// checkMapResults enforces the exec.Map result-slot discipline
// lexically: the results slice is unusable until the error result has
// been consulted (checked, passed, or returned), because a failed Map
// leaves unwritten zero slots.
func checkMapResults(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := dataflow.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != execPkg || fn.Name() != "Map" {
			return true
		}
		resObj := assignedObj(pass.TypesInfo, as.Lhs[0])
		errObj := assignedObj(pass.TypesInfo, as.Lhs[1])
		if resObj == nil {
			return true
		}
		// First position at which the error is consulted; res uses
		// before it (or anywhere, if the error was discarded) are
		// reported.
		errPos := firstUse(pass.TypesInfo, fd.Body, errObj, as.End())
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok || id.Pos() <= as.End() {
				return true
			}
			if pass.TypesInfo.Uses[id] != resObj {
				return true
			}
			if errObj == nil {
				pass.Reportf(id.Pos(), "exec.Map results used with the error result discarded "+
					"(a failed Map leaves unwritten zero slots)")
				return true
			}
			if errPos == token.NoPos || id.Pos() < errPos {
				pass.Reportf(id.Pos(), "exec.Map results used before the error is checked "+
					"(a failed Map leaves unwritten zero slots)")
			}
			return true
		})
		return true
	})
}

// assignedObj resolves an assignment LHS ident to its object, nil for
// blanks and non-idents.
func assignedObj(info *types.Info, x ast.Expr) types.Object {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// firstUse returns the position of the first use of obj after `after`.
func firstUse(info *types.Info, body ast.Node, obj types.Object, after token.Pos) token.Pos {
	if obj == nil {
		return token.NoPos
	}
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= after {
			return true
		}
		if info.Uses[id] == obj {
			pos = id.Pos()
			return false
		}
		return true
	})
	return pos
}
