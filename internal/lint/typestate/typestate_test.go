package typestate_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/typestate"
)

// TestTypestate runs the fixture package: each built-in protocol's
// seeded violation (including the acceptance case, a Tick-after-End
// sink, and a Writer abandoned on an error exit) next to the clean
// shapes — defer-discharged obligations, err-guarded constructors,
// sinks handed off to Replay — that must stay quiet.
func TestTypestate(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, typestate.Analyzer, "fixtures/typestate")
}
