package detflow_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detflow"
)

// TestDetflow runs the fixtures: a deterministic-result package (the
// acceptance case — a map-range value reaching an exported result is
// reported, the same value passed through a sort is not), a command
// whose emitted output is a sink, and a free package where logging and
// wall-clock returns are legal.
func TestDetflow(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, detflow.Analyzer,
		"repro/internal/report/detfixture",
		"repro/cmd/detcmd",
		"fixtures/detflow/free",
	)
}
