// Package detflow defines the flow-sensitive determinism analyzer: it
// proves that no nondeterministic value reaches a simulation result.
// Where the older determinism analyzer bans calls syntactically
// ("never mention time.Now"), detflow taints the VALUES such calls
// produce and follows them along def-use chains (internal/lint/
// dataflow), reporting only when a tainted value reaches a result
// sink. Logging a wall-clock timestamp to stderr is therefore legal
// without suppression, while returning one from an exported simulator
// API is not.
//
// Sources (what taints a value):
//   - the wall clock: time.Now / time.Since / time.Until
//   - the process environment: os.Getenv, os.LookupEnv, os.Environ,
//     os.Hostname, os.Getpid
//   - the unseeded process-global math/rand generator (rand.Int and
//     friends; rand.New(rand.NewSource(seed)) stays clean because the
//     taint of a seeded generator is just the taint of its seed)
//   - map iteration order: the key/value variables of a range over a
//     map, and maps.Keys / maps.Values
//   - scheduling order: values bound by a multi-case select
//   - pointer identity: fmt verbs formatting with %p
//
// Sanitizers (what cleans a value): sorting. sort.Strings over
// collected map keys yields a deterministic slice, so the engine kills
// the argument's taint at sort.Sort/Stable/Strings/Ints/Float64s/
// Slice/SliceStable and slices.Sort/SortFunc/SortStableFunc (and
// treats the slices.Sorted* forms as clean results).
//
// Sinks (where taint becomes a finding):
//   - results of exported functions and methods in the deterministic
//     result packages internal/sim, internal/cluster,
//     internal/campaign, internal/report;
//   - values handed to JSON/CSV encoders anywhere in the module
//     (json.Marshal, (*json.Encoder).Encode, (*csv.Writer).Write...);
//   - in the result packages and in cmd/*, values emitted to a
//     non-local writer (fmt.Fprintf to a parameter or os.Stdout,
//     os.WriteFile, Write/WriteString methods). os.Stderr and the log
//     package are exempt: that is the logging-only allowance.
//
// Flow is composed interprocedurally inside each package by per-
// function summaries over internal/lint/callgraph: for every
// same-package callee the analyzer computes (a) the internal taint of
// each result and (b) whether parameters flow to results, memoized,
// with cycles resolved conservatively. Cross-package calls propagate
// argument taint to results (and may store tainted arguments into
// pointer arguments), which keeps each package's verdict sound without
// whole-program analysis.
package detflow

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/dataflow"
)

// Analyzer reports nondeterministic values that flow into simulation
// results, encoded output, or cmd/* emitted output.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "forbid nondeterministic values (wall clock, environment, unseeded rand, " +
		"map iteration order, select order, %p) from flowing into exported results, " +
		"JSON/CSV encodings, or cmd output; sort map keys before emission",
	Run: run,
}

// resultPkgs are the packages whose exported APIs promise bit-identical
// results for identical (config, seed); their return values are sinks.
var resultPkgs = []string{
	"repro/internal/sim",
	"repro/internal/cluster",
	"repro/internal/campaign",
	"repro/internal/report",
}

func isResultPkg(path string) bool {
	for _, p := range resultPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// isCmdPkg reports whether path is a command: everything a command
// prints (except stderr logging) is program output and must be
// deterministic.
func isCmdPkg(path string) bool {
	return strings.HasPrefix(path, "repro/cmd/") || strings.Contains(path, "/cmd/")
}

// sourceFuncs maps package-level functions to the provenance of the
// nondeterminism they introduce.
var sourceFuncs = map[string]string{
	"time.Now":     "wall clock via time.Now",
	"time.Since":   "wall clock via time.Since",
	"time.Until":   "wall clock via time.Until",
	"os.Getenv":    "process environment via os.Getenv",
	"os.LookupEnv": "process environment via os.LookupEnv",
	"os.Environ":   "process environment via os.Environ",
	"os.Hostname":  "host identity via os.Hostname",
	"os.Getpid":    "process identity via os.Getpid",
	"maps.Keys":    "map iteration order via maps.Keys",
	"maps.Values":  "map iteration order via maps.Values",
}

// sortKills are the sort-package sanitizers that order their first
// argument in place.
var sortKills = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
}

// slicesKills are the in-place slices-package sanitizers.
var slicesKills = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true,
}

// slicesClean are slices-package functions whose result is sorted and
// therefore deterministic regardless of input order.
var slicesClean = map[string]bool{
	"Sorted": true, "SortedFunc": true, "SortedStableFunc": true,
}

// fmtFormatArg gives, for fmt functions with a format string, the index
// of that format argument (for the %p source check).
var fmtFormatArg = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0, "Fprintf": 1, "Appendf": 1,
}

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	d := &checker{
		pass:    pass,
		g:       callgraph.Build(pass.Fset, files, pass.TypesInfo),
		sums:    make(map[*types.Func]summary),
		running: make(map[*types.Func]bool),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			res := dataflow.Run(fd.Type, fd.Body, d.config(nil))
			d.checkReturnSink(fd, res)
			d.checkCallSinks(fd, res)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	g       *callgraph.Graph
	sums    map[*types.Func]summary
	running map[*types.Func]bool
}

// summary is the interprocedural abstraction of one same-package
// function: the internal nondeterminism each result carries, and
// whether parameter taint flows to any result.
type summary struct {
	results []dataflow.Taint
	argFlow bool
}

func (d *checker) config(seed map[*types.Var]dataflow.Taint) *dataflow.Analysis {
	return &dataflow.Analysis{
		Info:          d.pass.TypesInfo,
		Fset:          d.pass.Fset,
		Call:          d.effect,
		TaintMapRange: true,
		TaintSelect:   true,
		Seed:          seed,
	}
}

// effect is the dataflow engine's call hook: it classifies sources,
// sanitizers, and same-package callees (via summaries); everything else
// falls back to the engine's conservative propagate-and-mutate default.
func (d *checker) effect(call *ast.CallExpr, recv dataflow.Taint, args []dataflow.Taint) (dataflow.Effect, bool) {
	info := d.pass.TypesInfo
	fn := dataflow.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return dataflow.Effect{}, false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	if !isMethod {
		if desc, ok := sourceFuncs[path+"."+name]; ok {
			return d.source(call, desc), true
		}
		switch path {
		case "math/rand", "math/rand/v2":
			if strings.HasPrefix(name, "New") {
				// Seeded generators: as deterministic as their seed.
				return dataflow.Effect{Propagate: true, NoMutation: true}, true
			}
			return d.source(call, "unseeded "+path+"."+name), true
		case "fmt":
			if idx, ok := fmtFormatArg[name]; ok && formatHasPointerVerb(info, call, idx) {
				return d.source(call, "pointer formatting (%p) via fmt."+name), true
			}
		case "sort":
			if sortKills[name] && len(call.Args) > 0 {
				return dataflow.Effect{Kills: call.Args[:1], NoMutation: true}, true
			}
		case "slices":
			if slicesKills[name] && len(call.Args) > 0 {
				return dataflow.Effect{Kills: call.Args[:1], NoMutation: true}, true
			}
			if slicesClean[name] {
				return dataflow.Effect{NoMutation: true}, true
			}
		}
	}

	// Same-package callee: use its memoized summary.
	if fn.Pkg() == d.pass.Pkg {
		if n := d.g.NodeOf(fn); n != nil && n.Decl != nil {
			s := d.summaryOf(fn, n)
			return dataflow.Effect{
				Result:    dataflow.JoinAll(s.results),
				Results:   s.results,
				Propagate: s.argFlow,
			}, true
		}
	}
	return dataflow.Effect{}, false
}

// source builds a source Effect whose description pins the origin
// position, so the eventual diagnostic names where taint entered.
func (d *checker) source(call *ast.CallExpr, desc string) dataflow.Effect {
	p := d.pass.Fset.Position(call.Pos())
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return dataflow.Effect{
		Result:     dataflow.Taint{Desc: desc + " (" + file + ":" + itoa(p.Line) + ")"},
		NoMutation: true,
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// formatHasPointerVerb reports whether the call's format argument is a
// constant string containing a %p verb.
func formatHasPointerVerb(info *types.Info, call *ast.CallExpr, idx int) bool {
	if idx >= len(call.Args) {
		return false
	}
	tv, ok := info.Types[call.Args[idx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.Contains(constant.StringVal(tv.Value), "%p")
}

// summaryOf computes (memoized) the summary of one same-package
// function by running the engine twice over its body: once unseeded to
// find internal sources reaching its results, once with every parameter
// and the receiver seeded to detect parameter-to-result flow. Cycles
// resolve to the conservative "parameters flow" summary.
func (d *checker) summaryOf(fn *types.Func, n *callgraph.Node) summary {
	if s, ok := d.sums[fn]; ok {
		return s
	}
	if d.running[fn] {
		return summary{argFlow: true}
	}
	d.running[fn] = true
	defer delete(d.running, fn)

	sig := fn.Type().(*types.Signature)
	arity := sig.Results().Len()

	resA := dataflow.Run(n.Decl.Type, n.Body, d.config(nil))
	results := make([]dataflow.Taint, arity)
	for _, ret := range resA.Returns {
		if len(ret.Taints) == arity {
			for i, t := range ret.Taints {
				results[i] = dataflow.Join(results[i], dataflow.Taint{Desc: t.Desc})
			}
			continue
		}
		j := dataflow.JoinAll(ret.Taints)
		for i := range results {
			results[i] = dataflow.Join(results[i], dataflow.Taint{Desc: j.Desc})
		}
	}

	seed := make(map[*types.Var]dataflow.Taint)
	if r := sig.Recv(); r != nil {
		seed[r] = dataflow.Taint{Param: true}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		seed[sig.Params().At(i)] = dataflow.Taint{Param: true}
	}
	argFlow := false
	if len(seed) > 0 && arity > 0 {
		resB := dataflow.Run(n.Decl.Type, n.Body, d.config(seed))
		for _, ret := range resB.Returns {
			if dataflow.JoinAll(ret.Taints).Param {
				argFlow = true
				break
			}
		}
	}

	s := summary{results: results, argFlow: argFlow}
	d.sums[fn] = s
	return s
}

// checkReturnSink reports internal taint reaching the results of an
// exported function or method in a deterministic result package.
func (d *checker) checkReturnSink(fd *ast.FuncDecl, res *dataflow.Result) {
	if !isResultPkg(d.pass.Pkg.Path()) || !fd.Name.IsExported() {
		return
	}
	for _, ret := range res.Returns {
		for _, t := range ret.Taints {
			if t.Desc != "" {
				d.pass.Reportf(ret.Pos, "nondeterministic value (%s) flows to the result of exported %s; "+
					"simulation results must be a pure function of (config, seed)", t.Desc, funcDisplayName(fd))
				break
			}
		}
	}
}

// checkCallSinks reports taint handed to encoders anywhere, and to
// non-local writers in result packages and commands.
func (d *checker) checkCallSinks(fd *ast.FuncDecl, res *dataflow.Result) {
	info := d.pass.TypesInfo
	path := d.pass.Pkg.Path()
	emissionPkg := isResultPkg(path) || isCmdPkg(path)
	params := paramObjs(info, fd)

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := dataflow.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		fpath, name := fn.Pkg().Path(), fn.Name()
		sig, _ := fn.Type().(*types.Signature)
		isMethod := sig != nil && sig.Recv() != nil

		// Encoders are sinks module-wide: encoded bytes are results.
		switch {
		case fpath == "encoding/json" && !isMethod && (name == "Marshal" || name == "MarshalIndent"):
			d.reportTainted(res, call.Args, "JSON encoding")
			return true
		case fpath == "encoding/json" && isMethod && name == "Encode":
			d.reportTainted(res, call.Args, "JSON encoding")
			return true
		case fpath == "encoding/csv" && isMethod && (name == "Write" || name == "WriteAll"):
			d.reportTainted(res, call.Args, "CSV encoding")
			return true
		}

		if !emissionPkg {
			return true
		}

		// Writer sinks: emission to anything non-local. The log
		// package and os.Stderr are the logging-only allowance.
		if fpath == "log" {
			return true
		}
		switch {
		case fpath == "fmt" && (name == "Fprintf" || name == "Fprintln" || name == "Fprint"):
			if len(call.Args) > 0 && d.isEmissionDest(call.Args[0], params) {
				d.reportTainted(res, call.Args[1:], "emitted output")
			}
		case fpath == "fmt" && (name == "Printf" || name == "Println" || name == "Print"):
			d.reportTainted(res, call.Args, "emitted output (os.Stdout)")
		case fpath == "io" && name == "WriteString":
			if len(call.Args) > 0 && d.isEmissionDest(call.Args[0], params) {
				d.reportTainted(res, call.Args[1:], "emitted output")
			}
		case fpath == "os" && name == "WriteFile":
			d.reportTainted(res, call.Args[:len(call.Args)-1], "written file")
		case isMethod && strings.HasPrefix(name, "Write"):
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && d.isEmissionDest(sel.X, params) {
				d.reportTainted(res, call.Args, "emitted output")
			}
		}
		return true
	})
}

// reportTainted reports the first internally tainted argument (one
// finding per sink call keeps diagnostics readable).
func (d *checker) reportTainted(res *dataflow.Result, args []ast.Expr, what string) {
	for _, a := range args {
		if t := res.Expr[a]; t.Desc != "" {
			d.pass.Reportf(a.Pos(), "nondeterministic value (%s) flows into %s; "+
				"sort map keys (or derive the value from config/seed) before emitting", t.Desc, what)
			return
		}
	}
}

// isEmissionDest decides whether writing to dest emits program output:
// os.Stdout, package-level writers, writer parameters, and files are
// sinks; os.Stderr is logging; a local buffer is not a sink (taint
// accumulates in it instead, and is caught when the buffer is flushed
// to a real sink).
func (d *checker) isEmissionDest(dest ast.Expr, params map[types.Object]bool) bool {
	info := d.pass.TypesInfo
	if sel, ok := ast.Unparen(dest).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" {
				return sel.Sel.Name != "Stderr"
			}
		}
	}
	obj := dataflow.BaseObj(info, dest)
	if obj == nil {
		return true // unresolvable destination: assume it emits
	}
	if params[obj] {
		return true
	}
	if obj.Parent() == d.pass.Pkg.Scope() {
		return true // package-level writer
	}
	if tv, ok := info.Types[dest]; ok && tv.Type != nil {
		if isFileLike(tv.Type) {
			return true
		}
	}
	return false
}

// isFileLike recognizes writer types that reach the outside world even
// when held in a local variable: *os.File and the stdlib writers that
// wrap one.
func isFileLike(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "os.File", "bufio.Writer", "text/tabwriter.Writer", "encoding/csv.Writer":
		return true
	}
	return false
}

// paramObjs collects the parameter and receiver objects of fd, which
// count as emission destinations (the caller handed us its writer).
func paramObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if o := info.Defs[name]; o != nil {
					out[o] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// funcDisplayName renders "Run" or "(*Runner).Run".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
