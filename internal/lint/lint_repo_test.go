// Package lint holds the repo-wide clean-lint meta-tests: every
// repolint analyzer runs over every package in the module, and any
// diagnostic — a regression against the determinism, float-equality,
// unit-safety, panic-discipline, shared-state, concurrency-safety, or
// error-audit gates — fails the build's test tier, not just the lint
// tier. A second meta-test holds the suppression inventory to the
// directive grammar: every "//lint:allow" must be well-formed, name
// registered analyzers, and still silence at least one diagnostic.
package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/repolint"
)

// TestRepoIsLintClean type-checks the whole module and requires zero
// diagnostics from the full analyzer suite. New code that wants an
// exemption must carry an explicit "//lint:allow <analyzer> (reason)"
// so the debt stays greppable.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is not short")
	}
	root := moduleRoot(t)
	// Run profgate against the committed benchmark profiles (it is a
	// no-op without them), so the profile<->annotation join is part of
	// the clean-tree invariant: a hot function losing its root, or a
	// root going cold in every committed profile, fails here — not only
	// in the `make profgate` CI step.
	t.Setenv("REPOLINT_PROFILES", filepath.Join(root, "profiles"))
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	// Dogfooding: the sweep must cover the linters themselves. If the
	// loader ever skipped internal/lint (or the v5 analyzer packages),
	// the clean-tree invariant would silently stop policing the code
	// that enforces it.
	covered := make(map[string]bool, len(pkgs))
	for _, pkg := range pkgs {
		covered[pkg.ImportPath] = true
	}
	// (internal/lint itself is all _test.go files, which the loader
	// skips by design — the analyzers do not police tests.)
	for _, path := range []string{
		"repro/internal/lint/analysis",
		"repro/internal/lint/dataflow",
		"repro/internal/lint/shardown",
		"repro/internal/lint/typestate",
		"repro/internal/lint/repolint",
		"repro/cmd/repolint",
	} {
		if !covered[path] {
			t.Errorf("lint sweep does not load %s: repolint must self-lint", path)
		}
	}
	for _, a := range repolint.All() {
		for _, pkg := range pkgs {
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				t.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
				continue
			}
			for _, d := range pass.Diagnostics() {
				t.Errorf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		}
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}
