// Package lookahead defines the cross-shard delay analyzer: interval
// abstract interpretation in an OFFSET-FROM-NOW domain proves that
// event times reaching the sharded core's scheduling sites respect
// the conservative-window contract the byte-identity guarantee rests
// on — the compile-time face of the runtime past-event panic in
// internal/sim/engine.go.
//
// The domain: every sim.Time value is tracked as its offset from the
// scheduling function's notion of "now". Engine.Now/Group.Now/
// Proc.Now return exactly [0, 0]; Time.Add shifts by the duration's
// interval; fabric bookings (netsim Send/Accept) only move time
// forward; a sim.Time constant c can sit anywhere at or below c
// (now itself is nonnegative), so it maps to (-inf, c]. Everything
// else is Top, which keeps the analyzer sound and quiet: a violation
// is reported only when the offset's UPPER bound proves the event
// cannot land late enough.
//
// Sites and contracts:
//
//   - sim.Group.Post and sim.Group.ScheduleGlobal book events into
//     conservative windows whose horizon never trails now: an offset
//     provably negative can never clear the horizon. (At-now bookings
//     stay legal — setup-time coordinator globals use them before the
//     first window opens.) When the group was built by sim.NewGroup in
//     the same function with a known lookahead L, the conservative
//     discipline is enforced in full: an offset provably below L is
//     reported against L itself.
//   - sim.Engine.Schedule, sim.Engine.PostArrival, and the mpi
//     World.post gateway reject events provably before now
//     (offset < 0) — the engine's past-event guard panics there.
//   - netsim Send/Accept/Control (Switch or the Fabric interface)
//     reject booking times provably before now.
//
// Same-package helper results are composed through memoized summaries
// over internal/lint/callgraph, so a wrapper that returns
// now.Add(delay) keeps its offset through the call.
package lookahead

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/dataflow"
)

// Analyzer reports cross-shard scheduling and fabric-booking times
// that provably violate the lookahead window contract.
var Analyzer = &analysis.Analyzer{
	Name: "lookahead",
	Doc: "prove event times reaching cross-shard scheduling sites (sim.Group posts, " +
		"engine arrivals, netsim bookings, mpi transmit) land at or after now and at " +
		"least one group lookahead past the window horizon",
	Run: run,
}

const simPath = "repro/internal/sim"

var (
	point0 = dataflow.PointInterval(0)
	fwd    = dataflow.AtLeast(0)
)

// offsetResults are call summaries in the offset-from-now domain.
// Durations and forward-only times are [0, +inf); now is exactly 0.
var offsetResults = map[string][]dataflow.Interval{
	simPath + ".Engine.Now":      {point0},
	simPath + ".Group.Now":       {point0},
	simPath + ".Proc.Now":        {point0},
	simPath + ".Group.Lookahead": {fwd},

	"repro/internal/netsim.Switch.MinLatency":        {fwd},
	"repro/internal/netsim.Fabric.MinLatency":        {fwd},
	"repro/internal/netsim.Switch.SerializationTime": {fwd},
	"repro/internal/netsim.Fabric.SerializationTime": {fwd},
}

// site describes one guarded call: which argument carries the event
// time and which contract it must clear.
type site struct {
	arg    int
	window bool // true: must clear the next window's horizon (Post/ScheduleGlobal)
	what   string
}

var sites = map[string]site{
	simPath + ".Group.Post":           {1, true, "cross-shard (sim.Group).Post"},
	simPath + ".Group.ScheduleGlobal": {0, true, "(sim.Group).ScheduleGlobal"},
	simPath + ".Engine.Schedule":      {0, false, "(sim.Engine).Schedule"},
	simPath + ".Engine.PostArrival":   {0, false, "(sim.Engine).PostArrival"},
	"repro/internal/mpi.World.post":   {2, false, "the mpi cross-rank gateway (World).post"},

	"repro/internal/netsim.Switch.Send":    {3, false, "(netsim.Switch).Send"},
	"repro/internal/netsim.Fabric.Send":    {3, false, "(netsim.Fabric).Send"},
	"repro/internal/netsim.Switch.Accept":  {3, false, "(netsim.Switch).Accept"},
	"repro/internal/netsim.Fabric.Accept":  {3, false, "(netsim.Fabric).Accept"},
	"repro/internal/netsim.Switch.Control": {3, false, "(netsim.Switch).Control"},
	"repro/internal/netsim.Fabric.Control": {3, false, "(netsim.Fabric).Control"},
}

func run(pass *analysis.Pass) error {
	var files []*ast.File
	for _, f := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	c := &checker{
		pass:    pass,
		g:       callgraph.Build(pass.Fset, files, pass.TypesInfo),
		sums:    make(map[*types.Func][]dataflow.Interval),
		running: make(map[*types.Func]bool),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			res := dataflow.RunIntervals(fd.Type, fd.Body, c.config())
			c.checkSites(fd, res)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	g       *callgraph.Graph
	sums    map[*types.Func][]dataflow.Interval
	running map[*types.Func]bool
}

func (c *checker) config() *dataflow.IntervalAnalysis {
	return &dataflow.IntervalAnalysis{
		Info:    c.pass.TypesInfo,
		Fset:    c.pass.Fset,
		Call:    c.effect,
		Const:   c.constTime,
		Convert: c.convertTime,
	}
}

// isSimTime reports whether t is the named type sim.Time.
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == simPath && named.Obj().Name() == "Time"
}

// constTime re-homes sim.Time constants into the offset domain: an
// absolute time c sits at offset c - now, and now >= 0, so the best
// sound bound is (-inf, c]. Durations and plain numbers keep their
// point interval.
func (c *checker) constTime(x ast.Expr, v dataflow.Interval) (dataflow.Interval, bool) {
	tv, ok := c.pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil || !isSimTime(tv.Type) {
		return dataflow.Interval{}, false
	}
	return dataflow.AtMost(v.Hi), true
}

// convertTime does the same re-homing for non-constant conversions to
// sim.Time: sim.Time(x) is an absolute stamp, offset at most x.
func (c *checker) convertTime(call *ast.CallExpr, v dataflow.Interval) (dataflow.Interval, bool) {
	tv, ok := c.pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil || !isSimTime(tv.Type) {
		return dataflow.Interval{}, false
	}
	return dataflow.AtMost(v.Hi), true
}

// effect is the call hook: now-anchors and fabric bookings first,
// time arithmetic next, then memoized same-package summaries.
func (c *checker) effect(call *ast.CallExpr, recv dataflow.Interval, args []dataflow.Interval) (dataflow.IntervalEffect, bool) {
	fn := dataflow.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return dataflow.IntervalEffect{}, false
	}
	key := dataflow.FuncKey(fn)
	if rs, ok := offsetResults[key]; ok {
		return dataflow.IntervalEffect{Results: rs, NoMutation: true}, true
	}
	switch key {
	case simPath + ".Time.Add":
		if len(args) == 1 {
			return dataflow.IntervalEffect{Results: []dataflow.Interval{recv.Add(args[0])}, NoMutation: true}, true
		}
	case simPath + ".Time.Sub":
		if len(args) == 1 {
			return dataflow.IntervalEffect{Results: []dataflow.Interval{recv.Sub(args[0])}, NoMutation: true}, true
		}
	case "repro/internal/netsim.Switch.Send", "repro/internal/netsim.Fabric.Send":
		// (start, arrive): the fabric only moves time forward from
		// the booking stamp.
		if len(args) == 4 {
			after := dataflow.AtLeast(args[3].Lo)
			return dataflow.IntervalEffect{Results: []dataflow.Interval{after, after}, NoMutation: true}, true
		}
	case "repro/internal/netsim.Switch.Accept", "repro/internal/netsim.Fabric.Accept",
		"repro/internal/netsim.Switch.Control", "repro/internal/netsim.Fabric.Control":
		if len(args) == 4 {
			return dataflow.IntervalEffect{Results: []dataflow.Interval{dataflow.AtLeast(args[3].Lo)}, NoMutation: true}, true
		}
	}
	if fn.Pkg() == c.pass.Pkg {
		if n := c.g.NodeOf(fn); n != nil && n.Decl != nil {
			return dataflow.IntervalEffect{Results: c.summaryOf(fn, n)}, true
		}
	}
	return dataflow.IntervalEffect{}, false
}

// summaryOf joins the offset intervals a same-package function
// returns, memoized; cycles resolve to Top.
func (c *checker) summaryOf(fn *types.Func, n *callgraph.Node) []dataflow.Interval {
	if s, ok := c.sums[fn]; ok {
		return s
	}
	sig := fn.Type().(*types.Signature)
	arity := sig.Results().Len()
	if c.running[fn] || arity == 0 {
		return nil
	}
	c.running[fn] = true
	defer delete(c.running, fn)

	res := dataflow.RunIntervals(n.Decl.Type, n.Body, c.config())
	var out []dataflow.Interval
	for _, ret := range res.Returns {
		if len(ret.Results) != arity {
			continue
		}
		if out == nil {
			out = append([]dataflow.Interval(nil), ret.Results...)
			continue
		}
		for i := range out {
			out[i] = out[i].Join(ret.Results[i])
		}
	}
	if out == nil {
		out = make([]dataflow.Interval, arity)
		for i := range out {
			out[i] = dataflow.TopInterval()
		}
	}
	c.sums[fn] = out
	return out
}

// checkSites walks fd's calls and applies the window / past-event
// contracts to the recorded offset intervals.
func (c *checker) checkSites(fd *ast.FuncDecl, res *dataflow.IntervalResult) {
	looks := c.groupLookaheads(fd, res)
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := dataflow.Callee(c.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		st, ok := sites[dataflow.FuncKey(fn)]
		if !ok || st.arg >= len(call.Args) {
			return true
		}
		arg := call.Args[st.arg]
		iv, ok := res.Expr[arg]
		if !ok {
			return true
		}
		if !st.window {
			if iv.Hi < 0 {
				c.pass.Reportf(arg.Pos(), "%s schedules an event provably before Now() "+
					"(offset interval %v); the engine's past-event guard panics at run time", st.what, iv)
			}
			return true
		}
		// Window sites: the horizon never trails now, so a provably
		// past event can never clear it. At-now bookings stay legal:
		// setup-time coordinator globals (meter.SpawnGroup) book the
		// first tick at Now() before the first window opens.
		if iv.Hi < 0 {
			c.pass.Reportf(arg.Pos(), "%s books an event provably before Now() (offset interval %v); "+
				"it can never clear the window horizon", st.what, iv)
			return true
		}
		if look, ok := c.siteLookahead(call, looks); ok && iv.Hi < look.Lo {
			c.pass.Reportf(arg.Pos(), "%s books an event only %v past Now(), below the group's "+
				"lookahead %v; the window-barrier contract panics at run time", st.what, iv, look)
		}
		return true
	})
}

// groupLookaheads maps group variables built by sim.NewGroup in this
// function to the interval of the lookahead they were built with.
func (c *checker) groupLookaheads(fd *ast.FuncDecl, res *dataflow.IntervalResult) map[types.Object]dataflow.Interval {
	out := make(map[types.Object]dataflow.Interval)
	info := c.pass.TypesInfo
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		fn := dataflow.Callee(info, call)
		if fn == nil || fn.Pkg() == nil || dataflow.FuncKey(fn) != simPath+".NewGroup" {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		if iv, ok := res.Expr[call.Args[1]]; ok && !iv.IsTop() {
			out[obj] = iv
		}
		return true
	})
	return out
}

// siteLookahead resolves the receiver of a window-site call to a
// lookahead recorded by groupLookaheads.
func (c *checker) siteLookahead(call *ast.CallExpr, looks map[types.Object]dataflow.Interval) (dataflow.Interval, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return dataflow.Interval{}, false
	}
	obj := dataflow.BaseObj(c.pass.TypesInfo, sel.X)
	if obj == nil {
		return dataflow.Interval{}, false
	}
	iv, ok := looks[obj]
	return iv, ok
}
