package lookahead_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lookahead"
)

// TestLookahead runs the fixture package: seeded variants of the
// engine past-event panic (PostArrival/Schedule before Now()), window
// bookings at or before Now(), a booking provably below a known group
// lookahead, past fabric bookings, a helper-composed offset, and one
// //lint:allow suppression — beside the clean forward-looking shapes
// that must stay quiet.
func TestLookahead(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, lookahead.Analyzer, "fixtures/lookahead")
}
