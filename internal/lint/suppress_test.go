package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/repolint"
)

// TestSuppressionInventory holds every "//lint:allow" directive in the
// module to the grammar and to usefulness:
//
//   - it must be well-formed: "//lint:allow <analyzer>[,...] (<reason>)"
//     with a non-empty reason (a malformed directive still suppresses,
//     so a typo never un-gates a build silently — this test is where
//     malformedness fails instead);
//   - every analyzer it names must be registered in the repolint suite;
//   - it must still silence at least one diagnostic from at least one
//     of the analyzers it names. A directive that suppresses nothing is
//     debt pretending to be load-bearing, and goes stale the moment the
//     code it excused is fixed or deleted.
//
// The inventory covers production files only: the loader skips _test.go
// files, matching the analyzers, which do not police tests.
func TestSuppressionInventory(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is not short")
	}
	root := moduleRoot(t)
	// Same environment as TestRepoIsLintClean: profgate runs against the
	// committed profiles, so a `//lint:allow profgate` in production code
	// is held to the same load-bearing standard as every other directive.
	t.Setenv("REPOLINT_PROFILES", filepath.Join(root, "profiles"))
	fset := token.NewFileSet()
	pkgs, err := loader.Load(fset, root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}

	// One shared registry: the same repolint.All() slice the standalone
	// and vet drivers run, so an analyzer cannot be "registered" for the
	// directive-grammar check yet missing from the load-bearing check.
	suite := repolint.All()
	registered := make(map[string]bool)
	for _, a := range suite {
		registered[a.Name] = true
	}

	// Which (file, line) directive sites actually silenced a diagnostic,
	// according to the full suite.
	used := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, a := range suite {
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, s := range pass.Suppressed() {
				used[fmt.Sprintf("%s:%d", s.DirectiveFile, s.DirectiveLine)] = true
			}
		}
	}

	total := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.ParseDirectives(fset, pkg.Files) {
			total++
			site := fmt.Sprintf("%s:%d", d.File, d.Line)
			if d.Problem != "" {
				t.Errorf("%s: %s", site, d.Problem)
				continue
			}
			for _, name := range d.Analyzers {
				if !registered[name] {
					t.Errorf("%s: directive names unregistered analyzer %q", site, name)
				}
			}
			if !used[site] {
				t.Errorf("%s: unused suppression: //lint:allow %v no longer silences any diagnostic",
					site, d.Analyzers)
			}
		}
	}
	if total == 0 {
		t.Error("found no //lint:allow directives; the inventory walk is broken " +
			"(the panicfree allows in internal/ should be visible)")
	}
	t.Logf("suppression inventory: %d directives, all well-formed, registered, and load-bearing", total)
}
