package dataflow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/dataflow"
)

// The test protocol mirrors the trace.Sink shape: mk() creates a value
// in state "fresh"; Begin moves fresh→active, Tick keeps active,
// End moves any→ended; Tick in fresh or ended is a violation, Begin in
// active or ended is a violation. mustMk() is the same machine with a
// completion obligation (must end in "ended").
var testProto = &dataflow.Proto{
	Name:   "p.T",
	Doc:    "protocol is Begin, then Tick*, then End",
	States: []string{"fresh", "active", "ended"},
	Start:  0,
	Methods: map[string]dataflow.ProtoMethod{
		"Begin": {Next: []int{1, -1, -1}},
		"Tick":  {Next: []int{-1, 1, -1}},
		"End":   {Next: []int{2, 2, 2}},
	},
	Accepting:    dataflow.SingleState(2),
	EscapeOnPass: true,
}

var mustProto = &dataflow.Proto{
	Name:   "p.M",
	Doc:    "must reach End on every path",
	States: []string{"fresh", "active", "ended"},
	Start:  0,
	Methods: map[string]dataflow.ProtoMethod{
		"Begin": {Next: []int{1, -1, -1}},
		"Tick":  {Next: []int{-1, 1, -1}},
		"End":   {Next: []int{2, 2, 2}},
	},
	Accepting:    dataflow.SingleState(0) | dataflow.SingleState(2),
	MustComplete: true,
	EscapeOnPass: true,
}

// heldProto models sim.Group: passing it to another function does NOT
// hand off the obligation.
var heldProto = &dataflow.Proto{
	Name:   "p.G",
	Doc:    "must Close",
	States: []string{"open", "closed"},
	Start:  0,
	Methods: map[string]dataflow.ProtoMethod{
		"Run":   {Next: []int{0, -1}},
		"Close": {Next: []int{1, 1}},
	},
	Accepting:    dataflow.SingleState(1),
	MustComplete: true,
	EscapeOnPass: false,
}

const protoPrelude = `package p

type T struct{}

func (t *T) Begin()      {}
func (t *T) Tick()       {}
func (t *T) End()        {}
func (t *T) Other() int  { return 0 }
func (t *T) Run()        {}
func (t *T) Close()      {}
func mk() *T             { return &T{} }
func mustMk() *T         { return &T{} }
func mkG() *T            { return &T{} }
func use(t *T)           {}
func cond() bool         { return false }
`

// runProto analyzes function F in src and returns the violation
// messages in positional order.
func runProto(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	decls := make(map[*types.Func]*ast.FuncDecl)
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		f, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if f.Name.Name == "F" {
			fd = f
		}
		if fn, ok := info.Defs[f.Name].(*types.Func); ok {
			decls[fn] = f
		}
	}
	if fd == nil {
		t.Fatal("no function F in source")
	}
	type posMsg struct {
		pos token.Pos
		msg string
	}
	var got []posMsg
	a := &dataflow.StateAnalysis{
		Info: info,
		Fset: fset,
		Origin: func(call *ast.CallExpr) (*dataflow.Proto, int, bool) {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return nil, 0, false
			}
			switch id.Name {
			case "mk":
				return testProto, 0, true
			case "mustMk":
				return mustProto, 0, true
			case "mkG":
				return heldProto, 0, true
			case "mkErr":
				return mustProto, 0, true
			}
			return nil, 0, false
		},
		Decl: func(fn *types.Func) *ast.FuncDecl { return decls[fn] },
		Report: func(v dataflow.ProtoViolation) {
			got = append(got, posMsg{v.Pos, v.Msg})
		},
	}
	dataflow.RunProto(fd.Body, a)
	sort.Slice(got, func(i, j int) bool { return got[i].pos < got[j].pos })
	msgs := make([]string, len(got))
	for i, g := range got {
		msgs[i] = g.msg
	}
	return msgs
}

func wantMsgs(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d violations %q, want %d %q", len(got), got, len(want), want)
	}
	for i := range want {
		if !strings.Contains(got[i], want[i]) {
			t.Errorf("violation %d = %q, want substring %q", i, got[i], want[i])
		}
	}
}

func TestProtoHappyPath(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	s.Tick()
	s.Tick()
	s.End()
}`)
	wantMsgs(t, got)
}

func TestProtoTickAfterEnd(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	s.End()
	s.Tick()
}`)
	wantMsgs(t, got, `Tick called in state "ended"`)
}

func TestProtoTickBeforeBegin(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Tick()
}`)
	wantMsgs(t, got, `Tick called in state "fresh"`)
}

func TestProtoDoubleBegin(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	s.Begin()
}`)
	wantMsgs(t, got, `Begin called in state "active"`)
}

func TestProtoBranchJoin(t *testing.T) {
	// End only in one branch: the join holds {active, ended}, so a
	// following Tick is a (possible) violation in "ended".
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	if cond() {
		s.End()
	}
	s.Tick()
}`)
	wantMsgs(t, got, `Tick called in state "ended"`)
}

func TestProtoBranchBothEnd(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	if cond() {
		s.End()
	} else {
		s.End()
	}
}`)
	wantMsgs(t, got)
}

func TestProtoTerminatedArmDiscarded(t *testing.T) {
	// The panicking arm never reaches the Tick; only "active" flows on.
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	if cond() {
		s.End()
		panic("done")
	}
	s.Tick()
	s.End()
}`)
	wantMsgs(t, got)
}

func TestProtoLoopTick(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	for i := 0; i < 3; i++ {
		s.Tick()
	}
	s.End()
}`)
	wantMsgs(t, got)
}

func TestProtoEndInsideLoop(t *testing.T) {
	// End in the loop body: second pass calls Tick in "ended".
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	for i := 0; i < 3; i++ {
		s.Tick()
		s.End()
	}
}`)
	wantMsgs(t, got, `Tick called in state "ended"`)
}

func TestProtoMustCompleteMissingEnd(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mustMk()
	s.Begin()
}`)
	wantMsgs(t, got, "does not reach")
}

func TestProtoMustCompleteErrorExit(t *testing.T) {
	// The early return abandons s in "active": reported at the return.
	got := runProto(t, protoPrelude+`
func F() {
	s := mustMk()
	s.Begin()
	if cond() {
		return
	}
	s.End()
}`)
	wantMsgs(t, got, "does not reach")
}

func TestProtoMustCompleteDefer(t *testing.T) {
	// defer s.End() discharges the obligation on every exit.
	got := runProto(t, protoPrelude+`
func F() {
	s := mustMk()
	s.Begin()
	defer s.End()
	if cond() {
		return
	}
	s.Tick()
}`)
	wantMsgs(t, got)
}

func TestProtoMustCompleteDeferLit(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mustMk()
	s.Begin()
	defer func() { s.End() }()
	if cond() {
		return
	}
}`)
	wantMsgs(t, got)
}

func TestProtoPanicExitOwesNothing(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mustMk()
	s.Begin()
	if cond() {
		panic("fatal")
	}
	s.End()
}`)
	wantMsgs(t, got)
}

func TestProtoEscapeOnReturn(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() *T {
	s := mustMk()
	s.Begin()
	return s
}`)
	wantMsgs(t, got)
}

func TestProtoEscapeOnPass(t *testing.T) {
	// use has no body summary worth tracking? It does have a body (in
	// decls), so the summary applies: use neither transitions nor
	// escapes, and the obligation stays — but use's body is empty, so
	// the seeded state flows through unchanged and F still owes End.
	got := runProto(t, protoPrelude+`
func F() {
	s := mustMk()
	s.Begin()
	use(s)
}`)
	wantMsgs(t, got, "does not reach")
}

func TestProtoHeldThroughCalls(t *testing.T) {
	// heldProto (EscapeOnPass=false): passing g around does not
	// discharge Close.
	got := runProto(t, protoPrelude+`
func F() {
	g := mkG()
	use(g)
	g.Run()
}`)
	wantMsgs(t, got, "does not reach")
}

func TestProtoHeldDeferClose(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	g := mkG()
	defer g.Close()
	use(g)
	g.Run()
}`)
	wantMsgs(t, got)
}

func TestProtoRunAfterClose(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	g := mkG()
	g.Close()
	g.Run()
}`)
	wantMsgs(t, got, `Run called in state "closed"`)
}

func TestProtoClosureSharesState(t *testing.T) {
	// A literal's capture drives the same machine: End inside the
	// closure body is seen lexically, so the later Tick is flagged.
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	s.Begin()
	f := func() { s.End() }
	_ = f
	s.Tick()
}`)
	wantMsgs(t, got, `Tick called in state "ended"`)
}

func TestProtoSummaryTransition(t *testing.T) {
	// finish ends the value via a same-package summary.
	got := runProto(t, protoPrelude+`
func finish(t *T) { t.End() }

func F() {
	s := mustMk()
	s.Begin()
	finish(s)
}`)
	wantMsgs(t, got)
}

func TestProtoSummaryViolationInCallee(t *testing.T) {
	// The callee Ticks an already-ended value: reported once, at the
	// callee's call site position.
	got := runProto(t, protoPrelude+`
func tick(t *T) { t.Tick() }

func F() {
	s := mk()
	s.Begin()
	s.End()
	tick(s)
}`)
	wantMsgs(t, got, `Tick called in state "ended"`)
}

func TestProtoSummaryEscape(t *testing.T) {
	// The callee stores the value into a package sink: escaped, no
	// obligation left in the caller.
	got := runProto(t, protoPrelude+`
var sink *T

func keep(t *T) { sink = t }

func F() {
	s := mustMk()
	s.Begin()
	keep(s)
}`)
	wantMsgs(t, got)
}

func TestProtoStoreEscapes(t *testing.T) {
	got := runProto(t, protoPrelude+`
var sink []*T

func F() {
	s := mustMk()
	s.Begin()
	sink = append(sink, s)
}`)
	wantMsgs(t, got)
}

func TestProtoAliasFollowed(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	u := s
	u.Begin()
	u.End()
	u.Tick()
}`)
	wantMsgs(t, got, `Tick called in state "ended"`)
}

func TestProtoNeutralMethodIgnored(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	s := mk()
	_ = s.Other()
	s.Begin()
	s.End()
}`)
	wantMsgs(t, got)
}

func TestProtoErrGuardReleasesObligation(t *testing.T) {
	// On the err != nil path the constructor returned nil: no End owed.
	got := runProto(t, protoPrelude+`
func mkErr() (*T, error) { return &T{}, nil }

func F() error {
	s, err := mkErr()
	if err != nil {
		return err
	}
	s.Begin()
	s.End()
	return nil
}`)
	wantMsgs(t, got)
}

func TestProtoErrGuardStillOwedOnSuccess(t *testing.T) {
	got := runProto(t, protoPrelude+`
func mkErr() (*T, error) { return &T{}, nil }

func F() error {
	s, err := mkErr()
	if err != nil {
		return err
	}
	s.Begin()
	return nil
}`)
	wantMsgs(t, got, "does not reach")
}

func TestProtoDiscardedResultUntracked(t *testing.T) {
	got := runProto(t, protoPrelude+`
func F() {
	mk()
}`)
	wantMsgs(t, got)
}
