// Typestate extension of the dataflow engine: where dataflow.Run
// tracks a Taint lattice along def-use chains, RunProto tracks a small
// finite-state machine per protocol object — "this Writer is active",
// "this Group is closed" — with the same structural control flow
// (strong updates on the happy path, copy-and-join across branches,
// bounded loop passes) plus the two features protocols need that taint
// does not: deferred calls applied at every function exit (so `defer
// g.Close()` discharges a completion obligation), and must-complete
// checking at returns (an object that cannot be in an accepting state
// on some exit path is reported there).
//
// Interprocedural precision comes from per-(callee, parameter, input
// state) summaries: when a tracked object is passed to a same-package
// function, the engine runs the callee's body with the parameter seeded
// in each current state, memoizes the (output states, escaped) result,
// and applies it at the call site; cycles resolve to the conservative
// "escaped" summary, which silences obligations rather than inventing
// violations.
//
// Soundness posture: the engine is deliberately quiet. Any flow it
// cannot follow — returning the object, storing it into a field, slice,
// map, or channel, or (per-protocol) passing it to an unknown function
// — marks the object escaped, which disables all further checks on it.
// Escape can hide a misuse; it cannot fabricate one.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StateSet is a bitset over one protocol's states (at most 32).
type StateSet uint32

// SingleState returns the set containing only state i.
func SingleState(i int) StateSet { return 1 << uint(i) }

// Has reports whether state i is in the set.
func (s StateSet) Has(i int) bool { return s&SingleState(i) != 0 }

// Empty reports whether the set has no states.
func (s StateSet) Empty() bool { return s == 0 }

// states iterates the members of the set in increasing order.
func (s StateSet) states(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Proto is one declarative protocol: a state machine over the method
// calls observed on a tracked value.
type Proto struct {
	// Name labels the protocol in diagnostics ("trace.Sink").
	Name string
	// Doc is the one-line protocol summary appended to diagnostics
	// ("protocol is Begin, then Tick*, then End").
	Doc string
	// States names the machine's states; diagnostics print them.
	States []string
	// Start is the state a freshly created value is in.
	Start int
	// Methods maps a method name to its transition vector. A method
	// absent from the map is protocol-neutral: it leaves the state
	// unchanged (accessors like Err or Size).
	Methods map[string]ProtoMethod
	// Accepting marks the states in which abandoning the value is
	// legal. Only consulted when MustComplete is set.
	Accepting StateSet
	// CompleteDoc names the completing call ("End", "Close") in
	// must-complete diagnostics; when empty, the accepting state names
	// are used.
	CompleteDoc string
	// MustComplete requires every tracked value to be possibly-accepting
	// at every exit it is still live on: if no state in the value's set
	// is accepting when a path leaves the function, the path is
	// reported.
	MustComplete bool
	// EscapeOnPass controls what passing the value as an argument to an
	// unsummarized call means: true (sinks, writers) hands off the
	// remaining obligations to the callee and stops tracking; false
	// (groups) assumes callees observe but do not drive the protocol,
	// keeping the caller's obligations alive.
	EscapeOnPass bool
}

// ProtoMethod is the transition vector of one method: Next[s] is the
// post-state when called in state s, or a negative value when the call
// violates the protocol in s.
type ProtoMethod struct {
	Next []int
	// ErrReleases marks a method that cleans up after its own failure
	// (a failed fileSink.Begin closes the file it opened): when the
	// method's error result is checked non-nil, the value owes nothing
	// in that branch.
	ErrReleases bool
}

// ProtoViolation is one protocol misuse finding.
type ProtoViolation struct {
	// Pos anchors the violating call (or the exit statement, for
	// must-complete findings).
	Pos token.Pos
	// Origin is where the tracked value was created.
	Origin token.Pos
	Proto  *Proto
	Msg    string
}

// StateAnalysis configures one RunProto invocation.
type StateAnalysis struct {
	Info *types.Info
	Fset *token.FileSet

	// Origin classifies a call as creating a tracked value: it returns
	// the protocol and the index of the call result that carries the
	// value.
	Origin func(call *ast.CallExpr) (p *Proto, result int, ok bool)

	// Decl resolves a same-package function to its declaration, for
	// interprocedural summaries. nil disables summaries (tracked
	// arguments then follow the protocol's EscapeOnPass rule).
	Decl func(fn *types.Func) *ast.FuncDecl

	// Report receives each violation once (deduplicated by position).
	Report func(v ProtoViolation)
}

// RunProto interprets body under a, reporting protocol violations
// through a.Report. It is the typestate counterpart of Run.
func RunProto(body *ast.BlockStmt, a *StateAnalysis) {
	e := newProtoEngine(a)
	e.pushFrame()
	e.stmt(body)
	e.exit(body.End(), false)
}

// objState is one tracked value's abstract state.
type objState struct {
	proto   *Proto
	states  StateSet
	origin  token.Pos
	escaped bool
}

// deferredCall is one recorded defer, applied at function exits in
// reverse order.
type deferredCall struct {
	obj    types.Object // nil when lit is set
	method string
	pos    token.Pos
	lit    *ast.FuncLit
}

// frame scopes defers and created objects to one function (the top
// declaration or a literal walked inline).
type frame struct {
	defers  []deferredCall
	created []types.Object
}

type sumKey struct {
	fn    *types.Func
	param int // -1 is the receiver
	in    int
}

type sumVal struct {
	out     StateSet
	escaped bool
}

type protoEngine struct {
	a          *StateAnalysis
	env        map[types.Object]objState
	frames     []*frame
	terminated bool
	reported   map[token.Pos]bool
	sums       map[sumKey]sumVal
	running    map[sumKey]bool
	// errGuard links a constructor's error result to the tracked value
	// it vouches for: in the branch where the error is non-nil the
	// value is nil, so its obligations vanish there.
	errGuard map[types.Object]types.Object
	// summarizing suppresses exit checks for seeded parameters and
	// carries the seeded object whose exit states the summary collects.
	seedObj   types.Object
	seedOut   StateSet
	seedAtRet bool
}

func newProtoEngine(a *StateAnalysis) *protoEngine {
	return &protoEngine{
		a:        a,
		env:      make(map[types.Object]objState),
		reported: make(map[token.Pos]bool),
		sums:     make(map[sumKey]sumVal),
		running:  make(map[sumKey]bool),
		errGuard: make(map[types.Object]types.Object),
	}
}

func (e *protoEngine) pushFrame() { e.frames = append(e.frames, &frame{}) }

func (e *protoEngine) popFrame() *frame {
	f := e.frames[len(e.frames)-1]
	e.frames = e.frames[:len(e.frames)-1]
	return f
}

func (e *protoEngine) topFrame() *frame { return e.frames[len(e.frames)-1] }

func (e *protoEngine) report(pos, origin token.Pos, p *Proto, msg string) {
	if e.reported[pos] {
		return
	}
	e.reported[pos] = true
	if e.a.Report != nil {
		e.a.Report(ProtoViolation{Pos: pos, Origin: origin, Proto: p, Msg: msg})
	}
}

// track starts tracking obj in proto's start state.
func (e *protoEngine) track(obj types.Object, p *Proto, origin token.Pos) {
	if obj == nil {
		return
	}
	e.env[obj] = objState{proto: p, states: SingleState(p.Start), origin: origin}
	f := e.topFrame()
	f.created = append(f.created, obj)
}

// escape stops enforcing anything about obj.
func (e *protoEngine) escape(obj types.Object) {
	if obj == nil {
		return
	}
	if st, ok := e.env[obj]; ok && !st.escaped {
		st.escaped = true
		e.env[obj] = st
	}
}

// copyEnv snapshots the state for branch analysis.
func (e *protoEngine) copyEnv() map[types.Object]objState {
	out := make(map[types.Object]objState, len(e.env))
	for k, v := range e.env {
		out[k] = v
	}
	return out
}

// joinEnv merges another branch's outcome into the live env: states
// union, escape is sticky.
func (e *protoEngine) joinEnv(other map[types.Object]objState) {
	for o, st := range other {
		cur, ok := e.env[o]
		if !ok {
			e.env[o] = st
			continue
		}
		cur.states |= st.states
		cur.escaped = cur.escaped || st.escaped
		e.env[o] = cur
	}
}

// ---- statements ----

func (e *protoEngine) stmt(s ast.Stmt) {
	if e.terminated {
		return
	}
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			if e.terminated {
				break
			}
			e.stmt(st)
		}
	case *ast.ExprStmt:
		e.eval(s.X, false)
	case *ast.AssignStmt:
		e.assignStmt(s)
	case *ast.DeclStmt:
		e.declStmt(s)
	case *ast.IncDecStmt:
		e.eval(s.X, false)
	case *ast.ReturnStmt:
		e.returnStmt(s)
	case *ast.IfStmt:
		e.stmt(s.Init)
		e.eval(s.Cond, false)
		guarded, guardNeq := e.nilGuard(s.Cond)
		pre := e.copyEnv()
		if guarded != nil && guardNeq {
			// err != nil: the value is nil in this arm.
			e.escape(guarded)
		}
		e.stmt(s.Body)
		thenEnv, thenTerm := e.env, e.terminated
		e.env, e.terminated = pre, false
		if guarded != nil && !guardNeq {
			// err == nil guarded the then arm; here the value is nil.
			e.escape(guarded)
		}
		e.stmt(s.Else) // nil-safe
		elseTerm := e.terminated
		if thenTerm && elseTerm {
			// Both arms left the function; anything after is dead on
			// every path, but keep walking with the pre-branch view so
			// later dead code cannot fabricate violations.
			e.terminated = true
			return
		}
		e.terminated = false
		if !thenTerm {
			if elseTerm {
				e.env = thenEnv
			} else {
				e.joinEnv(thenEnv)
			}
		}
	case *ast.ForStmt:
		e.stmt(s.Init)
		e.eval(s.Cond, false)
		e.loopBody(func() {
			e.stmt(s.Body)
			e.stmt(s.Post)
		})
	case *ast.RangeStmt:
		e.eval(s.X, true)
		e.loopBody(func() { e.stmt(s.Body) })
	case *ast.SwitchStmt:
		e.stmt(s.Init)
		e.eval(s.Tag, false)
		e.branches(len(s.Body.List), func(i int) {
			cc := s.Body.List[i].(*ast.CaseClause)
			for _, x := range cc.List {
				e.eval(x, false)
			}
			for _, st := range cc.Body {
				if e.terminated {
					break
				}
				e.stmt(st)
			}
		})
	case *ast.TypeSwitchStmt:
		e.stmt(s.Init)
		e.branches(len(s.Body.List), func(i int) {
			cc := s.Body.List[i].(*ast.CaseClause)
			for _, st := range cc.Body {
				if e.terminated {
					break
				}
				e.stmt(st)
			}
		})
	case *ast.SelectStmt:
		e.branches(len(s.Body.List), func(i int) {
			cc := s.Body.List[i].(*ast.CommClause)
			e.stmt(cc.Comm)
			for _, st := range cc.Body {
				if e.terminated {
					break
				}
				e.stmt(st)
			}
		})
	case *ast.SendStmt:
		// The value escapes into the channel.
		e.eval(s.Value, true)
	case *ast.GoStmt:
		e.eval(s.Call, false)
	case *ast.DeferStmt:
		e.deferStmt(s)
	case *ast.LabeledStmt:
		e.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// loopBody analyzes a loop body twice (propagating one loop-carried
// transition) and joins with the zero-iteration state.
func (e *protoEngine) loopBody(fn func()) {
	pre := e.copyEnv()
	for i := 0; i < maxLoopPasses; i++ {
		fn()
		if e.terminated {
			// A return inside the loop: the zero-iteration state still
			// falls through.
			e.terminated = false
			e.env = copyObjMap(pre)
			return
		}
	}
	e.joinEnv(pre)
}

func (e *protoEngine) branches(n int, fn func(i int)) {
	pre := e.copyEnv()
	var outs []map[types.Object]objState
	for i := 0; i < n; i++ {
		e.env = copyObjMap(pre)
		e.terminated = false
		fn(i)
		if !e.terminated {
			outs = append(outs, e.env)
		}
	}
	e.terminated = false
	e.env = copyObjMap(pre)
	for _, o := range outs {
		e.joinEnv(o)
	}
}

func copyObjMap(m map[types.Object]objState) map[types.Object]objState {
	out := make(map[types.Object]objState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (e *protoEngine) assignStmt(s *ast.AssignStmt) {
	// A call on the RHS may be an origin: bind its tracked result.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if p, idx, isOrigin := e.origin(call); isOrigin {
				// Evaluate arguments first (they may escape), then bind.
				e.evalCallParts(call)
				if idx < len(s.Lhs) || len(s.Lhs) == 1 {
					li := idx
					if len(s.Lhs) == 1 {
						li = 0
					}
					if obj := lhsObject(e.a.Info, s.Lhs[li]); obj != nil {
						e.track(obj, p, call.Pos())
						e.bindErrGuard(s.Lhs, li, obj)
						return
					}
				}
				return
			}
		}
	}
	// err := obj.M(...) where M cleans up after its own failure: bind
	// the error to the tracked value so the err != nil branch releases
	// it.
	if len(s.Rhs) == 1 && len(s.Lhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := e.trackedBase(sel.X); obj != nil {
					if m, ok := e.env[obj].proto.Methods[sel.Sel.Name]; ok && m.ErrReleases {
						e.eval(s.Rhs[0], false)
						e.bindErrGuard(s.Lhs, -1, obj)
						return
					}
				}
			}
		}
	}
	for _, r := range s.Rhs {
		e.eval(r, false)
	}
	for i, lhs := range s.Lhs {
		obj := lhsObject(e.a.Info, lhs)
		if obj == nil || isGlobalVar(obj) {
			// Store into a field, element, map, or package-level
			// variable: a tracked RHS value escapes there.
			if i < len(s.Rhs) {
				e.escape(e.trackedBase(s.Rhs[i]))
			}
			continue
		}
		// Reassigning a variable drops any tracked value it held
		// (over-approximation: the old value is now unreachable through
		// this name; its obligations were either discharged or the
		// value escaped when it arrived).
		if i < len(s.Rhs) {
			if src := e.trackedBase(s.Rhs[i]); src != nil && src != obj {
				// Aliasing: the new name takes over; both names now
				// refer to the same value, so strong updates through
				// either would be unsound — escape the source and move
				// its state to the destination.
				st := e.env[src]
				e.escape(src)
				st.escaped = false
				e.env[obj] = st
				e.topFrame().created = append(e.topFrame().created, obj)
				continue
			}
		}
		if _, tracked := e.env[obj]; tracked {
			e.escape(obj)
		}
	}
}

func (e *protoEngine) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) >= 1 {
			if call, isCall := ast.Unparen(vs.Values[0]).(*ast.CallExpr); isCall {
				if p, idx, isOrigin := e.origin(call); isOrigin && idx < len(vs.Names) {
					e.evalCallParts(call)
					obj := e.a.Info.Defs[vs.Names[idx]]
					e.track(obj, p, call.Pos())
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					e.bindErrGuard(lhs, idx, obj)
					continue
				}
			}
		}
		for _, v := range vs.Values {
			e.eval(v, false)
		}
	}
}

func (e *protoEngine) returnStmt(s *ast.ReturnStmt) {
	for _, r := range s.Results {
		// A returned tracked value hands its obligations to the caller.
		e.eval(r, true)
	}
	if e.seedObj != nil {
		if st, ok := e.env[e.seedObj]; ok {
			e.seedOut |= st.states
			if st.escaped {
				e.seedAtRet = true
			}
		}
	}
	e.exit(s.Pos(), false)
	e.terminated = true
}

func (e *protoEngine) deferStmt(s *ast.DeferStmt) {
	call := s.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok && len(call.Args) == 0 {
		f := e.topFrame()
		f.defers = append(f.defers, deferredCall{lit: lit, pos: s.Pos()})
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := e.trackedBase(sel.X); obj != nil {
			f := e.topFrame()
			f.defers = append(f.defers, deferredCall{obj: obj, method: sel.Sel.Name, pos: s.Pos()})
			for _, a := range call.Args {
				e.evalArg(a)
			}
			return
		}
	}
	// Any other defer: evaluate normally (arguments may escape).
	e.eval(call, false)
}

// exit applies the current frame's defers (in reverse) to a copy of the
// state and checks completion obligations on that copy. litEnd marks
// the implicit fall-off exit of a function literal.
func (e *protoEngine) exit(pos token.Pos, litEnd bool) {
	_ = litEnd
	saved := e.env
	e.env = e.copyEnv()
	f := e.topFrame()
	for i := len(f.defers) - 1; i >= 0; i-- {
		d := f.defers[i]
		if d.lit != nil {
			term := e.terminated
			e.terminated = false
			e.stmt(d.lit.Body)
			e.terminated = term
			continue
		}
		e.applyMethod(d.obj, d.method, d.pos)
	}
	for _, obj := range f.created {
		st, ok := e.env[obj]
		if !ok || st.escaped || !st.proto.MustComplete {
			continue
		}
		if st.states&st.proto.Accepting == 0 {
			e.report(pos, st.origin, st.proto,
				st.proto.Name+" value does not reach "+acceptingHint(st.proto)+
					" on this path ("+st.proto.Doc+")")
			// Latch accepting so later exits on joined paths do not
			// repeat the finding for the same object.
			st.states |= st.proto.Accepting
			saved[obj] = st
		}
	}
	e.env = saved
}

// acceptingHint names the completing call or, failing that, the
// accepting states, for the must-complete message.
func acceptingHint(p *Proto) string {
	if p.CompleteDoc != "" {
		return p.CompleteDoc
	}
	names := ""
	for _, i := range p.Accepting.states(len(p.States)) {
		if names != "" {
			names += " or "
		}
		names += p.States[i]
	}
	if names == "" {
		return "completion"
	}
	return names
}

// ---- expressions ----

// eval walks x; escaping controls whether a tracked value appearing
// bare in this position (return operand, composite element, channel
// send, argument of an unknown call) escapes.
func (e *protoEngine) eval(x ast.Expr, escaping bool) {
	if x == nil {
		return
	}
	switch x := x.(type) {
	case *ast.Ident:
		if escaping {
			e.escape(e.trackedBase(x))
		}
	case *ast.ParenExpr:
		e.eval(x.X, escaping)
	case *ast.UnaryExpr:
		e.eval(x.X, escaping)
	case *ast.StarExpr:
		e.eval(x.X, escaping)
	case *ast.BinaryExpr:
		e.eval(x.X, false)
		e.eval(x.Y, false)
	case *ast.IndexExpr:
		e.eval(x.X, false)
		e.eval(x.Index, false)
	case *ast.IndexListExpr:
		e.eval(x.X, false)
	case *ast.SliceExpr:
		e.eval(x.X, false)
	case *ast.SelectorExpr:
		e.eval(x.X, false)
	case *ast.KeyValueExpr:
		e.eval(x.Value, true) // composite element: escapes
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			e.eval(elt, true)
		}
	case *ast.TypeAssertExpr:
		e.eval(x.X, escaping)
	case *ast.CallExpr:
		e.callExpr(x)
	case *ast.FuncLit:
		e.funcLit(x)
	}
}

// funcLit walks a literal's body inline, sharing the environment (its
// captures observe and drive the same protocol objects), with its own
// defer/created frame so objects born inside it are checked at its end.
func (e *protoEngine) funcLit(lit *ast.FuncLit) {
	e.pushFrame()
	term := e.terminated
	e.terminated = false
	e.stmt(lit.Body)
	e.terminated = false
	e.exit(lit.Body.End(), true)
	f := e.popFrame()
	// Objects created inside the literal are out of scope now.
	for _, obj := range f.created {
		delete(e.env, obj)
	}
	e.terminated = term
}

// origin wraps the analyzer hook.
func (e *protoEngine) origin(call *ast.CallExpr) (*Proto, int, bool) {
	if e.a.Origin == nil {
		return nil, 0, false
	}
	return e.a.Origin(call)
}

// trackedBase resolves x to a live tracked object, or nil.
func (e *protoEngine) trackedBase(x ast.Expr) types.Object {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := identObj(e.a.Info, id)
	if obj == nil {
		return nil
	}
	if st, tracked := e.env[obj]; tracked && !st.escaped {
		return obj
	}
	return nil
}

// callExpr interprets one call: protocol method, summarized
// same-package call, origin in expression position, or unknown call.
func (e *protoEngine) callExpr(call *ast.CallExpr) {
	if _, _, isOrigin := e.origin(call); isOrigin {
		// Result discarded: the value is created and immediately
		// dropped. Nothing to track (and for must-complete protocols
		// nothing to report without a name to follow).
		e.evalCallParts(call)
		return
	}

	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj := e.trackedBase(sel.X); obj != nil {
			st := e.env[obj]
			if _, isProtoMethod := st.proto.Methods[sel.Sel.Name]; isProtoMethod {
				for _, a := range call.Args {
					e.evalArg(a)
				}
				e.applyMethod(obj, sel.Sel.Name, call.Pos())
				return
			}
			// Unknown method on a tracked value: try a same-package
			// summary over the receiver; otherwise protocol-neutral.
			if fn := Callee(e.a.Info, call); fn != nil && e.applySummary(fn, obj, -1) {
				e.evalArgsSkipping(call, nil)
				return
			}
			e.evalArgsSkipping(call, nil)
			return
		}
	}

	// Tracked values passed as arguments.
	fn := Callee(e.a.Info, call)
	for i, arg := range call.Args {
		obj := e.trackedBase(arg)
		if obj == nil {
			e.eval(arg, false)
			continue
		}
		if fn != nil && e.applySummary(fn, obj, i) {
			continue
		}
		if e.env[obj].proto.EscapeOnPass {
			e.escape(obj)
		}
	}
	if fun != nil {
		if _, isSel := fun.(*ast.SelectorExpr); !isSel {
			e.eval(fun, false)
		} else {
			e.eval(fun.(*ast.SelectorExpr).X, false)
		}
	}

	// Terminators: a path that panics or exits owes no completion.
	if isTerminatorCall(e.a.Info, call) {
		e.terminated = true
	}
}

// evalCallParts walks a call's arguments without treating the call as a
// protocol event (used for origin calls).
func (e *protoEngine) evalCallParts(call *ast.CallExpr) {
	for _, a := range call.Args {
		e.evalArg(a)
	}
}

// evalArg walks one call argument: a bare tracked value escapes only
// when its protocol says passing hands off responsibility.
func (e *protoEngine) evalArg(a ast.Expr) {
	if obj := e.trackedBase(a); obj != nil {
		if e.env[obj].proto.EscapeOnPass {
			e.escape(obj)
		}
		return
	}
	e.eval(a, false)
}

// evalArgsSkipping walks arguments normally.
func (e *protoEngine) evalArgsSkipping(call *ast.CallExpr, skip map[int]bool) {
	for i, a := range call.Args {
		if skip[i] {
			continue
		}
		e.eval(a, false)
	}
}

// applyMethod transitions obj on a call to method at pos.
func (e *protoEngine) applyMethod(obj types.Object, method string, pos token.Pos) {
	st, ok := e.env[obj]
	if !ok || st.escaped {
		return
	}
	m, ok := st.proto.Methods[method]
	if !ok {
		return
	}
	var next StateSet
	bad := -1
	anyOK := false
	for _, s := range st.states.states(len(st.proto.States)) {
		if m.Next[s] < 0 {
			if bad < 0 {
				bad = s
			}
			continue
		}
		anyOK = true
		next |= SingleState(m.Next[s])
	}
	if bad >= 0 {
		e.report(pos, st.origin, st.proto,
			st.proto.Name+"."+method+" called in state "+quote(st.proto.States[bad])+
				" ("+st.proto.Doc+")")
	}
	if anyOK {
		st.states = next
		e.env[obj] = st
	}
	// No legal source state: keep the old state to avoid cascading
	// reports from one mistake.
}

func quote(s string) string { return "\"" + s + "\"" }

// applySummary applies the memoized (callee, param, state) summary when
// the callee has a same-package body; it reports violations found
// inside the callee once, at their own positions.
func (e *protoEngine) applySummary(fn *types.Func, obj types.Object, param int) bool {
	if e.a.Decl == nil {
		return false
	}
	decl := e.a.Decl(fn)
	if decl == nil || decl.Body == nil {
		return false
	}
	st := e.env[obj]
	var out StateSet
	escaped := false
	for _, s := range st.states.states(len(st.proto.States)) {
		sv := e.summarize(fn, decl, st.proto, param, s, st.origin)
		out |= sv.out
		escaped = escaped || sv.escaped
	}
	if out.Empty() {
		out = st.states
	}
	st.states = out
	st.escaped = st.escaped || escaped
	e.env[obj] = st
	return true
}

// summarize computes (memoized) what the callee does to a value of
// proto arriving in state `in` through parameter `param` (-1 is the
// receiver). Cycles resolve to "escaped", which silences rather than
// reports.
func (e *protoEngine) summarize(fn *types.Func, decl *ast.FuncDecl, p *Proto, param, in int, origin token.Pos) sumVal {
	key := sumKey{fn: fn, param: param, in: in}
	if sv, ok := e.sums[key]; ok {
		return sv
	}
	if e.running[key] {
		return sumVal{out: SingleState(in), escaped: true}
	}
	e.running[key] = true
	defer delete(e.running, key)

	var seedVar types.Object
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil {
		if param < 0 {
			seedVar = sig.Recv()
		} else if param < sig.Params().Len() {
			seedVar = sig.Params().At(param)
		}
	}
	if seedVar == nil {
		sv := sumVal{out: SingleState(in), escaped: true}
		e.sums[key] = sv
		return sv
	}

	sub := newProtoEngine(e.a)
	sub.reported = e.reported // shared dedup: callee findings print once
	sub.sums = e.sums
	sub.running = e.running
	sub.env[seedVar] = objState{proto: p, states: SingleState(in), origin: origin}
	sub.seedObj = seedVar
	sub.pushFrame()
	sub.stmt(decl.Body)
	if !sub.terminated {
		// Implicit fall-off return.
		if st, ok := sub.env[seedVar]; ok {
			sub.seedOut |= st.states
			if st.escaped {
				sub.seedAtRet = true
			}
		}
		sub.exit(decl.Body.End(), false)
	}
	out := sub.seedOut
	if out.Empty() {
		out = SingleState(in)
	}
	sv := sumVal{out: out, escaped: sub.seedAtRet}
	e.sums[key] = sv
	return sv
}

// nilGuard recognizes `x != nil` / `x == nil` conditions over an error
// variable that guards a tracked value, returning the tracked object
// and whether the comparison was !=.
func (e *protoEngine) nilGuard(cond ast.Expr) (types.Object, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
		return nil, false
	}
	operand := b.X
	if id, isNil := ast.Unparen(b.X).(*ast.Ident); isNil && id.Name == "nil" {
		operand = b.Y
	} else if id, isNil := ast.Unparen(b.Y).(*ast.Ident); !isNil || id.Name != "nil" {
		return nil, false
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return nil, false
	}
	errObj := identObj(e.a.Info, id)
	if errObj == nil {
		return nil, false
	}
	tracked := e.errGuard[errObj]
	if tracked == nil {
		return nil, false
	}
	return tracked, b.Op == token.NEQ
}

// bindErrGuard records lhs error idents vouching for a tracked value.
func (e *protoEngine) bindErrGuard(lhs []ast.Expr, skip int, tracked types.Object) {
	for i, l := range lhs {
		if i == skip {
			continue
		}
		obj := lhsObject(e.a.Info, l)
		if obj == nil {
			continue
		}
		if types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			e.errGuard[obj] = tracked
		}
	}
}

// isGlobalVar reports whether obj is a package-level variable (its
// scope's parent is the universe scope).
func isGlobalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	p := v.Parent()
	return p != nil && p.Parent() == types.Universe
}

// lhsObject resolves a plain-identifier lvalue to its object; composite
// lvalues (fields, elements) return nil.
func lhsObject(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isTerminatorCall reports calls after which the current path does not
// return normally: panic, os.Exit, log.Fatal*, runtime.Goexit.
func isTerminatorCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := identObj(info, fun).(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		fn, _ := identObj(info, fun.Sel).(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
		case "runtime":
			return fn.Name() == "Goexit"
		}
	}
	return false
}
