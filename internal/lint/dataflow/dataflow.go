// Package dataflow is the function-level value-flow engine behind the
// flow-sensitive repolint analyzers. It interprets one function body
// abstractly, in source order, propagating a Taint along def-use
// chains: every assignment carries the taint of its right-hand side to
// the variable it defines, every expression joins the taints of its
// operands, and calls transfer taint through a per-call Effect supplied
// by the analyzer (which is where interprocedural summaries computed
// over internal/lint/callgraph plug in).
//
// The analysis is flow-sensitive on variables: reassigning a variable
// with a clean value kills its taint, and a sanitizer call (an Effect
// with Kills) cleans the objects it names, so code that collects map
// keys, sorts them, and only then emits them is provably clean even
// though the same value was tainted a few statements earlier. Control
// flow is handled structurally — branches analyze each arm on a copy of
// the state and join afterwards, loops run their body to a bounded
// fixpoint and join with the zero-iteration state — which keeps the
// engine linear-ish in practice while still catching loop-carried
// flows.
//
// Two nondeterminism sources are built into the engine because they are
// properties of statements rather than of calls: ranging over a map
// taints the iteration variables (Go randomizes map order on every
// range), and a multi-way select taints whatever its comm clauses bind
// (the winning case is scheduler-chosen). Both are opt-in via Analysis
// flags so other analyzers can reuse the engine for different taints.
package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Taint is the abstract value tracked for every variable and
// expression. The zero Taint is "clean".
type Taint struct {
	// Desc is the human-readable provenance of an internal
	// nondeterminism source ("map iteration order (cluster.go:375)").
	// Empty when the value does not depend on an internal source.
	Desc string
	// Param reports that the value depends on a parameter or receiver
	// the caller seeded via Analysis.Seed — how summary computation
	// discovers parameter-to-result flow.
	Param bool
}

// Tainted reports whether t carries any taint.
func (t Taint) Tainted() bool { return t.Desc != "" || t.Param }

// Join merges two taints: an internal source wins the description slot
// (first non-empty), parameter dependence is disjunctive.
func Join(a, b Taint) Taint {
	if a.Desc == "" {
		a.Desc = b.Desc
	}
	a.Param = a.Param || b.Param
	return a
}

// JoinAll folds Join over ts.
func JoinAll(ts []Taint) Taint {
	var out Taint
	for _, t := range ts {
		out = Join(out, t)
	}
	return out
}

// Effect is the transfer function of one call, as decided by the
// analyzer's Call hook.
type Effect struct {
	// Result is joined into every result of the call.
	Result Taint
	// Results, when non-nil, gives per-result taints (length must match
	// the call's result arity); tuple assignments and returns then keep
	// per-result precision instead of collapsing to one joined taint.
	Results []Taint
	// Propagate joins the taints of the receiver and arguments into the
	// results (the default assumption for calls whose body is unknown).
	Propagate bool
	// Kills names arguments whose base object is sanitized: its taint
	// is removed from the state (sort.Strings over collected map keys).
	Kills []ast.Expr
	// NoMutation suppresses the conservative rule that a call with a
	// tainted input may store that input into its receiver or into any
	// pointer-typed argument. Sources and sanitizers set it.
	NoMutation bool
}

// Analysis configures one engine run over a function body.
type Analysis struct {
	Info *types.Info
	Fset *token.FileSet

	// Call classifies one call, given the taints of its receiver (zero
	// for non-method calls) and arguments. Returning ok=false selects
	// the default: propagate input taints to the results and apply the
	// mutation rule.
	Call func(call *ast.CallExpr, recv Taint, args []Taint) (Effect, bool)

	// TaintMapRange taints the key/value variables of a range over a
	// map, which is the engine-level model of Go's randomized map
	// iteration order.
	TaintMapRange bool
	// TaintSelect taints variables bound by the comm clauses of a
	// select with more than one case — the scheduler picks the winner.
	TaintSelect bool

	// Seed pre-taints objects (parameters, the receiver) before the
	// walk; summary computation uses it to detect param-to-result flow.
	Seed map[*types.Var]Taint
}

// Return is the taint observed at one return statement of the analyzed
// function (literals nested inside it keep their own returns).
type Return struct {
	Pos token.Pos
	// Taints has one entry per result when the arity is derivable (a
	// naked return over named results, or a tuple-call return with a
	// per-result Effect); otherwise one entry per written expression.
	Taints []Taint
}

// Result is the converged outcome of one engine run.
type Result struct {
	// Expr records the taint of every expression at its occurrence, in
	// the final (converged) pass. Analyzers look up sink arguments here.
	Expr map[ast.Expr]Taint
	// Objects is the final taint state of every variable.
	Objects map[types.Object]Taint
	// Returns lists the taints flowing out of the function's own return
	// statements.
	Returns []Return
}

// maxLoopPasses bounds the fixpoint iteration of loop bodies. Two
// passes propagate any single loop-carried def-use chain; the outer
// whole-body iteration in Run composes longer chains.
const maxLoopPasses = 2

// maxBodyPasses bounds the whole-body fixpoint (sanitizer kills make
// the transfer non-monotone, so we cap instead of testing convergence
// alone).
const maxBodyPasses = 4

// Run interprets body under a and returns the converged result. ft is
// the function's type (for named results); it may be nil for synthetic
// bodies.
func Run(ft *ast.FuncType, body *ast.BlockStmt, a *Analysis) *Result {
	e := &engine{a: a, state: make(map[types.Object]Taint)}
	seed := func() {
		for v, t := range a.Seed {
			e.state[v] = t
		}
	}
	seed()
	for i := 0; i < maxBodyPasses; i++ {
		e.changed = false
		e.stmt(body)
		seed() // seeds are sticky: a summary run must not lose them
		if !e.changed {
			break
		}
	}
	// Final recording pass over the converged state.
	e.record = true
	e.expr = make(map[ast.Expr]Taint)
	e.calls = make(map[*ast.CallExpr][]Taint)
	e.returns = nil
	e.curFT = ft
	e.stmt(body)
	return &Result{Expr: e.expr, Objects: e.state, Returns: e.returns}
}

// engine is the mutable interpreter state.
type engine struct {
	a       *Analysis
	state   map[types.Object]Taint
	expr    map[ast.Expr]Taint        // recording pass only
	calls   map[*ast.CallExpr][]Taint // per-result call taints, recording pass
	returns []Return
	litRets []Taint // join of return taints per open literal frame
	curFT   *ast.FuncType
	record  bool
	changed bool
}

// setObj strongly updates an object's taint (assignment kills).
func (e *engine) setObj(o types.Object, t Taint) {
	if o == nil {
		return
	}
	if old, ok := e.state[o]; !ok && !t.Tainted() {
		return
	} else if old == t {
		return
	}
	e.state[o] = t
	e.changed = true
}

// joinObj weakly updates an object's taint (container/field stores).
func (e *engine) joinObj(o types.Object, t Taint) {
	if o == nil || !t.Tainted() {
		return
	}
	e.setObj(o, Join(e.state[o], t))
}

func (e *engine) taintOf(o types.Object) Taint {
	if o == nil {
		return Taint{}
	}
	return e.state[o]
}

// copyState snapshots the variable state for branch analysis.
func (e *engine) copyState() map[types.Object]Taint {
	out := make(map[types.Object]Taint, len(e.state))
	for k, v := range e.state {
		out[k] = v
	}
	return out
}

// mergeState joins other into the live state.
func (e *engine) mergeState(other map[types.Object]Taint) {
	for o, t := range other {
		e.joinObj(o, t)
		if !t.Tainted() {
			if _, ok := e.state[o]; !ok {
				e.state[o] = t
			}
		}
	}
}

func (e *engine) shortPos(pos token.Pos) string {
	p := e.a.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// ---- statements ----

func (e *engine) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			e.stmt(st)
		}
	case *ast.ExprStmt:
		e.eval(s.X)
	case *ast.AssignStmt:
		e.assignStmt(s)
	case *ast.IncDecStmt:
		e.store(s.X, e.eval(s.X), false)
	case *ast.DeclStmt:
		e.declStmt(s)
	case *ast.ReturnStmt:
		e.returnStmt(s)
	case *ast.IfStmt:
		e.stmt(s.Init)
		e.eval(s.Cond)
		pre := e.copyState()
		e.stmt(s.Body)
		then := e.state
		e.state = pre
		e.stmt(s.Else) // nil-safe: no-op keeps the fallthrough state
		e.mergeState(then)
	case *ast.ForStmt:
		e.stmt(s.Init)
		pre := e.copyState()
		for i := 0; i < maxLoopPasses; i++ {
			e.eval(s.Cond)
			e.stmt(s.Body)
			e.stmt(s.Post)
		}
		e.mergeState(pre)
	case *ast.RangeStmt:
		e.rangeStmt(s)
	case *ast.SwitchStmt:
		e.stmt(s.Init)
		e.eval(s.Tag)
		e.branches(len(s.Body.List), func(i int) {
			cc := s.Body.List[i].(*ast.CaseClause)
			for _, x := range cc.List {
				e.eval(x)
			}
			for _, st := range cc.Body {
				e.stmt(st)
			}
		})
	case *ast.TypeSwitchStmt:
		e.typeSwitchStmt(s)
	case *ast.SelectStmt:
		e.selectStmt(s)
	case *ast.SendStmt:
		// The channel carries whatever flows into it.
		e.store(s.Chan, e.eval(s.Value), false)
	case *ast.GoStmt:
		e.eval(s.Call)
	case *ast.DeferStmt:
		e.eval(s.Call)
	case *ast.LabeledStmt:
		e.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// break/continue/goto: the structural join already
		// over-approximates early exits.
	}
}

// branches analyzes n alternatives each from a copy of the incoming
// state and joins all outcomes (including the fall-through state, for
// constructs that may execute no alternative).
func (e *engine) branches(n int, fn func(i int)) {
	pre := e.copyState()
	for i := 0; i < n; i++ {
		saved := e.state
		e.state = copyMap(pre)
		fn(i)
		out := e.state
		e.state = saved
		e.mergeState(out)
	}
}

func copyMap(m map[types.Object]Taint) map[types.Object]Taint {
	out := make(map[types.Object]Taint, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (e *engine) assignStmt(s *ast.AssignStmt) {
	strong := true
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
	default:
		// x += y joins instead of killing.
		for i, lhs := range s.Lhs {
			t := Join(e.eval(lhs), e.eval(s.Rhs[i]))
			e.store(lhs, t, false)
		}
		return
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple assignment: prefer per-result call taints when known.
		t := e.eval(s.Rhs[0])
		per := e.perResult(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			ti := t
			if per != nil {
				ti = per[i]
			}
			e.store(lhs, ti, strong)
		}
		return
	}
	for i, lhs := range s.Lhs {
		e.store(lhs, e.eval(s.Rhs[i]), strong)
	}
}

// perResult returns the per-result taint vector of rhs when it is a
// call with a per-result Effect of matching arity.
func (e *engine) perResult(rhs ast.Expr, want int) []Taint {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || e.calls == nil {
		return nil
	}
	if per := e.calls[call]; len(per) == want {
		return per
	}
	return nil
}

func (e *engine) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var t Taint
			switch {
			case len(vs.Values) == len(vs.Names):
				t = e.eval(vs.Values[i])
			case len(vs.Values) == 1:
				t = e.eval(vs.Values[0])
			}
			e.setObj(e.a.Info.Defs[name], t)
		}
	}
}

func (e *engine) returnStmt(s *ast.ReturnStmt) {
	var ts []Taint
	switch {
	case len(s.Results) == 0:
		// Naked return: read the named results of the current frame.
		ts = e.namedResultTaints()
	case len(s.Results) == 1:
		t := e.eval(s.Results[0])
		if per := e.perResultAny(s.Results[0]); per != nil {
			ts = per
		} else {
			ts = []Taint{t}
		}
	default:
		for _, r := range s.Results {
			ts = append(ts, e.eval(r))
		}
	}
	if n := len(e.litRets); n > 0 {
		e.litRets[n-1] = Join(e.litRets[n-1], JoinAll(ts))
		return
	}
	if e.record {
		e.returns = append(e.returns, Return{Pos: s.Pos(), Taints: ts})
	}
}

func (e *engine) perResultAny(rhs ast.Expr) []Taint {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || e.calls == nil {
		return nil
	}
	if per := e.calls[call]; len(per) > 1 {
		return per
	}
	return nil
}

// namedResultTaints reads the current function frame's named results.
// Inside a literal the literal's own type wins; Run's ft covers the
// outermost frame.
func (e *engine) namedResultTaints() []Taint {
	ft := e.curFT
	if ft == nil || ft.Results == nil {
		return nil
	}
	var ts []Taint
	for _, f := range ft.Results.List {
		for _, name := range f.Names {
			ts = append(ts, e.taintOf(e.a.Info.Defs[name]))
		}
	}
	return ts
}

func (e *engine) rangeStmt(s *ast.RangeStmt) {
	tx := e.eval(s.X)
	src := tx
	if e.a.TaintMapRange && isMapType(e.a.Info, s.X) {
		src = Join(src, Taint{Desc: "map iteration order (" + e.shortPos(s.Range) + ")"})
	}
	pre := e.copyState()
	for i := 0; i < maxLoopPasses; i++ {
		if s.Key != nil {
			e.store(s.Key, src, true)
		}
		if s.Value != nil {
			e.store(s.Value, src, true)
		}
		e.stmt(s.Body)
	}
	e.mergeState(pre)
}

func (e *engine) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	e.stmt(s.Init)
	// The guard is either `x.(type)` or `v := x.(type)`.
	var tx Taint
	switch g := s.Assign.(type) {
	case *ast.ExprStmt:
		tx = e.eval(g.X)
	case *ast.AssignStmt:
		tx = e.eval(g.Rhs[0])
	}
	e.branches(len(s.Body.List), func(i int) {
		cc := s.Body.List[i].(*ast.CaseClause)
		// Each clause binds its own implicit object for v.
		if obj := e.a.Info.Implicits[cc]; obj != nil {
			e.setObj(obj, tx)
		}
		for _, st := range cc.Body {
			e.stmt(st)
		}
	})
}

func (e *engine) selectStmt(s *ast.SelectStmt) {
	multi := len(s.Body.List) > 1
	e.branches(len(s.Body.List), func(i int) {
		cc := s.Body.List[i].(*ast.CommClause)
		if cc.Comm != nil {
			if multi && e.a.TaintSelect {
				t := Taint{Desc: "select completion order (" + e.shortPos(s.Select) + ")"}
				if as, ok := cc.Comm.(*ast.AssignStmt); ok {
					e.eval(as.Rhs[0])
					for _, lhs := range as.Lhs {
						e.store(lhs, t, true)
					}
				} else {
					e.stmt(cc.Comm)
				}
			} else {
				e.stmt(cc.Comm)
			}
		}
		for _, st := range cc.Body {
			e.stmt(st)
		}
	})
}

// store writes taint t to the lvalue lhs. Plain variables take a strong
// update (reassignment kills); element, field, and indirect stores join
// into the base object. A store into a map element contributes only the
// value's taint — map contents are key-addressed, so insertion order
// (a tainted loop key) does not make the map order-dependent — while a
// store into a slice joins the index too, since slice contents are
// position-addressed.
func (e *engine) store(lhs ast.Expr, t Taint, strong bool) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := e.a.Info.Defs[x]
		if obj == nil {
			obj = e.a.Info.Uses[x]
		}
		if strong {
			e.setObj(obj, t)
		} else {
			e.joinObj(obj, t)
		}
	case *ast.ParenExpr:
		e.store(x.X, t, strong)
	case *ast.StarExpr:
		e.eval(x.X)
		e.store(x.X, t, false)
	case *ast.SelectorExpr:
		e.eval(x.X)
		e.store(x.X, t, false)
	case *ast.IndexExpr:
		ti := e.eval(x.Index)
		e.eval(x.X)
		if isMapType(e.a.Info, x.X) {
			e.store(x.X, t, false)
		} else {
			e.store(x.X, Join(t, ti), false)
		}
	}
}

// ---- expressions ----

// eval computes the taint of x in the current state, recording it
// during the final pass.
func (e *engine) eval(x ast.Expr) (t Taint) {
	if x == nil {
		return Taint{}
	}
	if e.record {
		defer func() { e.expr[x] = t }()
	}
	switch x := x.(type) {
	case *ast.Ident:
		obj := e.a.Info.Uses[x]
		if obj == nil {
			obj = e.a.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return e.taintOf(v)
		}
		return Taint{}
	case *ast.BasicLit:
		return Taint{}
	case *ast.ParenExpr:
		return e.eval(x.X)
	case *ast.SelectorExpr:
		// pkg.Var reads the package-level variable; x.f reads through x.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := e.a.Info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := e.a.Info.Uses[x.Sel].(*types.Var); ok {
					return e.taintOf(v)
				}
				return Taint{}
			}
		}
		return e.eval(x.X)
	case *ast.IndexExpr:
		// Instantiated generic function values carry no taint.
		if _, ok := e.a.Info.Types[x.X]; ok {
			if _, isFn := e.a.Info.Types[x.X].Type.(*types.Signature); isFn {
				return e.eval(x.X)
			}
		}
		return Join(e.eval(x.X), e.eval(x.Index))
	case *ast.IndexListExpr:
		return e.eval(x.X)
	case *ast.SliceExpr:
		t := e.eval(x.X)
		t = Join(t, e.eval(x.Low))
		t = Join(t, e.eval(x.High))
		return Join(t, e.eval(x.Max))
	case *ast.StarExpr:
		return e.eval(x.X)
	case *ast.UnaryExpr:
		return e.eval(x.X)
	case *ast.BinaryExpr:
		return Join(e.eval(x.X), e.eval(x.Y))
	case *ast.KeyValueExpr:
		return e.eval(x.Value)
	case *ast.CompositeLit:
		var t Taint
		for _, elt := range x.Elts {
			t = Join(t, e.eval(elt))
		}
		return t
	case *ast.TypeAssertExpr:
		return e.eval(x.X)
	case *ast.FuncLit:
		return e.funcLit(x)
	case *ast.CallExpr:
		return e.call(x)
	case *ast.Ellipsis, *ast.ArrayType, *ast.StructType, *ast.FuncType,
		*ast.InterfaceType, *ast.MapType, *ast.ChanType, *ast.BadExpr:
		return Taint{}
	}
	return Taint{}
}

// funcLit analyzes a literal inline, sharing the enclosing state (its
// captures read and write the same objects). The literal's value
// carries the join of its own return taints, so a closure handed to a
// higher-order function (exec.Map) propagates what it would return.
func (e *engine) funcLit(lit *ast.FuncLit) Taint {
	e.litRets = append(e.litRets, Taint{})
	savedFT := e.curFT
	e.curFT = lit.Type
	e.stmt(lit.Body)
	e.curFT = savedFT
	t := e.litRets[len(e.litRets)-1]
	e.litRets = e.litRets[:len(e.litRets)-1]
	return t
}

// call interprets one call expression.
func (e *engine) call(call *ast.CallExpr) Taint {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(e.a.Info, ix.X) {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	// Builtins and conversions first.
	if id, ok := fun.(*ast.Ident); ok {
		switch obj := identObj(e.a.Info, id).(type) {
		case *types.Builtin:
			return e.builtin(obj.Name(), call)
		case *types.TypeName:
			var t Taint
			for _, a := range call.Args {
				t = Join(t, e.eval(a))
			}
			return t
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, isType := identObj(e.a.Info, sel.Sel).(*types.TypeName); isType {
			var t Taint
			for _, a := range call.Args {
				t = Join(t, e.eval(a))
			}
			return t
		}
	}

	// Receiver and argument taints.
	var recv Taint
	var recvExpr ast.Expr
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, isIdent := sel.X.(*ast.Ident); !isIdent || !isPkgName(e.a.Info, id) {
			recvExpr = sel.X
			recv = e.eval(sel.X)
		}
	}
	args := make([]Taint, len(call.Args))
	for i, a := range call.Args {
		args[i] = e.eval(a)
	}
	// A dynamic callee (function-typed value) contributes its own taint.
	var funTaint Taint
	if Callee(e.a.Info, call) == nil && recvExpr == nil {
		funTaint = e.eval(fun)
	}

	eff, ok := Effect{}, false
	if e.a.Call != nil {
		eff, ok = e.a.Call(call, recv, args)
	}
	if !ok {
		eff = Effect{Propagate: true}
	}

	// Sanitizers: kill the named argument objects.
	killed := make(map[types.Object]bool)
	for _, k := range eff.Kills {
		if o := BaseObj(e.a.Info, k); o != nil {
			e.setObj(o, Taint{})
			killed[o] = true
		}
	}

	inputs := Join(Join(recv, funTaint), JoinAll(args))
	result := eff.Result
	if eff.Propagate {
		result = Join(result, inputs)
	}

	// Mutation rule: a call whose body we cannot fully trust may store
	// a tainted input into its receiver or any pointer-typed argument.
	if inputs.Tainted() && !eff.NoMutation {
		if recvExpr != nil {
			if o := BaseObj(e.a.Info, recvExpr); o != nil && !killed[o] {
				e.joinObj(o, inputs)
			}
		}
		for _, a := range call.Args {
			if !isPointerish(e.a.Info, a) {
				continue
			}
			if o := BaseObj(e.a.Info, a); o != nil && !killed[o] {
				e.joinObj(o, inputs)
			}
		}
	}

	if e.record {
		arity := resultArity(e.a.Info, call)
		per := eff.Results
		if len(per) != arity {
			per = nil
		}
		if per == nil && arity > 1 {
			per = make([]Taint, arity)
			for i := range per {
				per[i] = result
			}
		}
		if per != nil {
			joined := make([]Taint, len(per))
			for i, p := range per {
				joined[i] = Join(p, eff.Result)
				if eff.Propagate {
					joined[i] = Join(joined[i], inputs)
				}
			}
			e.calls[call] = joined
			return JoinAll(joined)
		}
	}
	return Join(result, JoinAll(eff.Results))
}

func (e *engine) builtin(name string, call *ast.CallExpr) Taint {
	var join Taint
	for _, a := range call.Args {
		join = Join(join, e.eval(a))
	}
	switch name {
	case "len", "cap", "make", "new", "delete", "close", "recover", "print", "println", "clear":
		// len(m) and friends are order-independent observations; the
		// allocators return fresh clean values.
		return Taint{}
	case "copy":
		// copy(dst, src) stores src's taint into dst.
		if len(call.Args) == 2 {
			if o := BaseObj(e.a.Info, call.Args[0]); o != nil {
				e.joinObj(o, e.expr0(call.Args[1]))
			}
		}
		return Taint{}
	case "append":
		return join
	default: // min, max, complex, real, imag, panic, ...
		return join
	}
}

// expr0 re-evaluates without recording (helper for builtin copy).
func (e *engine) expr0(x ast.Expr) Taint {
	saved := e.record
	e.record = false
	t := e.eval(x)
	e.record = saved
	return t
}

// ---- type/object helpers ----

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

func isPkgName(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.PkgName)
	return ok
}

func isFuncExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

func isMapType(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isPointerish reports whether passing x can hand the callee a handle
// to the caller's memory (pointer, or explicit address-of).
func isPointerish(info *types.Info, x ast.Expr) bool {
	if u, ok := ast.Unparen(x).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return true
	}
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isPtr := tv.Type.Underlying().(*types.Pointer)
	return isPtr
}

func resultArity(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return 1
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		return tuple.Len()
	}
	return 1
}

// BaseObj unwraps an lvalue/handle chain (x, x.f, x[i], *x, &x and
// combinations) to the variable object at its base, or nil.
func BaseObj(info *types.Info, x ast.Expr) types.Object {
	for {
		switch v := x.(type) {
		case *ast.ParenExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			x = v.X
		case *ast.SliceExpr:
			x = v.X
		case *ast.SelectorExpr:
			if id, ok := v.X.(*ast.Ident); ok && isPkgName(info, id) {
				return info.Uses[v.Sel]
			}
			x = v.X
		case *ast.Ident:
			if obj, ok := identObj(info, v).(*types.Var); ok {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}

// Callee resolves a call's static target — a package-level function or
// a method with a concrete declaration — or nil for builtins,
// conversions, function-typed values, and interface methods whose
// concrete target is unknown. Generic instantiations are unwrapped.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(info, ix.X) {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := identObj(info, f).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := identObj(info, f.Sel).(*types.Func)
		return fn
	}
	return nil
}

// FuncKey renders a stable cross-package key for fn:
// "pkgpath.Name" for functions and "pkgpath.Recv.Name" for methods
// (pointer receivers dereferenced), the form the value analyzers use
// to index their built-in contract tables.
func FuncKey(fn *types.Func) string {
	path := fn.Pkg().Path()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return path + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return path + "." + fn.Name()
}
