package dataflow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math"
	"testing"

	"repro/internal/lint/dataflow"
)

// analyzeIv type-checks src (a complete file for package p), runs the
// interval engine over the function F with a test hook (idx() returns
// [-1, +inf), pure() has no effects), and returns the result plus the
// pieces needed to find sink() call sites.
func analyzeIv(t *testing.T, src string) (*dataflow.IntervalResult, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Name.Name == "F" {
			fd = f
		}
	}
	if fd == nil {
		t.Fatal("no function F in source")
	}
	a := &dataflow.IntervalAnalysis{
		Info: info,
		Fset: fset,
		Call: func(call *ast.CallExpr, recv dataflow.Interval, args []dataflow.Interval) (dataflow.IntervalEffect, bool) {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return dataflow.IntervalEffect{}, false
			}
			switch id.Name {
			case "idx":
				return dataflow.IntervalEffect{
					Results:    []dataflow.Interval{dataflow.AtLeast(-1)},
					NoMutation: true,
				}, true
			case "sink", "pure":
				return dataflow.IntervalEffect{NoMutation: true}, true
			}
			return dataflow.IntervalEffect{}, false
		},
	}
	return dataflow.RunIntervals(fd.Type, fd.Body, a), file, info
}

const ivPrelude = `package p

func sink(v int)     {}
func sinkf(v float64) {}
func idx() int       { return -1 }
func pure()          {}
func cond() bool     { return false }
`

// sinkArgs returns, in source order, the recorded interval of the
// first argument of every sink/sinkf call in the file.
func sinkArgs(res *dataflow.IntervalResult, file *ast.File) []dataflow.Interval {
	var out []dataflow.Interval
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "sink" || id.Name == "sinkf") {
			iv, ok := res.Expr[call.Args[0]]
			if !ok {
				iv = dataflow.TopInterval()
			}
			out = append(out, iv)
		}
		return true
	})
	return out
}

func wantIv(t *testing.T, got dataflow.Interval, lo, hi float64) {
	t.Helper()
	if got.Lo != lo || got.Hi != hi {
		t.Errorf("interval = %v, want [%g, %g]", got, lo, hi)
	}
}

func TestIntervalOps(t *testing.T) {
	inf := math.Inf(1)
	a := dataflow.Interval{2, 5}
	b := dataflow.Interval{-1, 3}
	wantIv(t, a.Add(b), 1, 8)
	wantIv(t, a.Sub(b), -1, 6)
	wantIv(t, a.Mul(b), -5, 15)
	wantIv(t, a.Neg(), -5, -2)
	wantIv(t, a.Join(b), -1, 5)
	if m, ok := a.Meet(b); !ok || m != (dataflow.Interval{2, 3}) {
		t.Errorf("meet = %v, %v", m, ok)
	}
	if _, ok := a.Meet(dataflow.Interval{6, 7}); ok {
		t.Error("disjoint meet should fail")
	}
	// Division excluding zero; containing zero degrades to Top.
	wantIv(t, dataflow.Interval{10, 20}.Div(dataflow.Interval{2, 5}), 2, 10)
	if !(dataflow.Interval{10, 20}).Div(b).IsTop() {
		t.Error("division by zero-containing interval should be Top")
	}
	// Widening jumps grown bounds to infinity.
	wantIv(t, a.Widen(dataflow.Interval{2, 6}), 2, inf)
	wantIv(t, a.Widen(dataflow.Interval{1, 5}), -inf, 5)
	// 0 × inf is 0, not NaN.
	wantIv(t, dataflow.Interval{0, 0}.Mul(dataflow.AtLeast(0)), 0, 0)
	if got := dataflow.AtLeast(0).String(); got != "[0, +inf)" {
		t.Errorf("String() = %q", got)
	}
	if got := (dataflow.Interval{2, 7}).String(); got != "[2, 7]" {
		t.Errorf("String() = %q", got)
	}
}

func TestIntervalConstFoldAndStrongUpdate(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F() {
	x := 2*3 + 1
	sink(x)
	x = -5
	sink(x)
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], 7, 7)
	wantIv(t, got[1], -5, -5)
}

func TestIntervalGuardRefinement(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F(n int) {
	if n < 0 {
		return
	}
	sink(n) // guard clause: n is provably nonnegative here
	if n > 10 {
		sink(n)
	} else {
		sink(n)
	}
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], 0, math.Inf(1))
	wantIv(t, got[1], 11, math.Inf(1))
	wantIv(t, got[2], 0, 10)
}

func TestIntervalBranchJoin(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F() {
	x := 0
	if cond() {
		x = 1
	} else {
		x = 4
	}
	sink(x)
}`)
	wantIv(t, sinkArgs(res, file)[0], 1, 4)
}

func TestIntervalLoopWidening(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F() {
	for i := 0; i < 10; i++ {
		sink(i) // widened head meets the loop condition: [0, 9]
	}
	for j := -3; j < 0; j++ {
		sink(j)
	}
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], 0, 9)
	wantIv(t, got[1], -3, -1)
}

func TestIntervalRangeIndex(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F(xs []int) {
	for i := range xs {
		sink(i)
	}
	for k := range 4 {
		sink(k)
	}
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], 0, math.Inf(1))
	wantIv(t, got[1], 0, 3)
}

func TestIntervalCallSummaryAndNeqShave(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F() {
	i := idx()
	sink(i) // hook summary: [-1, +inf)
	if i != -1 {
		sink(i) // the disequality shaves the -1 endpoint
	}
	if i >= 0 {
		sink(i)
	}
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], -1, math.Inf(1))
	wantIv(t, got[1], 0, math.Inf(1))
	wantIv(t, got[2], 0, math.Inf(1))
}

func TestIntervalPoisonAndClosure(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F() {
	x := 1
	p := &x
	_ = p
	sink(x) // address taken: any alias may rewrite x

	y := 2
	f := func() { y = -9 }
	_ = f
	sink(y) // closure may run later: y is unknown
}`)
	got := sinkArgs(res, file)
	if !got[0].IsTop() {
		t.Errorf("address-taken x = %v, want Top", got[0])
	}
	if !got[1].IsTop() {
		t.Errorf("closure-written y = %v, want Top", got[1])
	}
}

func TestIntervalSwitchRefinement(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F(n int) {
	switch n {
	case 1, 2:
		sink(n)
	}
	switch {
	case n > 5:
		sink(n)
	}
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], 1, 2)
	wantIv(t, got[1], 6, math.Inf(1))
}

func TestIntervalSeedAndReturns(t *testing.T) {
	fset := token.NewFileSet()
	src := ivPrelude + `
func F(w float64) float64 {
	if w < 0 {
		w = 0
	}
	return w
}`
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Name.Name == "F" {
			fd = f
		}
	}
	param := info.Defs[fd.Type.Params.List[0].Names[0]].(*types.Var)
	res := dataflow.RunIntervals(fd.Type, fd.Body, &dataflow.IntervalAnalysis{
		Info: info,
		Fset: fset,
		Seed: map[*types.Var]dataflow.Interval{param: dataflow.AtMost(100)},
	})
	if len(res.Returns) != 1 || len(res.Returns[0].Results) != 1 {
		t.Fatalf("returns = %+v", res.Returns)
	}
	wantIv(t, res.Returns[0].Results[0], 0, 100)
}

func TestIntervalCompoundAndDivision(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F(n int) {
	x := 10
	x += 2
	sink(x)
	if n >= 2 && n <= 5 {
		sink(100 / n)
	}
	y := 3
	y *= -2
	sink(y)
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], 12, 12)
	wantIv(t, got[1], 20, 50)
	wantIv(t, got[2], -6, -6)
}

func TestIntervalMinMaxBuiltins(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F(n int) {
	sink(max(n, 0))
	sink(min(n, 7))
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], 0, math.Inf(1))
	wantIv(t, got[1], math.Inf(-1), 7)
}

func TestIntervalConversions(t *testing.T) {
	res, file, _ := analyzeIv(t, ivPrelude+`
func F(n int) {
	x := 5
	sink(int(int64(x)))
	if n >= 0 {
		sinkf(float64(n))
	}
	neg := -1
	sink(int(uint32(neg))) // wraps: must degrade to Top
}`)
	got := sinkArgs(res, file)
	wantIv(t, got[0], 5, 5)
	wantIv(t, got[1], 0, math.Inf(1))
	if !got[2].IsTop() {
		t.Errorf("wrapping conversion = %v, want Top", got[2])
	}
}
