// Numeric interval abstract interpretation — the third engine in this
// package, beside the taint engine (dataflow.go) and the protocol
// engine (states.go). It interprets one function body over a min/max
// lattice: every numeric variable and expression carries an Interval
// [Lo, Hi] of the values it may take, with ±Inf as the unbounded ends.
// The engine is flow-sensitive with strong updates (reassignment
// replaces a variable's interval), joins at branch merges, widening at
// loop heads (a bound that grew between passes goes straight to its
// infinity, so loops converge in one widening step), and
// branch-condition refinement: inside `if x < k` the then-arm meets x
// with (-inf, k) and the else-arm with [k, +inf), including through
// &&, ||, !, and constant switch cases.
//
// Constants are folded exactly through go/constant (Info.Types[x].Value
// covers arbitrarily nested constant expressions), and three hooks let
// analyzers re-interpret values: Call supplies per-call result
// intervals (where callgraph-memoized function summaries plug in, the
// way detflow's taint summaries do), Const re-homes typed constants
// (lookahead places sim.Time constants in offset-from-now space), and
// Convert does the same for non-constant conversions.
//
// Soundness posture: an interval is an over-approximation of the
// runtime values reaching a program point, under the standard
// assume/guarantee reading of seeded parameter ranges. Anything the
// engine cannot see — address-taken variables, values written by
// closures that may run later, stores through pointers passed to
// unknown callees — degrades to Top, never to a narrower guess.
package dataflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strconv"
)

// Interval is a closed numeric range with ±Inf as open ends. The zero
// Interval is the point 0; use TopInterval for "unknown".
type Interval struct {
	Lo, Hi float64
}

// TopInterval is the unbounded interval (-inf, +inf).
func TopInterval() Interval {
	return Interval{math.Inf(-1), math.Inf(1)}
}

// PointInterval is the single-value interval [v, v].
func PointInterval(v float64) Interval { return Interval{v, v} }

// AtLeast is [lo, +inf).
func AtLeast(lo float64) Interval { return Interval{lo, math.Inf(1)} }

// AtMost is (-inf, hi].
func AtMost(hi float64) Interval { return Interval{math.Inf(-1), hi} }

// IsTop reports whether iv carries no information.
func (iv Interval) IsTop() bool {
	return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

// Contains reports whether v lies inside iv.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// Within reports iv ⊆ other.
func (iv Interval) Within(other Interval) bool {
	return other.Lo <= iv.Lo && iv.Hi <= other.Hi
}

// Join is the lattice join (interval hull).
func (iv Interval) Join(other Interval) Interval {
	return Interval{math.Min(iv.Lo, other.Lo), math.Max(iv.Hi, other.Hi)}
}

// Meet intersects two intervals; ok is false when they are disjoint.
func (iv Interval) Meet(other Interval) (Interval, bool) {
	m := Interval{math.Max(iv.Lo, other.Lo), math.Min(iv.Hi, other.Hi)}
	if m.Lo > m.Hi {
		return Interval{}, false
	}
	return m, true
}

// Widen jumps any bound of next that moved past iv to its infinity —
// the loop-head widening operator that makes fixpoints converge in one
// step per direction.
func (iv Interval) Widen(next Interval) Interval {
	if next.Lo < iv.Lo {
		next.Lo = math.Inf(-1)
	}
	if next.Hi > iv.Hi {
		next.Hi = math.Inf(1)
	}
	return next
}

// Neg is -iv.
func (iv Interval) Neg() Interval { return Interval{-iv.Hi, -iv.Lo} }

// Add is iv + other (interval sum; inf absorbs).
func (iv Interval) Add(other Interval) Interval {
	return Interval{addBound(iv.Lo, other.Lo, -1), addBound(iv.Hi, other.Hi, 1)}
}

// Sub is iv - other.
func (iv Interval) Sub(other Interval) Interval { return iv.Add(other.Neg()) }

// addBound sums two bounds; an inf−inf clash resolves toward the
// conservative side (sign = -1 for lower bounds, +1 for upper).
func addBound(a, b float64, sign int) float64 {
	s := a + b
	if math.IsNaN(s) {
		return math.Inf(sign)
	}
	return s
}

// Mul is iv × other.
func (iv Interval) Mul(other Interval) Interval {
	if iv.IsTop() || other.IsTop() {
		return TopInterval()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, a := range [2]float64{iv.Lo, iv.Hi} {
		for _, b := range [2]float64{other.Lo, other.Hi} {
			p := a * b
			if math.IsNaN(p) { // 0 × ±inf: the limit is 0
				p = 0
			}
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
	}
	return Interval{lo, hi}
}

// Div is iv ÷ other. A divisor interval containing zero yields Top:
// the division either panics (integers) or produces ±Inf (floats),
// and the range checks report that hazard separately.
func (iv Interval) Div(other Interval) Interval {
	if iv.IsTop() || other.IsTop() || other.Contains(0) {
		return TopInterval()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, a := range [2]float64{iv.Lo, iv.Hi} {
		for _, b := range [2]float64{other.Lo, other.Hi} {
			var q float64
			switch {
			case math.IsInf(a, 0) && math.IsInf(b, 0):
				q = math.Inf(1)
				if (a < 0) != (b < 0) {
					q = math.Inf(-1)
				}
			case math.IsInf(b, 0):
				q = 0
			default:
				q = a / b
			}
			lo = math.Min(lo, q)
			hi = math.Max(hi, q)
		}
	}
	return Interval{lo, hi}
}

// Rem approximates iv % other for the integer case: when the dividend
// is provably nonnegative and the divisor excludes zero the result is
// [0, max|other|); everything else is Top.
func (iv Interval) Rem(other Interval) Interval {
	if other.Contains(0) || iv.Lo < 0 {
		return TopInterval()
	}
	m := math.Max(math.Abs(other.Lo), math.Abs(other.Hi))
	if math.IsInf(m, 1) {
		return Interval{0, math.Inf(1)}
	}
	return Interval{0, m - 1}
}

// String renders the interval with round brackets on unbounded ends:
// "[0, +inf)", "(-inf, 45000]", "[2, 7]".
func (iv Interval) String() string {
	open, close := "[", "]"
	lo, hi := formatBound(iv.Lo), formatBound(iv.Hi)
	if math.IsInf(iv.Lo, -1) {
		open = "("
	}
	if math.IsInf(iv.Hi, 1) {
		close = ")"
	}
	return open + lo + ", " + hi + close
}

func formatBound(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "+inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// IntervalEffect is the transfer function of one call under the
// interval interpretation.
type IntervalEffect struct {
	// Results gives per-result intervals; nil (or wrong arity) means
	// every result is Top.
	Results []Interval
	// NoMutation suppresses the conservative rule that an unknown call
	// may scribble over any pointer-typed argument or pointer receiver.
	NoMutation bool
}

// IntervalAnalysis configures one interval-engine run.
type IntervalAnalysis struct {
	Info *types.Info
	Fset *token.FileSet

	// Call classifies one call given the intervals of its receiver and
	// arguments. ok=false selects the default: Top results plus the
	// pointer-argument mutation rule.
	Call func(call *ast.CallExpr, recv Interval, args []Interval) (IntervalEffect, bool)

	// Const, when non-nil, may re-home a folded constant expression
	// (lookahead maps sim.Time constants into offset-from-now space).
	// v is the exactly folded value.
	Const func(x ast.Expr, v Interval) (Interval, bool)

	// Convert, when non-nil, may re-interpret a non-constant conversion
	// T(x); v is the operand's interval.
	Convert func(call *ast.CallExpr, v Interval) (Interval, bool)

	// Seed pre-assigns intervals to parameters or the receiver —
	// declared //lint:range contracts, or a summary probe.
	Seed map[*types.Var]Interval
}

// IntervalReturn is the per-result interval vector observed at one
// return site of the analyzed function (function literals keep their
// returns to themselves).
type IntervalReturn struct {
	Pos     token.Pos
	Results []Interval
}

// IntervalResult is the outcome of one interval-engine run.
type IntervalResult struct {
	// Expr records, for every expression occurrence, the join of the
	// intervals it evaluated to across all passes — what analyzers look
	// up for sink arguments.
	Expr map[ast.Expr]Interval
	// Objects is the final interval state of tracked variables.
	Objects map[types.Object]Interval
	// Returns lists the function's own return sites in source order.
	Returns []IntervalReturn
}

// maxIntervalLoopPasses bounds the loop-head fixpoint: pass 1 observes
// growth, pass 2 runs on the widened head, pass 3 confirms
// convergence (widening to ±inf makes that certain).
const maxIntervalLoopPasses = 3

// RunIntervals interprets body under a and returns the recorded
// result. ft is the function's type (for named results and naked
// returns); it may be nil for synthetic bodies.
func RunIntervals(ft *ast.FuncType, body *ast.BlockStmt, a *IntervalAnalysis) *IntervalResult {
	e := &ivEngine{
		a:        a,
		state:    make(map[types.Object]Interval),
		expr:     make(map[ast.Expr]Interval),
		calls:    make(map[*ast.CallExpr][]Interval),
		retSites: make(map[*ast.ReturnStmt]*IntervalReturn),
		poisoned: make(map[types.Object]bool),
		curFT:    ft,
	}
	// Named results are zero-initialized by the language.
	if ft != nil && ft.Results != nil {
		for _, f := range ft.Results.List {
			for _, name := range f.Names {
				if obj := a.Info.Defs[name]; obj != nil && isNumericObj(obj) {
					e.state[obj] = PointInterval(0)
				}
			}
		}
	}
	for v, iv := range a.Seed {
		e.state[v] = iv
	}
	e.stmt(body)
	res := &IntervalResult{Expr: e.expr, Objects: e.state}
	for _, r := range e.retSites {
		res.Returns = append(res.Returns, *r)
	}
	sort.Slice(res.Returns, func(i, j int) bool { return res.Returns[i].Pos < res.Returns[j].Pos })
	return res
}

// ivEngine is the mutable interpreter state.
type ivEngine struct {
	a        *IntervalAnalysis
	state    map[types.Object]Interval // absent = Top
	expr     map[ast.Expr]Interval
	calls    map[*ast.CallExpr][]Interval
	retSites map[*ast.ReturnStmt]*IntervalReturn
	poisoned map[types.Object]bool // address-taken: permanently Top
	writes   map[types.Object]bool // non-nil inside a function literal
	curFT    *ast.FuncType
	litDepth int
	quiet    bool // suppress expr recording (refinement re-evaluation)
}

func (e *ivEngine) setObj(o types.Object, iv Interval) {
	if o == nil || e.poisoned[o] || !isNumericObj(o) {
		return
	}
	if e.writes != nil {
		e.writes[o] = true
	}
	if iv.IsTop() {
		delete(e.state, o)
		return
	}
	e.state[o] = iv
}

func (e *ivEngine) intervalOf(o types.Object) Interval {
	if o == nil || e.poisoned[o] {
		return TopInterval()
	}
	if iv, ok := e.state[o]; ok {
		return iv
	}
	return TopInterval()
}

// poison marks an address-taken variable permanently unknown: any
// alias may rewrite it at any time.
func (e *ivEngine) poison(o types.Object) {
	if o == nil {
		return
	}
	if e.writes != nil {
		e.writes[o] = true
	}
	e.poisoned[o] = true
	delete(e.state, o)
}

func (e *ivEngine) copyState() map[types.Object]Interval {
	out := make(map[types.Object]Interval, len(e.state))
	for k, v := range e.state {
		out[k] = v
	}
	return out
}

// joinInto joins other into the live state (branch merge: a variable
// bound in only one arm degrades to Top, i.e. leaves the map).
func (e *ivEngine) joinInto(other map[types.Object]Interval) {
	for o := range e.state {
		ov, ok := other[o]
		if !ok {
			delete(e.state, o)
			continue
		}
		e.state[o] = e.state[o].Join(ov)
	}
}

func ivStatesEqual(a, b map[types.Object]Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// ---- statements ----

func (e *ivEngine) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			e.stmt(st)
		}
	case *ast.ExprStmt:
		e.eval(s.X)
	case *ast.AssignStmt:
		e.assignStmt(s)
	case *ast.IncDecStmt:
		one := PointInterval(1)
		v := e.eval(s.X)
		if s.Tok == token.INC {
			v = v.Add(one)
		} else {
			v = v.Sub(one)
		}
		e.store(s.X, v)
	case *ast.DeclStmt:
		e.declStmt(s)
	case *ast.ReturnStmt:
		e.returnStmt(s)
	case *ast.IfStmt:
		e.ifStmt(s)
	case *ast.ForStmt:
		e.forStmt(s)
	case *ast.RangeStmt:
		e.rangeStmt(s)
	case *ast.SwitchStmt:
		e.switchStmt(s)
	case *ast.TypeSwitchStmt:
		e.typeSwitchStmt(s)
	case *ast.SelectStmt:
		e.selectStmt(s)
	case *ast.SendStmt:
		e.eval(s.Chan)
		e.eval(s.Value)
	case *ast.GoStmt:
		e.eval(s.Call)
	case *ast.DeferStmt:
		e.eval(s.Call)
	case *ast.LabeledStmt:
		e.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// The structural joins over-approximate early exits.
	}
}

func (e *ivEngine) ifStmt(s *ast.IfStmt) {
	e.stmt(s.Init)
	e.eval(s.Cond)
	pre := e.copyState()
	e.refine(s.Cond, true)
	e.stmt(s.Body)
	thenState := e.state
	thenExits := terminates(s.Body)
	e.state = pre
	e.refine(s.Cond, false)
	e.stmt(s.Else) // nil-safe no-op keeps the refined fallthrough state
	elseExits := s.Else != nil && terminates(s.Else)
	switch {
	case thenExits && elseExits:
		// Neither arm falls through; whatever state follows is dead.
		// Keep the else state (arbitrary but consistent).
	case thenExits:
		// Only the else/fallthrough state survives — this is what makes
		// `if x < 0 { return err }` refine x to [0, +inf) afterwards.
	case elseExits:
		e.state = thenState
	default:
		e.joinInto(thenState)
	}
}

func (e *ivEngine) forStmt(s *ast.ForStmt) {
	e.stmt(s.Init)
	head := e.copyState()
	for pass := 0; pass < maxIntervalLoopPasses; pass++ {
		e.state = copyIvMap(head)
		e.eval(s.Cond)
		e.refine(s.Cond, true)
		e.stmt(s.Body)
		e.stmt(s.Post)
		next := joinIvStates(head, e.state)
		next = widenIvStates(head, next)
		if ivStatesEqual(next, head) {
			break
		}
		head = next
	}
	// Exit state is the loop-head fixpoint. The ¬cond refinement is
	// deliberately not applied: break statements exit with cond still
	// true, and the head already subsumes the zero-iteration state.
	e.state = copyIvMap(head)
}

func (e *ivEngine) rangeStmt(s *ast.RangeStmt) {
	e.eval(s.X)
	keyIv := e.rangeKeyInterval(s.X)
	head := e.copyState()
	for pass := 0; pass < maxIntervalLoopPasses; pass++ {
		e.state = copyIvMap(head)
		if s.Key != nil {
			e.store(s.Key, keyIv)
		}
		if s.Value != nil {
			e.store(s.Value, TopInterval())
		}
		e.stmt(s.Body)
		next := joinIvStates(head, e.state)
		next = widenIvStates(head, next)
		if ivStatesEqual(next, head) {
			break
		}
		head = next
	}
	e.state = copyIvMap(head)
}

// rangeKeyInterval models the key variable of `range x`: slice,
// array, and string indices are nonnegative; an integer range is
// [0, x-1]; map keys and channel values are unknown.
func (e *ivEngine) rangeKeyInterval(x ast.Expr) Interval {
	tv, ok := e.a.Info.Types[x]
	if !ok || tv.Type == nil {
		return TopInterval()
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
		return AtLeast(0)
	case *types.Basic:
		b := tv.Type.Underlying().(*types.Basic)
		switch {
		case b.Info()&types.IsString != 0:
			return AtLeast(0)
		case b.Info()&types.IsInteger != 0:
			n := e.evalQuiet(x)
			return Interval{0, math.Max(0, n.Hi-1)}
		}
	case *types.Signature:
		return TopInterval() // range-over-func yields whatever it yields
	}
	return TopInterval()
}

func (e *ivEngine) switchStmt(s *ast.SwitchStmt) {
	e.stmt(s.Init)
	e.eval(s.Tag)
	pre := e.copyState()
	var outs []map[types.Object]Interval
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		e.state = copyIvMap(pre)
		e.refineCase(s.Tag, cc)
		for _, x := range cc.List {
			e.eval(x)
			if s.Tag == nil {
				e.refine(x, true) // expressionless switch: cases are conditions
			}
		}
		for _, st := range cc.Body {
			e.stmt(st)
		}
		if !caseTerminates(cc.Body) {
			outs = append(outs, e.state)
		}
	}
	// Join every falling-through clause with the no-match state.
	e.state = copyIvMap(pre)
	for _, out := range outs {
		e.joinInto(out)
	}
}

// refineCase meets a constant-cased switch tag with the hull of the
// clause's case values.
func (e *ivEngine) refineCase(tag ast.Expr, cc *ast.CaseClause) {
	obj := refinableObj(e.a.Info, tag)
	if obj == nil || len(cc.List) == 0 {
		return
	}
	hull := Interval{math.Inf(1), math.Inf(-1)}
	for _, x := range cc.List {
		tv, ok := e.a.Info.Types[x]
		if !ok || tv.Value == nil {
			return
		}
		p, ok := constInterval(tv.Value)
		if !ok {
			return
		}
		hull.Lo = math.Min(hull.Lo, p.Lo)
		hull.Hi = math.Max(hull.Hi, p.Hi)
	}
	if m, ok := e.intervalOf(obj).Meet(hull); ok {
		e.setObj(obj, m)
	}
}

func (e *ivEngine) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	e.stmt(s.Init)
	switch g := s.Assign.(type) {
	case *ast.ExprStmt:
		e.eval(g.X)
	case *ast.AssignStmt:
		e.eval(g.Rhs[0])
	}
	pre := e.copyState()
	var outs []map[types.Object]Interval
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CaseClause)
		e.state = copyIvMap(pre)
		for _, st := range cc.Body {
			e.stmt(st)
		}
		if !caseTerminates(cc.Body) {
			outs = append(outs, e.state)
		}
	}
	e.state = copyIvMap(pre)
	for _, out := range outs {
		e.joinInto(out)
	}
}

func (e *ivEngine) selectStmt(s *ast.SelectStmt) {
	pre := e.copyState()
	var outs []map[types.Object]Interval
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		e.state = copyIvMap(pre)
		e.stmt(cc.Comm)
		for _, st := range cc.Body {
			e.stmt(st)
		}
		if !caseTerminates(cc.Body) {
			outs = append(outs, e.state)
		}
	}
	e.state = copyIvMap(pre)
	for _, out := range outs {
		e.joinInto(out)
	}
}

func (e *ivEngine) assignStmt(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
	default:
		// Compound assignment: the operator is known exactly.
		op, hasOp := compoundOp(s.Tok)
		for i, lhs := range s.Lhs {
			cur := e.eval(lhs)
			rhs := e.eval(s.Rhs[i])
			if hasOp {
				e.store(lhs, e.binop(op, cur, rhs, lhs))
			} else {
				e.store(lhs, TopInterval())
			}
		}
		return
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		e.eval(s.Rhs[0])
		per := e.perResult(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			iv := TopInterval()
			if per != nil {
				iv = per[i]
			}
			e.store(lhs, iv)
		}
		return
	}
	for i, lhs := range s.Lhs {
		e.store(lhs, e.eval(s.Rhs[i]))
	}
}

func compoundOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	}
	return token.ILLEGAL, false
}

func (e *ivEngine) perResult(rhs ast.Expr, want int) []Interval {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if per := e.calls[call]; len(per) == want {
		return per
	}
	return nil
}

func (e *ivEngine) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			e.eval(vs.Values[0])
			per := e.perResult(vs.Values[0], len(vs.Names))
			for i, name := range vs.Names {
				iv := TopInterval()
				if per != nil {
					iv = per[i]
				}
				e.setObj(e.a.Info.Defs[name], iv)
			}
			continue
		}
		for i, name := range vs.Names {
			var iv Interval
			switch {
			case len(vs.Values) == len(vs.Names):
				iv = e.eval(vs.Values[i])
			default:
				iv = PointInterval(0) // var x T is zero-valued
			}
			e.setObj(e.a.Info.Defs[name], iv)
		}
	}
}

func (e *ivEngine) returnStmt(s *ast.ReturnStmt) {
	var ivs []Interval
	switch {
	case len(s.Results) == 0:
		ivs = e.namedResultIntervals()
	case len(s.Results) == 1:
		v := e.eval(s.Results[0])
		if per := e.perResultAny(s.Results[0]); per != nil {
			ivs = per
		} else {
			ivs = []Interval{v}
		}
	default:
		for _, r := range s.Results {
			ivs = append(ivs, e.eval(r))
		}
	}
	if e.litDepth > 0 {
		return // a literal's returns are not the function's returns
	}
	if prev, ok := e.retSites[s]; ok && len(prev.Results) == len(ivs) {
		for i := range prev.Results {
			prev.Results[i] = prev.Results[i].Join(ivs[i])
		}
		return
	}
	e.retSites[s] = &IntervalReturn{Pos: s.Pos(), Results: ivs}
}

func (e *ivEngine) perResultAny(rhs ast.Expr) []Interval {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if per := e.calls[call]; len(per) > 1 {
		return per
	}
	return nil
}

func (e *ivEngine) namedResultIntervals() []Interval {
	ft := e.curFT
	if ft == nil || ft.Results == nil {
		return nil
	}
	var ivs []Interval
	for _, f := range ft.Results.List {
		for _, name := range f.Names {
			ivs = append(ivs, e.intervalOf(e.a.Info.Defs[name]))
		}
	}
	return ivs
}

// store writes iv to the lvalue lhs. Only plain variables are tracked;
// element, field, and indirect stores touch memory the domain does not
// model.
func (e *ivEngine) store(lhs ast.Expr, iv Interval) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := e.a.Info.Defs[x]
		if obj == nil {
			obj = e.a.Info.Uses[x]
		}
		e.setObj(obj, iv)
	case *ast.ParenExpr:
		e.store(x.X, iv)
	case *ast.StarExpr:
		e.eval(x.X)
	case *ast.SelectorExpr:
		e.eval(x.X)
	case *ast.IndexExpr:
		e.eval(x.X)
		e.eval(x.Index)
	}
}

// ---- expressions ----

// eval computes the interval of x in the current state, recording the
// join across evaluations (loop passes, branch arms).
func (e *ivEngine) eval(x ast.Expr) Interval {
	if x == nil {
		return TopInterval()
	}
	v := e.evalInner(x)
	if !e.quiet {
		if old, ok := e.expr[x]; ok {
			v2 := old.Join(v)
			e.expr[x] = v2
		} else {
			e.expr[x] = v
		}
	}
	return v
}

// evalQuiet evaluates without recording (refinement re-evaluation).
func (e *ivEngine) evalQuiet(x ast.Expr) Interval {
	saved := e.quiet
	e.quiet = true
	v := e.evalInner(x)
	e.quiet = saved
	return v
}

func (e *ivEngine) evalInner(x ast.Expr) Interval {
	// Constant folding first: go/constant has already evaluated any
	// constant expression exactly, however deeply nested.
	if tv, ok := e.a.Info.Types[x]; ok && tv.Value != nil {
		if iv, ok := constInterval(tv.Value); ok {
			if e.a.Const != nil {
				if h, hok := e.a.Const(x, iv); hok {
					return h
				}
			}
			return iv
		}
		return TopInterval()
	}
	switch x := x.(type) {
	case *ast.Ident:
		obj := identObj(e.a.Info, x)
		if v, ok := obj.(*types.Var); ok {
			return e.intervalOf(v)
		}
		return TopInterval()
	case *ast.ParenExpr:
		return e.eval(x.X)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && isPkgName(e.a.Info, id) {
			return TopInterval() // mutable package-level variable
		}
		e.eval(x.X)
		return TopInterval() // field read: not modeled
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			return e.eval(x.X).Neg()
		case token.ADD:
			return e.eval(x.X)
		case token.AND:
			// Address taken: any alias may rewrite the base from here on.
			e.eval(x.X)
			e.poison(BaseObj(e.a.Info, x.X))
			return TopInterval()
		default:
			e.eval(x.X)
			return TopInterval()
		}
	case *ast.BinaryExpr:
		lv := e.eval(x.X)
		rv := e.eval(x.Y)
		return e.binop(x.Op, lv, rv, x.X)
	case *ast.StarExpr:
		e.eval(x.X)
		return TopInterval()
	case *ast.IndexExpr:
		e.eval(x.X)
		e.eval(x.Index)
		return TopInterval()
	case *ast.IndexListExpr:
		e.eval(x.X)
		return TopInterval()
	case *ast.SliceExpr:
		e.eval(x.X)
		e.eval(x.Low)
		e.eval(x.High)
		e.eval(x.Max)
		return TopInterval()
	case *ast.KeyValueExpr:
		e.eval(x.Value)
		return TopInterval()
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			e.eval(elt)
		}
		return TopInterval()
	case *ast.TypeAssertExpr:
		e.eval(x.X)
		return TopInterval()
	case *ast.FuncLit:
		return e.funcLit(x)
	case *ast.CallExpr:
		return e.call(x)
	}
	return TopInterval()
}

// binop applies an arithmetic operator; opnd carries the operand type
// (for integer-vs-float behavior of division).
func (e *ivEngine) binop(op token.Token, lv, rv Interval, opnd ast.Expr) Interval {
	switch op {
	case token.ADD:
		if isStringExpr(e.a.Info, opnd) {
			return TopInterval()
		}
		return lv.Add(rv)
	case token.SUB:
		return lv.Sub(rv)
	case token.MUL:
		return lv.Mul(rv)
	case token.QUO:
		q := lv.Div(rv)
		if q.IsTop() {
			return q
		}
		if isIntegerExpr(e.a.Info, opnd) {
			// Integer division truncates toward zero; the real-valued
			// quotient hull is a superset after rounding outward.
			q = Interval{math.Floor(q.Lo), math.Ceil(q.Hi)}
		}
		return q
	case token.REM:
		return lv.Rem(rv)
	}
	return TopInterval() // shifts, bitwise ops, comparisons, &&, ||
}

// funcLit analyzes a literal body against a snapshot of the current
// state, then discards its effects except that every captured variable
// the literal writes becomes Top in the enclosing state: the closure
// may run at any later time, so nothing downstream may rely on a value
// it can overwrite.
func (e *ivEngine) funcLit(lit *ast.FuncLit) Interval {
	savedState := e.state
	e.state = copyIvMap(savedState)
	savedWrites := e.writes
	e.writes = make(map[types.Object]bool)
	savedFT := e.curFT
	e.curFT = lit.Type
	e.litDepth++
	e.stmt(lit.Body)
	e.litDepth--
	e.curFT = savedFT
	written := e.writes
	e.writes = savedWrites
	e.state = savedState
	for o := range written {
		if e.writes != nil {
			e.writes[o] = true
		}
		delete(e.state, o)
	}
	return TopInterval()
}

// call interprets one call expression.
func (e *ivEngine) call(call *ast.CallExpr) Interval {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(e.a.Info, ix.X) {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	// Builtins and conversions first.
	if id, ok := fun.(*ast.Ident); ok {
		switch obj := identObj(e.a.Info, id).(type) {
		case *types.Builtin:
			return e.builtin(obj.Name(), call)
		case *types.TypeName:
			return e.conversion(call, obj)
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if tn, isType := identObj(e.a.Info, sel.Sel).(*types.TypeName); isType {
			return e.conversion(call, tn)
		}
	}

	var recv Interval = TopInterval()
	var recvExpr ast.Expr
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, isIdent := sel.X.(*ast.Ident); !isIdent || !isPkgName(e.a.Info, id) {
			recvExpr = sel.X
			recv = e.eval(sel.X)
		}
	}
	args := make([]Interval, len(call.Args))
	for i, a := range call.Args {
		args[i] = e.eval(a)
	}
	if Callee(e.a.Info, call) == nil && recvExpr == nil {
		e.eval(fun) // dynamic callee: record the function value too
	}

	eff, ok := IntervalEffect{}, false
	if e.a.Call != nil {
		eff, ok = e.a.Call(call, recv, args)
	}
	if !ok {
		eff = IntervalEffect{}
	}

	// Mutation rule: an unknown callee may scribble over any
	// pointer-typed argument and any pointer receiver.
	if !eff.NoMutation {
		if recvExpr != nil && isPointerish(e.a.Info, recvExpr) {
			e.setObj(BaseObj(e.a.Info, recvExpr), TopInterval())
		}
		for _, a := range call.Args {
			if isPointerish(e.a.Info, a) {
				e.setObj(BaseObj(e.a.Info, a), TopInterval())
			}
		}
	}

	arity := resultArity(e.a.Info, call)
	per := eff.Results
	if len(per) != arity {
		per = nil
	}
	if per != nil {
		e.calls[call] = per
		out := per[0]
		for _, p := range per[1:] {
			out = out.Join(p)
		}
		if arity == 1 {
			return per[0]
		}
		return out
	}
	return TopInterval()
}

// conversion interprets T(x).
func (e *ivEngine) conversion(call *ast.CallExpr, tn *types.TypeName) Interval {
	if len(call.Args) != 1 {
		for _, a := range call.Args {
			e.eval(a)
		}
		return TopInterval()
	}
	v := e.eval(call.Args[0])
	if e.a.Convert != nil {
		if h, ok := e.a.Convert(call, v); ok {
			return h
		}
	}
	return convertDefault(tn.Type(), v)
}

// convertDefault models a numeric conversion: a value provably inside
// the target type's range passes through (rounded outward for
// float→integer truncation); anything that could wrap degrades to Top.
func convertDefault(to types.Type, v Interval) Interval {
	b, ok := to.Underlying().(*types.Basic)
	if !ok {
		return TopInterval()
	}
	switch {
	case b.Info()&types.IsInteger != 0:
		v = Interval{math.Floor(v.Lo), math.Ceil(v.Hi)}
		lo, hi, known := intTypeRange(b.Kind())
		if !known || v.Lo < lo || v.Hi > hi {
			return TopInterval()
		}
		return v
	case b.Info()&types.IsFloat != 0:
		return v
	}
	return TopInterval()
}

// intTypeRange gives the representable range of an integer kind as
// float64 bounds (the 2^63-scale constants are exact in float64).
func intTypeRange(k types.BasicKind) (lo, hi float64, ok bool) {
	switch k {
	case types.Int, types.Int64:
		return -(1 << 63), 1 << 63, true
	case types.Int32, types.UntypedRune:
		return math.MinInt32, math.MaxInt32, true
	case types.Int16:
		return math.MinInt16, math.MaxInt16, true
	case types.Int8:
		return math.MinInt8, math.MaxInt8, true
	case types.Uint, types.Uint64, types.Uintptr:
		return 0, 1 << 64, true
	case types.Uint32:
		return 0, math.MaxUint32, true
	case types.Uint16:
		return 0, math.MaxUint16, true
	case types.Uint8:
		return 0, math.MaxUint8, true
	case types.UntypedInt:
		return math.Inf(-1), math.Inf(1), true
	}
	return 0, 0, false
}

func (e *ivEngine) builtin(name string, call *ast.CallExpr) Interval {
	args := make([]Interval, len(call.Args))
	for i, a := range call.Args {
		args[i] = e.eval(a)
	}
	switch name {
	case "len", "cap":
		return AtLeast(0)
	case "min":
		out := args[0]
		for _, a := range args[1:] {
			out = Interval{math.Min(out.Lo, a.Lo), math.Min(out.Hi, a.Hi)}
		}
		return out
	case "max":
		out := args[0]
		for _, a := range args[1:] {
			out = Interval{math.Max(out.Lo, a.Lo), math.Max(out.Hi, a.Hi)}
		}
		return out
	}
	return TopInterval()
}

// ---- branch-condition refinement ----

// refine narrows variable intervals under the assumption that cond
// evaluated to truth. Unrefinable shapes are left alone (sound: the
// state only ever over-approximates).
func (e *ivEngine) refine(cond ast.Expr, truth bool) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			e.refine(x.X, !truth)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if truth { // both conjuncts hold
				e.refine(x.X, true)
				e.refine(x.Y, true)
			}
		case token.LOR:
			if !truth { // both disjuncts failed
				e.refine(x.X, false)
				e.refine(x.Y, false)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := x.Op
			if !truth {
				op = negateCmp(op)
			}
			e.refineCmp(x.X, op, x.Y)
			e.refineCmp(x.Y, flipCmp(op), x.X)
		}
	}
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // ==, != are symmetric
}

// refineCmp narrows lhs (when it is a plain tracked variable) under
// `lhs op rhs`.
func (e *ivEngine) refineCmp(lhs ast.Expr, op token.Token, rhs ast.Expr) {
	obj := refinableObj(e.a.Info, lhs)
	if obj == nil {
		return
	}
	bound := e.evalQuiet(rhs)
	cur := e.intervalOf(obj)
	integral := isIntegerExpr(e.a.Info, lhs)
	var constraint Interval
	switch op {
	case token.LSS:
		hi := bound.Hi
		if integral {
			hi-- // x < k over integers means x <= k-1; -inf is absorbing
		}
		constraint = AtMost(hi)
	case token.LEQ:
		constraint = AtMost(bound.Hi)
	case token.GTR:
		lo := bound.Lo
		if integral {
			lo++
		}
		constraint = AtLeast(lo)
	case token.GEQ:
		constraint = AtLeast(bound.Lo)
	case token.EQL:
		constraint = bound
	case token.NEQ:
		// Only a point disequality against an integral endpoint shaves
		// anything off a closed interval.
		if integral && bound.Lo == bound.Hi && !math.IsInf(bound.Lo, 0) { //lint:allow floateq (exact lattice test: is the bound a single integral point)
			p := bound.Lo
			next := cur
			if cur.Lo == p { //lint:allow floateq (integral endpoints are exact in float64)
				next.Lo = p + 1
			}
			if cur.Hi == p { //lint:allow floateq (integral endpoints are exact in float64)
				next.Hi = p - 1
			}
			if next.Lo <= next.Hi {
				e.setObj(obj, next)
			}
		}
		return
	default:
		return
	}
	if m, ok := cur.Meet(constraint); ok {
		e.setObj(obj, m)
	}
	// An empty meet means this branch is unreachable under the current
	// approximation; keep the original interval rather than invent one.
}

// refinableObj returns the variable object behind a plain (possibly
// parenthesized) identifier, or nil.
func refinableObj(info *types.Info, x ast.Expr) types.Object {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := identObj(info, id).(*types.Var); ok {
		return v
	}
	return nil
}

// ---- helpers ----

func copyIvMap(m map[types.Object]Interval) map[types.Object]Interval {
	out := make(map[types.Object]Interval, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// joinIvStates is the pointwise join; a key missing on either side is
// Top and disappears.
func joinIvStates(a, b map[types.Object]Interval) map[types.Object]Interval {
	out := make(map[types.Object]Interval, len(a))
	for k, av := range a {
		if bv, ok := b[k]; ok {
			out[k] = av.Join(bv)
		}
	}
	return out
}

// widenIvStates widens next against the old head: any bound that grew
// jumps to its infinity.
func widenIvStates(head, next map[types.Object]Interval) map[types.Object]Interval {
	for k, nv := range next {
		if hv, ok := head[k]; ok {
			w := hv.Widen(nv)
			if w.IsTop() {
				delete(next, k)
			} else {
				next[k] = w
			}
		}
	}
	return next
}

// constInterval folds a go/constant value to a point interval.
func constInterval(v constant.Value) (Interval, bool) {
	switch v.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(v)
		return PointInterval(f), true
	}
	return Interval{}, false
}

// terminates reports whether a statement never falls through to its
// successor: it ends in return, break/continue/goto, a panic, or an
// if/else both of whose arms terminate. Used to keep guard-clause
// refinement (`if x < 0 { return }`) alive after the guard.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}

func caseTerminates(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	return terminates(body[len(body)-1])
}

func isNumericObj(o types.Object) bool {
	if o == nil || o.Type() == nil {
		return false
	}
	b, ok := o.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func isIntegerExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isStringExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
