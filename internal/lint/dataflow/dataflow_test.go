package dataflow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint/dataflow"
)

// analyze type-checks src (a complete file for package p), runs the
// engine over the function named F with the test hook (source() is a
// nondeterminism source, sortit(x) sanitizes x's base object, twin()
// returns a (tainted, clean) pair), and returns the result plus the
// type info for follow-up assertions.
func analyze(t *testing.T, src string) (*dataflow.Result, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Name.Name == "F" {
			fd = f
		}
	}
	if fd == nil {
		t.Fatal("no function F in source")
	}
	a := &dataflow.Analysis{
		Info:          info,
		Fset:          fset,
		TaintMapRange: true,
		TaintSelect:   true,
		Call: func(call *ast.CallExpr, recv dataflow.Taint, args []dataflow.Taint) (dataflow.Effect, bool) {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return dataflow.Effect{}, false
			}
			switch id.Name {
			case "source":
				return dataflow.Effect{Result: dataflow.Taint{Desc: "test source"}, NoMutation: true}, true
			case "sortit":
				return dataflow.Effect{Kills: call.Args[:1], NoMutation: true}, true
			case "twin":
				return dataflow.Effect{
					Results:    []dataflow.Taint{{Desc: "twin source"}, {}},
					NoMutation: true,
				}, true
			}
			return dataflow.Effect{}, false
		},
	}
	return dataflow.Run(fd.Type, fd.Body, a), info
}

const prelude = `package p

func source() string      { return "" }
func sortit(s []string)   {}
func twin() (string, int) { return "", 0 }
`

// returnTaints flattens all return-site taints of the result.
func returnTaints(res *dataflow.Result) []dataflow.Taint {
	var out []dataflow.Taint
	for _, r := range res.Returns {
		out = append(out, r.Taints...)
	}
	return out
}

func wantTainted(t *testing.T, res *dataflow.Result, substr string) {
	t.Helper()
	j := dataflow.JoinAll(returnTaints(res))
	if !j.Tainted() {
		t.Fatalf("expected a tainted return, got clean (returns: %+v)", res.Returns)
	}
	if substr != "" && !strings.Contains(j.Desc, substr) {
		t.Fatalf("taint desc %q does not mention %q", j.Desc, substr)
	}
}

func wantClean(t *testing.T, res *dataflow.Result) {
	t.Helper()
	if j := dataflow.JoinAll(returnTaints(res)); j.Tainted() {
		t.Fatalf("expected a clean return, got %+v", j)
	}
}

func TestReassignmentKillsTaint(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F() string {
	x := source()
	x = "ok"
	return x
}`)
	wantClean(t, res)
}

func TestTaintSurvivesDataflowChain(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F() string {
	x := source()
	y := x + "!"
	z := y
	return z
}`)
	wantTainted(t, res, "test source")
}

func TestTupleReturnPerResultPrecision(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F() int {
	a, b := twin()
	_ = a
	return b
}`)
	wantClean(t, res)

	res, _ = analyze(t, prelude+`
func F() string {
	a, b := twin()
	_ = b
	return a
}`)
	wantTainted(t, res, "twin source")
}

func TestMapRangeTaintsIterationVars(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	wantTainted(t, res, "map iteration order")
}

func TestSortSanitizesCollectedKeys(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortit(out)
	return out
}`)
	wantClean(t, res)
}

func TestRangeOverChannelPropagatesChannelTaint(t *testing.T) {
	// A channel fed a tainted value carries that taint to its
	// range-received values; a clean channel stays clean.
	res, _ := analyze(t, prelude+`
func F(ch chan string) string {
	ch <- source()
	var last string
	for v := range ch {
		last = v
	}
	return last
}`)
	wantTainted(t, res, "test source")

	res, _ = analyze(t, prelude+`
func F(ch chan string) string {
	ch <- "fixed"
	var last string
	for v := range ch {
		last = v
	}
	return last
}`)
	wantClean(t, res)
}

func TestLoopCarriedTaintReachesFixpoint(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F() string {
	var x, y string
	for i := 0; i < 3; i++ {
		y = x
		x = source()
	}
	return y
}`)
	wantTainted(t, res, "test source")
}

func TestMultiCaseSelectTaintsBoundVars(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F(a, b chan string) string {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}`)
	wantTainted(t, res, "select completion order")
}

func TestSingleCaseSelectStaysClean(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F(a chan string) string {
	select {
	case v := <-a:
		return v
	}
}`)
	wantClean(t, res)
}

func TestClosureReturnTaintFlowsToLiteralValue(t *testing.T) {
	// A closure's value carries the join of its own returns, so a
	// higher-order callee that replays the closure (default propagate)
	// yields a tainted result.
	res, _ := analyze(t, prelude+`
func apply(fn func() string) string { return fn() }

func F() string {
	return apply(func() string { return source() })
}`)
	wantTainted(t, res, "test source")
}

func TestMapStoreValueTaintOnly(t *testing.T) {
	// Inserting under a tainted KEY does not make the map's contents
	// order-dependent (maps are key-addressed)...
	res, _ := analyze(t, prelude+`
func F(m map[string]bool) int {
	set := map[string]bool{}
	for k := range m {
		set[k] = true
	}
	return len(set)
}`)
	wantClean(t, res)

	// ...but storing a tainted VALUE does taint the container.
	res, _ = analyze(t, prelude+`
func F() string {
	m := map[string]string{}
	m["k"] = source()
	return m["k"]
}`)
	wantTainted(t, res, "test source")
}

func TestNakedReturnReadsNamedResults(t *testing.T) {
	res, _ := analyze(t, prelude+`
func F() (out string) {
	out = source()
	return
}`)
	wantTainted(t, res, "test source")
}
