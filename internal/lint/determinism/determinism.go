// Package determinism defines an analyzer that keeps the simulator's
// core packages bit-deterministic: every run of the model must produce
// identical tables and figures regardless of host, wall-clock time, or
// environment. Wall-clock reads, the globally-seeded math/rand
// top-level functions, and environment lookups are all banned inside
// the simulation packages; randomness must flow through an explicitly
// seeded *rand.Rand carried in configuration.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags nondeterminism sources in the simulator packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock time, global math/rand, and environment reads " +
		"in the deterministic simulator packages (internal/sim, machine, " +
		"cluster, dvs, dvfs, workloads); use the sim clock and a seeded *rand.Rand",
	Run: run,
}

// restricted lists the package-path roots the analyzer applies to. The
// simulation kernel and everything whose behaviour feeds the paper's
// tables must be reproducible; cmd/ front-ends may read flags and
// report wall time about themselves.
var restricted = []string{
	"repro/internal/sim",
	"repro/internal/machine",
	"repro/internal/cluster",
	"repro/internal/dvs",
	"repro/internal/dvfs",
	"repro/internal/workloads",
}

// forbidden maps import path -> function name -> replacement advice.
// For math/rand only the constructors that take an explicit source are
// permitted; every top-level convenience function draws from the
// process-global generator.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":       "use the sim clock (sim.Engine.Now)",
		"Since":     "use sim.Time.Sub on simulated instants",
		"Until":     "use sim.Time.Sub on simulated instants",
		"Sleep":     "use sim.Proc.Sleep",
		"After":     "use sim.Engine.After",
		"AfterFunc": "use sim.Engine.After",
		"Tick":      "use a sim.Engine timer process",
		"NewTimer":  "use a sim.Engine timer process",
		"NewTicker": "use a sim.Engine timer process",
	},
	"os": {
		"Getenv":    "thread configuration through Params/Config structs",
		"LookupEnv": "thread configuration through Params/Config structs",
		"Environ":   "thread configuration through Params/Config structs",
	},
}

// randAllowed lists the math/rand package-level functions that remain
// legal: constructors for explicitly seeded generators.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *analysis.Pass) error {
	if !inRestricted(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, ok := analysis.UsedPackage(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case forbidden[path][name] != "":
				pass.Reportf(sel.Pos(), "nondeterministic %s.%s in simulator package %s; %s",
					path, name, pass.Pkg.Path(), forbidden[path][name])
			case isGlobalRand(path, name) && isFunc(pass, sel):
				pass.Reportf(sel.Pos(), "globally-seeded %s.%s in simulator package %s; "+
					"draw from a seeded *rand.Rand carried in the workload/cluster config",
					path, name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

func inRestricted(path string) bool {
	for _, r := range restricted {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

func isGlobalRand(path, name string) bool {
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	return !randAllowed[name] && !strings.HasPrefix(name, "New")
}

// isFunc reports whether the selector denotes a package-level function
// (as opposed to a type like rand.Rand or a constant like rand.Int63Max).
func isFunc(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	_, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok
}
