package determinism_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, dir, determinism.Analyzer,
		"repro/internal/sim/fixture", // restricted path: all wants fire
		"fixtures/determinism/free",  // unrestricted path: silent
	)
}
