package lint

import (
	"go/token"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/repolint"
)

// BenchmarkRepolintModule measures one full lint pass — module load,
// parse, type-check, and all seven analyzers over every package — which
// is what `make lint` and the clean-lint meta-test pay on every run.
// `make bench` appends this to BENCH_sim.json so lint wall-time
// regressions are tracked alongside simulator throughput.
func BenchmarkRepolintModule(b *testing.B) {
	root := moduleRoot(b)
	for i := 0; i < b.N; i++ {
		fset := token.NewFileSet()
		pkgs, err := loader.Load(fset, root, "./...")
		if err != nil {
			b.Fatalf("loading module packages: %v", err)
		}
		if len(pkgs) == 0 {
			b.Fatal("loader returned no packages")
		}
		diags := 0
		for _, pkg := range pkgs {
			for _, a := range repolint.Analyzers {
				pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info)
				if err := a.Run(pass); err != nil {
					b.Fatalf("%s: %s: %v", a.Name, pkg.ImportPath, err)
				}
				diags += len(pass.Diagnostics())
			}
		}
		if diags != 0 {
			b.Fatalf("module not lint-clean during benchmark: %d diagnostics", diags)
		}
	}
}
