package lint

import (
	"go/token"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/repolint"
)

// BenchmarkRepolintModule measures one full lint pass — module load,
// parse, type-check, and all nine analyzers over every package — which
// is what `make lint` and the clean-lint meta-test pay on every run.
// `make bench` appends this to BENCH_sim.json so lint wall-time
// regressions are tracked alongside simulator throughput.
func BenchmarkRepolintModule(b *testing.B) {
	root := moduleRoot(b)
	for i := 0; i < b.N; i++ {
		fset := token.NewFileSet()
		pkgs, err := loader.Load(fset, root, "./...")
		if err != nil {
			b.Fatalf("loading module packages: %v", err)
		}
		if len(pkgs) == 0 {
			b.Fatal("loader returned no packages")
		}
		diags := 0
		for _, pkg := range pkgs {
			for _, a := range repolint.All() {
				pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info)
				if err := a.Run(pass); err != nil {
					b.Fatalf("%s: %s: %v", a.Name, pkg.ImportPath, err)
				}
				diags += len(pass.Diagnostics())
			}
		}
		if diags != 0 {
			b.Fatalf("module not lint-clean during benchmark: %d diagnostics", diags)
		}
	}
}

// BenchmarkDetflowModule isolates the flow-sensitive layer: module
// load plus only the detflow and hotalloc analyzers — the two passes
// built on the internal/lint/dataflow value-flow engine and its
// per-function summaries — over every package. Tracking this next to
// BenchmarkRepolintModule in BENCH_sim.json shows how much of the
// whole-suite cost the dataflow engine accounts for as it grows.
func BenchmarkDetflowModule(b *testing.B) {
	root := moduleRoot(b)
	var flow []*analysis.Analyzer
	for _, a := range repolint.All() {
		if a.Name == "detflow" || a.Name == "hotalloc" {
			flow = append(flow, a)
		}
	}
	if len(flow) != 2 {
		b.Fatalf("expected detflow and hotalloc in the registry, found %d", len(flow))
	}
	for i := 0; i < b.N; i++ {
		fset := token.NewFileSet()
		pkgs, err := loader.Load(fset, root, "./...")
		if err != nil {
			b.Fatalf("loading module packages: %v", err)
		}
		if len(pkgs) == 0 {
			b.Fatal("loader returned no packages")
		}
		diags := 0
		for _, pkg := range pkgs {
			for _, a := range flow {
				pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info)
				if err := a.Run(pass); err != nil {
					b.Fatalf("%s: %s: %v", a.Name, pkg.ImportPath, err)
				}
				diags += len(pass.Diagnostics())
			}
		}
		if diags != 0 {
			b.Fatalf("module not flow-clean during benchmark: %d diagnostics", diags)
		}
	}
}

// BenchmarkNumericModule isolates the v6 numeric layer: module load
// plus only the rangecheck and lookahead analyzers — the two passes
// built on the internal/lint/dataflow interval abstract domain
// (RunIntervals) — over every package. Tracked in BENCH_sim.json next
// to the whole-suite and detflow figures, it shows what the interval
// engine costs as its contract inventory grows.
func BenchmarkNumericModule(b *testing.B) {
	root := moduleRoot(b)
	var numeric []*analysis.Analyzer
	for _, a := range repolint.All() {
		if a.Name == "rangecheck" || a.Name == "lookahead" {
			numeric = append(numeric, a)
		}
	}
	if len(numeric) != 2 {
		b.Fatalf("expected rangecheck and lookahead in the registry, found %d", len(numeric))
	}
	for i := 0; i < b.N; i++ {
		fset := token.NewFileSet()
		pkgs, err := loader.Load(fset, root, "./...")
		if err != nil {
			b.Fatalf("loading module packages: %v", err)
		}
		if len(pkgs) == 0 {
			b.Fatal("loader returned no packages")
		}
		diags := 0
		for _, pkg := range pkgs {
			for _, a := range numeric {
				pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info)
				if err := a.Run(pass); err != nil {
					b.Fatalf("%s: %s: %v", a.Name, pkg.ImportPath, err)
				}
				diags += len(pass.Diagnostics())
			}
		}
		if diags != 0 {
			b.Fatalf("module not range-clean during benchmark: %d diagnostics", diags)
		}
	}
}
