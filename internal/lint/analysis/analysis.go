// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package at a time through a Pass and reports
// position-anchored Diagnostics.
//
// The repository must build offline with the standard library only, so
// we cannot vendor x/tools; this package provides the same architecture
// (analyzers are plain values, drivers decide how packages are loaded)
// with the two features the repolint suite needs on top: a shared
// suppression convention ("//lint:allow <analyzer>" on the offending
// line or the line above) and a tiny set of type-resolution helpers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name>" suppression comments. It must be a valid
	// Go identifier.
	Name string

	// Doc is the one-paragraph description shown by repolint -help.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A SuppressedDiagnostic is a finding an analyzer produced that a
// "//lint:allow" directive silenced, together with the directive that
// did so. Drivers use it for -json reporting and the suppression
// meta-test uses it to prove every directive still earns its keep.
type SuppressedDiagnostic struct {
	Diagnostic
	// DirectiveFile/DirectiveLine locate the directive that covered
	// the diagnostic (the diagnostic's own line or the line above).
	DirectiveFile string
	DirectiveLine int
}

// A Pass connects an Analyzer to the single package being analyzed.
// Drivers populate every field; analyzers only read them and call
// Report/Reportf.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File // syntax trees, with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	suppressed  []SuppressedDiagnostic
	allow       suppressions
}

// NewPass builds a Pass and indexes the files' "//lint:allow" comments
// so Reportf can drop suppressed diagnostics.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		allow:     indexSuppressions(fset, files),
	}
}

// Reportf records a diagnostic at pos unless a "//lint:allow" comment
// naming this analyzer covers the position's line (or the line above,
// for suppressions written on their own line). Suppressed diagnostics
// are retained and available through Suppressed, so drivers can report
// them and the suppression meta-test can detect directives that no
// longer silence anything.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if file, line, ok := p.allow.covers(p.Fset, pos, p.Analyzer.Name); ok {
		p.suppressed = append(p.suppressed, SuppressedDiagnostic{
			Diagnostic:    d,
			DirectiveFile: file,
			DirectiveLine: line,
		})
		return
	}
	p.diagnostics = append(p.diagnostics, d)
}

// Diagnostics returns the findings recorded so far, in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	out := make([]Diagnostic, len(p.diagnostics))
	copy(out, p.diagnostics)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Suppressed returns the diagnostics that "//lint:allow" directives
// silenced, in source order.
func (p *Pass) Suppressed() []SuppressedDiagnostic {
	out := make([]SuppressedDiagnostic, len(p.suppressed))
	copy(out, p.suppressed)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// A Directive is one parsed "//lint:allow" suppression comment. The
// grammar is deliberately rigid so suppressions stay greppable and
// auditable:
//
//	//lint:allow <analyzer>[,<analyzer>...] (<reason>)
//
// The comment must begin exactly with "//lint:allow" (prose that merely
// mentions the marker, like this paragraph, is not a directive), the
// analyzer list is comma-separated, and the reason is a non-empty
// parenthesized explanation. Problem records the first grammar
// violation; a directive with a non-empty Problem still suppresses (so
// a typo never un-gates a build silently) but fails the repository's
// suppression meta-test.
type Directive struct {
	Pos       token.Pos
	File      string
	Line      int
	Analyzers []string
	Reason    string
	Problem   string // "" when well-formed
}

const allowMarker = "//lint:allow"

// ParseDirectives extracts every "//lint:allow" directive from the
// files, in source order. Only comments that start exactly with the
// marker count; the directive applies to its own line and the line
// below (for a directive written on its own line).
func ParseDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowMarker) {
					continue
				}
				pos := fset.Position(c.Pos())
				d := Directive{Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
				rest := c.Text[len(allowMarker):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					d.Problem = "malformed directive: expected a space after //lint:allow"
					out = append(out, d)
					continue
				}
				rest = strings.TrimSpace(rest)
				names := rest
				if i := strings.IndexAny(rest, " \t("); i >= 0 {
					names = rest[:i]
					rest = strings.TrimSpace(rest[i:])
				} else {
					rest = ""
				}
				for _, name := range strings.Split(names, ",") {
					if name = strings.TrimSpace(name); name != "" {
						d.Analyzers = append(d.Analyzers, name)
					}
				}
				switch {
				case len(d.Analyzers) == 0:
					d.Problem = "malformed directive: missing analyzer name"
				case !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")"):
					d.Problem = "missing (reason)"
				case strings.TrimSpace(rest[1:len(rest)-1]) == "":
					d.Problem = "empty (reason)"
				default:
					d.Reason = strings.TrimSpace(rest[1 : len(rest)-1])
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressions maps file name -> line -> analyzer names allowed there.
type suppressions map[string]map[int][]string

// indexSuppressions folds parsed directives into the per-line lookup
// Reportf consults. Malformed directives still index (suppression must
// never silently stop working because of a typo in the reason); the
// suppression meta-test is where malformedness fails the build.
func indexSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := make(suppressions)
	for _, d := range ParseDirectives(fset, files) {
		lines := s[d.File]
		if lines == nil {
			lines = make(map[int][]string)
			s[d.File] = lines
		}
		lines[d.Line] = append(lines[d.Line], d.Analyzers...)
	}
	return s
}

// covers reports whether analyzer name is allowed at pos — by a
// directive on the same line, or on the line directly above (a comment
// on its own line applying to the statement below) — and if so, which
// file and line the directive sits on.
func (s suppressions) covers(fset *token.FileSet, pos token.Pos, name string) (file string, line int, ok bool) {
	p := fset.Position(pos)
	lines := s[p.Filename]
	if lines == nil {
		return "", 0, false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, n := range lines[l] {
			if n == name {
				return p.Filename, l, true
			}
		}
	}
	return "", 0, false
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The repolint analyzers police production code only; tests may
// panic, compare floats from golden values, and seed randomness freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// UsedPackage resolves a selector expression like time.Now to the
// import path of the package qualifier ("time") if the expression's X
// really is a package name (not a shadowing variable). ok is false for
// field/method selections.
func UsedPackage(info *types.Info, sel *ast.SelectorExpr) (path string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", false
	}
	return pn.Imported().Path(), true
}

// IsPackageFunc reports whether call's callee is the package-level
// function pkgPath.name (e.g. "time".Now).
func IsPackageFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	path, ok := UsedPackage(info, sel)
	return ok && path == pkgPath
}

// WalkFuncs invokes fn for every function body in the files, passing
// the enclosing declaration's name ("" for package-level variable
// initializers). Function literals are visited as part of the function
// that lexically encloses them, so a panic inside a closure inside
// MustX is still attributed to MustX.
func WalkFuncs(files []*ast.File, fn func(name string, body ast.Node)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Name.Name, d.Body)
				}
			case *ast.GenDecl:
				// var initializers can contain function literals
				// and even direct calls; attribute them to "".
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							fn("", v)
						}
					}
				}
			}
		}
	}
}
