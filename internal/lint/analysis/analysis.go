// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package at a time through a Pass and reports
// position-anchored Diagnostics.
//
// The repository must build offline with the standard library only, so
// we cannot vendor x/tools; this package provides the same architecture
// (analyzers are plain values, drivers decide how packages are loaded)
// with the two features the repolint suite needs on top: a shared
// suppression convention ("//lint:allow <analyzer>" on the offending
// line or the line above) and a tiny set of type-resolution helpers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name>" suppression comments. It must be a valid
	// Go identifier.
	Name string

	// Doc is the one-paragraph description shown by repolint -help.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass connects an Analyzer to the single package being analyzed.
// Drivers populate every field; analyzers only read them and call
// Report/Reportf.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File // syntax trees, with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	allow       suppressions
}

// NewPass builds a Pass and indexes the files' "//lint:allow" comments
// so Reportf can drop suppressed diagnostics.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		allow:     indexSuppressions(fset, files),
	}
}

// Reportf records a diagnostic at pos unless a "//lint:allow" comment
// naming this analyzer covers the position's line (or the line above,
// for suppressions written on their own line).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allow.covers(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	out := make([]Diagnostic, len(p.diagnostics))
	copy(out, p.diagnostics)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// suppressions maps file name -> line -> analyzer names allowed there.
type suppressions map[string]map[int][]string

const allowMarker = "lint:allow"

// indexSuppressions scans every comment for the allow marker. The
// accepted forms are
//
//	expr // lint:allow floateq
//	//lint:allow panicfree (kernel invariant)
//	//lint:allow determinism,floateq
//
// i.e. the marker followed by a comma-separated analyzer list; anything
// after the list (a parenthesized reason, prose) is ignored.
func indexSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, allowMarker)
				if i < 0 {
					continue
				}
				rest := strings.TrimSpace(text[i+len(allowMarker):])
				names := strings.FieldsFunc(rest, func(r rune) bool {
					return r == ' ' || r == '\t' || r == '('
				})
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s[pos.Filename] = lines
				}
				for _, name := range strings.Split(names[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return s
}

// covers reports whether analyzer name is allowed at pos: a suppression
// on the same line, or on the line directly above (a comment on its own
// line applying to the statement below).
func (s suppressions) covers(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	lines := s[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, n := range lines[line] {
			if n == name || n == "all" {
				return true
			}
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The repolint analyzers police production code only; tests may
// panic, compare floats from golden values, and seed randomness freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// UsedPackage resolves a selector expression like time.Now to the
// import path of the package qualifier ("time") if the expression's X
// really is a package name (not a shadowing variable). ok is false for
// field/method selections.
func UsedPackage(info *types.Info, sel *ast.SelectorExpr) (path string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", false
	}
	return pn.Imported().Path(), true
}

// IsPackageFunc reports whether call's callee is the package-level
// function pkgPath.name (e.g. "time".Now).
func IsPackageFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	path, ok := UsedPackage(info, sel)
	return ok && path == pkgPath
}

// WalkFuncs invokes fn for every function body in the files, passing
// the enclosing declaration's name ("" for package-level variable
// initializers). Function literals are visited as part of the function
// that lexically encloses them, so a panic inside a closure inside
// MustX is still attributed to MustX.
func WalkFuncs(files []*ast.File, fn func(name string, body ast.Node)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Name.Name, d.Body)
				}
			case *ast.GenDecl:
				// var initializers can contain function literals
				// and even direct calls; attribute them to "".
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							fn("", v)
						}
					}
				}
			}
		}
	}
}
