package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

const directiveSrc = `package p

// This doc comment mentions //lint:allow in prose, which is not a
// directive because the comment does not begin with the marker.
func f() {
	a := 1 //lint:allow panicfree (kernel invariant)
	b := 2 //lint:allow determinism,floateq (golden comparison)
	c := 3 //lint:allow panicfree
	d := 4 //lint:allow panicfree ()
	e := 5 //lint:allow
	g := 6 //lint:allowpanicfree (missing space)
	_, _, _, _, _, _ = a, b, c, d, e, g
}
`

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	fset, files := parseOne(t, directiveSrc)
	ds := analysis.ParseDirectives(fset, files)
	if len(ds) != 6 {
		t.Fatalf("got %d directives, want 6 (prose mention must not parse): %+v", len(ds), ds)
	}
	want := []struct {
		analyzers []string
		reason    string
		problem   string
	}{
		{[]string{"panicfree"}, "kernel invariant", ""},
		{[]string{"determinism", "floateq"}, "golden comparison", ""},
		{[]string{"panicfree"}, "", "missing (reason)"},
		{[]string{"panicfree"}, "", "empty (reason)"},
		{nil, "", "malformed directive: missing analyzer name"},
		{nil, "", "malformed directive: expected a space after //lint:allow"},
	}
	for i, w := range want {
		d := ds[i]
		if d.Problem != w.problem {
			t.Errorf("directive %d: problem = %q, want %q", i, d.Problem, w.problem)
		}
		if d.Reason != w.reason {
			t.Errorf("directive %d: reason = %q, want %q", i, d.Reason, w.reason)
		}
		if got := strings.Join(d.Analyzers, ","); got != strings.Join(w.analyzers, ",") {
			t.Errorf("directive %d: analyzers = %q, want %q", i, got, strings.Join(w.analyzers, ","))
		}
		if d.File != "p.go" || d.Line == 0 {
			t.Errorf("directive %d: bad position %s:%d", i, d.File, d.Line)
		}
	}
}

// TestSuppressionRoundTrip drives Reportf directly: a covered position
// lands in Suppressed with the directive's site; an uncovered one (and
// a different analyzer at the covered line) stays a live diagnostic.
func TestSuppressionRoundTrip(t *testing.T) {
	src := `package p

func f() {
	x := 1 //lint:allow testcheck (known exception)

	y := 2
	_, _ = x, y
}
`
	fset, files := parseOne(t, src)
	a := &analysis.Analyzer{Name: "testcheck", Doc: "test"}
	other := &analysis.Analyzer{Name: "othercheck", Doc: "test"}

	// First assignment is on the directive's line; the second sits two
	// lines below, outside the directive's reach (its own line or the
	// line directly beneath it).
	var assigns []token.Pos
	ast.Inspect(files[0], func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			assigns = append(assigns, as.Pos())
		}
		return true
	})
	if len(assigns) < 2 {
		t.Fatal("fixture positions not found")
	}
	coveredPos, uncoveredPos := assigns[0], assigns[1]

	pass := analysis.NewPass(a, fset, files, nil, nil)
	pass.Reportf(coveredPos, "finding at covered line")
	pass.Reportf(uncoveredPos, "finding at uncovered line")
	if got := pass.Diagnostics(); len(got) != 1 || !strings.Contains(got[0].Message, "uncovered") {
		t.Fatalf("Diagnostics = %+v, want exactly the uncovered finding", got)
	}
	sup := pass.Suppressed()
	if len(sup) != 1 {
		t.Fatalf("Suppressed = %+v, want exactly the covered finding", sup)
	}
	if sup[0].DirectiveFile != "p.go" || sup[0].DirectiveLine != fset.Position(coveredPos).Line {
		t.Errorf("suppressed finding records directive site %s:%d, want p.go:%d",
			sup[0].DirectiveFile, sup[0].DirectiveLine, fset.Position(coveredPos).Line)
	}

	otherPass := analysis.NewPass(other, fset, files, nil, nil)
	otherPass.Reportf(coveredPos, "different analyzer at covered line")
	if got := otherPass.Diagnostics(); len(got) != 1 {
		t.Fatalf("directive must only cover the analyzer it names; got %+v", got)
	}
}
