// Package exec is the worker-pool scheduler that fans independent
// simulation cells out across OS threads. Every experiment the paper
// reports is a cross product of runs that are pure functions of
// (config, seed) — the determinism analyzer enforces this — so cells
// may execute in any order on any number of workers as long as their
// results are merged back in submission order. Map provides exactly
// that contract: bit-identical output at any parallelism, which the
// sequential-vs-parallel equivalence tests in cluster and campaign
// pin down.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallelism is the worker count used when a caller passes a
// width of zero: one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Width normalizes a parallelism knob: zero (or negative) means
// DefaultParallelism, anything else is taken literally.
func Width(parallelism int) int {
	if parallelism <= 0 {
		return DefaultParallelism()
	}
	return parallelism
}

// Map runs fn(i) for every i in [0, n) on at most width concurrent
// workers (width <= 0 selects DefaultParallelism) and returns the
// results in index order. When fn is deterministic the returned slice
// is identical to a sequential loop's, regardless of width.
//
// On error Map stops handing out new indices, waits for in-flight
// calls, and returns a nil slice with the lowest-index error it
// observed. Map fails exactly when a sequential loop over the same fn
// would fail, though when several indices fail the reported one can
// differ from the sequential first.
func Map[T any](width, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	width = Width(width)
	if width > n {
		width = n
	}
	if width == 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	out := make([]T, n)
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
