// Package exec is the worker-pool scheduler that fans independent
// simulation cells out across OS threads. Every experiment the paper
// reports is a cross product of runs that are pure functions of
// (config, seed) — the determinism analyzer enforces this — so cells
// may execute in any order on any number of workers as long as their
// results are merged back in submission order. Map provides exactly
// that contract: bit-identical output at any parallelism, which the
// sequential-vs-parallel equivalence tests in cluster and campaign
// pin down.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallelism is the worker count used when a caller passes a
// width of zero: one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Width normalizes a parallelism knob: zero (or negative) means
// DefaultParallelism, anything else is taken literally.
func Width(parallelism int) int {
	if parallelism <= 0 {
		return DefaultParallelism()
	}
	return parallelism
}

// Map runs fn(i) for every i in [0, n) on at most width concurrent
// workers (width <= 0 selects DefaultParallelism) and returns the
// results in index order. When fn is deterministic the returned slice
// is identical to a sequential loop's, regardless of width.
//
// On error Map stops handing out new indices, waits for in-flight
// calls, and returns a nil slice with the lowest-index error it
// observed. Map fails exactly when a sequential loop over the same fn
// would fail, though when several indices fail the reported one can
// differ from the sequential first.
//
// A panic in fn is not swallowed and cannot deadlock the pool: the
// worker recovers it, the pool drains, and Map re-panics with the
// original value on the calling goroutine — again matching what a
// sequential loop would do. When both errors and panics occur, the
// lowest failing index wins.
func Map[T any](width, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	width = Width(width)
	if width > n {
		width = n
	}
	if width == 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	out := make([]T, n)
	errs := make([]error, n)
	pans := make([]any, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	// call runs one index, converting a panic into a recorded failure
	// so the worker loop (and Wait) always completes.
	//lint:hotpath runs once per cell on every worker
	call := func(i int) (ok bool) {
		defer func() { //lint:allow hotalloc (one recover closure per cell, and a cell is a whole simulation run)
			if r := recover(); r != nil {
				pans[i] = r
				failed.Store(true)
				ok = false
			}
		}()
		v, err := fn(i)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return false
		}
		out[i] = v
		return true
	}
	wg.Add(width)
	for w := 0; w < width; w++ {
		//lint:hotpath the worker claim loop spins once per cell
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if !call(i) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return nil, errs[i]
			}
			if pans[i] != nil {
				// Re-raising the worker's original panic value keeps Map
				// transparent to a sequential loop; this is propagation,
				// not a new failure mode.
				panic(pans[i]) //lint:allow panicfree (re-panics the worker's original panic value on the caller)
			}
		}
	}
	return out, nil
}
