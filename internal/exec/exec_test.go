package exec

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, width := range []int{0, 1, 2, 7, 64} {
		got, err := Map(width, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		want := make([]int, 20)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d: got %v", width, got)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map[int](4, 0, func(int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	for _, width := range []int{1, 4} {
		got, err := Map(width, 16, func(i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("width %d: err %v", width, err)
		}
		if got != nil {
			t.Fatalf("width %d: results %v on error", width, got)
		}
	}
}

func TestMapErrorStopsNewWork(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(2, 1000, func(i int) (int, error) {
		calls.Add(1)
		return 0, fmt.Errorf("fail %d", i)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if c := calls.Load(); c > 4 {
		t.Fatalf("%d calls after failure; want the pool to stop", c)
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	var inFlight, peak atomic.Int64
	_, err := Map(3, 50, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds width 3", p)
	}
}

// TestMapEdgeSemantics pins the contract the sharedstate analyzer
// assumes: a panicking fn propagates to the caller without deadlocking
// the pool, n=0 never calls fn, and width > n degrades to n workers —
// all at both the sequential and parallel widths.
func TestMapEdgeSemantics(t *testing.T) {
	cases := []struct {
		name      string
		width, n  int
		fn        func(i int) (int, error)
		wantPanic any    // non-nil: Map must re-panic with this value
		wantErr   string // non-empty: Map must fail with this message
		wantLen   int    // checked only on success
	}{
		{
			name:  "panic propagates sequentially",
			width: 1, n: 8,
			fn: func(i int) (int, error) {
				if i == 3 {
					panic("cell 3 blew up")
				}
				return i, nil
			},
			wantPanic: "cell 3 blew up",
		},
		{
			name:  "panic propagates from parallel workers",
			width: 4, n: 64,
			fn: func(i int) (int, error) {
				if i == 11 {
					panic("cell 11 blew up")
				}
				return i, nil
			},
			wantPanic: "cell 11 blew up",
		},
		{
			name:  "lowest-index failure wins over later panic",
			width: 4, n: 64,
			fn: func(i int) (int, error) {
				if i == 2 {
					return 0, errors.New("early error")
				}
				if i == 40 {
					panic("late panic")
				}
				return i, nil
			},
			wantErr: "early error",
		},
		{
			name:  "n=0 returns immediately",
			width: 4, n: 0,
			fn:      func(i int) (int, error) { panic("must not be called") },
			wantLen: 0,
		},
		{
			name:  "width greater than n",
			width: 64, n: 3,
			fn:      func(i int) (int, error) { return i * 10, nil },
			wantLen: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got []int
			var err error
			recovered := func() (r any) {
				defer func() { r = recover() }()
				got, err = Map(tc.width, tc.n, tc.fn)
				return nil
			}()
			if tc.wantPanic != nil {
				if recovered != tc.wantPanic {
					t.Fatalf("recovered %v, want panic %v", recovered, tc.wantPanic)
				}
				return
			}
			if recovered != nil {
				t.Fatalf("unexpected panic: %v", recovered)
			}
			if tc.wantErr != "" {
				if err == nil || err.Error() != tc.wantErr {
					t.Fatalf("err = %v, want %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.wantLen {
				t.Fatalf("len = %d, want %d", len(got), tc.wantLen)
			}
			for i, v := range got {
				if v != i*10 && tc.name == "width greater than n" {
					t.Fatalf("got[%d] = %d, want %d", i, v, i*10)
				}
			}
		})
	}
}

func TestWidth(t *testing.T) {
	if Width(0) != DefaultParallelism() || Width(-2) != DefaultParallelism() {
		t.Fatal("zero/negative must map to the default")
	}
	if Width(5) != 5 {
		t.Fatal("positive width must pass through")
	}
}
