package exec

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, width := range []int{0, 1, 2, 7, 64} {
		got, err := Map(width, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		want := make([]int, 20)
		for i := range want {
			want[i] = i * i
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d: got %v", width, got)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map[int](4, 0, func(int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	for _, width := range []int{1, 4} {
		got, err := Map(width, 16, func(i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("width %d: err %v", width, err)
		}
		if got != nil {
			t.Fatalf("width %d: results %v on error", width, got)
		}
	}
}

func TestMapErrorStopsNewWork(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(2, 1000, func(i int) (int, error) {
		calls.Add(1)
		return 0, fmt.Errorf("fail %d", i)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if c := calls.Load(); c > 4 {
		t.Fatalf("%d calls after failure; want the pool to stop", c)
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	var inFlight, peak atomic.Int64
	_, err := Map(3, 50, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds width 3", p)
	}
}

func TestWidth(t *testing.T) {
	if Width(0) != DefaultParallelism() || Width(-2) != DefaultParallelism() {
		t.Fatal("zero/negative must map to the default")
	}
	if Width(5) != 5 {
		t.Fatal("positive width must pass through")
	}
}
