// Package dvfs models dynamic voltage and frequency scaling hardware:
// the discrete operating points (frequency/voltage pairs) a processor
// exposes, and the latency and energy cost of switching between them.
//
// The reference part is the Intel Pentium M 1.4 GHz ("Banias") with
// Enhanced SpeedStep, the processor used by the paper's 16-node cluster;
// its five operating points are the paper's Table 2.
package dvfs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Hz is a clock frequency in cycles per second.
type Hz int64

// Convenient frequency units.
const (
	KHz Hz = 1000
	MHz    = 1000 * KHz
	GHz    = 1000 * MHz
)

// String formats the frequency in the largest convenient unit.
func (f Hz) String() string {
	switch {
	case f >= GHz && f%(100*MHz) == 0:
		return fmt.Sprintf("%.1fGHz", float64(f)/float64(GHz))
	case f >= MHz:
		return fmt.Sprintf("%dMHz", f/MHz)
	default:
		return fmt.Sprintf("%dHz", int64(f))
	}
}

// MHz reports the frequency as an integer count of megahertz, the unit
// the paper's tables use.
func (f Hz) MHz() int { return int(f / MHz) }

// OperatingPoint is one DVS setting: a core frequency and the supply
// voltage required to sustain it.
type OperatingPoint struct {
	Freq    Hz
	Voltage float64 // volts
}

// String formats the point as "1.4GHz@1.484V".
func (op OperatingPoint) String() string {
	return fmt.Sprintf("%v@%.3fV", op.Freq, op.Voltage)
}

// CyclesToDuration converts a cycle count at this operating point into
// simulated time, rounding up so work never takes zero time.
func (op OperatingPoint) CyclesToDuration(cycles int64) sim.Duration {
	if cycles <= 0 {
		return 0
	}
	// duration_ns = cycles * 1e9 / freq, rounded up.
	num := cycles * int64(sim.Second)
	d := num / int64(op.Freq)
	if num%int64(op.Freq) != 0 {
		d++
	}
	return sim.Duration(d)
}

// Table is an immutable list of operating points ordered from highest to
// lowest frequency.
type Table struct {
	points []OperatingPoint
}

// FreqTolerance is the granularity at which two frequencies count as
// the same operating point: 1 kHz. Table frequencies are integer Hz
// (exact, no floating-point keys), but governors and Subdivide derive
// frequencies by division, so lookups and duplicate detection key on
// kHz rather than demanding bit-exact Hz.
const FreqTolerance = KHz

// SameFreq reports whether a and b denote the same operating frequency,
// i.e. differ by less than FreqTolerance.
func SameFreq(a, b Hz) bool { return absHz(a-b) < FreqTolerance }

// NewTable builds a table from points, sorting them from highest to
// lowest frequency. It rejects an empty list, duplicate frequencies
// (within FreqTolerance), and non-positive frequency/voltage, since a
// malformed table is a configuration bug.
func NewTable(points []OperatingPoint) (Table, error) {
	if len(points) == 0 {
		return Table{}, errors.New("dvfs: empty operating-point table")
	}
	sorted := make([]OperatingPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Freq > sorted[j].Freq })
	for i, op := range sorted {
		if op.Freq <= 0 || op.Voltage <= 0 {
			return Table{}, fmt.Errorf("dvfs: invalid operating point %v", op)
		}
		if i > 0 && SameFreq(sorted[i-1].Freq, op.Freq) {
			return Table{}, fmt.Errorf("dvfs: duplicate frequency %v", op.Freq)
		}
	}
	return Table{points: sorted}, nil
}

// MustTable is NewTable for known-good literal tables (the hardware
// tables compiled into the binary); it panics on a malformed table.
func MustTable(points []OperatingPoint) Table {
	t, err := NewTable(points)
	if err != nil {
		panic(err)
	}
	return t
}

// PentiumM14 returns the five SpeedStep operating points of the paper's
// Table 2 for the Pentium M 1.4 GHz.
func PentiumM14() Table {
	return MustTable([]OperatingPoint{
		{Freq: 1400 * MHz, Voltage: 1.484},
		{Freq: 1200 * MHz, Voltage: 1.436},
		{Freq: 1000 * MHz, Voltage: 1.308},
		{Freq: 800 * MHz, Voltage: 1.180},
		{Freq: 600 * MHz, Voltage: 0.956},
	})
}

// Len reports the number of operating points.
func (t Table) Len() int { return len(t.points) }

// At returns the i-th point, 0 being the highest frequency.
//
//lint:range i [0,inf]
func (t Table) At(i int) OperatingPoint { return t.points[i] }

// Points returns a copy of all points, highest frequency first.
func (t Table) Points() []OperatingPoint {
	out := make([]OperatingPoint, len(t.points))
	copy(out, t.points)
	return out
}

// Highest returns the fastest operating point.
func (t Table) Highest() OperatingPoint { return t.points[0] }

// Lowest returns the slowest operating point.
func (t Table) Lowest() OperatingPoint { return t.points[len(t.points)-1] }

// IndexOf returns the index of the point whose frequency matches freq
// within FreqTolerance, or -1.
//
//lint:range result [-1,inf]
func (t Table) IndexOf(freq Hz) int {
	for i, op := range t.points {
		if SameFreq(op.Freq, freq) {
			return i
		}
	}
	return -1
}

// ByFreq returns the operating point matching freq within
// FreqTolerance. ok is false if the table has no such point.
func (t Table) ByFreq(freq Hz) (op OperatingPoint, ok bool) {
	if i := t.IndexOf(freq); i >= 0 {
		return t.points[i], true
	}
	return OperatingPoint{}, false
}

// ClosestTo returns the table point whose frequency is nearest to freq,
// preferring the faster point on ties (a governor asked for an
// unavailable speed should not silently underperform).
func (t Table) ClosestTo(freq Hz) OperatingPoint {
	best := t.points[0]
	bestDiff := absHz(best.Freq - freq)
	for _, op := range t.points[1:] {
		d := absHz(op.Freq - freq)
		if d < bestDiff { // strict: earlier (faster) point wins ties
			best, bestDiff = op, d
		}
	}
	return best
}

// StepDown returns the next slower point than the one at index i, or the
// same point if i is already the slowest.
//
//lint:range i [0,inf]
func (t Table) StepDown(i int) int {
	if i < len(t.points)-1 {
		return i + 1
	}
	return i
}

// StepUp returns the next faster point than the one at index i, or the
// same point if i is already the fastest.
//
//lint:range i [0,inf]
func (t Table) StepUp(i int) int {
	if i > 0 {
		return i - 1
	}
	return i
}

func absHz(f Hz) Hz {
	if f < 0 {
		return -f
	}
	return f
}

// Transition models the cost of moving between operating points.
// SpeedStep transitions stall the core while the PLL relocks and the
// voltage ramps; the paper quotes ~10 microseconds as the manufacturer's
// lower bound and observes that transition overhead makes dynamic-mode
// delay slightly exceed static-mode delay.
type Transition struct {
	// Latency is the core stall per switch.
	Latency sim.Duration
	// Energy is the extra energy per switch in joules (voltage ramp,
	// PLL relock); small but nonzero.
	Energy float64
}

// PentiumMTransition returns the transition model used for the paper's
// hardware: 10 µs stall (Intel's quoted lower bound) and a small fixed
// energy cost.
func PentiumMTransition() Transition {
	return Transition{Latency: 10 * sim.Microsecond, Energy: 0.0002}
}

// VoltageAt estimates the supply voltage needed for an arbitrary
// frequency by linear interpolation between the table's points
// (clamped at the ends). Platform builders use it to derive custom
// operating-point tables from a measured f-V curve.
func (t Table) VoltageAt(freq Hz) float64 {
	if freq >= t.points[0].Freq {
		return t.points[0].Voltage
	}
	last := t.points[len(t.points)-1]
	if freq <= last.Freq {
		return last.Voltage
	}
	for i := 1; i < len(t.points); i++ {
		hi, lo := t.points[i-1], t.points[i]
		if freq >= lo.Freq {
			frac := float64(freq-lo.Freq) / float64(hi.Freq-lo.Freq)
			return lo.Voltage + frac*(hi.Voltage-lo.Voltage)
		}
	}
	return last.Voltage
}

// Subdivide builds a finer table by inserting steps evenly-spaced
// points between the table's extremes, with voltages interpolated from
// the original curve. It models a processor exposing more P-states
// than the Pentium M's five. It fails if steps < 2 or the derived
// points collapse onto each other (extremes closer than FreqTolerance).
//
//lint:range steps [2,inf]
func (t Table) Subdivide(steps int) (Table, error) {
	if steps < 2 {
		return Table{}, fmt.Errorf("dvfs: Subdivide needs at least 2 steps, got %d", steps)
	}
	top := t.Highest().Freq
	bottom := t.Lowest().Freq
	pts := make([]OperatingPoint, steps)
	for i := 0; i < steps; i++ {
		f := bottom + Hz(int64(top-bottom)*int64(i)/int64(steps-1))
		pts[i] = OperatingPoint{Freq: f, Voltage: t.VoltageAt(f)}
	}
	return NewTable(pts)
}

// MustSubdivide is Subdivide for known-good step counts; it panics on
// error.
//
//lint:range steps [2,inf]
func (t Table) MustSubdivide(steps int) Table {
	sub, err := t.Subdivide(steps)
	if err != nil {
		panic(err)
	}
	return sub
}
