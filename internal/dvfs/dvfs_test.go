package dvfs

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHzString(t *testing.T) {
	cases := []struct {
		f    Hz
		want string
	}{
		{1400 * MHz, "1.4GHz"},
		{600 * MHz, "600MHz"},
		{1 * GHz, "1.0GHz"},
		{1500, "1500Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%d: got %q want %q", int64(c.f), got, c.want)
		}
	}
	if (800 * MHz).MHz() != 800 {
		t.Error("MHz conversion")
	}
}

func TestPentiumM14Table(t *testing.T) {
	tab := PentiumM14()
	if tab.Len() != 5 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Highest().Freq != 1400*MHz || tab.Highest().Voltage != 1.484 {
		t.Fatalf("Highest = %v", tab.Highest())
	}
	if tab.Lowest().Freq != 600*MHz || tab.Lowest().Voltage != 0.956 {
		t.Fatalf("Lowest = %v", tab.Lowest())
	}
	// Paper Table 2: voltages strictly decrease with frequency.
	for i := 1; i < tab.Len(); i++ {
		if tab.At(i).Voltage >= tab.At(i-1).Voltage {
			t.Errorf("voltage not decreasing at %d: %v >= %v", i, tab.At(i).Voltage, tab.At(i-1).Voltage)
		}
		if tab.At(i).Freq >= tab.At(i-1).Freq {
			t.Errorf("frequency not decreasing at %d", i)
		}
	}
	if got, ok := tab.ByFreq(1000 * MHz); !ok || got.Voltage != 1.308 {
		t.Fatalf("ByFreq(1000MHz) = %v, %v", got, ok)
	}
	if _, ok := tab.ByFreq(900 * MHz); ok {
		t.Fatal("ByFreq(900MHz) should miss")
	}
}

func TestNewTableSortsAndValidates(t *testing.T) {
	tab, err := NewTable([]OperatingPoint{
		{Freq: 600 * MHz, Voltage: 1.0},
		{Freq: 1400 * MHz, Voltage: 1.5},
		{Freq: 1000 * MHz, Voltage: 1.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.At(0).Freq != 1400*MHz || tab.At(2).Freq != 600*MHz {
		t.Fatalf("not sorted: %v", tab.Points())
	}
	mustErr := func(name string, pts []OperatingPoint) {
		t.Helper()
		if _, err := NewTable(pts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	mustErr("empty", nil)
	mustErr("dup freq", []OperatingPoint{{Freq: GHz, Voltage: 1}, {Freq: GHz, Voltage: 1.1}})
	mustErr("near-dup freq", []OperatingPoint{
		{Freq: GHz, Voltage: 1}, {Freq: GHz + FreqTolerance/2, Voltage: 1.1}})
	mustErr("zero voltage", []OperatingPoint{{Freq: GHz, Voltage: 0}})
}

func TestMustTablePanicsOnBadTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustTable(nil)
}

func TestPointsReturnsCopy(t *testing.T) {
	tab := PentiumM14()
	pts := tab.Points()
	pts[0].Freq = 1
	if tab.Highest().Freq != 1400*MHz {
		t.Fatal("Points leaked internal slice")
	}
}

func TestClosestTo(t *testing.T) {
	tab := PentiumM14()
	cases := []struct {
		ask  Hz
		want Hz
	}{
		{1400 * MHz, 1400 * MHz},
		{2 * GHz, 1400 * MHz},
		{100 * MHz, 600 * MHz},
		{900 * MHz, 1000 * MHz}, // tie: faster point wins
		{850 * MHz, 800 * MHz},
		{1100 * MHz, 1200 * MHz}, // tie: faster wins
	}
	for _, c := range cases {
		if got := tab.ClosestTo(c.ask); got.Freq != c.want {
			t.Errorf("ClosestTo(%v) = %v, want %v", c.ask, got.Freq, c.want)
		}
	}
}

func TestStepUpDown(t *testing.T) {
	tab := PentiumM14()
	if tab.StepDown(0) != 1 || tab.StepDown(4) != 4 {
		t.Error("StepDown")
	}
	if tab.StepUp(4) != 3 || tab.StepUp(0) != 0 {
		t.Error("StepUp")
	}
}

func TestCyclesToDuration(t *testing.T) {
	op := OperatingPoint{Freq: 1 * GHz, Voltage: 1}
	if d := op.CyclesToDuration(1000); d != 1000*sim.Nanosecond {
		t.Fatalf("1000 cycles @1GHz = %v", d)
	}
	op = OperatingPoint{Freq: 1400 * MHz, Voltage: 1}
	// 7 cycles at 1.4GHz = 5ns exactly.
	if d := op.CyclesToDuration(7); d != 5*sim.Nanosecond {
		t.Fatalf("7 cycles @1.4GHz = %v", d)
	}
	// 1 cycle rounds up to 1ns.
	if d := op.CyclesToDuration(1); d != 1*sim.Nanosecond {
		t.Fatalf("1 cycle @1.4GHz = %v", d)
	}
	if d := op.CyclesToDuration(0); d != 0 {
		t.Fatalf("0 cycles = %v", d)
	}
	if d := op.CyclesToDuration(-5); d != 0 {
		t.Fatalf("-5 cycles = %v", d)
	}
}

// Property: durations are monotone in cycles and inversely so in
// frequency, and never truncate to zero for positive work.
func TestCyclesToDurationProperty(t *testing.T) {
	tab := PentiumM14()
	f := func(rawCycles uint32, idx uint8) bool {
		cycles := int64(rawCycles%10_000_000) + 1
		i := int(idx) % tab.Len()
		op := tab.At(i)
		d := op.CyclesToDuration(cycles)
		if d <= 0 {
			return false
		}
		// More cycles never takes less time.
		if op.CyclesToDuration(cycles+1) < d {
			return false
		}
		// A slower clock never finishes sooner.
		if i+1 < tab.Len() {
			if tab.At(i+1).CyclesToDuration(cycles) < d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPentiumMTransition(t *testing.T) {
	tr := PentiumMTransition()
	if tr.Latency != 10*sim.Microsecond {
		t.Fatalf("Latency = %v", tr.Latency)
	}
	if tr.Energy <= 0 {
		t.Fatal("transition energy must be positive")
	}
}

func TestVoltageAt(t *testing.T) {
	tab := PentiumM14()
	// Exact table points return table voltages.
	for _, op := range tab.Points() {
		if got := tab.VoltageAt(op.Freq); got != op.Voltage {
			t.Errorf("VoltageAt(%v) = %v want %v", op.Freq, got, op.Voltage)
		}
	}
	// Midpoint interpolates.
	mid := tab.VoltageAt(1300 * MHz)
	if mid <= 1.436 || mid >= 1.484 {
		t.Fatalf("VoltageAt(1.3GHz) = %v", mid)
	}
	// Clamped at the ends.
	if tab.VoltageAt(2*GHz) != 1.484 || tab.VoltageAt(100*MHz) != 0.956 {
		t.Fatal("clamping")
	}
}

func TestSubdivide(t *testing.T) {
	tab, err := PentiumM14().Subdivide(9)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 9 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Highest().Freq != 1400*MHz || tab.Lowest().Freq != 600*MHz {
		t.Fatal("extremes")
	}
	// Voltage still decreases monotonically.
	for i := 1; i < tab.Len(); i++ {
		if tab.At(i).Voltage >= tab.At(i-1).Voltage {
			t.Fatalf("voltage not decreasing at %d", i)
		}
	}
	if _, err := PentiumM14().Subdivide(1); err == nil {
		t.Fatal("expected error for 1 step")
	}
}
