// Package machine models one node of the paper's cluster: a Dell
// Inspiron 8600 laptop with a 1.4 GHz Pentium M (five SpeedStep
// operating points), 32 KB L1 / 1 MB on-die L2, 1 GB DDR SDRAM, and a
// 100 Mb NIC. The model is a cost model (how long work takes at each
// frequency) coupled to a power model (what each activity draws at each
// operating point), with utilization accounting compatible with what the
// Linux cpuspeed daemon reads from /proc/stat.
package machine

import (
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/sim"
)

// Params collects every calibrated constant of the node model. Each
// value is tied to a datum from the paper or the platform's datasheet;
// the package-level shape tests in internal/cluster assert that the
// combination reproduces the paper's observed behaviour.
type Params struct {
	// Table holds the SpeedStep operating points (paper Table 2).
	Table dvfs.Table
	// Transition is the cost of a DVS switch (~10 µs stall).
	Transition dvfs.Transition

	// CPUDynAtTop is full-activity dynamic CPU power at the highest
	// operating point. The Pentium M 1.4 "Banias" TDP is 22 W.
	CPUDynAtTop power.Watts
	// CPULeakPerV2 is the leakage coefficient (W/V²).
	CPULeakPerV2 float64
	// CPUIdleActivity is the dynamic-activity floor of a halted core.
	CPUIdleActivity float64

	// Activity factors by node state: the fraction of peak switching
	// activity the core sustains. Compute is by definition 1.0;
	// MemoryStall ~0.5 reproduces the paper's Fig. 6 energy crescendo
	// (59.3% at 600 MHz); Spin ~0.27 reproduces Fig. 8's communication
	// crescendos (−30% to −36%); Blocked ~0.10 is a core parked in the
	// kernel, and reproduces the shallower savings of workloads that
	// wait out long transfers (parallel transpose, Fig. 5).
	ActivityCompute float64
	ActivityMemory  float64
	ActivitySpin    float64
	ActivityBlocked float64
	// ActivityCopy is the activity of MPI buffer copies (memcpy-like:
	// memory-bound but store-heavy).
	ActivityCopy float64

	// StallPenalty inflates core-clocked work at reduced frequency by
	// (1 + StallPenalty·(fmax/f − 1)): bus-ratio changes cost a little
	// extra beyond pure clock scaling, which is why the paper measures
	// a 134% slowdown at 600 MHz where pure 1/f predicts 133%.
	StallPenalty float64

	// MemLatency is the DRAM access latency; the paper quotes 110 ns.
	MemLatency sim.Duration
	// MemCyclesPerAccess is the core-clocked overhead accompanying each
	// DRAM access (address generation, fill handling). Together with
	// MemLatency it sets the memory benchmark's 5.4% slowdown span.
	MemCyclesPerAccess float64
	// L2CyclesPerAccess is the core-clocked cost of an on-die L2 hit.
	L2CyclesPerAccess float64
	// FlopsPerCycle converts workload flop counts into core cycles
	// (sustained, not peak, rate for SSE2-era codes).
	FlopsPerCycle float64

	// Non-CPU component budget (watts): constant idle draw and active
	// increments. The sum of idle draws (~8.6 W) is the "rest of the
	// laptop" with the panel off, and its relative size against CPU
	// power locates the Fig. 7 energy minimum at 800 MHz.
	BoardIdle    power.Watts
	MemoryIdle   power.Watts
	MemoryActive power.Watts
	DiskIdle     power.Watts
	NICIdle      power.Watts
	NICActive    power.Watts
}

// DefaultParams returns the calibrated Inspiron 8600 model used for all
// paper reproductions.
func DefaultParams() Params {
	return Params{
		Table:      dvfs.PentiumM14(),
		Transition: dvfs.PentiumMTransition(),

		CPUDynAtTop:     22.0,
		CPULeakPerV2:    0.5,
		CPUIdleActivity: 0.08,

		ActivityCompute: 1.0,
		ActivityMemory:  0.50,
		ActivitySpin:    0.27,
		ActivityBlocked: 0.10,
		ActivityCopy:    0.80,

		StallPenalty: 0.004,

		MemLatency:         110 * sim.Nanosecond,
		MemCyclesPerAccess: 6.5,
		L2CyclesPerAccess:  10,
		FlopsPerCycle:      1.0,

		BoardIdle:    5.1,
		MemoryIdle:   1.8,
		MemoryActive: 1.5,
		DiskIdle:     1.2,
		NICIdle:      0.5,
		NICActive:    0.6,
	}
}

// CPUModel builds the power.CPUModel for these parameters.
func (p Params) CPUModel() power.CPUModel {
	return power.NewCPUModel(p.Table, p.CPUDynAtTop, p.CPULeakPerV2, p.CPUIdleActivity)
}

// NonCPUIdle returns the summed idle draw of all non-CPU components.
func (p Params) NonCPUIdle() power.Watts {
	return p.BoardIdle + p.MemoryIdle + p.DiskIdle + p.NICIdle
}

// LowPowerParams models a node of the "low power" school the paper
// contrasts with power-aware DVS (Section 5: Green Destiny's Transmeta
// blades, Argus, BlueGene/L): a fixed-frequency ~667 MHz core drawing a
// few watts, with a lean blade power budget and no DVS headroom. Used
// to reproduce the paper's argument that the low-power approach caps
// performance where the power-aware approach keeps it available.
func LowPowerParams() Params {
	p := DefaultParams()
	p.Table = dvfs.MustTable([]dvfs.OperatingPoint{
		{Freq: 667 * dvfs.MHz, Voltage: 1.2},
	})
	p.CPUDynAtTop = 5.5 // W at 667 MHz: Crusoe-class core
	p.CPULeakPerV2 = 0.3
	// Blade chassis: shared fans and supplies, flash instead of disk.
	p.BoardIdle = 2.8
	p.MemoryIdle = 1.2
	p.DiskIdle = 0.4
	p.NICIdle = 0.4
	return p
}

// Validate reports the first problem with the parameters, or nil. The
// cluster runner validates its machine model up front so a bad custom
// platform fails loudly rather than producing nonsense joules.
func (p Params) Validate() error {
	switch {
	case p.Table.Len() == 0:
		return fmt.Errorf("machine: empty operating-point table")
	case p.CPUDynAtTop <= 0:
		return fmt.Errorf("machine: non-positive CPU dynamic power")
	case p.CPULeakPerV2 < 0:
		return fmt.Errorf("machine: negative leakage coefficient")
	case p.CPUIdleActivity < 0 || p.CPUIdleActivity > 1:
		return fmt.Errorf("machine: idle activity %v outside [0,1]", p.CPUIdleActivity)
	case p.ActivityCompute <= 0 || p.ActivityCompute > 1:
		return fmt.Errorf("machine: compute activity %v outside (0,1]", p.ActivityCompute)
	case p.MemLatency <= 0:
		return fmt.Errorf("machine: non-positive memory latency")
	case p.MemCyclesPerAccess < 0 || p.L2CyclesPerAccess <= 0:
		return fmt.Errorf("machine: invalid per-access cycle costs")
	case p.FlopsPerCycle <= 0:
		return fmt.Errorf("machine: non-positive flops per cycle")
	case p.Transition.Latency < 0 || p.Transition.Energy < 0:
		return fmt.Errorf("machine: negative transition cost")
	case p.BoardIdle < 0 || p.MemoryIdle < 0 || p.DiskIdle < 0 || p.NICIdle < 0:
		return fmt.Errorf("machine: negative component idle power")
	case p.MemoryActive < 0 || p.NICActive < 0:
		return fmt.Errorf("machine: negative component active power")
	}
	return nil
}
