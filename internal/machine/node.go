package machine

import (
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/sim"
)

// State is what the node's CPU is doing right now. It determines both
// the power draw and how the time is booked in the /proc/stat-style
// utilization counters that the cpuspeed governor samples.
type State int

// Node activity states.
const (
	// Idle: core halted; books as idle time.
	Idle State = iota
	// Compute: core-clocked work at full activity; books as busy.
	Compute
	// MemoryStall: core mostly stalled on DRAM; busy in /proc/stat
	// (the OS cannot tell a stall from work).
	MemoryStall
	// Copy: MPI buffer copies; busy.
	Copy
	// Spin: busy-wait polling for communication progress; busy.
	Spin
	// Blocked: parked in the kernel waiting for I/O; idle in /proc/stat.
	Blocked
	// Switching: stalled in a DVS transition; busy.
	Switching
	numStates
)

// States lists all node states in order.
func States() []State {
	return []State{Idle, Compute, MemoryStall, Copy, Spin, Blocked, Switching}
}

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Compute:
		return "compute"
	case MemoryStall:
		return "memstall"
	case Copy:
		return "copy"
	case Spin:
		return "spin"
	case Blocked:
		return "blocked"
	case Switching:
		return "switching"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// countsBusy reports whether time in this state appears as non-idle in
// /proc/stat. A spinning MPI library looks 100% busy to the OS, which is
// exactly why the cpuspeed daemon cannot find the slack (paper §4).
func (s State) countsBusy() bool {
	switch s {
	case Idle, Blocked:
		return false
	default:
		return true
	}
}

// FreqChange records one DVS transition for the PowerPack logs.
type FreqChange struct {
	At   sim.Time
	From dvfs.OperatingPoint
	To   dvfs.OperatingPoint
}

// Node is one cluster node: a DVS-capable CPU plus memory, disk, NIC and
// board power sinks, with exact per-component energy integration and
// utilization accounting.
type Node struct {
	id  int
	eng *sim.Engine
	par Params
	cpu power.CPUModel

	opIdx     int
	state     State
	stateSeq  uint64 // bumped on every state change; guards async restores
	lastFlush sim.Time

	nicActive bool // NIC transferring: adds NICActive watts

	integ [power.NumComponents]power.Integrator // indexed by power.Component

	busy, idle sim.Duration
	stateTime  [numStates]sim.Duration

	transitions int
	freqLog     []FreqChange
}

// NewNode builds a node with the given id running at the highest
// operating point, idle.
func NewNode(eng *sim.Engine, id int, par Params) *Node {
	n := &Node{
		id:  id,
		eng: eng,
		par: par,
		cpu: par.CPUModel(),
	}
	n.lastFlush = eng.Now()
	n.applyPower()
	return n
}

// ID returns the node's index in the cluster.
func (n *Node) ID() int { return n.id }

// Params returns the node's model parameters.
func (n *Node) Params() Params { return n.par }

// Engine returns the simulation engine the node lives on.
func (n *Node) Engine() *sim.Engine { return n.eng }

// OperatingPoint returns the current DVS setting.
func (n *Node) OperatingPoint() dvfs.OperatingPoint { return n.par.Table.At(n.opIdx) }

// OPIndex returns the index of the current operating point in the table
// (0 = fastest).
func (n *Node) OPIndex() int { return n.opIdx }

// State returns the current activity state.
func (n *Node) State() State { return n.state }

// activity maps the current state to a CPU activity factor.
func (n *Node) activity() float64 {
	switch n.state {
	case Compute, Switching:
		return n.par.ActivityCompute
	case MemoryStall:
		return n.par.ActivityMemory
	case Copy:
		return n.par.ActivityCopy
	case Spin:
		return n.par.ActivitySpin
	case Blocked:
		return n.par.ActivityBlocked
	default:
		return n.par.CPUIdleActivity
	}
}

// applyPower refreshes every component integrator at the current time.
func (n *Node) applyPower() {
	now := n.eng.Now()
	op := n.par.Table.At(n.opIdx)
	n.integ[power.CPU].SetPower(now, n.cpu.Power(op, n.activity()))
	memW := n.par.MemoryIdle
	if n.state == MemoryStall || n.state == Copy {
		memW += n.par.MemoryActive
	}
	n.integ[power.Memory].SetPower(now, memW)
	n.integ[power.Disk].SetPower(now, n.par.DiskIdle)
	nicW := n.par.NICIdle
	if n.nicActive {
		nicW += n.par.NICActive
	}
	n.integ[power.NIC].SetPower(now, nicW)
	n.integ[power.Board].SetPower(now, n.par.BoardIdle)
}

// flushTime books the elapsed interval into the utilization and
// per-state counters.
func (n *Node) flushTime() {
	now := n.eng.Now()
	d := now.Sub(n.lastFlush)
	if d > 0 {
		n.stateTime[n.state] += d
		if n.state.countsBusy() {
			n.busy += d
		} else {
			n.idle += d
		}
	}
	n.lastFlush = now
}

// SetState switches the node's activity state at the current time. It
// is safe to call from process bodies and from event callbacks (the MPI
// layer uses the latter to downgrade a long spin to a blocked wait).
func (n *Node) SetState(s State) {
	if s == n.state {
		return
	}
	n.flushTime()
	n.state = s
	n.stateSeq++
	n.applyPower()
}

// StateToken captures the current state-change sequence number. Paired
// with RestoreState it lets asynchronous actors (governor daemons, the
// MPI progress engine) change the state later only if nothing else
// intervened.
func (n *Node) StateToken() uint64 { return n.stateSeq }

// RestoreState sets the state to s only if no state change happened
// since the token was taken, and reports whether it applied.
func (n *Node) RestoreState(token uint64, s State) bool {
	if n.stateSeq == token {
		n.SetState(s)
		return true
	}
	return false
}

// SetNICActive marks the NIC as transferring (or not), adjusting its
// power draw.
func (n *Node) SetNICActive(active bool) {
	if n.nicActive == active {
		return
	}
	n.flushTime() // keep counters aligned with power segments
	n.nicActive = active
	n.applyPower()
}

// coreDuration converts core-clocked cycles at the current operating
// point into time, including the small bus-ratio stall penalty.
func (n *Node) coreDuration(cycles float64) sim.Duration {
	if cycles <= 0 {
		return 0
	}
	op := n.par.Table.At(n.opIdx)
	fmax := float64(n.par.Table.Highest().Freq)
	f := float64(op.Freq)
	penalty := 1 + n.par.StallPenalty*(fmax/f-1)
	return sim.DurationOf(cycles / f * penalty)
}

// Compute runs cycles of core-clocked work: the node is in the Compute
// state for cycles/f (plus the stall penalty) and then returns to Idle.
// Every MPI overhead charge and most workload inner loops funnel
// through here (the end-to-end figure profile puts it near 10%
// cumulative), so it is a hotpath root of its own: the whole
// duration-conversion + inState subtree must stay allocation-free.
//
//lint:hotpath
//lint:range cycles [0,inf]
func (n *Node) Compute(p *sim.Proc, cycles float64) {
	n.inState(p, Compute, n.coreDuration(cycles))
}

// ComputeFlops is Compute with work expressed in floating-point
// operations, converted via the sustained FlopsPerCycle rate.
//
//lint:range flops [0,inf]
func (n *Node) ComputeFlops(p *sim.Proc, flops float64) {
	n.Compute(p, flops/n.par.FlopsPerCycle)
}

// MemoryRounds performs accesses DRAM round trips: each pays the fixed
// DRAM latency plus a small core-clocked overhead, so the total time is
// only weakly frequency dependent — the slack DVS exploits (Fig. 6).
// The synthetic-campaign inner loops funnel through here (~16%
// cumulative in the campaign profile), so like Compute it is its own
// hotpath root.
//
//lint:hotpath
func (n *Node) MemoryRounds(p *sim.Proc, accesses int64) {
	if accesses <= 0 {
		return
	}
	core := n.coreDuration(float64(accesses) * n.par.MemCyclesPerAccess)
	total := core + sim.Duration(accesses)*n.par.MemLatency
	n.inState(p, MemoryStall, total)
}

// L2Rounds performs accesses L2-cache round trips. The L2 is on-die and
// core-clocked, so this is CPU-bound work (Fig. 7).
func (n *Node) L2Rounds(p *sim.Proc, accesses int64) {
	if accesses <= 0 {
		return
	}
	n.inState(p, Compute, n.coreDuration(float64(accesses)*n.par.L2CyclesPerAccess))
}

// CopyBytes models an MPI buffer copy of size bytes: memory-bound
// store-heavy work at roughly one access per cache line.
func (n *Node) CopyBytes(p *sim.Proc, bytes int64) {
	if bytes <= 0 {
		return
	}
	const lineBytes = 64
	lines := (bytes + lineBytes - 1) / lineBytes
	// Copies stream through caches with hardware prefetch: cheaper per
	// line than dependent-load MemoryRounds by roughly 4x.
	core := n.coreDuration(float64(lines) * n.par.MemCyclesPerAccess)
	total := core + sim.Duration(lines)*n.par.MemLatency/4
	n.inState(p, Copy, total)
}

// CopyCycles runs core-clocked work in the Copy state; the MPI layer
// uses it for buffer copies and checksumming whose cost it expresses in
// cycles directly.
func (n *Node) CopyCycles(p *sim.Proc, cycles float64) {
	n.inState(p, Copy, n.coreDuration(cycles))
}

// IdleFor parks the node idle for d.
//
//lint:range d [0,inf]
func (n *Node) IdleFor(p *sim.Proc, d sim.Duration) {
	n.inState(p, Idle, d)
}

// inState runs the process through a timed segment in state s, then
// returns the node to Idle (unless something else changed the state
// during the segment, e.g. a concurrent helper process).
//
// Every work primitive (Compute, MemoryRounds, CopyBytes, ...) funnels
// through here, so a campaign crosses it once per work segment — the
// profgate benchmarks put it at ~26% cumulative CPU. The hotpath root
// keeps the whole state-accounting subtree (SetState, flushTime,
// applyPower, RestoreState) allocation-free.
//
//lint:hotpath
func (n *Node) inState(p *sim.Proc, s State, d sim.Duration) {
	n.SetState(s)
	token := n.StateToken()
	p.Sleep(d)
	n.RestoreState(token, Idle)
}

// SetOperatingPointIndex moves the CPU to the operating point at index
// idx, stalling the caller for the transition latency and booking the
// transition energy. Work segments already in flight keep the duration
// computed at their start; the new frequency applies from the next
// segment (the model's granularity of error is one work segment).
// It returns an error (and changes nothing) if idx is out of range.
func (n *Node) SetOperatingPointIndex(p *sim.Proc, idx int) error {
	if idx == n.opIdx {
		return nil
	}
	if err := n.checkIdx(idx); err != nil {
		return err
	}
	prev := n.state
	n.SetState(Switching)
	token := n.StateToken()
	p.Sleep(n.par.Transition.Latency)
	n.commitOP(idx)
	n.RestoreState(token, prev)
	return nil
}

// SetOperatingPointIndexAsync performs the transition from event context
// (used by governor daemons driven by timers): the stall is modeled by
// the Switching state lasting the transition latency, after which the
// previous state is restored unless the workload changed state meanwhile.
// It returns an error (and changes nothing) if idx is out of range.
func (n *Node) SetOperatingPointIndexAsync(idx int) error {
	if idx == n.opIdx {
		return nil
	}
	if err := n.checkIdx(idx); err != nil {
		return err
	}
	prev := n.state
	n.SetState(Switching)
	token := n.StateToken()
	n.commitOP(idx)
	n.eng.After(n.par.Transition.Latency, func() {
		n.RestoreState(token, prev)
	})
	return nil
}

func (n *Node) checkIdx(idx int) error {
	if idx < 0 || idx >= n.par.Table.Len() {
		return fmt.Errorf("machine: operating point index %d out of range [0,%d)", idx, n.par.Table.Len())
	}
	return nil
}

func (n *Node) commitOP(idx int) {
	from := n.par.Table.At(n.opIdx)
	to := n.par.Table.At(idx)
	n.opIdx = idx
	n.transitions++
	n.freqLog = append(n.freqLog, FreqChange{At: n.eng.Now(), From: from, To: to})
	n.integ[power.CPU].AddEnergy(power.Joules(n.par.Transition.Energy))
	n.applyPower()
}

// SetFrequency moves to the table point closest to freq (blocking form).
func (n *Node) SetFrequency(p *sim.Proc, freq dvfs.Hz) error {
	return n.SetOperatingPointIndex(p, n.par.Table.IndexOf(n.par.Table.ClosestTo(freq).Freq)) //lint:allow rangecheck (the frequency is a row of the same table, so IndexOf cannot return its -1 miss sentinel)
}

// Transitions reports how many DVS switches the node has performed.
func (n *Node) Transitions() int { return n.transitions }

// FreqLog returns the recorded DVS transitions.
func (n *Node) FreqLog() []FreqChange { return n.freqLog }

// Utilization returns the cumulative busy and idle time as the OS would
// report them in /proc/stat, up to the current instant.
func (n *Node) Utilization() (busy, idle sim.Duration) {
	d := n.eng.Now().Sub(n.lastFlush)
	busy, idle = n.busy, n.idle
	if d > 0 {
		if n.state.countsBusy() {
			busy += d
		} else {
			idle += d
		}
	}
	return busy, idle
}

// StateTime reports the cumulative time spent in state s.
func (n *Node) StateTime(s State) sim.Duration {
	t := n.stateTime[s]
	if n.state == s {
		t += n.eng.Now().Sub(n.lastFlush)
	}
	return t
}

// UtilizationAt is Utilization evaluated at a (recent) past instant t:
// the counters are extrapolated through t instead of the engine clock.
// Like power.Integrator.EnergyAt, the answer clamps at the last state
// change, so it is exact whenever the node's state has not changed
// since t — the case that matters for back-dated end-of-run snapshots
// taken a lookahead window after the fact.
func (n *Node) UtilizationAt(t sim.Time) (busy, idle sim.Duration) {
	d := t.Sub(n.lastFlush)
	busy, idle = n.busy, n.idle
	if d > 0 {
		if n.state.countsBusy() {
			busy += d
		} else {
			idle += d
		}
	}
	return busy, idle
}

// StateTimeAt is StateTime evaluated at a (recent) past instant t,
// with the same clamping rule as UtilizationAt.
func (n *Node) StateTimeAt(s State, t sim.Time) sim.Duration {
	d := n.stateTime[s]
	if n.state == s {
		if extra := t.Sub(n.lastFlush); extra > 0 {
			d += extra
		}
	}
	return d
}

// TransitionsAt reports how many DVS switches the node had performed
// through time t.
func (n *Node) TransitionsAt(t sim.Time) int {
	c := len(n.freqLog)
	for c > 0 && n.freqLog[c-1].At > t {
		c--
	}
	return c
}

// EnergyAt returns the node's total energy consumed through time t,
// summed over all components.
func (n *Node) EnergyAt(t sim.Time) power.Joules {
	var sum power.Joules
	for _, c := range power.Components() {
		sum += n.integ[c].EnergyAt(t)
	}
	return sum
}

// ComponentEnergyAt returns the energy consumed by one component
// through time t.
func (n *Node) ComponentEnergyAt(c power.Component, t sim.Time) power.Joules {
	return n.integ[c].EnergyAt(t)
}

// Power returns the node's instantaneous total draw.
func (n *Node) Power() power.Watts {
	var sum power.Watts
	for _, c := range power.Components() {
		sum += n.integ[c].Power()
	}
	return sum
}

// ComponentPower returns one component's instantaneous draw.
func (n *Node) ComponentPower(c power.Component) power.Watts {
	return n.integ[c].Power()
}
