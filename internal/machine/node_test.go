package machine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/sim"
)

func newTestNode(t *testing.T) (*sim.Engine, *Node) {
	t.Helper()
	e := sim.NewEngine()
	return e, NewNode(e, 0, DefaultParams())
}

func run(t *testing.T, e *sim.Engine) sim.Time {
	t.Helper()
	end, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func TestStateStrings(t *testing.T) {
	if len(States()) != int(numStates) {
		t.Fatal("States() incomplete")
	}
	for _, s := range States() {
		if s.String() == "" {
			t.Errorf("state %d has empty name", int(s))
		}
	}
	if State(42).String() != "state(42)" {
		t.Error("unknown state formatting")
	}
}

func TestBusyClassification(t *testing.T) {
	busy := map[State]bool{
		Idle: false, Compute: true, MemoryStall: true, Copy: true,
		Spin: true, Blocked: false, Switching: true,
	}
	for s, want := range busy {
		if s.countsBusy() != want {
			t.Errorf("%v countsBusy = %v want %v", s, s.countsBusy(), want)
		}
	}
}

func TestComputeDurationScalesWithFrequency(t *testing.T) {
	par := DefaultParams()
	var durations []sim.Duration
	for i := 0; i < par.Table.Len(); i++ {
		e := sim.NewEngine()
		n := NewNode(e, 0, par)
		i := i
		e.Spawn("w", func(p *sim.Proc) {
			n.SetOperatingPointIndex(p, i)
			start := p.Now()
			n.Compute(p, 1.4e9) // one second of work at full speed
			durations = append(durations, p.Now().Sub(start))
		})
		run(t, e)
	}
	// Slower clock always takes longer.
	for i := 1; i < len(durations); i++ {
		if durations[i] <= durations[i-1] {
			t.Fatalf("durations not increasing: %v", durations)
		}
	}
	// The 600 MHz point is close to (and slightly above) the pure 1/f
	// ratio of 2.333x — the paper's 134% slowdown.
	ratio := float64(durations[4]) / float64(durations[0])
	if ratio < 2.333 || ratio > 2.45 {
		t.Fatalf("600MHz compute slowdown %.4f outside [2.333, 2.45]", ratio)
	}
}

func TestMemoryRoundsWeaklyFrequencyDependent(t *testing.T) {
	par := DefaultParams()
	elapsed := func(opIdx int) sim.Duration {
		e := sim.NewEngine()
		n := NewNode(e, 0, par)
		var d sim.Duration
		e.Spawn("w", func(p *sim.Proc) {
			n.SetOperatingPointIndex(p, opIdx)
			start := p.Now()
			n.MemoryRounds(p, 1_000_000)
			d = p.Now().Sub(start)
		})
		run(t, e)
		return d
	}
	fast, slow := elapsed(0), elapsed(par.Table.Len()-1)
	ratio := float64(slow) / float64(fast)
	// Paper Fig. 6: only ~5.4% slower at 600 MHz.
	if ratio < 1.02 || ratio > 1.10 {
		t.Fatalf("memory slowdown %.4f outside [1.02, 1.10]", ratio)
	}
}

func TestEnergyIntegration(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		n.Compute(p, 1.4e9) // ~1s at 1.4GHz
	})
	end := run(t, e)
	total := n.EnergyAt(end)
	// At full tilt the node draws CPU (22 + leak ~1.1) + base ~8.6 W;
	// for ~1s expect ~32 J.
	if total < 25 || total > 40 {
		t.Fatalf("compute-second energy %.2f J implausible", float64(total))
	}
	// Components sum to the total.
	var sum power.Joules
	for _, c := range power.Components() {
		sum += n.ComponentEnergyAt(c, end)
	}
	if math.Abs(float64(sum-total)) > 1e-9 {
		t.Fatalf("component sum %v != total %v", sum, total)
	}
	// CPU dominates during compute.
	if n.ComponentEnergyAt(power.CPU, end) < total/2 {
		t.Fatal("CPU should dominate compute energy")
	}
}

func TestIdleDrawsLess(t *testing.T) {
	par := DefaultParams()
	energy := func(body func(p *sim.Proc, n *Node)) power.Joules {
		e := sim.NewEngine()
		n := NewNode(e, 0, par)
		e.Spawn("w", func(p *sim.Proc) { body(p, n) })
		end := run(t, e)
		return n.EnergyAt(end)
	}
	busy := energy(func(p *sim.Proc, n *Node) { n.Compute(p, 1.4e9) })
	idle := energy(func(p *sim.Proc, n *Node) { n.IdleFor(p, sim.Second) })
	if idle >= busy/2 {
		t.Fatalf("idle energy %v not well below busy %v", idle, busy)
	}
	if idle <= 0 {
		t.Fatal("idle energy must be positive (base draw)")
	}
}

func TestMemoryStateActivatesDRAMPower(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		n.SetState(MemoryStall)
		before := n.Power()
		p.Sleep(sim.Millisecond)
		n.SetState(Idle)
		after := n.Power()
		if before <= after {
			t.Errorf("memory-stall power %v not above idle %v", before, after)
		}
	})
	run(t, e)
}

func TestNICActivePower(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		idleP := n.Power()
		n.SetNICActive(true)
		activeP := n.Power()
		want := float64(DefaultParams().NICActive)
		if math.Abs(float64(activeP-idleP)-want) > 1e-9 {
			t.Errorf("NIC delta = %v want %v", activeP-idleP, want)
		}
		n.SetNICActive(true) // idempotent
		n.SetNICActive(false)
		if n.Power() != idleP {
			t.Error("NIC power not restored")
		}
	})
	run(t, e)
}

func TestUtilizationAccounting(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		n.SetState(Compute)
		p.Sleep(300 * sim.Millisecond)
		n.SetState(Blocked)
		p.Sleep(500 * sim.Millisecond)
		n.SetState(Spin)
		p.Sleep(200 * sim.Millisecond)
		n.SetState(Idle)
	})
	end := run(t, e)
	busy, idle := n.Utilization()
	if busy != 500*sim.Millisecond {
		t.Fatalf("busy = %v", busy)
	}
	if idle != 500*sim.Millisecond {
		t.Fatalf("idle = %v", idle)
	}
	if busy+idle != end.Sub(0) {
		t.Fatalf("busy+idle %v != elapsed %v", busy+idle, end)
	}
	if n.StateTime(Compute) != 300*sim.Millisecond || n.StateTime(Spin) != 200*sim.Millisecond {
		t.Fatalf("state times: compute=%v spin=%v", n.StateTime(Compute), n.StateTime(Spin))
	}
}

func TestUtilizationIncludesOpenInterval(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		n.SetState(Compute)
		p.Sleep(100 * sim.Millisecond)
		// Query mid-state: the open interval counts.
		busy, _ := n.Utilization()
		if busy != 100*sim.Millisecond {
			t.Errorf("busy mid-state = %v", busy)
		}
		if st := n.StateTime(Compute); st != 100*sim.Millisecond {
			t.Errorf("StateTime mid-state = %v", st)
		}
		n.SetState(Idle)
	})
	run(t, e)
}

func TestDVSTransitionCostsAndLog(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		n.SetOperatingPointIndex(p, 4)
		if d := p.Now().Sub(start); d != DefaultParams().Transition.Latency {
			t.Errorf("transition stall = %v", d)
		}
		if n.OperatingPoint().Freq != 600*dvfs.MHz {
			t.Errorf("op = %v", n.OperatingPoint())
		}
		n.SetOperatingPointIndex(p, 4) // no-op: same point
		n.SetFrequency(p, 1000*dvfs.MHz)
	})
	run(t, e)
	if n.Transitions() != 2 {
		t.Fatalf("transitions = %d", n.Transitions())
	}
	log := n.FreqLog()
	if len(log) != 2 || log[0].To.Freq != 600*dvfs.MHz || log[1].To.Freq != 1000*dvfs.MHz {
		t.Fatalf("freq log = %+v", log)
	}
	if log[0].From.Freq != 1400*dvfs.MHz {
		t.Fatalf("log from = %v", log[0].From)
	}
}

func TestAsyncTransition(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		n.SetState(Spin)
		p.Sleep(sim.Second)
		n.SetState(Idle)
	})
	e.Schedule(sim.Time(200*sim.Millisecond), func() {
		n.SetOperatingPointIndexAsync(4)
	})
	run(t, e)
	if n.OPIndex() != 4 {
		t.Fatal("async transition did not apply")
	}
	// The spin state must have been restored after the switch stall so
	// that nearly the whole second books as spin.
	if st := n.StateTime(Spin); st < 990*sim.Millisecond {
		t.Fatalf("spin time %v; switching stall mishandled", st)
	}
	if st := n.StateTime(Switching); st != DefaultParams().Transition.Latency {
		t.Fatalf("switching time %v", st)
	}
}

func TestAsyncTransitionDoesNotStompNewState(t *testing.T) {
	e, n := newTestNode(t)
	e.Schedule(sim.Time(0), func() { n.SetOperatingPointIndexAsync(4) })
	// Workload changes state during the 10µs transition window.
	e.Schedule(sim.Time(5*sim.Microsecond), func() { n.SetState(Compute) })
	e.Schedule(sim.Time(sim.Second), func() { n.SetState(Idle) })
	run(t, e)
	// The delayed restore must not overwrite Compute back to Switching's
	// saved state.
	if got := n.StateTime(Compute); got != sim.Duration(sim.Second)-5*sim.Microsecond {
		t.Fatalf("compute time %v", got)
	}
}

func TestOutOfRangeOperatingPointErrors(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		if err := n.SetOperatingPointIndex(p, 99); err == nil {
			t.Error("expected error for index 99")
		}
		if err := n.SetOperatingPointIndexAsync(-1); err == nil {
			t.Error("expected error for index -1")
		}
		// A failed switch must not have moved the operating point or
		// logged a transition.
		if n.Transitions() != 0 {
			t.Errorf("transitions = %d after failed switches", n.Transitions())
		}
	})
	run(t, e)
}

func TestLowerFrequencyLowersPower(t *testing.T) {
	par := DefaultParams()
	for _, st := range []State{Compute, MemoryStall, Spin, Blocked, Idle} {
		var prev power.Watts
		for i := 0; i < par.Table.Len(); i++ {
			e := sim.NewEngine()
			n := NewNode(e, 0, par)
			var got power.Watts
			i := i
			e.Spawn("w", func(p *sim.Proc) {
				n.SetOperatingPointIndex(p, i)
				n.SetState(st)
				got = n.Power()
				n.SetState(Idle)
			})
			run(t, e)
			if i > 0 && got >= prev {
				t.Errorf("state %v: power %v at point %d not below %v", st, got, i, prev)
			}
			prev = got
		}
	}
}

// Property: energy through any prefix is nondecreasing and the busy/idle
// split always covers elapsed time exactly.
func TestAccountingInvariantProperty(t *testing.T) {
	par := DefaultParams()
	f := func(ops []uint8) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		e := sim.NewEngine()
		n := NewNode(e, 0, par)
		ok := true
		e.Spawn("w", func(p *sim.Proc) {
			var lastE power.Joules
			for _, op := range ops {
				switch op % 5 {
				case 0:
					n.Compute(p, float64(op)*1e5+1)
				case 1:
					n.MemoryRounds(p, int64(op)*100+1)
				case 2:
					n.L2Rounds(p, int64(op)*1000+1)
				case 3:
					n.IdleFor(p, sim.Duration(op)*sim.Microsecond)
				case 4:
					n.SetOperatingPointIndex(p, int(op)%par.Table.Len())
				}
				eNow := n.EnergyAt(p.Now())
				if eNow < lastE {
					ok = false
				}
				lastE = eNow
				busy, idle := n.Utilization()
				if busy+idle != p.Now().Sub(0) {
					ok = false
				}
			}
		})
		if _, err := e.Run(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeAccessors(t *testing.T) {
	e, n := newTestNode(t)
	if n.ID() != 0 || n.Engine() != e || n.State() != Idle {
		t.Fatal("accessors")
	}
	if n.Params().CPUDynAtTop != DefaultParams().CPUDynAtTop {
		t.Fatal("params")
	}
	want := DefaultParams().BoardIdle + DefaultParams().MemoryIdle +
		DefaultParams().DiskIdle + DefaultParams().NICIdle
	if got := DefaultParams().NonCPUIdle(); got != want {
		t.Fatalf("NonCPUIdle = %v want %v", got, want)
	}
}

func TestComputeFlops(t *testing.T) {
	e, n := newTestNode(t)
	var d sim.Duration
	e.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		n.ComputeFlops(p, 1.4e9) // at 1 flop/cycle this is ~1s at 1.4GHz
		d = p.Now().Sub(start)
	})
	run(t, e)
	if d < 990*sim.Millisecond || d > 1010*sim.Millisecond {
		t.Fatalf("1.4 Gflop took %v", d)
	}
}

func TestCopyBytesAndCycles(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		n.CopyBytes(p, 1<<20) // 1 MB
		d := p.Now().Sub(start)
		// 16384 lines × (6.5 cycles/1.4GHz + 27.5ns) ≈ 0.53ms.
		if d < 300*sim.Microsecond || d > 900*sim.Microsecond {
			t.Errorf("1MB copy took %v", d)
		}
		n.CopyBytes(p, 0) // no-op
		start2 := p.Now()
		n.CopyCycles(p, 1.4e6) // 1ms of cycle-priced copy work
		if got := p.Now().Sub(start2); got < 990*sim.Microsecond || got > 1100*sim.Microsecond {
			t.Errorf("CopyCycles took %v", got)
		}
	})
	run(t, e)
	if ct := n.StateTime(Copy); ct <= 0 {
		t.Fatal("copy state never booked")
	}
}

func TestComponentPower(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		var sum power.Watts
		for _, c := range power.Components() {
			sum += n.ComponentPower(c)
		}
		if sum != n.Power() {
			t.Errorf("component powers %v != total %v", sum, n.Power())
		}
		if n.ComponentPower(power.Board) != DefaultParams().BoardIdle {
			t.Error("board power")
		}
	})
	run(t, e)
}

func TestZeroWorkIsFree(t *testing.T) {
	e, n := newTestNode(t)
	e.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		n.MemoryRounds(p, 0)
		n.MemoryRounds(p, -3)
		n.L2Rounds(p, 0)
		n.Compute(p, 0)
		n.Compute(p, -1)
		if p.Now() != start {
			t.Error("zero work consumed time")
		}
	})
	run(t, e)
}

func TestLowPowerParams(t *testing.T) {
	lp := LowPowerParams()
	if lp.Table.Len() != 1 {
		t.Fatal("low-power node must have a single operating point")
	}
	if lp.Table.Highest().Freq != 667*dvfs.MHz {
		t.Fatalf("freq %v", lp.Table.Highest().Freq)
	}
	// A low-power node under full load draws far less than the
	// Pentium M node...
	e := sim.NewEngine()
	n := NewNode(e, 0, lp)
	n.SetState(Compute)
	lpPower := n.Power()
	e2 := sim.NewEngine()
	n2 := NewNode(e2, 0, DefaultParams())
	n2.SetState(Compute)
	if lpPower >= n2.Power()/2 {
		t.Fatalf("low-power node draws %v vs %v", lpPower, n2.Power())
	}
	// ...but also computes much more slowly.
	if lp.Table.Highest().CyclesToDuration(1e9) <= DefaultParams().Table.Highest().CyclesToDuration(1e9) {
		t.Fatal("low-power node should be slower")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := LowPowerParams().Validate(); err != nil {
		t.Fatal(err)
	}
	breakers := []func(*Params){
		func(p *Params) { p.CPUDynAtTop = 0 },
		func(p *Params) { p.CPULeakPerV2 = -1 },
		func(p *Params) { p.CPUIdleActivity = 2 },
		func(p *Params) { p.ActivityCompute = 0 },
		func(p *Params) { p.MemLatency = 0 },
		func(p *Params) { p.L2CyclesPerAccess = 0 },
		func(p *Params) { p.FlopsPerCycle = 0 },
		func(p *Params) { p.Transition.Latency = -1 },
		func(p *Params) { p.BoardIdle = -1 },
		func(p *Params) { p.NICActive = -1 },
	}
	for i, brk := range breakers {
		p := DefaultParams()
		brk(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("breaker %d: expected error", i)
		}
	}
}
