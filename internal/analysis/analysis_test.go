package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func swimLike() core.Crescendo {
	return core.Crescendo{Points: []core.Point{
		{Label: "1.4GHz", Energy: 100, Delay: 10},
		{Label: "1.2GHz", Energy: 90, Delay: 10.3},
		{Label: "1.0GHz", Energy: 78, Delay: 10.8},
		{Label: "800MHz", Energy: 68, Delay: 11.6},
		{Label: "600MHz", Energy: 60, Delay: 13.0},
	}}
}

func TestSavings(t *testing.T) {
	s := Savings(swimLike(), 0)
	if len(s) != 5 {
		t.Fatal("length")
	}
	if s[0].EnergySaved != 0 || s[0].DelayPenalty != 0 || s[0].ImprovementPc != 0 {
		t.Fatalf("reference row: %+v", s[0])
	}
	if math.Abs(s[4].EnergySaved-0.40) > 1e-9 {
		t.Fatalf("600MHz saving %v", s[4].EnergySaved)
	}
	if math.Abs(s[4].DelayPenalty-0.30) > 1e-9 {
		t.Fatalf("600MHz penalty %v", s[4].DelayPenalty)
	}
	// Interior points improve the weighted metric for this shape.
	if s[2].ImprovementPc <= 0 {
		t.Fatalf("1.0GHz improvement %v", s[2].ImprovementPc)
	}
}

func TestParetoFrontierMonotoneCrescendo(t *testing.T) {
	// Energy strictly falls while delay strictly rises: every point is
	// Pareto optimal.
	got := ParetoFrontier(swimLike())
	if len(got) != 5 {
		t.Fatalf("frontier %v", got)
	}
}

func TestParetoFrontierDropsDominated(t *testing.T) {
	c := swimLike()
	// Make 800MHz strictly worse than 1.0GHz.
	c.Points[3].Energy = 80
	c.Points[3].Delay = 11.8
	got := ParetoFrontier(c)
	for _, i := range got {
		if i == 3 {
			t.Fatal("dominated point on the frontier")
		}
	}
	if len(got) != 4 {
		t.Fatalf("frontier %v", got)
	}
}

func TestCrossoverDelta(t *testing.T) {
	a := core.Point{Energy: 1, Delay: 1}
	b := core.Point{Energy: 0.7, Delay: 1.1}
	d, ok := CrossoverDelta(a, b)
	if !ok {
		t.Fatal("expected a crossover")
	}
	// At the crossover the weighted metrics tie.
	wa := core.WeightedED2P(a.Energy, a.Delay, d)
	wb := core.WeightedED2P(b.Energy, b.Delay, d)
	if math.Abs(wa-wb)/wa > 1e-9 {
		t.Fatalf("no tie at d=%v: %v vs %v", d, wa, wb)
	}
	// b wins below the crossover (energy side), a above.
	if core.WeightedED2P(b.Energy, b.Delay, d-0.1) >= core.WeightedED2P(a.Energy, a.Delay, d-0.1) {
		t.Fatal("b should win below the crossover")
	}
	if core.WeightedED2P(b.Energy, b.Delay, d+0.1) <= core.WeightedED2P(a.Energy, a.Delay, d+0.1) {
		t.Fatal("a should win above the crossover")
	}
}

func TestCrossoverDeltaDominated(t *testing.T) {
	// Strictly better on both axes: no crossover inside [-1, 1].
	a := core.Point{Energy: 1, Delay: 1}
	b := core.Point{Energy: 0.8, Delay: 0.9}
	if _, ok := CrossoverDelta(a, b); ok {
		t.Fatal("dominated pair should not cross")
	}
	// Identical points: degenerate.
	if _, ok := CrossoverDelta(a, a); ok {
		t.Fatal("identical points should not cross")
	}
}

func TestBestByDelta(t *testing.T) {
	ivs := BestByDelta(swimLike(), 201)
	if len(ivs) < 2 {
		t.Fatalf("intervals: %+v", ivs)
	}
	// Energy extreme picks the lowest point, performance extreme the
	// fastest.
	if ivs[0].Label != "600MHz" {
		t.Fatalf("d=-1 best %q", ivs[0].Label)
	}
	if ivs[len(ivs)-1].Label != "1.4GHz" {
		t.Fatalf("d=+1 best %q", ivs[len(ivs)-1].Label)
	}
	// Intervals are contiguous and ordered.
	for i := 1; i < len(ivs); i++ {
		if ivs[i].From <= ivs[i-1].To-1e-9 {
			t.Fatalf("intervals overlap: %+v", ivs)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for samples<2")
		}
	}()
	BestByDelta(swimLike(), 1)
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel()
	// 1 kWh of IT load costs price × cooling overhead.
	if got := m.EnergyCostUSD(3.6e6); math.Abs(got-0.17) > 1e-9 {
		t.Fatalf("1kWh costs %v", got)
	}
	// Paper's example: ~100 MW continuous at $0.10/kWh is $10k/hour
	// before cooling. Check within our model (divide overhead out).
	perHour := m.EnergyCostUSD(100e6*3600) / m.CoolingOverhead
	if math.Abs(perHour-10000) > 1 {
		t.Fatalf("petaflop hour costs %v", perHour)
	}
	annual := m.AnnualCostUSD(30*3600, 3600) // 30 W continuous
	if annual < 40 || annual > 50 {
		t.Fatalf("30W annual cost %v", annual)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.AnnualCostUSD(1, 0)
}

func TestReliabilityModel(t *testing.T) {
	m := DefaultReliabilityModel()
	// The paper's rule: ×2 life per 10°C decrease.
	if got := LifeFactor(45, 55); math.Abs(got-2) > 1e-12 {
		t.Fatalf("10C decrease factor %v", got)
	}
	if got := LifeFactor(65, 55); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("10C increase factor %v", got)
	}
	// Lower power → lower temperature → fewer failures.
	hot := m.AnnualFailureRate(30)
	cool := m.AnnualFailureRate(18)
	if cool >= hot {
		t.Fatalf("failure rates: cool %v hot %v", cool, hot)
	}
	// MTBF scales down with node count and up with cooling.
	if m.ClusterMTBFHours(32, 30) >= m.ClusterMTBFHours(16, 30) {
		t.Fatal("more nodes must fail more often")
	}
	if m.ClusterMTBFHours(16, 18) <= m.ClusterMTBFHours(16, 30) {
		t.Fatal("cooler cluster must fail less often")
	}
	// Rate saturates at 1.
	if m.AnnualFailureRate(1e6) != 1 {
		t.Fatal("rate must clamp at 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ClusterMTBFHours(0, 30)
}

// Property: the weighted-ED2P best point always lies on the Pareto
// frontier.
func TestBestOnFrontierProperty(t *testing.T) {
	f := func(raw [5]uint16, dRaw uint8) bool {
		d := (float64(dRaw)/255)*2 - 1
		c := core.Crescendo{}
		for i, r := range raw {
			c.Points = append(c.Points, core.Point{
				Label:  string(rune('a' + i)),
				Energy: 1 + float64(r%500),
				Delay:  1 + float64(r%97)/10,
			})
		}
		best := c.Best(d)
		for _, i := range ParetoFrontier(c) {
			if i == best {
				return true
			}
		}
		// The best must be tied with a frontier point if not on it
		// (equal energy and delay); check for duplicates.
		bp := c.Points[best]
		for _, i := range ParetoFrontier(c) {
			if c.Points[i].Energy == bp.Energy && c.Points[i].Delay == bp.Delay {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerCapSchedule(t *testing.T) {
	// Two identical swim-like jobs: 100J/10s = 10W at the top point
	// down to 60J/13s ≈ 4.6W at the bottom.
	jobs := []core.Crescendo{swimLike(), swimLike()}

	// Generous cap: both jobs run at the fastest point.
	picks := PowerCapSchedule(jobs, 25)
	if picks == nil || picks[0].Point != 0 || picks[1].Point != 0 {
		t.Fatalf("uncapped picks %+v", picks)
	}
	// Tight cap: both must slow down.
	picks = PowerCapSchedule(jobs, 11)
	if picks == nil {
		t.Fatal("feasible cap returned nil")
	}
	var watts float64
	for j, p := range picks {
		pt := jobs[j].Points[p.Point]
		watts += pt.Energy / pt.Delay
		if p.Point == 0 {
			t.Fatalf("job %d still at the top point under an 11W cap", j)
		}
	}
	if watts > 11 {
		t.Fatalf("schedule draws %.2f W over the cap", watts)
	}
	// Infeasible cap.
	if got := PowerCapSchedule(jobs, 1); got != nil {
		t.Fatalf("infeasible cap returned %+v", got)
	}
	if got := PowerCapSchedule(nil, 10); got != nil {
		t.Fatal("empty jobs")
	}
}

func TestPowerCapMinimizesMakespan(t *testing.T) {
	// One job has much steeper delay costs; the optimizer should slow
	// the cheaper-to-slow job first.
	flexible := swimLike() // delay grows slowly
	stiff := core.Crescendo{Points: []core.Point{
		{Label: "fast", Energy: 100, Delay: 10},
		{Label: "slow", Energy: 90, Delay: 25},
	}}
	picks := PowerCapSchedule([]core.Crescendo{flexible, stiff}, 18)
	if picks == nil {
		t.Fatal("infeasible?")
	}
	if picks[1].Point != 0 {
		t.Fatalf("stiff job slowed: %+v", picks)
	}
	if picks[0].Point == 0 {
		t.Fatalf("flexible job not slowed: %+v", picks)
	}
}
