// Package analysis provides the decision-support layer over measured
// energy-delay crescendos: savings summaries, Pareto frontiers,
// weight-factor crossovers, and the operating-cost and reliability
// models the paper's introduction motivates DVS with ("$100 per
// megawatt-hour ... a petaflop system will sustain hardware failures
// once every twenty-four hours; component life expectancy decreases 50%
// for every 10°C temperature increase").
package analysis

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Saving summarizes one operating point against the reference: how much
// energy it saves for how much extra time.
type Saving struct {
	Label         string
	EnergySaved   float64 // fraction of reference energy, e.g. 0.30
	DelayPenalty  float64 // fraction of reference delay, e.g. 0.08
	WeightedED2P  float64 // under the HPC weight, normalized
	ImprovementPc float64 // weighted-ED2P improvement over reference, percent
}

// Savings tabulates every point of a crescendo against point ref.
func Savings(c core.Crescendo, ref int) []Saving {
	base := c.Points[ref]
	wBase := core.WeightedED2P(1, 1, core.DeltaHPC)
	out := make([]Saving, 0, len(c.Points))
	for _, p := range c.Points {
		e := p.Energy / base.Energy
		d := p.Delay / base.Delay
		w := core.WeightedED2P(e, d, core.DeltaHPC)
		out = append(out, Saving{
			Label:         p.Label,
			EnergySaved:   1 - e,
			DelayPenalty:  d - 1,
			WeightedED2P:  w,
			ImprovementPc: (1 - w/wBase) * 100,
		})
	}
	return out
}

// ParetoFrontier returns the indices of the crescendo's Pareto-optimal
// points (no other point has both lower energy and lower delay), in
// sweep order. Every "best" operating point under any weight factor
// lies on this frontier.
func ParetoFrontier(c core.Crescendo) []int {
	var out []int
	for i, p := range c.Points {
		dominated := false
		for j, q := range c.Points {
			if i == j {
				continue
			}
			if q.Energy <= p.Energy && q.Delay <= p.Delay &&
				(q.Energy < p.Energy || q.Delay < p.Delay) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// CrossoverDelta finds the weight factor at which the best operating
// point flips between two points of a crescendo: the d solving
// W(E1,D1,d) = W(E2,D2,d). It returns ok=false when the points do not
// cross inside [-1, 1] (one dominates at every weight).
func CrossoverDelta(a, b core.Point) (d float64, ok bool) {
	// W(E,D,d) = E^(1-d) D^(2+2d); equality gives
	// (1-d)·ln(E1/E2) + (2+2d)·ln(D1/D2) = 0.
	le := math.Log(a.Energy / b.Energy)
	ld := math.Log(a.Delay / b.Delay)
	denom := le - 2*ld
	if denom == 0 {
		return 0, false
	}
	d = (le + 2*ld) / denom
	if d < -1 || d > 1 || math.IsNaN(d) {
		return 0, false
	}
	return d, true
}

// BestByDelta maps the whole weight range onto best operating points:
// it samples d over [-1, 1] in steps and reports the intervals over
// which each point is "best". This is the user-facing answer to "how
// much do I have to care about performance before 1.4 GHz wins?".
type DeltaInterval struct {
	Label    string
	From, To float64
}

// BestByDelta computes the best-point intervals with the given
// resolution (number of samples ≥ 2).
func BestByDelta(c core.Crescendo, samples int) []DeltaInterval {
	if samples < 2 {
		panic("analysis: need at least 2 samples") //lint:allow panicfree (metric-domain validation; callers pass validated curves)
	}
	var out []DeltaInterval
	var cur *DeltaInterval
	for i := 0; i < samples; i++ {
		d := -1 + 2*float64(i)/float64(samples-1)
		best := c.Best(d)
		label := c.Points[best].Label
		if cur == nil || cur.Label != label {
			if cur != nil {
				out = append(out, *cur)
			}
			cur = &DeltaInterval{Label: label, From: d, To: d}
		} else {
			cur.To = d
		}
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}

// CostModel prices cluster energy, following the paper's figures.
type CostModel struct {
	// USDPerKWh is the electricity price ($0.10/kWh in the paper).
	USDPerKWh float64
	// CoolingOverhead multiplies IT energy for dedicated cooling
	// (the paper notes its estimates ignore cooling; a typical 2005
	// machine room PUE-style factor is ~1.7).
	CoolingOverhead float64
}

// DefaultCostModel returns the paper's $0.10/kWh with a 1.7 cooling
// multiplier.
func DefaultCostModel() CostModel {
	return CostModel{USDPerKWh: 0.10, CoolingOverhead: 1.7}
}

// EnergyCostUSD prices joules of IT energy, including cooling.
func (m CostModel) EnergyCostUSD(joules float64) float64 {
	kwh := joules / 3.6e6
	return kwh * m.CoolingOverhead * m.USDPerKWh
}

// AnnualCostUSD extrapolates a measured run to a year of continuous
// operation: the run consumed joules over seconds of wall time.
func (m CostModel) AnnualCostUSD(joules, seconds float64) float64 {
	if seconds <= 0 {
		panic(fmt.Sprintf("analysis: non-positive duration %v", seconds)) //lint:allow panicfree (metric-domain validation; callers pass validated curves)
	}
	const yearSeconds = 365.25 * 24 * 3600
	return m.EnergyCostUSD(joules / seconds * yearSeconds)
}

// ReliabilityModel converts node power into steady-state component
// temperature and life expectancy, per the paper's rule of thumb:
// life expectancy halves for every 10°C increase.
type ReliabilityModel struct {
	// AmbientC is the machine-room ambient temperature.
	AmbientC float64
	// ThermalResistanceCPerW converts dissipated watts into the
	// steady-state temperature rise above ambient.
	ThermalResistanceCPerW float64
	// BaseAnnualFailureRate is the per-node failure probability per
	// year at the reference temperature (the paper cites 2-3% for
	// commodity components).
	BaseAnnualFailureRate float64
	// ReferenceTempC is the temperature at which the base rate holds.
	ReferenceTempC float64
}

// DefaultReliabilityModel returns a commodity-node model: 22°C ambient,
// 1.2°C/W case rise, 2.5%/year at 55°C.
func DefaultReliabilityModel() ReliabilityModel {
	return ReliabilityModel{
		AmbientC:               22,
		ThermalResistanceCPerW: 1.2,
		BaseAnnualFailureRate:  0.025,
		ReferenceTempC:         55,
	}
}

// NodeTempC returns the steady-state component temperature at the given
// average node power.
func (m ReliabilityModel) NodeTempC(watts float64) float64 {
	return m.AmbientC + m.ThermalResistanceCPerW*watts
}

// LifeFactor returns the component life multiplier when operating at
// tempC instead of refC: ×2 for every 10°C decrease (the paper's rule).
func LifeFactor(tempC, refC float64) float64 {
	return math.Pow(2, (refC-tempC)/10)
}

// AnnualFailureRate returns the per-node failure probability per year
// at the given average power.
func (m ReliabilityModel) AnnualFailureRate(watts float64) float64 {
	t := m.NodeTempC(watts)
	rate := m.BaseAnnualFailureRate / LifeFactor(t, m.ReferenceTempC)
	if rate > 1 {
		rate = 1
	}
	return rate
}

// ClusterMTBFHours returns the expected hours between node failures for
// a cluster of nodes drawing the given average power each, assuming
// independent exponential failures.
func (m ReliabilityModel) ClusterMTBFHours(nodes int, watts float64) float64 {
	if nodes <= 0 {
		panic("analysis: non-positive node count") //lint:allow panicfree (metric-domain validation; callers pass validated curves)
	}
	perNodePerHour := m.AnnualFailureRate(watts) / (365.25 * 24)
	return 1 / (perNodePerHour * float64(nodes))
}

// CapChoice is one job's operating-point selection under a power cap.
type CapChoice struct {
	Job   int // index into the input crescendos
	Point int // index into that job's crescendo
}

// PowerCapSchedule picks one operating point per job so that the summed
// average power (energy/delay per job) stays at or below capWatts while
// total delay is minimized. Jobs run concurrently on disjoint nodes, so
// powers add and the makespan is the max delay; the optimizer is an
// exhaustive search over the per-job frontiers, which is exact for the
// handful of points per job the paper's hardware exposes. It returns
// nil when even the lowest points exceed the cap.
func PowerCapSchedule(jobs []core.Crescendo, capWatts float64) []CapChoice {
	if len(jobs) == 0 {
		return nil
	}
	type option struct {
		watts float64
		delay float64
	}
	opts := make([][]option, len(jobs))
	for j, c := range jobs {
		for _, p := range c.Points {
			opts[j] = append(opts[j], option{watts: p.Energy / p.Delay, delay: p.Delay})
		}
	}
	best := math.Inf(1)
	var bestPick []int
	pick := make([]int, len(jobs))
	var walk func(j int, watts, worstDelay float64)
	walk = func(j int, watts, worstDelay float64) {
		if watts > capWatts || worstDelay >= best {
			return // prune
		}
		if j == len(jobs) {
			best = worstDelay
			bestPick = append([]int(nil), pick...)
			return
		}
		for i, o := range opts[j] {
			pick[j] = i
			d := worstDelay
			if o.delay > d {
				d = o.delay
			}
			walk(j+1, watts+o.watts, d)
		}
	}
	walk(0, 0, 0)
	if bestPick == nil {
		return nil
	}
	out := make([]CapChoice, len(jobs))
	for j, i := range bestPick {
		out[j] = CapChoice{Job: j, Point: i}
	}
	return out
}
