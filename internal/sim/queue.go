package sim

// event is a scheduled occurrence: at time t, fn runs inside the engine
// goroutine. Events with equal times fire in scheduling order (seq), which
// keeps runs deterministic.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of events ordered by (time, seq). It is
// implemented directly rather than via container/heap to avoid interface
// boxing on the hot path; the engine pushes and pops millions of events in
// a large cluster run.
type eventHeap struct {
	items []event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev event) {
	h.items = append(h.items, ev)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = event{} // release fn for GC
	h.items = h.items[:n]
	h.siftDown(0)
	return top
}

func (h *eventHeap) peek() event { return h.items[0] }

func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
