package sim

// eventKind selects what an event does when it fires. The engine's
// three process-lifecycle transitions (start, Sleep wake, value
// delivery) are encoded as kinds dispatched over the event's intrusive
// *Proc pointer instead of per-event closures: Schedule-ing a wake is
// then allocation-free, which matters when a cluster run pushes
// millions of block/wake pairs through the queue.
type eventKind uint8

const (
	// evCall runs the event's fn callback (user events, daemons).
	evCall eventKind = iota
	// evStart fires a created process's first activation.
	evStart
	// evWake resumes a process parked by Sleep. No value crosses the
	// wake, so the fast path never touches the any-boxed wakeVal.
	evWake
	// evDeliver resumes a process a waker transitioned to procWaking.
	// The handed-over value is stored on the process by deliverAt, not
	// on the event, keeping the event payload-free and small.
	evDeliver
)

// event is a scheduled occurrence at time t. Events with equal times
// fire in (pri, seq) order, which keeps runs deterministic. Locally
// scheduled events carry pri 0 and the engine's own sequence counter,
// so a purely local engine behaves exactly as before: scheduling order
// is execution order. Events injected from another shard (PostArrival)
// carry a priority key derived from the sending port and the sender's
// own per-port sequence number — a total order that does not depend on
// which shard ran first or how inter-shard inboxes were drained, which
// is what makes sharded runs byte-identical to sequential ones. For
// process events the target is stored intrusively in p; fn is set only
// for evCall. The struct is deliberately lean (48 bytes): the heap
// moves events by value, so every field is paid on each sift.
type event struct {
	t    Time
	pri  uint64
	seq  uint64
	fn   func()
	p    *Proc
	kind eventKind
}

// arrivalClass is the priority-class bit for cross-shard arrivals: at
// equal times every local event (pri 0) fires before every arrival, and
// arrivals order among themselves by source port then source sequence.
const arrivalClass = uint64(1) << 63

// eventHeap is a 4-ary min-heap of events ordered by (time, pri, seq).
// It is implemented directly rather than via container/heap to avoid
// interface boxing on the hot path, and with 4 children per node to
// halve the tree depth: siftDown dominates pop, and the wider fanout
// trades a few extra comparisons per level for significantly fewer
// cache-missing levels on large queues.
type eventHeap struct {
	items []event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.t != b.t {
		return a.t < b.t
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev event) {
	h.items = append(h.items, ev) //lint:allow hotalloc (amortized growth; steady-state heap capacity is reused, see the zero-alloc benchmarks)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = event{} // release fn/p for GC
	h.items = h.items[:n]
	h.siftDown(0)
	return top
}

func (h *eventHeap) peek() event { return h.items[0] }

func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		smallest := i
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
