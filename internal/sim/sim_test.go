package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	var epoch Time
	later := epoch.Add(3 * Second)
	if later != Time(3*Second) {
		t.Fatalf("Add: got %v", later)
	}
	if d := later.Sub(epoch); d != 3*Second {
		t.Fatalf("Sub: got %v", d)
	}
	if s := later.Seconds(); s != 3.0 {
		t.Fatalf("Seconds: got %v", s)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Duration.Seconds: got %v", got)
	}
}

func TestDurationOf(t *testing.T) {
	cases := []struct {
		sec  float64
		want Duration
	}{
		{0, 0},
		{-1, 0},
		{1, Second},
		{0.5, 500 * Millisecond},
		{1e-9, Nanosecond},
		{2.5e-9, 3 * Nanosecond}, // rounds to nearest
	}
	for _, c := range cases {
		if got := DurationOf(c.sec); got != c.want {
			t.Errorf("DurationOf(%v) = %v, want %v", c.sec, got, c.want)
		}
	}
}

func TestDurationOfRoundTrip(t *testing.T) {
	f := func(ns int64) bool {
		if ns < 0 {
			ns = -ns
		}
		ns %= int64(Hour)
		d := Duration(ns)
		return DurationOf(d.Seconds()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(Time(30), func() { got = append(got, 3) })
	e.Schedule(Time(10), func() { got = append(got, 1) })
	e.Schedule(Time(20), func() { got = append(got, 2) })
	// Same-time events fire in scheduling order.
	e.Schedule(Time(20), func() { got = append(got, 20) })
	end, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != Time(30) {
		t.Fatalf("end time: got %v", end)
	}
	want := []int{1, 2, 20, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order: got %v want %v", got, want)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(Time(100), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.Schedule(Time(50), func() {})
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(Time(10), func() { fired++ })
	e.Schedule(Time(100), func() { fired++ })
	end, err := e.Run(Time(50))
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 || end != Time(50) {
		t.Fatalf("fired=%d end=%v", fired, end)
	}
	// Resume to exhaustion.
	end, err = e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2 || end != Time(100) {
		t.Fatalf("after resume fired=%d end=%v", fired, end)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		wakes = append(wakes, p.Now())
		p.Sleep(5 * Microsecond)
		wakes = append(wakes, p.Now())
		p.SleepUntil(Time(100 * Microsecond))
		wakes = append(wakes, p.Now())
		p.SleepUntil(Time(1)) // in the past: no-op
		wakes = append(wakes, p.Now())
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * Microsecond), Time(15 * Microsecond), Time(100 * Microsecond), Time(100 * Microsecond)}
	if fmt.Sprint(wakes) != fmt.Sprint(want) {
		t.Fatalf("wakes: got %v want %v", wakes, want)
	}
	if e.Live() != 0 {
		t.Fatalf("live procs after run: %d", e.Live())
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var started Time
	e.SpawnAt(Time(42), "late", func(p *Proc) { started = p.Now() })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if started != Time(42) {
		t.Fatalf("start time: got %v", started)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	runOnce := func(seed int64) string {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var log []string
		for i := 0; i < 20; i++ {
			i := i
			delays := make([]Duration, 5)
			for j := range delays {
				delays[j] = Duration(rng.Intn(1000)) * Microsecond
			}
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for _, d := range delays {
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
				}
			})
		}
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, ",")
	}
	a, b := runOnce(7), runOnce(7)
	if a != b {
		t.Fatal("identical seeds produced different schedules")
	}
}

func TestCondSignalFIFO(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var got []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			v := c.Wait(p)
			got = append(got, fmt.Sprintf("%s=%v", name, v))
		})
	}
	e.Schedule(Time(10), func() {
		c.Signal(1)
		c.Signal(2)
		c.Signal(3)
		if c.Signal(4) {
			t.Error("Signal with no waiters reported true")
		}
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := "a=1,b=2,c=3"
	if strings.Join(got, ",") != want {
		t.Fatalf("got %q want %q", strings.Join(got, ","), want)
	}
}

func TestCondBroadcastAndRemove(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	woken := 0
	var procs []*Proc
	for i := 0; i < 3; i++ {
		p := e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			woken++
		})
		procs = append(procs, p)
	}
	e.Schedule(Time(5), func() {
		if c.Len() != 3 {
			t.Errorf("Len = %d", c.Len())
		}
		if !c.Remove(procs[1]) {
			t.Error("Remove known waiter failed")
		}
		if c.Remove(procs[1]) {
			t.Error("second Remove succeeded")
		}
		if n := c.Broadcast(); n != 2 {
			t.Errorf("Broadcast woke %d", n)
		}
	})
	_, err := e.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock (removed waiter never wakes), got %v", err)
	}
	if woken != 2 {
		t.Fatalf("woken = %d", woken)
	}
	if e.Blocked() != 1 {
		t.Fatalf("Blocked = %d", e.Blocked())
	}
	e.Close()
	if e.Live() != 0 {
		t.Fatalf("Live after Close = %d", e.Live())
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e)
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, m.Recv(p).(int))
		}
	})
	e.Schedule(Time(1), func() { m.Put(1); m.Put(2) })
	e.Schedule(Time(2), func() { m.Put(3); m.Put(4) })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxTryRecvAndLen(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e)
	if _, ok := m.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox succeeded")
	}
	m.Put("x")
	m.Put("y")
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := m.TryRecv(); !ok || v != "x" {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len after TryRecv = %d", m.Len())
	}
}

func TestMailboxHandoffBeforeQueue(t *testing.T) {
	// A waiting receiver gets the message directly; it never appears in
	// the queue.
	e := NewEngine()
	m := NewMailbox(e)
	var got any
	e.Spawn("recv", func(p *Proc) { got = m.Recv(p) })
	e.Schedule(Time(10), func() {
		m.Put(99)
		if m.Len() != 0 {
			t.Errorf("message queued despite waiting receiver (len=%d)", m.Len())
		}
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("got %v", got)
	}
}

func TestResourceContention(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []string
	worker := func(name string, start Time, hold Duration) {
		e.SpawnAt(start, name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name+":in@"+p.Now().String())
			p.Sleep(hold)
			r.Release(1)
		})
	}
	worker("a", Time(0), 10*Microsecond)
	worker("b", Time(1), 10*Microsecond)
	worker("c", Time(2), 10*Microsecond)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"a:in@0.000000s", "b:in@0.000010s", "c:in@0.000020s"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order: got %v want %v", order, want)
	}
	if r.InUse() != 0 || r.Queued() != 0 {
		t.Fatalf("resource not drained: inUse=%d queued=%d", r.InUse(), r.Queued())
	}
}

func TestResourceFIFOBlocksSmallBehindLarge(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 4)
	var order []string
	e.Spawn("hog", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(100 * Microsecond)
		r.Release(3)
	})
	e.SpawnAt(Time(1), "big", func(p *Proc) {
		r.Acquire(p, 4)
		order = append(order, "big@"+p.Now().String())
		r.Release(4)
	})
	e.SpawnAt(Time(2), "small", func(p *Proc) {
		// Only 1 unit free, but FIFO means small must wait behind big.
		r.Acquire(p, 1)
		order = append(order, "small@"+p.Now().String())
		r.Release(1)
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || !strings.HasPrefix(order[0], "big@") {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestResourceUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var done Time
	e.Spawn("u", func(p *Proc) {
		r.Use(p, 2, 7*Microsecond)
		done = p.Now()
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if done != Time(7*Microsecond) {
		t.Fatalf("done at %v", done)
	}
}

func TestResourceMisuse(t *testing.T) {
	e := NewEngine()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero capacity", func() { NewResource(e, 0) })
	r := NewResource(e, 2)
	mustPanic("over-release", func() { r.Release(1) })
	e.Spawn("p", func(p *Proc) {
		mustPanic("acquire too much", func() { r.Acquire(p, 3) })
		mustPanic("acquire zero", func() { r.Acquire(p, 0) })
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestProcPanicReportedByRun(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("boom")
	})
	_, err := e.Run(0)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestCloseReapsCreatedAndParked(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Spawn("parked", func(p *Proc) { c.Wait(p) })
	_, err := e.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	// A process spawned but never started (engine not re-run).
	e2 := NewEngine()
	e2.Spawn("never-started", func(p *Proc) {})
	e.Close()
	e.Close() // idempotent
	if e.Live() != 0 {
		t.Fatalf("Live = %d", e.Live())
	}
	// Close with a created-but-unstarted proc must not hang. The start
	// event is still queued but the engine is closed, so reap directly.
	e2.Close()
	if e2.Live() != 0 {
		t.Fatalf("e2 Live = %d", e2.Live())
	}
}

func TestDeferredCleanupRunsOnKill(t *testing.T) {
	e := NewEngine()
	cleaned := false
	c := NewCond(e)
	e.Spawn("p", func(p *Proc) {
		defer func() { cleaned = true }()
		c.Wait(p)
	})
	if _, err := e.Run(0); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	e.Close()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
}

func TestBlockedCounter(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) { c.Wait(p) })
	}
	e.Schedule(Time(10), func() {
		if e.Blocked() != 3 {
			t.Errorf("Blocked = %d, want 3", e.Blocked())
		}
		c.Signal(nil)
	})
	_, err := e.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	if e.Blocked() != 2 {
		t.Fatalf("Blocked after one signal = %d", e.Blocked())
	}
	e.Close()
}

// Property: N processes sleeping random durations wake in nondecreasing
// time order and all complete.
func TestSleepWakeOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		e := NewEngine()
		var wakes []Time
		for i, r := range raw {
			d := Duration(r) * Microsecond
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				wakes = append(wakes, p.Now())
			})
		}
		if _, err := e.Run(0); err != nil {
			return false
		}
		if len(wakes) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(wakes, func(i, j int) bool { return wakes[i] < wakes[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: resource accounting never exceeds capacity and always drains.
func TestResourceInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		cap := 1 + rng.Intn(4)
		r := NewResource(e, cap)
		ok := true
		for i := 0; i < 20; i++ {
			n := 1 + rng.Intn(cap)
			start := Time(rng.Intn(100)) * Time(Microsecond)
			hold := Duration(1+rng.Intn(100)) * Microsecond
			e.SpawnAt(start, fmt.Sprintf("p%d", i), func(p *Proc) {
				r.Acquire(p, n)
				if r.InUse() > r.Capacity() {
					ok = false
				}
				p.Sleep(hold)
				r.Release(n)
			})
		}
		if _, err := e.Run(0); err != nil {
			return false
		}
		return ok && r.InUse() == 0 && r.Queued() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEngineThroughput measures raw event throughput of the DES
// kernel — the budget every cluster simulation spends from.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.After(Microsecond, tick)
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcessSwitch measures the coroutine handoff cost (park +
// resume through channels), the per-blocking-call overhead of every
// simulated process.
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

func TestEngineTraceHook(t *testing.T) {
	e := NewEngine()
	var lines []string
	e.Trace = func(at Time, format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%v "+format, append([]any{at}, args...)...))
	}
	e.Spawn("traced", func(p *Proc) {
		p.Sleep(Microsecond)
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("trace lines: %v", lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "traced") {
		t.Fatalf("trace missing proc name:\n%s", joined)
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	e.Schedule(Time(10), func() {})
	e.Schedule(Time(20), func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatal("queue not drained")
	}
}
