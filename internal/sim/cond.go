package sim

// Cond is a condition-style wait queue. Processes block on Wait in FIFO
// order; any code running under the engine (another process or an event
// callback) releases them with Signal or Broadcast. A value can be handed
// to the woken process, which is how mailboxes and the MPI matching layer
// transfer messages without an extra queue hop.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns an empty wait queue bound to e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Len reports the number of processes currently waiting.
func (c *Cond) Len() int { return len(c.waiters) }

// Wait parks the calling process until a Signal or Broadcast releases it,
// and returns the value the waker attached (nil for Broadcast).
func (c *Cond) Wait(p *Proc) any {
	c.waiters = append(c.waiters, p)
	return p.yield(true)
}

// Signal wakes the longest-waiting process, handing it val, and reports
// whether anyone was waiting. The woken process resumes at the current
// virtual time, after already-queued events.
func (c *Cond) Signal(val any) bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	p.deliverAt(c.eng.now, val)
	return true
}

// Broadcast wakes every waiting process (each receives nil) and returns
// the number woken.
func (c *Cond) Broadcast() int {
	n := len(c.waiters)
	for _, p := range c.waiters {
		p.deliverAt(c.eng.now, nil)
	}
	c.waiters = c.waiters[:0]
	return n
}

// Remove withdraws p from the wait queue without waking it, reporting
// whether it was present. It supports wait-with-guard patterns where a
// process is parked on several queues conceptually and the winning waker
// must cancel the others before delivery.
func (c *Cond) Remove(p *Proc) bool {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return true
		}
	}
	return false
}
