package sim

import "fmt"

// Resource is a counted semaphore with FIFO granting, used to model
// contended capacity such as network links, switch ports, and the memory
// bus. Strict FIFO granting (a large request at the head blocks smaller
// ones behind it) models store-and-forward hardware fairly and keeps the
// simulation deterministic.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []resWaiter
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given total capacity, which
// must be positive.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: NewResource capacity %d", capacity)) //lint:allow panicfree (constructor misuse; capacity is a compile-time-style config error)
	}
	return &Resource{eng: e, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Queued reports the number of processes waiting to acquire.
func (r *Resource) Queued() int { return len(r.waiters) }

// Acquire obtains n units for the calling process, blocking in FIFO order
// until they are available. n must be between 1 and the capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: Acquire %d of capacity %d", n, r.capacity)) //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.yield(true)
}

// Release returns n units and grants as many queued requests as now fit,
// in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 || r.inUse-n < 0 {
		panic(fmt.Sprintf("sim: Release %d with %d in use", n, r.inUse)) //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
	}
	r.inUse -= n
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if r.inUse+head.n > r.capacity {
			return
		}
		r.inUse += head.n
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		head.p.deliverAt(r.eng.now, nil)
	}
}

// Use acquires n units, runs the critical section for duration d of
// virtual time, and releases. It is the common pattern for occupying a
// link while a frame serializes.
func (r *Resource) Use(p *Proc, n int, d Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}
