package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// pingPong runs a K-shard ping-pong chain: each of n logical ports
// lives on shard port*K/n, sleeps, and posts to its successor one
// lookahead ahead. It returns one delivery log per port (a port's log
// is only appended from its own shard, so the logs are race-free and
// their contents — unlike a cross-shard interleaving — are a
// simulation property).
func pingPong(shards, n, hops int, look Duration) [][]string {
	g := NewGroup(shards, look)
	defer g.Close()
	shardOf := func(port int) int { return port * shards / n }
	log := make([][]string, n)
	var hop func(port, depth int)
	hop = func(port, depth int) {
		e := g.Engine(shardOf(port))
		log[port] = append(log[port], fmt.Sprintf("%v depth%d", e.Now(), depth))
		if depth >= hops {
			return
		}
		next := (port + 1) % n
		t := e.Now().Add(look)
		seq := uint64(depth + 1)
		if shardOf(next) != shardOf(port) {
			g.Post(shardOf(next), t, port, seq, func() { hop(next, depth+1) })
		} else {
			e.PostArrival(t, port, seq, func() { hop(next, depth+1) })
		}
	}
	for p := 0; p < n; p++ {
		p := p
		g.Engine(shardOf(p)).Schedule(Time(p)*Time(Microsecond), func() { hop(p, 0) })
	}
	if _, err := g.Run(0); err != nil {
		panic(err)
	}
	return log
}

// TestShardGroupCountInvariance pins the core determinism guarantee:
// the same event program produces the identical execution log at any
// shard count, because arrival keys — not drain order — order events.
func TestShardGroupCountInvariance(t *testing.T) {
	const n, hops = 8, 40
	look := 45 * Microsecond
	want := pingPong(1, n, hops, look)
	total := 0
	for _, l := range want {
		total += len(l)
	}
	if total != n*(hops+1) {
		t.Fatalf("logs have %d entries, want %d", total, n*(hops+1))
	}
	for _, k := range []int{2, 3, 4, 8} {
		got := pingPong(k, n, hops, look)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%d shards: log differs from 1 shard\n got %v\nwant %v", k, got, want)
		}
	}
}

// TestShardGroupDeadlock checks that a blocked process with drained
// queues surfaces ErrDeadlock, like the single-engine Run.
func TestShardGroupDeadlock(t *testing.T) {
	g := NewGroup(2, Microsecond)
	defer g.Close()
	c := NewCond(g.Engine(0))
	g.Engine(0).Spawn("stuck", func(p *Proc) { c.Wait(p) })
	g.Engine(1).Schedule(5*Time(Microsecond), func() {})
	if _, err := g.Run(0); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
}

// TestShardGroupLimit checks limit semantics: events at t <= limit run,
// later ones stay queued, and the clocks park exactly at the limit.
func TestShardGroupLimit(t *testing.T) {
	g := NewGroup(2, Microsecond)
	defer g.Close()
	var ran []int
	g.Engine(0).Schedule(10, func() { ran = append(ran, 10) })
	g.Engine(1).Schedule(20, func() { ran = append(ran, 20) })
	g.Engine(0).Schedule(30, func() { ran = append(ran, 30) })
	end, err := g.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 || g.Now() != 20 {
		t.Fatalf("parked at %v, want 20", end)
	}
	if !reflect.DeepEqual(ran, []int{10, 20}) {
		t.Fatalf("ran %v", ran)
	}
	if g.Engine(0).Now() != 20 || g.Engine(1).Now() != 20 {
		t.Fatalf("engine clocks %v, %v", g.Engine(0).Now(), g.Engine(1).Now())
	}
	// Resuming executes the leftover event.
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ran, []int{10, 20, 30}) {
		t.Fatalf("after resume ran %v", ran)
	}
}

// TestShardGroupGlobals checks that coordinator globals run with every
// shard stopped at their timestamp, between shard events, and that
// same-time globals order by priority regardless of schedule order.
func TestShardGroupGlobals(t *testing.T) {
	g := NewGroup(2, Microsecond)
	defer g.Close()
	var evAt [2]Time // per-shard slots: shard events may run concurrently
	for _, e := range []int{0, 1} {
		e := e
		g.Engine(e).Schedule(Time(100+e), func() { evAt[e] = g.Engine(e).Now() })
	}
	var log []string // coordinator-only appends
	g.ScheduleGlobal(150, 7, func() {
		if g.Engine(0).Now() != 150 || g.Engine(1).Now() != 150 {
			t.Errorf("global ran with clocks %v, %v", g.Engine(0).Now(), g.Engine(1).Now())
		}
		if evAt[0] != 100 || evAt[1] != 101 {
			t.Errorf("global does not see shard writes: %v", evAt)
		}
		log = append(log, "gB")
	})
	g.ScheduleGlobal(150, 3, func() { log = append(log, "gA") })
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"gA", "gB"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log %v, want %v", log, want)
	}
}

// TestShardGroupGlobalReschedule checks the self-rearming pattern the
// samplers use: a global scheduling its successor at t + interval.
func TestShardGroupGlobalReschedule(t *testing.T) {
	g := NewGroup(3, Microsecond)
	defer g.Close()
	var ticks []Time
	var tick func(at Time)
	tick = func(at Time) {
		g.ScheduleGlobal(at, 1, func() {
			ticks = append(ticks, at)
			if len(ticks) < 4 {
				tick(at + 50)
			}
		})
	}
	tick(0)
	g.Engine(2).Schedule(120, func() {})
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ticks, []Time{0, 50, 100, 150}) {
		t.Fatalf("ticks %v", ticks)
	}
}

// TestShardGroupPostFromWindow exercises Post called concurrently from
// inside running windows (the mpi delivery path) — the -race target
// runs this with real parallelism.
func TestShardGroupPostFromWindow(t *testing.T) {
	const shards = 4
	look := 10 * Microsecond
	g := NewGroup(shards, look)
	defer g.Close()
	counts := make([]int, shards)
	var spray func(shard, depth int)
	spray = func(shard, depth int) {
		counts[shard]++
		if depth == 0 {
			return
		}
		for d := 0; d < shards; d++ {
			if d == shard {
				continue
			}
			d := d
			t := g.Engine(shard).Now().Add(look)
			g.Post(d, t, shard, uint64(depth), func() { spray(d, depth-1) })
		}
	}
	for s := 0; s < shards; s++ {
		s := s
		g.Engine(s).Schedule(0, func() { spray(s, 4) })
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	// Each of the 4 roots fans out 3-way for 4 levels: 1+3+9+27+81.
	if want := shards * 121; total != want {
		t.Fatalf("delivered %d events, want %d", total, want)
	}
}
