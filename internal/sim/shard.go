package sim

// Conservative parallel discrete-event coordination. A Group owns K
// engines ("shards") and advances them concurrently in lookahead
// windows: if every cross-shard interaction is delivered at least L
// (the lookahead, derived from the minimum network link latency) after
// it was sent, then all events earlier than
//
//	H = min(next event time across shards) + L
//
// are causally independent across shards and can execute in parallel.
// The Group repeatedly computes H, fans the active shards out on the
// internal/exec pool, barriers, drains the cross-shard inboxes, and
// repeats. Determinism does not come from the windows — it comes from
// the event keys: arrivals carry a (source port, source sequence)
// priority that totally orders them regardless of drain order, so the
// same simulation produces byte-identical results at any shard count,
// including K=1 (which runs the identical windowed protocol inline,
// without worker goroutines).

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/exec"
)

// maxTime is an unreachable horizon sentinel.
const maxTime = Time(1<<63 - 1)

// arrival is one cross-shard event parked in an inbox until the next
// window barrier.
type arrival struct {
	t   Time
	src int
	seq uint64
	fn  func()
}

// inbox buffers arrivals posted to one shard while windows are running.
// Padding would be overkill: each inbox is touched once per cross-shard
// message, under its own mutex.
type inbox struct {
	mu  sync.Mutex
	evs []arrival
}

// Group coordinates a set of shard engines under a common conservative
// lookahead. All methods except Post and ScheduleGlobal must be called
// from the coordinating goroutine (the one that calls Run); Post and
// ScheduleGlobal may additionally be called from inside shard events.
type Group struct {
	engines []*Engine
	look    Duration
	inboxes []inbox

	// globals holds coordinator events: callbacks that need a consistent
	// view of every shard (figure snapshots, power-strip sampling,
	// completion checks). They run between windows, on the coordinating
	// goroutine, with all shard clocks advanced to their timestamp.
	// Globals must not resume or unblock simulated processes — they are
	// observers, and the deadlock check assumes they cannot wake anyone.
	globals eventHeap
	gmu     sync.Mutex
	gseq    uint64

	horizon Time // all shards have fully executed events before this time
	active  []int
	closed  bool
}

// NewGroup builds a group of shards engines sharing lookahead window
// size look. shards must be at least 1 and look strictly positive: a
// zero lookahead admits no window at all.
//
//lint:range shards [1,inf]
//lint:range look [1,inf]
func NewGroup(shards int, look Duration) *Group {
	if shards < 1 {
		panic("sim: NewGroup needs at least one shard") //lint:allow panicfree (constructor misuse; shard count is fixed at build time)
	}
	if look <= 0 {
		panic("sim: NewGroup needs a positive lookahead") //lint:allow panicfree (constructor misuse; lookahead is fixed at build time)
	}
	g := &Group{
		engines: make([]*Engine, shards),
		look:    look,
		inboxes: make([]inbox, shards),
	}
	for i := range g.engines {
		g.engines[i] = NewEngine()
		g.engines[i].shardTag = fmt.Sprintf(" (shard %d)", i)
	}
	return g
}

// Size reports the number of shards.
func (g *Group) Size() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Lookahead reports the conservative window size.
func (g *Group) Lookahead() Duration { return g.look }

// Now reports the group horizon: every shard has executed all events
// strictly before this time.
func (g *Group) Now() Time { return g.horizon }

// Post delivers a cross-shard event: fn runs on shard's engine at time
// t, ordered by the shard-count-invariant (t, src, seq) arrival key.
// It is safe to call from any shard while windows are running. The
// lookahead contract requires t to be at least one lookahead past the
// sender's current time; violations surface as past-time panics when
// the inbox is drained.
func (g *Group) Post(shard int, t Time, src int, seq uint64, fn func()) {
	in := &g.inboxes[shard]
	in.mu.Lock()
	in.evs = append(in.evs, arrival{t: t, src: src, seq: seq, fn: fn})
	in.mu.Unlock()
}

// ScheduleGlobal arranges for fn to run on the coordinating goroutine
// at time t with every shard stopped at exactly t. It is safe to call
// from inside shard events; scheduling from shard context at the
// sender's now + Lookahead() (or later) is always in the future.
// Globals due at the same time run ordered by pri (then by schedule
// order). Concurrent shards racing to schedule at the same (t, pri)
// would make the tie-break nondeterministic, so every independent
// source of same-time globals must use its own priority — distinct
// (t, pri) pairs give a total order that is identical at any shard
// count.
func (g *Group) ScheduleGlobal(t Time, pri uint64, fn func()) {
	g.gmu.Lock()
	if t < g.horizon {
		g.gmu.Unlock()
		panic(fmt.Sprintf("sim: ScheduleGlobal at %v before horizon %v (lookahead %v)", t, g.horizon, g.look)) //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
	}
	g.gseq++
	g.globals.push(event{t: t, pri: pri, seq: g.gseq, kind: evCall, fn: fn})
	g.gmu.Unlock()
}

// drain moves every parked arrival into its shard's event heap. Called
// only between windows, so the inbox mutexes are uncontended. The
// lookahead contract is re-checked here, where the full window context
// is in hand: a violation names the shard, the offending event time,
// the window horizon, and the group lookahead, instead of the bare
// past-time panic the engine itself would raise.
func (g *Group) drain() {
	for i := range g.inboxes {
		in := &g.inboxes[i]
		in.mu.Lock()
		for _, a := range in.evs {
			if a.t < g.engines[i].Now() {
				g.lookaheadPanic(i, a)
			}
			g.engines[i].PostArrival(a.t, a.src, a.seq, a.fn)
		}
		in.evs = in.evs[:0]
		in.mu.Unlock()
	}
}

// lookaheadPanic reports a drained arrival that lands before its
// shard's clock, with the full window context. Kept as a panic-only
// helper so drain stays allocation-free on the hot coordinator path.
func (g *Group) lookaheadPanic(shard int, a arrival) {
	panic(fmt.Sprintf("sim: lookahead contract violated: arrival for shard %d at %v is before shard now %v (window horizon %v, lookahead %v, src shard %d, seq %d)", //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
		shard, a.t, g.engines[shard].Now(), g.horizon, g.look, a.src, a.seq))
}

// minNextEvent reports the earliest pending event time across shards.
func (g *Group) minNextEvent() (Time, bool) {
	m, any := maxTime, false
	for _, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && t < m {
			m, any = t, true
		}
	}
	return m, any
}

func (g *Group) blockedTotal() int {
	n := 0
	for _, e := range g.engines {
		n += e.Blocked()
	}
	return n
}

func (g *Group) advanceAll(t Time) {
	for _, e := range g.engines {
		e.AdvanceTo(t)
	}
	if t > g.horizon {
		g.horizon = t
	}
}

// window executes all events strictly before h on every shard that has
// one. A single active shard runs inline; otherwise the active shards
// fan out on the exec pool, one worker slot per shard. The pool's
// barrier is also the memory barrier: everything a shard wrote in this
// window is visible to every shard in the next one.
//
//lint:hotpath the window loop runs a few thousand times per simulation
func (g *Group) window(h Time) error {
	g.active = g.active[:0]
	for i, e := range g.engines {
		if t, ok := e.NextEventTime(); ok && t < h {
			g.active = append(g.active, i) //lint:allow hotalloc (amortized growth; the active buffer is reused across windows)
		}
	}
	switch len(g.active) {
	case 0:
		return nil
	case 1:
		return g.engines[g.active[0]].RunUntil(h)
	}
	_, err := exec.Map(len(g.active), len(g.active), func(i int) (struct{}, error) { //lint:allow hotalloc (one closure per window, not per event)
		return struct{}{}, g.engines[g.active[i]].RunUntil(h)
	})
	return err
}

// runGlobals pops and runs every global event due exactly at t, in
// (pri, schedule) order. A global may schedule further globals,
// including at the same t.
func (g *Group) runGlobals(t Time) {
	for {
		g.gmu.Lock()
		if g.globals.Len() == 0 || g.globals.peek().t != t {
			g.gmu.Unlock()
			return
		}
		ev := g.globals.pop()
		g.gmu.Unlock()
		ev.fn()
	}
}

// Run advances the whole group until every shard's queue and the global
// queue drain, or until limit is reached (limit <= 0 means run to
// exhaustion): events at t <= limit execute, and the clocks stop at
// limit. It returns the final horizon. If the queues drain while
// processes remain blocked, Run returns ErrDeadlock.
//
//lint:hotpath the coordinator loop runs once per lookahead window
func (g *Group) Run(limit Time) (Time, error) {
	if g.closed {
		return g.horizon, errors.New("sim: group is closed")
	}
	for {
		g.drain()
		m, any := g.minNextEvent()
		var gt Time
		g.gmu.Lock()
		anyG := g.globals.Len() > 0
		if anyG {
			gt = g.globals.peek().t
		}
		g.gmu.Unlock()
		if !any {
			if n := g.blockedTotal(); n > 0 {
				return g.horizon, fmt.Errorf("%w (%d blocked)", ErrDeadlock, n) //lint:allow hotalloc (deadlock exit path, runs at most once per Run)
			}
			if !anyG {
				return g.horizon, nil
			}
		}
		if limit > 0 && (!any || m > limit) && (!anyG || gt > limit) {
			g.advanceAll(limit)
			return g.horizon, nil
		}
		h := maxTime
		if any {
			h = m.Add(g.look)
		}
		runG := false
		if anyG && gt <= h && (limit <= 0 || gt <= limit) {
			h = gt
			runG = true
		}
		if limit > 0 && h > limit {
			// The horizon overshoots the limit but events at or before the
			// limit remain; they are all inside the lookahead window, so run
			// them and park the clocks at the limit.
			if err := g.window(limit + 1); err != nil {
				return g.horizon, err
			}
			g.advanceAll(limit)
			continue
		}
		if err := g.window(h); err != nil {
			return g.horizon, err
		}
		g.advanceAll(h)
		if runG {
			g.runGlobals(h)
		}
	}
}

// Close terminates every live process on every shard and marks the
// group unusable. Idempotent.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, e := range g.engines {
		e.Close()
	}
}
