package sim

// Mailbox is an unbounded FIFO message queue between simulated processes.
// Put never blocks; Recv blocks until a message is available. When a
// receiver is already waiting, Put hands the message to it directly.
type Mailbox struct {
	eng   *Engine
	msgs  []any
	ready *Cond
}

// NewMailbox returns an empty mailbox bound to e.
func NewMailbox(e *Engine) *Mailbox {
	return &Mailbox{eng: e, ready: NewCond(e)}
}

// Len reports the number of queued (undelivered) messages.
func (m *Mailbox) Len() int { return len(m.msgs) }

// Put enqueues msg, waking the longest-waiting receiver if any.
func (m *Mailbox) Put(msg any) {
	if m.ready.Signal(msg) {
		return
	}
	m.msgs = append(m.msgs, msg)
}

// Recv returns the oldest message, blocking the calling process until one
// arrives.
func (m *Mailbox) Recv(p *Proc) any {
	if len(m.msgs) > 0 {
		msg := m.msgs[0]
		copy(m.msgs, m.msgs[1:])
		m.msgs[len(m.msgs)-1] = nil
		m.msgs = m.msgs[:len(m.msgs)-1]
		return msg
	}
	return m.ready.Wait(p)
}

// TryRecv returns the oldest message without blocking; ok is false when
// the mailbox is empty.
func (m *Mailbox) TryRecv() (msg any, ok bool) {
	if len(m.msgs) == 0 {
		return nil, false
	}
	msg = m.msgs[0]
	copy(m.msgs, m.msgs[1:])
	m.msgs[len(m.msgs)-1] = nil
	m.msgs = m.msgs[:len(m.msgs)-1]
	return msg, true
}
