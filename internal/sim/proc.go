package sim

import (
	"errors"
	"fmt"
)

// errKilled unwinds a process goroutine when the engine is closed. It is
// recovered by the process wrapper and never escapes to user code.
var errKilled = errors.New("sim: process killed")

type resumeSignal int

const (
	resumeGo resumeSignal = iota
	resumeKill
)

type procState int

const (
	procCreated procState = iota // spawned, start event not yet fired
	procRunning                  // currently executing user code
	procParked                   // blocked on a primitive, awaiting a waker
	procWaking                   // a wake event has been scheduled
	procDone                     // body returned or unwound
)

// Proc is a simulated process: a goroutine whose execution is interleaved
// with other processes under the engine's control so that exactly one
// process (or the engine itself) runs at any moment. A Proc handle is
// only valid inside the process's own body function; passing it to
// another process and calling its blocking methods there corrupts the
// scheduler.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan resumeSignal
	state   procState
	counted bool // contributes to eng.blocked
	wakeVal any  // value handed over by the waker (mailbox messages etc.)
}

// Spawn creates a process named name whose body fn starts executing at
// the current virtual time (once the engine regains control). The name
// appears in traces and panic messages.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time, which must not be in the
// past.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan resumeSignal),
		state:  procCreated,
	}
	e.procs[p] = struct{}{}
	go p.run(fn)
	e.scheduleEvent(event{t: t, kind: evStart, p: p})
	return p
}

// run is the goroutine wrapper around the process body.
func (p *Proc) run(fn func(p *Proc)) {
	if <-p.resume == resumeKill {
		p.finish()
		return
	}
	defer func() {
		if r := recover(); r != nil && r != errKilled { //nolint:errorlint // sentinel identity
			// Record user panics on the engine so Run reports them as an
			// error on the caller's goroutine instead of crashing this
			// detached one.
			if p.eng.failure == nil {
				p.eng.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
		}
		p.finish()
	}()
	fn(p)
}

// finish marks the process terminated and returns control to the engine.
func (p *Proc) finish() {
	p.state = procDone
	if p.counted {
		p.counted = false
		p.eng.blocked--
	}
	delete(p.eng.procs, p)
	p.eng.park <- struct{}{}
}

// yield parks the calling process until a wake is delivered, then returns
// the value the waker attached. counted reports whether the process
// should be considered "blocked with no scheduled wake" for deadlock
// accounting (true for conditions/mailboxes/resources, false for Sleep,
// whose wake event is already queued).
func (p *Proc) yield(counted bool) any {
	if p.state != procRunning {
		panic("sim: blocking call from outside the process body") //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
	}
	p.state = procParked
	p.counted = counted
	if counted {
		p.eng.blocked++
	}
	p.eng.park <- struct{}{}
	if <-p.resume == resumeKill {
		panic(errKilled) //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
	}
	v := p.wakeVal
	p.wakeVal = nil
	return v
}

// deliverAt schedules the parked process to resume at time t with val
// available as the yield result. The caller must ensure the process is
// currently parked; deliverAt transitions it to the waking state so no
// other waker can race.
//
//lint:hotpath every blocking primitive wakes through here
func (p *Proc) deliverAt(t Time, val any) {
	if p.state != procParked {
		panic("sim: wake of a process that is not parked") //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
	}
	p.state = procWaking
	if p.counted {
		p.counted = false
		p.eng.blocked--
	}
	// Store the value on the process now rather than boxing it into the
	// event: the procWaking transition guarantees no other waker can
	// touch wakeVal before the resume fires.
	p.wakeVal = val
	p.eng.scheduleEvent(event{t: t, kind: evDeliver, p: p})
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for d of virtual time. Zero or negative d
// still yields, letting same-time events scheduled earlier run first.
//
//lint:hotpath the Sleep/wake round trip is the PR 2 zero-alloc win
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	// Queue the wake before parking. The engine cannot run events while
	// this process holds control, so the wake cannot fire early; the
	// evWake dispatch's procParked guard protects against firing after a
	// Close reaped us. No closure and no boxed wake value: the entire
	// Sleep/wake round trip is allocation-free.
	p.eng.scheduleEvent(event{t: p.eng.now.Add(d), kind: evWake, p: p})
	p.yield(false)
}

// SleepUntil suspends the process until absolute time t (no-op if t is
// not in the future beyond event ordering).
func (p *Proc) SleepUntil(t Time) {
	if t < p.eng.now {
		t = p.eng.now
	}
	p.Sleep(t.Sub(p.eng.now))
}
