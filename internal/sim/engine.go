package sim

import (
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Run when the event queue drains while
// simulated processes are still blocked on conditions, mailboxes, or
// resources that nothing will ever signal.
var ErrDeadlock = errors.New("sim: deadlock: no pending events but processes remain blocked")

// Engine owns the virtual clock and the event queue, and schedules
// simulated processes. It is not safe for concurrent use from multiple
// goroutines: all interaction must happen either before Run, from inside
// process bodies, or from event callbacks.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	procs   map[*Proc]struct{} // all live (not yet terminated) processes
	blocked int                // live processes currently parked on a primitive
	running bool
	closed  bool
	failure error // first process panic, reported by Run

	// shardTag is " (shard N)" when the engine is owned by a Group,
	// empty for a standalone engine. Preformatted at construction so
	// the panic helpers stay allocation-free on the hot path.
	shardTag string

	// park is signalled by a process goroutine whenever it hands control
	// back to the engine (by blocking, terminating, or dying).
	park chan struct{}

	// Trace, if non-nil, receives a line for every process state change.
	// Intended for debugging simulations, not for measurement.
	Trace func(t Time, format string, args ...any)
}

// NewEngine returns an engine with the clock at the simulation epoch.
func NewEngine() *Engine {
	return &Engine{
		procs: make(map[*Proc]struct{}),
		park:  make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run at absolute time t inside the engine.
// Scheduling in the past (t < Now) panics: it would silently reorder
// causality and make runs non-reproducible.
//
//lint:hotpath enqueue runs once per event; it must stay allocation-free
func (e *Engine) Schedule(t Time, fn func()) {
	e.scheduleEvent(event{t: t, kind: evCall, fn: fn})
}

// scheduleEvent is the common enqueue path: it stamps the determinism
// sequence number and pushes. Process wakes go through here with a kind
// and an intrusive *Proc instead of a closure, so the hot block/wake
// path allocates nothing. The past-time check calls out to a separate
// panic helper to keep this function inlinable.
func (e *Engine) scheduleEvent(ev event) {
	if ev.t < e.now {
		e.schedulePastPanic(ev.t)
	}
	e.seq++
	ev.seq = e.seq
	e.queue.push(ev)
}

func (e *Engine) schedulePastPanic(t Time) {
	panic(fmt.Sprintf("sim: Schedule at %v before now %v%s", t, e.now, e.shardTag)) //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
}

// arrivalPastPanic carries the full lookahead-contract context: which
// shard received the arrival, where it came from, and the offending
// timestamp. Kept out of PostArrival so the hot delivery path stays
// inlinable.
func (e *Engine) arrivalPastPanic(t Time, srcPort int, srcSeq uint64) {
	panic(fmt.Sprintf("sim: cross-shard arrival at %v before now %v%s (src shard %d, seq %d): the lookahead contract was violated", //lint:allow panicfree (simulation-kernel invariant; a broken event loop cannot continue)
		t, e.now, e.shardTag, srcPort, srcSeq))
}

// PostArrival enqueues a cross-shard arrival event: fn runs at absolute
// time t, after every locally scheduled event with the same timestamp,
// ordered against other arrivals by (srcPort, srcSeq). The key is
// supplied by the sender, not stamped here, so the heap's order is
// independent of the order in which a Group drains its inboxes — the
// property the seq-vs-sharded equality gates rely on. Arrivals in the
// past panic like Schedule: the lookahead contract (arrivals land at
// least one link latency past the window horizon) has been violated.
//
//lint:hotpath runs once per cross-rank message on the delivery path
func (e *Engine) PostArrival(t Time, srcPort int, srcSeq uint64, fn func()) {
	if t < e.now {
		e.arrivalPastPanic(t, srcPort, srcSeq)
	}
	e.queue.push(event{t: t, pri: arrivalClass | uint64(srcPort), seq: srcSeq, kind: evCall, fn: fn})
}

// After arranges for fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now.Add(d), fn)
}

func (e *Engine) tracef(format string, args ...any) {
	if e.Trace != nil {
		e.Trace(e.now, format, args...)
	}
}

// Run executes events until the queue is empty or until limit is reached
// (limit <= 0 means run to exhaustion). It returns the time of the last
// executed event. If the queue drains while processes remain blocked, Run
// returns ErrDeadlock; the blocked processes can be inspected with
// Blocked and reaped with Close.
//
//lint:hotpath the dispatch loop runs once per event
func (e *Engine) Run(limit Time) (Time, error) {
	if e.closed {
		return e.now, errors.New("sim: engine is closed")
	}
	if e.running {
		return e.now, errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }() //lint:allow hotalloc (one closure per Run call, not per event)

	for e.queue.Len() > 0 {
		if limit > 0 && e.queue.peek().t > limit {
			e.now = limit
			return e.now, nil
		}
		ev := e.queue.pop()
		if ev.t > e.now {
			e.now = ev.t
		}
		if ev.kind == evCall { // fast path: no dispatch call for plain events
			ev.fn()
		} else {
			e.resumeProc(ev.kind, ev.p)
		}
		if e.failure != nil {
			return e.now, e.failure
		}
	}
	if e.blocked > 0 {
		return e.now, fmt.Errorf("%w (%d blocked)", ErrDeadlock, e.blocked) //lint:allow hotalloc (deadlock exit path, runs at most once per Run)
	}
	return e.now, nil
}

// RunUntil executes every event strictly before horizon h and returns.
// It is the shard-side half of a Group window: the coordinator picks h
// so that no other shard can inject an arrival earlier than h, and each
// shard drains its queue up to (not including) h with exclusive access
// to its own state. Unlike Run it performs no deadlock check — with
// multiple shards only the Group can tell whether a blocked process
// might still be woken by a message from elsewhere — and it leaves the
// clock at the last executed event; the Group advances all clocks to
// the common horizon at the barrier.
//
//lint:hotpath the sharded dispatch loop runs once per event
func (e *Engine) RunUntil(h Time) error {
	if e.closed {
		return errors.New("sim: engine is closed")
	}
	if e.running {
		return errors.New("sim: RunUntil called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }() //lint:allow hotalloc (one closure per window, not per event)

	for e.queue.Len() > 0 && e.queue.peek().t < h {
		ev := e.queue.pop()
		if ev.t > e.now {
			e.now = ev.t
		}
		if ev.kind == evCall { // fast path: no dispatch call for plain events
			ev.fn()
		} else {
			e.resumeProc(ev.kind, ev.p)
		}
		if e.failure != nil {
			return e.failure
		}
	}
	return nil
}

// NextEventTime reports the timestamp of the earliest pending event, or
// false when the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	if e.queue.Len() == 0 {
		return 0, false
	}
	return e.queue.peek().t, true
}

// AdvanceTo moves the clock forward to t without executing anything.
// The Group uses it at window barriers so that between-window reads
// (utilization extrapolation, energy integration) see a consistent
// "now" on every shard. Moving backwards is a no-op.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// resumeProc fires a process-lifecycle event. Each kind checks the
// target's state first: a stale wake (the engine was closed and the
// process reaped, or a start raced a kill) is dropped, mirroring the
// guards the closure-based events used to carry. Delivered values are
// already sitting in p.wakeVal (deliverAt stores them when the wake is
// scheduled), so no payload crosses the event queue.
func (e *Engine) resumeProc(kind eventKind, p *Proc) {
	var want procState
	switch kind {
	case evStart:
		want = procCreated
	case evWake:
		want = procParked
	case evDeliver:
		want = procWaking
	}
	if p.state != want {
		return
	}
	if e.Trace != nil {
		switch kind {
		case evStart:
			e.tracef("proc %s: start", p.name) //lint:allow hotalloc (nil-guarded debug tracing, off on the measured path)
		case evWake:
			e.tracef("proc %s: wake", p.name) //lint:allow hotalloc (nil-guarded debug tracing, off on the measured path)
		case evDeliver:
			e.tracef("proc %s: resume", p.name) //lint:allow hotalloc (nil-guarded debug tracing, off on the measured path)
		}
	}
	p.state = procRunning
	p.resume <- resumeGo
	<-e.park
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// Blocked reports how many live processes are parked on a primitive with
// nothing scheduled to wake them right now. It is meaningful after Run
// returns.
func (e *Engine) Blocked() int { return e.blocked }

// Live reports the number of processes that have been spawned and have
// not yet terminated.
func (e *Engine) Live() int { return len(e.procs) }

// Close terminates every live process by unwinding its goroutine, then
// marks the engine unusable. It must be called once a simulation is
// finished if any process may still be blocked (for example after a
// deadlock or a truncated run); otherwise those goroutines would leak for
// the lifetime of the host program. Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// Created, parked, and waking processes are all blocked on their
	// resume channel (initial start wait, primitive wait, or scheduled
	// wake that will now never fire); a kill signal unwinds each.
	for p := range e.procs {
		switch p.state {
		case procCreated, procParked, procWaking:
			p.resume <- resumeKill
			<-e.park
		}
	}
	e.procs = nil
}
