package sim

import "testing"

// Engine hot-path microbenchmarks. `make bench` records these in
// BENCH_sim.json so the events/sec and allocs/op trajectory of the
// kernel is tracked across PRs. The Sleep/wake and Cond ping-pong
// benches are the paths a cluster run hits millions of times (every
// simulated compute burst, link hold, and MPI match).

// BenchmarkSchedule measures the enqueue/dispatch cost of plain
// callback events: one pending event at a time, b.N rounds.
func BenchmarkSchedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	defer e.Close()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.After(Microsecond, tick)
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSleepWake measures the full block/wake round trip of one
// process sleeping b.N times: two channel handoffs plus an
// allocation-free evWake event each iteration.
func BenchmarkSleepWake(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	defer e.Close()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCondPingPong measures the deliver path (evDeliver carrying a
// value) between two processes trading a token b.N times. The payload
// is one reused *int: a pointer is stored in the interface word
// directly, so the bench measures the engine's deliver cost, not the
// ~8 B/op the compiler's convT64 would add for boxing a fresh int every
// iteration (which is a property of the caller's payload, not of the
// kernel — and would keep the exact B/op gate off zero).
func BenchmarkCondPingPong(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	defer e.Close()
	ping, pong := NewCond(e), NewCond(e)
	token := new(int)
	// pong is spawned first so it is already parked on its Cond when
	// ping's first Signal fires.
	e.Spawn("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			pong.Wait(p)
			ping.Signal(nil)
		}
	})
	e.Spawn("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			*token = i
			pong.Signal(token)
			ping.Wait(p)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMailbox measures the mailbox fast path: a producer putting
// into a drained mailbox hands the message straight to the waiting
// consumer. As in BenchmarkCondPingPong, the message is one reused
// *int so per-iteration int boxing does not pollute the kernel's
// zero-alloc measurement.
func BenchmarkMailbox(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	defer e.Close()
	mb := NewMailbox(e)
	msg := new(int)
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			*msg = i
			mb.Put(msg)
			p.Sleep(Microsecond)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			mb.Recv(p)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHeapChurn measures raw queue push/pop with a deterministic
// spread of timestamps: a standing population of 1024 events, one
// pop+push per iteration — the steady-state shape of a cluster run.
func BenchmarkHeapChurn(b *testing.B) {
	b.ReportAllocs()
	var h eventHeap
	const pop = 1024
	// xorshift keeps timestamps deterministic without math/rand.
	x := uint64(0x9E3779B97F4A7C15)
	rnd := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	seq := uint64(0)
	for i := 0; i < pop; i++ {
		seq++
		h.push(event{t: Time(rnd() % 1_000_000), seq: seq})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h.pop()
		seq++
		h.push(event{t: ev.t + Time(rnd()%1024), seq: seq})
	}
}
