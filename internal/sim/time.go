// Package sim implements a deterministic process-oriented discrete-event
// simulation kernel. It provides a virtual clock, an event queue, and
// lightweight simulated processes (implemented as goroutines that run one
// at a time under the engine's control), plus the usual coordination
// primitives: sleeping, conditions, mailboxes, and counted resources.
//
// The kernel is the substrate for the cluster, network, MPI, and power
// models in this repository. All of those express behaviour as processes
// that consume virtual time; none of them use wall-clock time, so every
// simulation run is exactly reproducible.
package sim

import "fmt"

// Time is an absolute instant on the simulation clock, in nanoseconds
// since the start of the simulation. The zero Time is the simulation
// epoch.
type Time int64

// Duration is a span of simulated time in nanoseconds. Unlike
// time.Duration it never refers to wall-clock time.
type Duration int64

// Convenient duration units. These mirror the time package but are
// distinct types so simulated and real durations cannot be mixed up.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the instant as a floating-point number of seconds
// since the simulation epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration as seconds with microsecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }

// DurationOf converts a floating-point number of seconds into a Duration,
// rounding to the nearest nanosecond. It is the inverse of
// Duration.Seconds and is used by cost models that compute times as
// real-valued expressions (e.g. bytes/bandwidth).
func DurationOf(seconds float64) Duration {
	if seconds <= 0 {
		return 0
	}
	return Duration(seconds*float64(Second) + 0.5)
}
