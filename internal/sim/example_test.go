package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// Two processes coordinate through a mailbox on the virtual clock.
func Example() {
	e := sim.NewEngine()
	box := sim.NewMailbox(e)

	e.Spawn("producer", func(p *sim.Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10 * sim.Millisecond)
			box.Put(i)
		}
	})
	e.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			v := box.Recv(p)
			fmt.Printf("got %v at %v\n", v, p.Now())
		}
	})

	end, err := e.Run(0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("done at %v\n", end)
	// Output:
	// got 1 at 0.010000s
	// got 2 at 0.020000s
	// got 3 at 0.030000s
	// done at 0.030000s
}

// A counted resource serializes contending processes in FIFO order.
func ExampleResource() {
	e := sim.NewEngine()
	link := sim.NewResource(e, 1)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("sender%d", i), func(p *sim.Proc) {
			link.Acquire(p, 1)
			fmt.Printf("sender%d on the wire at %v\n", i, p.Now())
			p.Sleep(5 * sim.Millisecond)
			link.Release(1)
		})
	}
	if _, err := e.Run(0); err != nil {
		fmt.Println(err)
	}
	// Output:
	// sender0 on the wire at 0.000000s
	// sender1 on the wire at 0.005000s
	// sender2 on the wire at 0.010000s
}
