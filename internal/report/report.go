// Package report renders experiment results in the shapes the paper
// presents them: normalized energy-delay crescendo tables (Figures 1,
// 3, 6, 7, 8), strategy comparisons (Figures 4 and 5), best-operating-
// point tables (Tables 1 and 3), the operating-point list (Table 2),
// and the weighted-ED2P tradeoff curves (Figure 2).
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dvfs"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Comment string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Comment != "" {
		fmt.Fprintf(&sb, "%s\n", t.Comment)
	}
	sb.WriteByte('\n')
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// Crescendo renders a normalized energy-delay crescendo (one paper
// figure) with absolute values alongside.
func Crescendo(w io.Writer, title string, c core.Crescendo) error {
	n := c.Normalized(0)
	t := &Table{
		Title:  title,
		Header: []string{"point", "energy(J)", "delay(s)", "E/E0", "D/D0"},
	}
	for i, p := range c.Points {
		t.AddRow(
			p.Label,
			fmt.Sprintf("%.1f", p.Energy),
			fmt.Sprintf("%.2f", p.Delay),
			fmt.Sprintf("%.3f", n.Points[i].Energy),
			fmt.Sprintf("%.3f", n.Points[i].Delay),
		)
	}
	best := c.Best(core.DeltaHPC)
	t.Comment = fmt.Sprintf("best: HPC=%s  energy=%s  performance=%s  (HPC point %.1f%% more efficient than %s)",
		c.Points[best].Label,
		c.Points[c.Best(core.DeltaEnergy)].Label,
		c.Points[c.Best(core.DeltaPerformance)].Label,
		100*c.Improvement(best, 0, core.DeltaHPC),
		c.Points[0].Label)
	_, err := t.WriteTo(w)
	return err
}

// CrescendoRow is one named workload row for BestPoints. Callers pass
// an ordered slice, so row order is theirs — no separate order slice,
// no silently skipped names.
type CrescendoRow struct {
	Name      string
	Crescendo core.Crescendo
}

// BestPoints renders a Table 1 / Table 3 style best-operating-point
// table for several workloads, in slice order.
func BestPoints(w io.Writer, title string, rows []CrescendoRow) error {
	t := &Table{
		Title:  title,
		Header: []string{"operating point", "HPC", "energy", "performance"},
	}
	for _, r := range rows {
		ops := r.Crescendo.SelectOperatingPoints()
		t.AddRow(r.Name, freqCell(ops.HPC), freqCell(ops.Energy), freqCell(ops.Performance))
	}
	_, err := t.WriteTo(w)
	return err
}

func freqCell(p core.Point) string {
	if p.Freq == 0 {
		return p.Label
	}
	return fmt.Sprintf("%d", p.Freq.MHz())
}

// OperatingPoints renders Table 2: the DVS table of the processor.
func OperatingPoints(w io.Writer, table dvfs.Table) error {
	t := &Table{
		Title:  "Table 2. Frequency operating points and supply voltage (Pentium M 1.4GHz)",
		Header: []string{"frequency", "supply voltage"},
	}
	for _, op := range table.Points() {
		t.AddRow(op.Freq.String(), fmt.Sprintf("%.3fV", op.Voltage))
	}
	_, err := t.WriteTo(w)
	return err
}

// TradeoffCurves renders Figure 2: for each weight factor, the energy
// fraction required to tie the baseline as delay grows.
func TradeoffCurves(w io.Writer, deltas []float64, xMax float64, n int) error {
	t := &Table{
		Title: "Fig 2. Required energy fraction vs delay factor (weighted ED2P ties)",
	}
	t.Header = append(t.Header, "delay x")
	for _, d := range deltas {
		t.Header = append(t.Header, fmt.Sprintf("d=%.1f", d))
	}
	xs, _ := core.TradeoffCurve(deltas[0], xMax, n)
	rows := make([][]string, n)
	for i, x := range xs {
		rows[i] = append(rows[i], fmt.Sprintf("%.2f", x))
	}
	for _, d := range deltas {
		_, ys := core.TradeoffCurve(d, xMax, n)
		for i, y := range ys {
			rows[i] = append(rows[i], fmt.Sprintf("%.3f", y))
		}
	}
	t.Rows = rows
	_, err := t.WriteTo(w)
	return err
}

// StrategyComparison renders Figures 4/5: energy and delay for each
// strategy at each base operating point, normalized to the first row.
type StrategyPoint struct {
	Strategy string
	Label    string
	Energy   float64 // joules
	Delay    float64 // seconds
}

// Strategies renders the comparison table normalized to base (index
// into pts).
func Strategies(w io.Writer, title string, pts []StrategyPoint, base int) error {
	if len(pts) == 0 {
		return fmt.Errorf("report: no points")
	}
	b := pts[base]
	t := &Table{
		Title:  title,
		Header: []string{"strategy", "point", "energy(J)", "delay(s)", "E/E0", "D/D0"},
	}
	for _, p := range pts {
		t.AddRow(p.Strategy, p.Label,
			fmt.Sprintf("%.1f", p.Energy),
			fmt.Sprintf("%.2f", p.Delay),
			fmt.Sprintf("%.3f", p.Energy/b.Energy),
			fmt.Sprintf("%.3f", p.Delay/b.Delay))
	}
	_, err := t.WriteTo(w)
	return err
}
