package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dvfs"
)

func sample() core.Crescendo {
	tab := dvfs.PentiumM14()
	return core.Crescendo{Workload: "demo", Points: []core.Point{
		{Label: "1.4GHz", Freq: tab.At(0).Freq, Energy: 100, Delay: 10},
		{Label: "1.2GHz", Freq: tab.At(1).Freq, Energy: 90, Delay: 10.5},
		{Label: "1.0GHz", Freq: tab.At(2).Freq, Energy: 80, Delay: 11},
		{Label: "800MHz", Freq: tab.At(3).Freq, Energy: 70, Delay: 11.7},
		{Label: "600MHz", Freq: tab.At(4).Freq, Energy: 62, Delay: 12.8},
	}}
}

func TestCrescendoRendering(t *testing.T) {
	var sb strings.Builder
	if err := Crescendo(&sb, "Fig X. demo", sample()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig X. demo", "1.4GHz", "600MHz", "E/E0", "0.620", "best: HPC="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBestPointsRendering(t *testing.T) {
	var sb strings.Builder
	rows := []CrescendoRow{{Name: "demo", Crescendo: sample()}}
	if err := BestPoints(&sb, "Table 1.", rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "600") || !strings.Contains(out, "1400") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestOperatingPointsRendering(t *testing.T) {
	var sb strings.Builder
	if err := OperatingPoints(&sb, dvfs.PentiumM14()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"1.4GHz", "1.484V", "600MHz", "0.956V"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTradeoffCurvesRendering(t *testing.T) {
	var sb strings.Builder
	if err := TradeoffCurves(&sb, []float64{-0.4, 0, 0.2, 0.4}, 2.0, 6); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "d=0.2") || !strings.Contains(out, "1.00") {
		t.Fatalf("output:\n%s", out)
	}
	// First row (x=1) ties at fraction 1 for every weight.
	lines := strings.Split(out, "\n")
	var first string
	for _, l := range lines {
		if strings.HasPrefix(l, "1.00") {
			first = l
			break
		}
	}
	if strings.Count(first, "1.000") != 4 {
		t.Fatalf("x=1 row should be all 1.000: %q", first)
	}
}

func TestStrategiesRendering(t *testing.T) {
	pts := []StrategyPoint{
		{Strategy: "static", Label: "1.4GHz", Energy: 100, Delay: 10},
		{Strategy: "static", Label: "600MHz", Energy: 66, Delay: 11},
		{Strategy: "dynamic", Label: "1.4GHz", Energy: 68, Delay: 10.8},
		{Strategy: "cpuspeed", Label: "auto", Energy: 97, Delay: 9.9},
	}
	var sb strings.Builder
	if err := Strategies(&sb, "Fig 4.", pts, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dynamic", "cpuspeed", "0.660", "0.970"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := Strategies(&sb, "x", nil, 0); err == nil {
		t.Fatal("expected error on empty points")
	}
}

func TestTableAddRow(t *testing.T) {
	tb := &Table{Header: []string{"a", "bb"}}
	tb.AddRow("x", "y")
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x") {
		t.Fatal("row missing")
	}
}
