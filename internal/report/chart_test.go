package report

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestCrescendoChart(t *testing.T) {
	var sb strings.Builder
	if err := CrescendoChart(&sb, "Fig X.", sample(), 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig X.") || !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Fatalf("chart output:\n%s", out)
	}
	// Every point renders two bar rows.
	if got := strings.Count(out, " E "); got != 5 {
		t.Fatalf("%d energy rows", got)
	}
	if got := strings.Count(out, " D "); got != 5 {
		t.Fatalf("%d delay rows", got)
	}
	// Empty crescendo errors.
	if err := CrescendoChart(&sb, "x", core.Crescendo{Points: []core.Point{{Energy: 1, Delay: 1}}}, 0); err != nil {
		t.Fatalf("single point should chart: %v", err)
	}
}

func TestCurveChart(t *testing.T) {
	xs := []float64{1, 1.25, 1.5, 1.75, 2}
	series := []Series{
		{Name: "d=0.0", Values: []float64{1, 0.8, 0.6, 0.5, 0.4}},
		{Name: "d=0.2", Values: []float64{1, 0.6, 0.4, 0.3, 0.2}},
	}
	var sb strings.Builder
	if err := CurveChart(&sb, "Fig 2.", xs, series, 11); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Markers follow slice order, not name order.
	if !strings.Contains(out, "* = d=0.0") || !strings.Contains(out, "+ = d=0.2") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1.00 |") || !strings.Contains(out, "0.00 |") {
		t.Fatal("y axis missing")
	}
	// Reversing the slice reverses the markers: the caller owns order.
	var sb2 strings.Builder
	if err := CurveChart(&sb2, "Fig 2.", xs, []Series{series[1], series[0]}, 11); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "* = d=0.2") {
		t.Fatal("marker assignment should follow slice order")
	}
	// Validation paths.
	if err := CurveChart(&sb, "x", nil, series, 11); err == nil {
		t.Fatal("empty xs should error")
	}
	if err := CurveChart(&sb, "x", xs, []Series{{Name: "bad", Values: []float64{1}}}, 11); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := CurveChart(&sb, "x", xs, series, 1); err == nil {
		t.Fatal("too few rows should error")
	}
}
