package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
)

// CrescendoChart renders a figure-style ASCII chart of a normalized
// crescendo: for each operating point, horizontal bars for normalized
// energy and delay, in the spirit of the paper's paired-bar figures.
func CrescendoChart(w io.Writer, title string, c core.Crescendo, ref int) error {
	n := c.Normalized(ref)
	var maxVal float64
	for _, p := range n.Points {
		maxVal = math.Max(maxVal, math.Max(p.Energy, p.Delay))
	}
	if maxVal <= 0 {
		return fmt.Errorf("report: empty chart")
	}
	const width = 48
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-10s  %-*s\n", "", width, "normalized to "+c.Points[ref].Label+"  (#=energy, ==delay)")
	for _, p := range n.Points {
		eBar := int(p.Energy / maxVal * width)
		dBar := int(p.Delay / maxVal * width)
		fmt.Fprintf(&sb, "%-10s E %s %.3f\n", p.Label, pad(strings.Repeat("#", eBar), width), p.Energy)
		fmt.Fprintf(&sb, "%-10s D %s %.3f\n", "", pad(strings.Repeat("=", dBar), width), p.Delay)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Series is one named curve for CurveChart. Callers pass an ordered
// slice, and that order drives marker assignment and the legend — the
// chart never has to sort away map-iteration nondeterminism.
type Series struct {
	Name   string
	Values []float64
}

// CurveChart renders x/y lines as an ASCII scatter, used for the
// Figure 2 tradeoff curves. Rows are y buckets from top (max) to
// bottom, columns are the x samples. Series are drawn (and listed in
// the legend) in slice order.
func CurveChart(w io.Writer, title string, xs []float64, series []Series, rows int) error {
	if len(xs) == 0 || len(series) == 0 || rows < 2 {
		return fmt.Errorf("report: bad curve chart input")
	}
	for _, s := range series {
		if len(s.Values) != len(xs) {
			return fmt.Errorf("report: series %q length mismatch", s.Name)
		}
	}
	markers := "*+ox^@%&"
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for i, s := range series {
		fmt.Fprintf(&sb, "  %c = %s\n", markers[i%len(markers)], s.Name)
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(xs)))
	}
	for si, s := range series {
		for xi, y := range s.Values {
			if y < 0 {
				y = 0
			}
			if y > 1 {
				y = 1
			}
			row := int((1 - y) * float64(rows-1))
			grid[row][xi] = markers[si%len(markers)]
		}
	}
	for r, line := range grid {
		yVal := 1 - float64(r)/float64(rows-1)
		fmt.Fprintf(&sb, "%5.2f |%s|\n", yVal, string(line))
	}
	fmt.Fprintf(&sb, "      %s\n", strings.Repeat("-", len(xs)+2))
	fmt.Fprintf(&sb, "      x: %.2f .. %.2f\n\n", xs[0], xs[len(xs)-1])
	_, err := io.WriteString(w, sb.String())
	return err
}
