package report

import (
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestTraceSummary(t *testing.T) {
	st := trace.NewStats()
	meta := trace.Meta{Version: trace.FormatVersion, Interval: sim.Second,
		NodeIDs: []int{0, 3}, Components: power.NumComponents}
	if err := st.Begin(meta); err != nil {
		t.Fatal(err)
	}
	row := []trace.Sample{{Node: 0, Total: 10}, {Node: 3, Total: 30}}
	for i := 0; i < 4; i++ {
		row[0].At = sim.Time(i) * sim.Time(sim.Second)
		row[1].At = row[0].At
		if err := st.Tick(row[0].At, row); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := TraceSummary(&sb, "Trace summary", st); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Trace summary", "mean (W)", "10.000", "30.000", "120.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	// Empty stats render a comment, not an error.
	var sb2 strings.Builder
	empty := trace.NewStats()
	if err := empty.Begin(meta); err != nil {
		t.Fatal(err)
	}
	if err := TraceSummary(&sb2, "Empty", empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "no samples") {
		t.Fatalf("output:\n%s", sb2.String())
	}
}
