package report

import (
	"fmt"
	"io"

	"repro/internal/trace"
)

// TraceSummary renders per-node power statistics from a streaming
// trace.Stats sink: mean and peak draw plus integrated energy, one row
// per traced node.
func TraceSummary(w io.Writer, title string, st *trace.Stats) error {
	t := &Table{
		Title:  title,
		Header: []string{"node", "mean (W)", "peak (W)", "energy (J)"},
	}
	if st.Ticks() == 0 {
		t.Comment = "no samples"
		_, err := t.WriteTo(w)
		return err
	}
	for _, id := range st.Nodes() {
		mean, err := st.MeanPower(id)
		if err != nil {
			return err
		}
		peak, err := st.PeakPower(id)
		if err != nil {
			return err
		}
		energy, err := st.Energy(id)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", id),
			fmt.Sprintf("%.3f", float64(mean)),
			fmt.Sprintf("%.3f", float64(peak)),
			fmt.Sprintf("%.1f", float64(energy)))
	}
	_, err := t.WriteTo(w)
	return err
}
