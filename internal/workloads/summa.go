package workloads

// Summa is a dense matrix-multiply on a square process grid using the
// SUMMA algorithm: in each of the √P panel steps, the owning column
// broadcasts an A-panel along its row communicator and the owning row
// broadcasts a B-panel along its column communicator, then every rank
// multiplies the panels locally. It exercises sub-communicators the
// way real dense linear algebra does, and it is compute-bound with a
// periodic, broadcast-shaped communication pattern — different from
// both FT's all-to-all and LU's wavefront.

import "fmt"

// Summa multiplies two N×N matrices on a G×G process grid (G²  ranks).
type Summa struct {
	// N is the matrix dimension.
	N int64
	// Grid is G, the side of the process grid.
	Grid int
}

// NewSumma returns an N×N multiply on a grid×grid rank layout.
func NewSumma(n int64, grid int) *Summa {
	if n <= 0 || grid <= 0 {
		panic("workloads: SUMMA needs positive size and grid") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	if n%int64(grid) != 0 {
		panic(fmt.Sprintf("workloads: SUMMA N=%d not divisible by grid %d", n, grid)) //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	return &Summa{N: n, Grid: grid}
}

// Name implements Workload.
func (s *Summa) Name() string { return fmt.Sprintf("summa.%d", s.N) }

// Ranks implements Workload.
func (s *Summa) Ranks() int { return s.Grid * s.Grid }

// Run implements Workload.
func (s *Summa) Run(ctx Ctx) {
	g := s.Grid
	me := ctx.Rank.ID()
	row := me / g
	col := me % g
	rowComm := ctx.Rank.Split(ctx.P, row, col) // peers sharing my row
	colComm := ctx.Rank.Split(ctx.P, col, row) // peers sharing my column

	block := s.N / int64(g)         // local block is block×block
	panelBytes := block * block * 8 // one panel per step
	flopsPerStep := 2 * float64(block) * float64(block) * float64(block)
	// Local GEMM streams the panels once per step; blocked kernels keep
	// most traffic in cache.
	accessesPerStep := block * block / 2

	for k := 0; k < g; k++ {
		ctx.PP.EnterRegion(ctx.P, RegionPanel)
		rowComm.Bcast(ctx.P, k, panelBytes, nil) // A-panel from column k
		colComm.Bcast(ctx.P, k, panelBytes, nil) // B-panel from row k
		ctx.PP.ExitRegion(ctx.P, RegionPanel)

		const slices = 4
		for sl := 0; sl < slices; sl++ {
			ctx.Node.MemoryRounds(ctx.P, accessesPerStep/slices)
			ctx.Node.ComputeFlops(ctx.P, flopsPerStep/slices)
		}
	}
	// Verification norm.
	ctx.Rank.Allreduce(ctx.P, 8, nil, nil)
}

// RegionPanel is the PowerPack region wrapping SUMMA's panel
// broadcasts — its communication slack.
const RegionPanel = "panel"
