package workloads

import "fmt"

// MemBench is the PowerPack memory-bound microbenchmark (Fig. 6): it
// reads and writes elements from a 32 MB buffer with a 128-byte stride,
// so every reference misses the caches and is served from main memory.
type MemBench struct {
	// BufferBytes is the working-set size (default 32 MB).
	BufferBytes int64
	// StrideBytes is the access stride (default 128 B).
	StrideBytes int64
	// Passes is how many sweeps over the buffer to run; the paper runs
	// long enough for the ACPI refresh to resolve the energy.
	Passes int
}

// NewMemBench returns the paper's configuration with the given number
// of passes.
func NewMemBench(passes int) *MemBench {
	return &MemBench{BufferBytes: 32 << 20, StrideBytes: 128, Passes: passes}
}

// Name implements Workload.
func (b *MemBench) Name() string { return "membench" }

// Ranks implements Workload.
func (b *MemBench) Ranks() int { return 1 }

// Run implements Workload.
func (b *MemBench) Run(ctx Ctx) {
	accesses := b.BufferBytes / b.StrideBytes
	for i := 0; i < b.Passes; i++ {
		ctx.Node.MemoryRounds(ctx.P, accesses)
	}
}

// CacheBench is the CPU-bound microbenchmark of Fig. 7: reads and
// writes over a 256 KB buffer with a 128-byte stride, so every access
// hits the on-die (core-clocked) L2 cache.
type CacheBench struct {
	BufferBytes int64
	StrideBytes int64
	Passes      int
}

// NewCacheBench returns the paper's configuration.
func NewCacheBench(passes int) *CacheBench {
	return &CacheBench{BufferBytes: 256 << 10, StrideBytes: 128, Passes: passes}
}

// Name implements Workload.
func (b *CacheBench) Name() string { return "cachebench" }

// Ranks implements Workload.
func (b *CacheBench) Ranks() int { return 1 }

// Run implements Workload.
func (b *CacheBench) Run(ctx Ctx) {
	accesses := b.BufferBytes / b.StrideBytes
	for i := 0; i < b.Passes; i++ {
		ctx.Node.L2Rounds(ctx.P, accesses)
	}
}

// RegBench is the register-only variant the paper mentions: all
// operands live in registers, eliminating even L2 latency, so the code
// is purely core-clocked — the worst case for DVS.
type RegBench struct {
	// CyclesPerPass is the core work per pass.
	CyclesPerPass float64
	Passes        int
}

// NewRegBench returns a configuration comparable in per-pass duration
// to the other microbenchmarks.
func NewRegBench(passes int) *RegBench {
	return &RegBench{CyclesPerPass: 2e6, Passes: passes}
}

// Name implements Workload.
func (b *RegBench) Name() string { return "regbench" }

// Ranks implements Workload.
func (b *RegBench) Ranks() int { return 1 }

// Run implements Workload.
func (b *RegBench) Run(ctx Ctx) {
	for i := 0; i < b.Passes; i++ {
		ctx.Node.Compute(ctx.P, b.CyclesPerPass)
	}
}

// CommBench is the communication microbenchmark of Fig. 8: a two-rank
// ping-pong. With MsgBytes = 256 KB it is Fig. 8(a) (rendezvous
// round trip); with 4 KB it is Fig. 8(b) (eager messages, the touch of
// the buffer at a 64-byte stride folded into the per-byte cost).
type CommBench struct {
	MsgBytes int64
	Rounds   int
}

// NewCommBench256K returns Fig. 8(a)'s configuration.
func NewCommBench256K(rounds int) *CommBench {
	return &CommBench{MsgBytes: 256 << 10, Rounds: rounds}
}

// NewCommBench4K returns Fig. 8(b)'s configuration.
func NewCommBench4K(rounds int) *CommBench {
	return &CommBench{MsgBytes: 4 << 10, Rounds: rounds}
}

// Name implements Workload.
func (b *CommBench) Name() string {
	return fmt.Sprintf("commbench-%dB", b.MsgBytes)
}

// Ranks implements Workload.
func (b *CommBench) Ranks() int { return 2 }

// Run implements Workload.
func (b *CommBench) Run(ctx Ctx) {
	r := ctx.Rank
	const tag = 1
	// The 4 KB variant walks its buffer at a 64-byte stride each round
	// (the paper's "4 Kbyte message with stride of 64 Bytes").
	touches := int64(0)
	if b.MsgBytes <= 64<<10 {
		touches = b.MsgBytes / 64
	}
	for i := 0; i < b.Rounds; i++ {
		ctx.Node.MemoryRounds(ctx.P, touches)
		if r.ID() == 0 {
			r.Send(ctx.P, 1, tag, b.MsgBytes, nil)
			r.Recv(ctx.P, 1, tag)
		} else {
			r.Recv(ctx.P, 0, tag)
			r.Send(ctx.P, 0, tag, b.MsgBytes, nil)
		}
	}
}
