package workloads

import (
	"testing"

	"repro/internal/machine"
)

func TestNPBNamesAndValidation(t *testing.T) {
	if NewEP('A', 4).Name() != "ep.A" || NewCG('B', 4).Name() != "cg.B" || NewIS('C', 8).Name() != "is.C" {
		t.Fatal("names")
	}
	for _, fn := range []func(){
		func() { NewEP('X', 4) },
		func() { NewCG('X', 4) },
		func() { NewIS('X', 4) },
		func() { NewEP('A', 0) },
		func() { NewCG('A', 0) },
		func() { NewIS('A', 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEPIsComputeBound(t *testing.T) {
	ep := NewEP('A', 4)
	ep.PairsOverride = 1 << 22
	_, nodes, end := harness(t, ep)
	frac := float64(nodes[0].StateTime(machine.Compute)) / float64(end)
	if frac < 0.90 {
		t.Fatalf("EP compute fraction %.3f", frac)
	}
}

func TestCGIsMemoryAndCommBound(t *testing.T) {
	cg := NewCG('A', 4)
	cg.IterOverride = 3
	_, nodes, end := harness(t, cg)
	n := nodes[0]
	mem := float64(n.StateTime(machine.MemoryStall)) / float64(end)
	wait := float64(n.StateTime(machine.Spin)+n.StateTime(machine.Blocked)) / float64(end)
	if mem < 0.30 {
		t.Fatalf("CG memory fraction %.3f too low", mem)
	}
	if wait <= 0 {
		t.Fatal("CG should spend time in communication waits")
	}
	comp := float64(n.StateTime(machine.Compute)) / float64(end)
	if comp > mem {
		t.Fatalf("CG compute fraction %.3f should be below memory %.3f", comp, mem)
	}
}

func TestISIsCommHeavy(t *testing.T) {
	is := NewIS('A', 8)
	is.IterOverride = 2
	_, nodes, end := harness(t, is)
	n := nodes[0]
	wait := float64(n.StateTime(machine.Spin)+n.StateTime(machine.Blocked)) / float64(end)
	if wait < 0.25 {
		t.Fatalf("IS wait fraction %.3f too low", wait)
	}
}

func TestNPBSingleRankSkipsCollectives(t *testing.T) {
	// Every kernel must run on one rank without touching MPI.
	ep := NewEP('A', 1)
	ep.PairsOverride = 1 << 20
	cg := NewCG('A', 1)
	cg.IterOverride = 1
	is := NewIS('A', 1)
	is.IterOverride = 1
	for _, w := range []Workload{ep, cg, is} {
		_, _, end := harness(t, w)
		if end <= 0 {
			t.Fatalf("%s did not run", w.Name())
		}
	}
}

func TestEPClassScaling(t *testing.T) {
	if NewEP('A', 1).pairs() >= NewEP('B', 1).pairs() || NewEP('B', 1).pairs() >= NewEP('C', 1).pairs() {
		t.Fatal("EP classes must grow")
	}
	nA, nnzA, _ := NewCG('A', 1).classParams()
	nB, nnzB, _ := NewCG('B', 1).classParams()
	if nA >= nB || nnzA >= nnzB {
		t.Fatal("CG classes must grow")
	}
	if NewIS('A', 1).keys() >= NewIS('B', 1).keys() {
		t.Fatal("IS classes must grow")
	}
}
