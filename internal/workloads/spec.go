package workloads

// Sequential models of the two SPEC CFP2000 codes of Figure 1. Both are
// expressed as iterations mixing DRAM-bound and core-bound phases; the
// mix ratio is what distinguishes them:
//
//   - swim (shallow-water finite differences) streams large arrays and
//     spends ~90% of its time stalled on memory — the energy-friendly
//     crescendo whose "best" HPC operating point drops to 1.0 GHz
//     (paper Table 1);
//   - mgrid (multigrid solver) is cache-resident and compute-heavy
//     (~25% memory), so reduced frequency buys little energy at a large
//     delay cost and the HPC best stays at 1.4 GHz.

// Spec is a sequential two-phase iteration mix.
type Spec struct {
	name string
	// MemAccessesPerIter DRAM round trips per iteration.
	MemAccessesPerIter int64
	// ComputeCyclesPerIter core cycles per iteration.
	ComputeCyclesPerIter float64
	Iterations           int
}

// NewSwim builds the swim model: at the top frequency roughly 90% of
// iteration time is memory stall (1M accesses ≈ 115 ms) and 10% core
// work (17.8M cycles ≈ 12.7 ms).
func NewSwim(iterations int) *Spec {
	return &Spec{
		name:                 "swim",
		MemAccessesPerIter:   1_000_000,
		ComputeCyclesPerIter: 17.8e6,
		Iterations:           iterations,
	}
}

// NewMgrid builds the mgrid model: roughly 25% memory stall and 75%
// core work per iteration at the top frequency.
func NewMgrid(iterations int) *Spec {
	return &Spec{
		name:                 "mgrid",
		MemAccessesPerIter:   280_000, // ≈32 ms at 114.6 ns/access
		ComputeCyclesPerIter: 134.7e6, // ≈96 ms at 1.4 GHz
		Iterations:           iterations,
	}
}

// Name implements Workload.
func (s *Spec) Name() string { return s.name }

// Ranks implements Workload.
func (s *Spec) Ranks() int { return 1 }

// Run implements Workload. Iterations interleave the memory and compute
// phases in slices so DVS transitions take effect at fine granularity.
// This loop is the body of every synthetic-campaign cell (~27%
// cumulative CPU in the campaign profile), hence the hotpath root: the
// per-slice iteration must not allocate.
//
//lint:hotpath
func (s *Spec) Run(ctx Ctx) {
	const slices = 4
	for it := 0; it < s.Iterations; it++ {
		for sl := 0; sl < slices; sl++ {
			ctx.Node.MemoryRounds(ctx.P, s.MemAccessesPerIter/slices)
			ctx.Node.Compute(ctx.P, s.ComputeCyclesPerIter/slices)
		}
	}
}
