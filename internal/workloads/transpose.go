package workloads

import "fmt"

// Transpose is the paper's parallel matrix transpose: a 12K×12K matrix
// of doubles block-distributed on a 5×3 process grid (submatrices of
// 2400×4000). Each iteration:
//
//  1. transposes the local submatrix (memory-bound),
//  2. redistributes blocks to their transposed owners — a general
//     block remap expressed as an all-to-all-v whose per-pair volumes
//     are the geometric overlaps, which is where the load imbalance
//     comes from (the corner rank keeps most of its data local),
//  3. transmits everything to the root processor for assembly — a
//     gather whose arrivals serialize on the root's receive link.
//
// Steps 2 and 3 are marked as PowerPack regions ("step2", "step3"),
// matching where the paper inserts dynamic DVS control.
type Transpose struct {
	// N is the matrix dimension (12000 in the paper).
	N int64
	// PRows × PCols is the process grid (5×3 = 15 ranks).
	PRows, PCols int
	// Iterations repeats the whole transpose, as the paper iterates
	// application execution to resolve ACPI energy.
	Iterations int
}

// Region names for dynamic DVS control.
const (
	RegionStep2 = "step2"
	RegionStep3 = "step3"
)

// NewTranspose returns the paper's 12K×12K / 5×3 configuration.
func NewTranspose(iterations int) *Transpose {
	return &Transpose{N: 12000, PRows: 5, PCols: 3, Iterations: iterations}
}

// Name implements Workload.
func (t *Transpose) Name() string { return "transpose" }

// Ranks implements Workload.
func (t *Transpose) Ranks() int { return t.PRows * t.PCols }

// blockBounds returns rank r's row and column ranges.
func (t *Transpose) blockBounds(r int) (r0, r1, c0, c1 int64) {
	rb := t.N / int64(t.PRows)
	cb := t.N / int64(t.PCols)
	p := int64(r / t.PCols)
	q := int64(r % t.PCols)
	return p * rb, (p + 1) * rb, q * cb, (q + 1) * cb
}

func overlap(a0, a1, b0, b1 int64) int64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// redistSizes computes the all-to-all-v byte counts from rank src: the
// element at (i,j) moves to (j,i), so src's contribution to dst is the
// overlap of src's rows with dst's columns times the overlap of src's
// columns with dst's rows.
func (t *Transpose) redistSizes(src int) []int64 {
	sr0, sr1, sc0, sc1 := t.blockBounds(src)
	sizes := make([]int64, t.Ranks())
	for d := range sizes {
		dr0, dr1, dc0, dc1 := t.blockBounds(d)
		elems := overlap(sr0, sr1, dc0, dc1) * overlap(sc0, sc1, dr0, dr1)
		sizes[d] = elems * 8
	}
	return sizes
}

// Run implements Workload.
func (t *Transpose) Run(ctx Ctx) {
	if ctx.Rank.Size() != t.Ranks() {
		panic(fmt.Sprintf("workloads: transpose needs %d ranks, world has %d", t.Ranks(), ctx.Rank.Size())) //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	me := ctx.Rank.ID()
	r0, r1, c0, c1 := t.blockBounds(me)
	elems := (r1 - r0) * (c1 - c0)
	blockBytes := elems * 8
	sizes := t.redistSizes(me)

	const slices = 8
	for it := 0; it < t.Iterations; it++ {
		// Step 1: local transpose — strided, cache-hostile sweeps.
		for s := 0; s < slices; s++ {
			ctx.Node.MemoryRounds(ctx.P, elems*3/2/slices)
			ctx.Node.Compute(ctx.P, float64(elems)*4/slices)
		}

		// Step 2: block redistribution to transposed owners.
		ctx.PP.EnterRegion(ctx.P, RegionStep2)
		ctx.Rank.Alltoallv(ctx.P, sizes)
		ctx.PP.ExitRegion(ctx.P, RegionStep2)

		// Step 3: assemble the full matrix at the root.
		ctx.PP.EnterRegion(ctx.P, RegionStep3)
		ctx.Rank.Gather(ctx.P, 0, blockBytes, nil)
		ctx.PP.ExitRegion(ctx.P, RegionStep3)

		// Iteration boundary: everyone synchronizes before repeating.
		ctx.Rank.Barrier(ctx.P)
	}
}
