package workloads

import (
	"fmt"
	"math/rand"
)

// Synthetic is a reproducible random workload: a seed expands into a
// per-rank program of compute, memory, copy, and communication phases.
// It exists to fuzz the whole stack (cost model, MPI runtime, power
// accounting, measurement) far outside the shapes the curated kernels
// exercise, while staying deterministic for a given seed.
type Synthetic struct {
	// Seed selects the program.
	Seed int64
	// Procs is the rank count.
	Procs int
	// Phases is the program length per iteration.
	Phases int
	// Iterations repeats the phase program.
	Iterations int
}

// NewSynthetic returns a random workload for the seed.
func NewSynthetic(seed int64, procs, phases, iterations int) *Synthetic {
	if procs < 1 || phases < 1 || iterations < 1 {
		panic("workloads: synthetic needs positive procs, phases, iterations") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	return &Synthetic{Seed: seed, Procs: procs, Phases: phases, Iterations: iterations}
}

// Name implements Workload.
func (s *Synthetic) Name() string { return fmt.Sprintf("synthetic.%d", s.Seed) }

// Ranks implements Workload.
func (s *Synthetic) Ranks() int { return s.Procs }

// phase is one step of the generated program. All ranks execute the
// same program (SPMD), so collectives always match.
type synthPhase struct {
	kind  int // 0 compute, 1 memory, 2 copy, 3 barrier, 4 alltoall, 5 allreduce, 6 ring sendrecv, 7 region-wrapped memory
	amt   int64
	bytes int64
}

// program expands the seed. Every rank derives the identical program.
func (s *Synthetic) program() []synthPhase {
	rng := rand.New(rand.NewSource(s.Seed))
	phases := make([]synthPhase, s.Phases)
	for i := range phases {
		kind := rng.Intn(8)
		if s.Procs == 1 && kind >= 3 && kind <= 6 {
			kind = rng.Intn(3) // no communication on one rank
		}
		phases[i] = synthPhase{
			kind:  kind,
			amt:   int64(rng.Intn(2_000_000) + 1000),
			bytes: int64(rng.Intn(2<<20) + 64),
		}
	}
	return phases
}

// Run implements Workload.
func (s *Synthetic) Run(ctx Ctx) {
	prog := s.program()
	me := ctx.Rank.ID()
	n := s.Procs
	for it := 0; it < s.Iterations; it++ {
		for _, ph := range prog {
			switch ph.kind {
			case 0:
				ctx.Node.Compute(ctx.P, float64(ph.amt))
			case 1:
				ctx.Node.MemoryRounds(ctx.P, ph.amt/10)
			case 2:
				ctx.Node.CopyBytes(ctx.P, ph.bytes)
			case 3:
				ctx.Rank.Barrier(ctx.P)
			case 4:
				ctx.Rank.Alltoall(ctx.P, ph.bytes)
			case 5:
				ctx.Rank.Allreduce(ctx.P, 64, nil, nil)
			case 6:
				next := (me + 1) % n
				prev := (me - 1 + n) % n
				ctx.Rank.Sendrecv(ctx.P, next, 1, ph.bytes, nil, prev, 1)
			case 7:
				ctx.PP.EnterRegion(ctx.P, "synth")
				ctx.Node.MemoryRounds(ctx.P, ph.amt/10)
				ctx.PP.ExitRegion(ctx.P, "synth")
			}
		}
	}
}
