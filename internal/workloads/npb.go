package workloads

// Additional NAS Parallel Benchmarks kernels beyond FT, covering the
// three regimes the paper's microbenchmarks isolate: EP is pure compute
// (register/cache bound — the mgrid regime), CG mixes memory-bound
// sparse algebra with latency-sensitive reductions (the swim regime
// plus communication), and IS is dominated by key exchange (the
// communication regime). They extend the evaluation rather than
// reproduce a specific paper figure; work and communication volumes
// come from each kernel's class definition.

import "fmt"

// EP is the NPB "embarrassingly parallel" kernel: generate 2^M pairs of
// Gaussian deviates and tally them, with only a final small reduction.
// It is the cluster workload least able to benefit from DVS.
type EP struct {
	Class byte
	Procs int
	// PairsOverride, if positive, replaces the class pair count.
	PairsOverride int64
}

// NewEP returns the kernel for a class ('A' 2^28, 'B' 2^30, 'C' 2^32)
// on procs ranks.
func NewEP(class byte, procs int) *EP {
	checkClass("EP", class)
	if procs < 1 {
		panic("workloads: EP needs at least 1 rank") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	return &EP{Class: class, Procs: procs}
}

func checkClass(kernel string, class byte) {
	switch class {
	case 'A', 'B', 'C':
	default:
		panic(fmt.Sprintf("workloads: unknown %s class %q", kernel, string(class))) //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
}

// Name implements Workload.
func (e *EP) Name() string { return fmt.Sprintf("ep.%c", e.Class) }

// Ranks implements Workload.
func (e *EP) Ranks() int { return e.Procs }

func (e *EP) pairs() int64 {
	if e.PairsOverride > 0 {
		return e.PairsOverride
	}
	switch e.Class {
	case 'A':
		return 1 << 28
	case 'B':
		return 1 << 30
	default:
		return 1 << 32
	}
}

// Run implements Workload.
func (e *EP) Run(ctx Ctx) {
	const cyclesPerPair = 60 // LCG + log/sqrt via table, all core-clocked
	local := e.pairs() / int64(e.Procs)
	const slices = 16
	for s := 0; s < slices; s++ {
		ctx.Node.Compute(ctx.P, float64(local)*cyclesPerPair/slices)
	}
	if e.Procs > 1 {
		// Tally the 10 annulus counts.
		ctx.Rank.Allreduce(ctx.P, 80, nil, nil)
	}
}

// CG is the NPB conjugate-gradient kernel: repeated sparse matrix-
// vector products over a random matrix, with dot-product reductions
// every iteration. The matvec is memory-bound (irregular gathers); the
// vector is shared among ranks with an allgather per iteration under a
// simple row-block distribution.
type CG struct {
	Class byte
	Procs int
	// IterOverride, if positive, replaces the class iteration count.
	IterOverride int
}

// NewCG returns the kernel for a class on procs ranks.
func NewCG(class byte, procs int) *CG {
	checkClass("CG", class)
	if procs < 1 {
		panic("workloads: CG needs at least 1 rank") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	return &CG{Class: class, Procs: procs}
}

// Name implements Workload.
func (c *CG) Name() string { return fmt.Sprintf("cg.%c", c.Class) }

// Ranks implements Workload.
func (c *CG) Ranks() int { return c.Procs }

// classParams returns (n, nonzeros, iterations).
func (c *CG) classParams() (n, nnz int64, iters int) {
	switch c.Class {
	case 'A':
		return 14000, 1_853_104, 15
	case 'B':
		return 75000, 13_708_072, 75
	default:
		return 150000, 36_121_058, 75
	}
}

// Run implements Workload.
func (c *CG) Run(ctx Ctx) {
	n, nnz, iters := c.classParams()
	if c.IterOverride > 0 {
		iters = c.IterOverride
	}
	p := int64(c.Procs)
	localNNZ := nnz / p
	localN := n / p
	const slices = 4
	for it := 0; it < iters; it++ {
		// Sparse matvec: ~1.3 dependent DRAM gathers per local nonzero
		// (column index + value stream partially cached), 4 cycles each.
		for s := 0; s < slices; s++ {
			ctx.Node.MemoryRounds(ctx.P, localNNZ*13/10/slices)
			ctx.Node.Compute(ctx.P, float64(localNNZ)*4/slices)
		}
		// Vector update (axpy) streams the local rows.
		ctx.Node.MemoryRounds(ctx.P, localN/4)
		if c.Procs > 1 {
			// Share the updated vector and reduce two dot products.
			ctx.Rank.Allgather(ctx.P, localN*8)
			ctx.Rank.Allreduce(ctx.P, 8, nil, nil)
			ctx.Rank.Allreduce(ctx.P, 8, nil, nil)
		}
	}
}

// IS is the NPB integer-sort kernel: bucketed key exchange dominated by
// an all-to-all-v, plus local histogram and ranking passes.
type IS struct {
	Class byte
	Procs int
	// IterOverride, if positive, replaces the standard 10 iterations.
	IterOverride int
}

// NewIS returns the kernel for a class ('A' 2^23 keys, 'B' 2^25,
// 'C' 2^27) on procs ranks.
func NewIS(class byte, procs int) *IS {
	checkClass("IS", class)
	if procs < 1 {
		panic("workloads: IS needs at least 1 rank") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	return &IS{Class: class, Procs: procs}
}

// Name implements Workload.
func (s *IS) Name() string { return fmt.Sprintf("is.%c", s.Class) }

// Ranks implements Workload.
func (s *IS) Ranks() int { return s.Procs }

func (s *IS) keys() int64 {
	switch s.Class {
	case 'A':
		return 1 << 23
	case 'B':
		return 1 << 25
	default:
		return 1 << 27
	}
}

// Run implements Workload.
func (s *IS) Run(ctx Ctx) {
	iters := 10
	if s.IterOverride > 0 {
		iters = s.IterOverride
	}
	p := int64(s.Procs)
	localKeys := s.keys() / p
	// Keys are 4 bytes; with uniform keys each rank keeps 1/P of its
	// data and ships the rest evenly.
	sizes := make([]int64, s.Procs)
	for i := range sizes {
		sizes[i] = localKeys * 4 / p
	}
	for it := 0; it < iters; it++ {
		// Local histogram: one pass over the keys (cache-friendly
		// counting), then bucket scatter (one store per key).
		ctx.Node.MemoryRounds(ctx.P, localKeys/8)
		ctx.Node.Compute(ctx.P, float64(localKeys)*3)
		if s.Procs > 1 {
			ctx.Rank.Alltoallv(ctx.P, sizes)
			// Rank verification reduction.
			ctx.Rank.Allreduce(ctx.P, 8, nil, nil)
		}
		// Local ranking of received keys.
		ctx.Node.MemoryRounds(ctx.P, localKeys/8)
	}
}
