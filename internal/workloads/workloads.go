// Package workloads implements the applications and microbenchmarks of
// the paper's evaluation as phase-accurate models: the work (cycles,
// memory accesses, message volumes) is taken from each benchmark's
// definition, and executing a workload drives the node cost model and
// the MPI runtime so time-to-solution and energy emerge from the
// simulation rather than being scripted.
//
// Included:
//
//   - NAS FT classes A/B/C (3-D FFT with all-to-all exchange), with the
//     fft() region marked for dynamic DVS control exactly as the paper
//     instruments it;
//   - the 12K×12K parallel matrix transpose on a 5×3 process grid
//     (block redistribution + gather to root, with its load imbalance);
//   - sequential models of SPEC CFP2000 swim (memory-bound) and mgrid
//     (compute-bound), the Figure 1 pair;
//   - the PowerPack microbenchmarks: memory-bound (32 MB / 128 B
//     stride), CPU-bound L2 (256 KB / 128 B stride), register-only, and
//     the two communication ping-pongs of Figure 8.
package workloads

import (
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

// Ctx is the per-rank execution context a workload body receives.
type Ctx struct {
	P    *sim.Proc
	Rank *mpi.Rank
	Node *machine.Node
	PP   *powerpack.NodeCtx
}

// Workload is an SPMD program: Run is invoked once per rank with that
// rank's context. Sequential workloads report Ranks() == 1.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Ranks is the number of MPI ranks (and nodes) the workload needs.
	Ranks() int
	// Run executes the body for one rank; it must be safe to call on
	// fresh cluster state any number of times.
	Run(ctx Ctx)
}
