package workloads

import (
	"fmt"
)

// FT models the NAS Parallel Benchmarks FT kernel: a 3-D FFT solved by
// 1-D decomposition, where each iteration evolves the spectrum
// pointwise and performs a distributed transpose (all-to-all) inside
// the fft() function. Communication volume comes from the class's grid
// dimensions (16-byte complex doubles); compute is a calibrated
// memory-heavy mix (FFT sweeps are strided passes over the local slab).
//
// The fft() function — the transpose plus the FFT sweeps — is marked as
// a PowerPack region named "fft", matching where the paper inserts its
// dynamic DVS control calls.
type FT struct {
	// Class is the NPB problem class: 'A', 'B', or 'C'.
	Class byte
	// Procs is the number of ranks.
	Procs int
	// IterOverride, if positive, replaces the class's standard
	// iteration count (tests use small values).
	IterOverride int
}

// RegionFFT is the PowerPack region name wrapping the fft() function.
const RegionFFT = "fft"

// NewFT returns the class running on procs ranks.
func NewFT(class byte, procs int) *FT {
	switch class {
	case 'A', 'B', 'C':
	default:
		panic(fmt.Sprintf("workloads: unknown FT class %q", string(class))) //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	if procs < 1 {
		panic("workloads: FT needs at least 1 rank") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	return &FT{Class: class, Procs: procs}
}

// classDims returns the grid size and standard iteration count.
func (f *FT) classDims() (points int64, iters int) {
	switch f.Class {
	case 'A':
		return 256 * 256 * 128, 6
	case 'B':
		return 512 * 256 * 256, 20
	case 'C':
		return 512 * 512 * 512, 20
	default:
		panic("workloads: bad FT class") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
}

// Name implements Workload.
func (f *FT) Name() string { return fmt.Sprintf("ft.%c", f.Class) }

// Ranks implements Workload.
func (f *FT) Ranks() int { return f.Procs }

// Run implements Workload.
func (f *FT) Run(ctx Ctx) {
	points, iters := f.classDims()
	if f.IterOverride > 0 {
		iters = f.IterOverride
	}
	p := int64(f.Procs)
	local := points / p // points per rank
	perPeer := points * 16 / (p * p)

	// Per-point costs of the FFT sweeps (strided passes over the local
	// slab: ~2 DRAM round trips and ~80 core cycles per point) and of
	// the evolve step (~0.5 accesses, ~10 cycles per point).
	const (
		fftAccessesPerPoint = 2.2
		fftCyclesPerPoint   = 40.0
		evAccessesPerPoint  = 0.5
		evCyclesPerPoint    = 4.0
		slices              = 8 // DVS granularity within a phase
	)

	for it := 0; it < iters; it++ {
		// evolve: outside the instrumented region, runs at the base
		// operating point under dynamic control.
		for s := 0; s < slices; s++ {
			ctx.Node.MemoryRounds(ctx.P, int64(float64(local)*evAccessesPerPoint)/slices)
			ctx.Node.Compute(ctx.P, float64(local)*evCyclesPerPoint/slices)
		}

		// fft(): FFT sweeps plus the distributed transpose. This is
		// where the slack lives; the paper scales it down.
		ctx.PP.EnterRegion(ctx.P, RegionFFT)
		for s := 0; s < slices; s++ {
			ctx.Node.MemoryRounds(ctx.P, int64(float64(local)*fftAccessesPerPoint)/slices)
			ctx.Node.Compute(ctx.P, float64(local)*fftCyclesPerPoint/slices)
		}
		if f.Procs > 1 {
			ctx.Rank.Alltoall(ctx.P, perPeer)
		}
		ctx.PP.ExitRegion(ctx.P, RegionFFT)

		// checksum: a tiny allreduce closing the iteration.
		if f.Procs > 1 {
			ctx.Rank.Allreduce(ctx.P, 16, nil, nil)
		}
	}
}
