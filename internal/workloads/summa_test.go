package workloads

import (
	"testing"

	"repro/internal/machine"
)

func TestSummaValidation(t *testing.T) {
	if NewSumma(1024, 2).Name() != "summa.1024" || NewSumma(1024, 2).Ranks() != 4 {
		t.Fatal("basics")
	}
	for _, fn := range []func(){
		func() { NewSumma(0, 2) },
		func() { NewSumma(100, 0) },
		func() { NewSumma(1000, 3) }, // not divisible
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSummaRunsOnGrid(t *testing.T) {
	s := NewSumma(4096, 2)
	ctxs, nodes, end := harness(t, s)
	if end <= 0 {
		t.Fatal("no progress")
	}
	// Compute dominates (it is a GEMM), with panel waits present.
	n := nodes[0]
	comp := float64(n.StateTime(machine.Compute)) / float64(end)
	if comp < 0.5 {
		t.Fatalf("compute fraction %.3f", comp)
	}
	// The panel region was profiled on every rank, once per step.
	for i, c := range ctxs {
		rp := c.Profile(RegionPanel)
		if rp == nil || rp.Count != 2 {
			t.Fatalf("rank %d panel profile %+v", i, rp)
		}
	}
}

func TestSummaPanelTrafficScales(t *testing.T) {
	s := NewSumma(768, 2)
	_, _, world, _ := harnessWorld(t, s)
	// Each bcast ships a (N/G)² panel: per rank, per step, bounded
	// below by one panel's bytes.
	panel := int64(384 * 384 * 8)
	var total int64
	for i := 0; i < s.Ranks(); i++ {
		total += world.Rank(i).Stats().BytesSent
	}
	if total < panel*2 { // at least the two roots shipped panels
		t.Fatalf("total panel traffic %d too small", total)
	}
}
