package workloads

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/powerpack"
	"repro/internal/sim"
)

// harness runs a workload on a fresh cluster at the top operating point
// with no DVS policy, returning the per-node contexts and the end time.
func harness(t *testing.T, w Workload) ([]*powerpack.NodeCtx, []*machine.Node, sim.Time) {
	t.Helper()
	ctxs, nodes, _, end := harnessWorld(t, w)
	return ctxs, nodes, end
}

// harnessWorld is harness exposing the MPI world for traffic checks.
func harnessWorld(t *testing.T, w Workload) ([]*powerpack.NodeCtx, []*machine.Node, *mpi.World, sim.Time) {
	t.Helper()
	e := sim.NewEngine()
	n := w.Ranks()
	nodes := make([]*machine.Node, n)
	for i := range nodes {
		nodes[i] = machine.NewNode(e, i, machine.DefaultParams())
	}
	sw := netsim.New(e, n, netsim.Default100Mb())
	world := mpi.NewWorld(e, nodes, sw, mpi.DefaultConfig())
	prof := powerpack.NewProfiler()
	ctxs := make([]*powerpack.NodeCtx, n)
	for i := range ctxs {
		ctxs[i] = powerpack.NewNodeCtx(nodes[i], prof, nil)
	}
	var end sim.Time
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("rank", func(p *sim.Proc) {
			w.Run(Ctx{P: p, Rank: world.Rank(i), Node: nodes[i], PP: ctxs[i]})
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	// Run to exhaustion: the queue includes stale spin-downgrade timers
	// that fire after completion, so "end" is the last rank's finish,
	// not the engine's final event.
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	return ctxs, nodes, world, end
}

func TestMicrobenchNamesAndRanks(t *testing.T) {
	cases := []struct {
		w    Workload
		name string
		n    int
	}{
		{NewMemBench(1), "membench", 1},
		{NewCacheBench(1), "cachebench", 1},
		{NewRegBench(1), "regbench", 1},
		{NewCommBench256K(1), "commbench-262144B", 2},
		{NewCommBench4K(1), "commbench-4096B", 2},
		{NewSwim(1), "swim", 1},
		{NewMgrid(1), "mgrid", 1},
		{NewFT('B', 8), "ft.B", 8},
		{NewTranspose(1), "transpose", 15},
	}
	for _, c := range cases {
		if c.w.Name() != c.name {
			t.Errorf("name: got %q want %q", c.w.Name(), c.name)
		}
		if c.w.Ranks() != c.n {
			t.Errorf("%s ranks: got %d want %d", c.name, c.w.Ranks(), c.n)
		}
	}
}

func TestMemBenchIsMemoryBound(t *testing.T) {
	_, nodes, end := harness(t, NewMemBench(10))
	n := nodes[0]
	mem := n.StateTime(machine.MemoryStall)
	if float64(mem)/float64(end) < 0.95 {
		t.Fatalf("memory-stall fraction %.3f, want ≥0.95", float64(mem)/float64(end))
	}
}

func TestCacheAndRegBenchAreComputeBound(t *testing.T) {
	for _, w := range []Workload{NewCacheBench(100), NewRegBench(100)} {
		_, nodes, end := harness(t, w)
		comp := nodes[0].StateTime(machine.Compute)
		if float64(comp)/float64(end) < 0.95 {
			t.Fatalf("%s compute fraction %.3f", w.Name(), float64(comp)/float64(end))
		}
	}
}

func TestCommBenchIsCommunicationBound(t *testing.T) {
	_, nodes, end := harness(t, NewCommBench256K(20))
	n := nodes[0]
	wait := n.StateTime(machine.Spin) + n.StateTime(machine.Blocked)
	if float64(wait)/float64(end) < 0.80 {
		t.Fatalf("wait fraction %.3f, want ≥0.80", float64(wait)/float64(end))
	}
}

func TestSwimMoreMemoryBoundThanMgrid(t *testing.T) {
	_, swimNodes, swimEnd := harness(t, NewSwim(5))
	_, mgridNodes, mgridEnd := harness(t, NewMgrid(5))
	swimFrac := float64(swimNodes[0].StateTime(machine.MemoryStall)) / float64(swimEnd)
	mgridFrac := float64(mgridNodes[0].StateTime(machine.MemoryStall)) / float64(mgridEnd)
	if swimFrac < 0.85 {
		t.Fatalf("swim memory fraction %.3f, want ≈0.9", swimFrac)
	}
	if mgridFrac > 0.35 {
		t.Fatalf("mgrid memory fraction %.3f, want ≈0.25", mgridFrac)
	}
}

func TestFTClassValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for class D")
		}
	}()
	NewFT('D', 8)
}

func TestFTRegionDominatesRuntime(t *testing.T) {
	ft := NewFT('A', 4)
	ft.IterOverride = 2
	ctxs, _, end := harness(t, ft)
	prof := ctxs[0].Profile(RegionFFT)
	if prof == nil {
		t.Fatal("fft region not recorded")
	}
	if prof.Count != 2 {
		t.Fatalf("fft region count %d", prof.Count)
	}
	// The paper: "most execution time and slack time resides in
	// function fft()".
	if frac := float64(prof.Time) / float64(end); frac < 0.6 {
		t.Fatalf("fft region fraction %.3f", frac)
	}
}

func TestFTCommVolumeMatchesClass(t *testing.T) {
	ft := NewFT('A', 4)
	ft.IterOverride = 1
	_, nodes, _ := harness(t, ft)
	_ = nodes
	// Per rank per iteration the transpose sends points*16*(P-1)/P²
	// bytes. Verified through the workload's own accounting in the MPI
	// stats — rerun with direct access to the world.
	e := sim.NewEngine()
	n := ft.Ranks()
	ns := make([]*machine.Node, n)
	for i := range ns {
		ns[i] = machine.NewNode(e, i, machine.DefaultParams())
	}
	sw := netsim.New(e, n, netsim.Default100Mb())
	world := mpi.NewWorld(e, ns, sw, mpi.DefaultConfig())
	prof := powerpack.NewProfiler()
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("rank", func(p *sim.Proc) {
			ft.Run(Ctx{P: p, Rank: world.Rank(i), Node: ns[i], PP: powerpack.NewNodeCtx(ns[i], prof, nil)})
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	points := int64(256 * 256 * 128)
	perPeer := points * 16 / int64(n*n)
	wantAtLeast := perPeer * int64(n-1) // one transpose
	got := world.Rank(0).Stats().BytesSent
	if got < wantAtLeast {
		t.Fatalf("rank 0 sent %d bytes, want ≥ %d", got, wantAtLeast)
	}
}

func TestTransposeRedistSizes(t *testing.T) {
	tr := NewTranspose(1)
	total := int64(0)
	for src := 0; src < tr.Ranks(); src++ {
		sizes := tr.redistSizes(src)
		var sum int64
		for _, s := range sizes {
			sum += s
		}
		// Every source's block is fully redistributed: 2400×4000×8.
		if sum != 2400*4000*8 {
			t.Fatalf("src %d redistributes %d bytes", src, sum)
		}
		total += sum
	}
	if total != 12000*12000*8 {
		t.Fatalf("total redistribution %d", total)
	}
	// The corner rank (0,0) keeps a large share local — the load
	// imbalance the paper points out.
	self := tr.redistSizes(0)[0]
	if self != 2400*2400*8 {
		t.Fatalf("rank 0 self-share %d, want %d", self, 2400*2400*8)
	}
}

func TestTransposeRedistConsistency(t *testing.T) {
	// What i sends to j must be what j expects from i — Alltoallv's
	// contract. The geometric construction is symmetric under
	// (i,j) → (j,i) with rows and cols swapped.
	tr := NewTranspose(1)
	n := tr.Ranks()
	recv := make([]int64, n)
	for src := 0; src < n; src++ {
		for dst, sz := range tr.redistSizes(src) {
			recv[dst] += sz
		}
	}
	var total int64
	for _, v := range recv {
		total += v
	}
	if total != 12000*12000*8 {
		t.Fatalf("received total %d", total)
	}
}

func TestTransposeRanksGuard(t *testing.T) {
	tr := NewTranspose(1)
	e := sim.NewEngine()
	node := machine.NewNode(e, 0, machine.DefaultParams())
	sw := netsim.New(e, 1, netsim.Default100Mb())
	world := mpi.NewWorld(e, []*machine.Node{node}, sw, mpi.DefaultConfig())
	e.Spawn("rank", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic with wrong world size")
			}
		}()
		tr.Run(Ctx{P: p, Rank: world.Rank(0), Node: node, PP: powerpack.NewNodeCtx(node, powerpack.NewProfiler(), nil)})
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeRootReceivesGather(t *testing.T) {
	tr := &Transpose{N: 600, PRows: 5, PCols: 3, Iterations: 1}
	e := sim.NewEngine()
	n := tr.Ranks()
	ns := make([]*machine.Node, n)
	for i := range ns {
		ns[i] = machine.NewNode(e, i, machine.DefaultParams())
	}
	sw := netsim.New(e, n, netsim.Default100Mb())
	world := mpi.NewWorld(e, ns, sw, mpi.DefaultConfig())
	prof := powerpack.NewProfiler()
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("rank", func(p *sim.Proc) {
			tr.Run(Ctx{P: p, Rank: world.Rank(i), Node: ns[i], PP: powerpack.NewNodeCtx(ns[i], prof, nil)})
		})
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	// Root received one block from each of the other 14 ranks in the
	// gather, plus redistribution traffic.
	blockBytes := int64(600/5) * int64(600/3) * 8
	got := world.Rank(0).Stats().BytesRecv
	if got < blockBytes*14 {
		t.Fatalf("root received %d bytes, want ≥ %d", got, blockBytes*14)
	}
}

func TestCommBench4KTouchesBuffer(t *testing.T) {
	_, nodes, _ := harness(t, NewCommBench4K(50))
	if nodes[0].StateTime(machine.MemoryStall) == 0 {
		t.Fatal("4K bench should touch its buffer at 64B stride")
	}
	_, nodes256, _ := harness(t, NewCommBench256K(5))
	if nodes256[0].StateTime(machine.MemoryStall) != 0 {
		t.Fatal("256K bench should not add buffer touches")
	}
}

func TestSyntheticDeterministicProgram(t *testing.T) {
	a := NewSynthetic(42, 4, 20, 1).program()
	b := NewSynthetic(42, 4, 20, 1).program()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different programs")
		}
	}
	c := NewSynthetic(43, 4, 20, 1).program()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestSyntheticSingleRankAvoidsComm(t *testing.T) {
	w := NewSynthetic(7, 1, 40, 1)
	for _, ph := range w.program() {
		if ph.kind >= 3 && ph.kind <= 6 {
			t.Fatalf("single-rank program contains comm phase %d", ph.kind)
		}
	}
	// And it runs to completion.
	_, _, end := harness(t, w)
	if end <= 0 {
		t.Fatal("no progress")
	}
}

func TestSyntheticValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSynthetic(1, 0, 1, 1) },
		func() { NewSynthetic(1, 1, 0, 1) },
		func() { NewSynthetic(1, 1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
