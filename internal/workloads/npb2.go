package workloads

// MG and LU complete the NAS kernel set with two communication regimes
// the others lack: MG's V-cycles touch every grid level, so its
// messages span four orders of magnitude in size within one iteration;
// LU's wavefront sweeps exchange thousands of tiny messages, making it
// latency-bound rather than bandwidth-bound.

import "fmt"

// MG is the NPB multigrid kernel: V-cycles over a 3-D grid hierarchy.
// Fine levels are memory-bound stencil sweeps with large halo
// exchanges; coarse levels degenerate into latency-bound chatter.
type MG struct {
	Class byte
	Procs int
	// IterOverride, if positive, replaces the class iteration count.
	IterOverride int
}

// NewMG returns the kernel for a class ('A' 256³, 'B' 256³ more
// iterations, 'C' 512³) on procs ranks.
func NewMG(class byte, procs int) *MG {
	checkClass("MG", class)
	if procs < 1 {
		panic("workloads: MG needs at least 1 rank") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	return &MG{Class: class, Procs: procs}
}

// Name implements Workload.
func (m *MG) Name() string { return fmt.Sprintf("mg.%c", m.Class) }

// Ranks implements Workload.
func (m *MG) Ranks() int { return m.Procs }

// classParams returns (grid dimension per axis, iterations).
func (m *MG) classParams() (dim int64, iters int) {
	switch m.Class {
	case 'A':
		return 256, 4
	case 'B':
		return 256, 20
	default:
		return 512, 20
	}
}

// Run implements Workload.
func (m *MG) Run(ctx Ctx) {
	dim, iters := m.classParams()
	if m.IterOverride > 0 {
		iters = m.IterOverride
	}
	p := int64(m.Procs)
	const (
		// Stencil sweep costs per grid point (27-point operator).
		accessesPerPoint = 1.2
		cyclesPerPoint   = 30.0
		minDim           = 4 // coarsest level per axis
	)
	for it := 0; it < iters; it++ {
		// Down-sweep (restriction) and up-sweep (prolongation) both
		// touch every level; fold them into one pass per level per
		// direction.
		for pass := 0; pass < 2; pass++ {
			for d := dim; d >= minDim; d /= 2 {
				points := d * d * d / p
				if points < 1 {
					points = 1
				}
				ctx.Node.MemoryRounds(ctx.P, int64(float64(points)*accessesPerPoint))
				ctx.Node.Compute(ctx.P, float64(points)*cyclesPerPoint)
				if m.Procs > 1 {
					// Halo exchange: one face per neighbor pair, 8 bytes
					// per face point. Coarse levels send tiny messages.
					face := d * d / p * 8
					if face < 64 {
						face = 64
					}
					next := (ctx.Rank.ID() + 1) % m.Procs
					prev := (ctx.Rank.ID() - 1 + m.Procs) % m.Procs
					ctx.Rank.Sendrecv(ctx.P, next, 3, face, nil, prev, 3)
				}
			}
		}
		if m.Procs > 1 {
			// Residual norm.
			ctx.Rank.Allreduce(ctx.P, 8, nil, nil)
		}
	}
}

// LU is the NPB LU kernel (SSOR solver): wavefront sweeps over a 2-D
// pencil decomposition exchanging one small message per grid plane with
// each downstream neighbor — thousands of latency-bound messages per
// iteration.
type LU struct {
	Class byte
	Procs int
	// IterOverride, if positive, replaces the class iteration count.
	IterOverride int
}

// NewLU returns the kernel for a class ('A' 64³, 'B' 102³, 'C' 162³) on
// procs ranks.
func NewLU(class byte, procs int) *LU {
	checkClass("LU", class)
	if procs < 1 {
		panic("workloads: LU needs at least 1 rank") //lint:allow panicfree (workload constructor config validation; callers pass literals)
	}
	return &LU{Class: class, Procs: procs}
}

// Name implements Workload.
func (l *LU) Name() string { return fmt.Sprintf("lu.%c", l.Class) }

// Ranks implements Workload.
func (l *LU) Ranks() int { return l.Procs }

// classParams returns (grid dimension, iterations).
func (l *LU) classParams() (dim int64, iters int) {
	switch l.Class {
	case 'A':
		return 64, 50
	case 'B':
		return 102, 50
	default:
		return 162, 50
	}
}

// Run implements Workload. The wavefront is modeled as a pipelined
// chain: for each of the dim grid planes, a rank computes its pencil's
// share of the plane and forwards a boundary strip to the next rank.
func (l *LU) Run(ctx Ctx) {
	dim, iters := l.classParams()
	if l.IterOverride > 0 {
		iters = l.IterOverride
	}
	p := int64(l.Procs)
	me := ctx.Rank.ID()
	const (
		cyclesPerPoint   = 90.0 // SSOR is flop-heavy per point
		accessesPerPoint = 0.6
	)
	planePoints := dim * dim / p
	if planePoints < 1 {
		planePoints = 1
	}
	stripBytes := dim / p * 5 * 8 // 5 variables per boundary point
	if stripBytes < 40 {
		stripBytes = 40
	}
	for it := 0; it < iters; it++ {
		// Lower-triangular sweep: wave flows rank 0 → P-1.
		for plane := int64(0); plane < dim; plane++ {
			if l.Procs > 1 && me > 0 {
				ctx.Rank.Recv(ctx.P, me-1, 11)
			}
			ctx.Node.MemoryRounds(ctx.P, int64(float64(planePoints)*accessesPerPoint))
			ctx.Node.Compute(ctx.P, float64(planePoints)*cyclesPerPoint)
			if l.Procs > 1 && me < l.Procs-1 {
				ctx.Rank.Send(ctx.P, me+1, 11, stripBytes, nil)
			}
		}
		// Upper-triangular sweep: wave flows back P-1 → 0.
		for plane := int64(0); plane < dim; plane++ {
			if l.Procs > 1 && me < l.Procs-1 {
				ctx.Rank.Recv(ctx.P, me+1, 12)
			}
			ctx.Node.MemoryRounds(ctx.P, int64(float64(planePoints)*accessesPerPoint))
			ctx.Node.Compute(ctx.P, float64(planePoints)*cyclesPerPoint)
			if l.Procs > 1 && me > 0 {
				ctx.Rank.Send(ctx.P, me-1, 12, stripBytes, nil)
			}
		}
		if l.Procs > 1 {
			ctx.Rank.Allreduce(ctx.P, 40, nil, nil)
		}
	}
}
