package workloads

import (
	"testing"

	"repro/internal/machine"
)

func TestMGLUNamesAndValidation(t *testing.T) {
	if NewMG('A', 4).Name() != "mg.A" || NewLU('B', 4).Name() != "lu.B" {
		t.Fatal("names")
	}
	for _, fn := range []func(){
		func() { NewMG('X', 4) },
		func() { NewLU('X', 4) },
		func() { NewMG('A', 0) },
		func() { NewLU('A', 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMGCompletesAndMixesMessageSizes(t *testing.T) {
	mg := NewMG('A', 4)
	mg.IterOverride = 2
	_, nodes, end := harness(t, mg)
	if end <= 0 {
		t.Fatal("no progress")
	}
	// A V-cycle touches memory at fine levels and communicates at all
	// levels.
	n := nodes[0]
	if n.StateTime(machine.MemoryStall) <= 0 {
		t.Fatal("MG must be partly memory bound")
	}
	wait := n.StateTime(machine.Spin) + n.StateTime(machine.Blocked)
	if wait <= 0 {
		t.Fatal("MG must communicate")
	}
}

func TestLUWavefrontPipelines(t *testing.T) {
	lu := NewLU('A', 4)
	lu.IterOverride = 2
	_, nodes, end := harness(t, lu)
	if end <= 0 {
		t.Fatal("no progress")
	}
	// Thousands of tiny messages: per-iteration message count is
	// ~2×dim per interior rank.
	n := nodes[1]
	wait := n.StateTime(machine.Spin) + n.StateTime(machine.Blocked)
	if wait <= 0 {
		t.Fatal("LU must spend time in wavefront waits")
	}
}

func TestLUMessageCount(t *testing.T) {
	lu := NewLU('A', 4)
	lu.IterOverride = 1
	_, _, world, _ := harnessWorld(t, lu)
	// Interior ranks: recv+send per plane per sweep (2 sweeps of 64
	// planes) ≈ 256 point-to-point messages plus the allreduce.
	if got := world.Rank(1).Stats().MsgsSent; got < 120 {
		t.Fatalf("rank 1 sent %d messages; LU should be chatty", got)
	}
	// And the messages are tiny: average size well under the eager
	// threshold.
	st := world.Rank(1).Stats()
	if st.BytesSent/st.MsgsSent > 4096 {
		t.Fatalf("LU average message %d bytes; should be latency-bound", st.BytesSent/st.MsgsSent)
	}
}

func TestMGLUSingleRank(t *testing.T) {
	mg := NewMG('A', 1)
	mg.IterOverride = 1
	lu := NewLU('A', 1)
	lu.IterOverride = 1
	for _, w := range []Workload{mg, lu} {
		_, _, end := harness(t, w)
		if end <= 0 {
			t.Fatalf("%s did not run", w.Name())
		}
	}
}
