// Compact binary trace format: a versioned header followed by
// append-only tick records, varint-delta encoded in per-node columns.
// The codec is dependency-free (stdlib encoding/binary varints, like
// the profgate pprof codec) and byte-deterministic: the same tick
// stream always encodes to the same bytes, which is what the
// sharded-vs-sequential equality gates compare.
//
//	header:
//	  magic     "PWTR" (4 bytes)
//	  version   uvarint (FormatVersion)
//	  interval  uvarint, sampling period in ns
//	  nnodes    uvarint
//	  node ids  nnodes zigzag varints, delta vs the previous id
//	  ncomp     uvarint, per-component power columns
//	tick record (repeated until EOF; EOF is only legal between records):
//	  dt        uvarint, ns since the previous tick (first: absolute)
//	  freq col  nnodes zigzag varints, delta vs the same node's
//	            previous tick (first tick: vs 0)
//	  state col nnodes uvarints
//	  total col nnodes uvarints of float64 bits XOR the same node's
//	            previous bits (an unchanged draw encodes as one byte)
//	  comp cols ncomp × nnodes, same XOR scheme, column-major
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/dvfs"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// FormatVersion is the binary trace format version this package
// writes; Reader rejects anything else.
const FormatVersion = 1

// magic identifies a binary power trace.
var magic = [4]byte{'P', 'W', 'T', 'R'}

// maxNodes bounds the node count a reader will believe, so a corrupt
// header cannot provoke an enormous allocation.
const maxNodes = 1 << 20

// Writer is the Sink that encodes the trace into the binary format.
// It holds one scratch buffer and the per-node delta state — O(nodes)
// regardless of run length — and emits one Write per tick.
type Writer struct {
	out      io.Writer
	nnodes   int
	ncomp    int
	scratch  []byte
	prevT    sim.Time
	prevFreq []int64
	prevBits []uint64 // nnodes × (1 + ncomp), node-major
	err      error
}

// NewWriter returns a binary trace sink writing to w. The caller owns
// w's buffering and lifetime (see NewFileWriter for a self-contained
// file variant).
func NewWriter(w io.Writer) *Writer { return &Writer{out: w} }

// Begin writes the header.
func (w *Writer) Begin(m Meta) error {
	if w.err != nil {
		return w.err
	}
	if len(m.NodeIDs) == 0 {
		return w.fail(errors.New("trace: writer: no nodes"))
	}
	if m.Interval <= 0 {
		return w.fail(errors.New("trace: writer: non-positive interval"))
	}
	w.nnodes = len(m.NodeIDs)
	w.ncomp = m.Components
	w.prevFreq = make([]int64, w.nnodes)
	w.prevBits = make([]uint64, w.nnodes*(1+w.ncomp))
	b := append(w.scratch[:0], magic[:]...)
	b = binary.AppendUvarint(b, FormatVersion)
	b = binary.AppendUvarint(b, uint64(m.Interval))
	b = binary.AppendUvarint(b, uint64(w.nnodes))
	prev := int64(0)
	for _, id := range m.NodeIDs {
		b = binary.AppendVarint(b, int64(id)-prev)
		prev = int64(id)
	}
	b = binary.AppendUvarint(b, uint64(w.ncomp))
	w.scratch = b
	if _, err := w.out.Write(b); err != nil {
		return w.fail(err)
	}
	return nil
}

// Tick appends one record. This is the record-append hot path: it runs
// once per sampling interval for the whole run, so it must stay free
// of per-tick allocations (the scratch buffer and delta arrays are
// reused; only amortized scratch growth allocates).
//
//lint:hotpath
func (w *Writer) Tick(at sim.Time, row []Sample) error {
	if w.err != nil {
		return w.err
	}
	if len(row) != w.nnodes {
		return w.fail(fmt.Errorf("trace: writer: row has %d nodes, header has %d", len(row), w.nnodes)) //lint:allow hotalloc (error path; healthy ticks never reach it)
	}
	if at < w.prevT {
		return w.fail(fmt.Errorf("trace: writer: tick at %v before previous %v", at, w.prevT)) //lint:allow hotalloc (error path; healthy ticks never reach it)
	}
	b := binary.AppendUvarint(w.scratch[:0], uint64(at.Sub(w.prevT)))
	w.prevT = at
	for i := range row {
		f := int64(row[i].Freq)
		b = binary.AppendVarint(b, f-w.prevFreq[i])
		w.prevFreq[i] = f
	}
	for i := range row {
		b = binary.AppendUvarint(b, uint64(row[i].State))
	}
	stride := 1 + w.ncomp
	for i := range row {
		bits := math.Float64bits(float64(row[i].Total))
		j := i * stride
		b = binary.AppendUvarint(b, bits^w.prevBits[j])
		w.prevBits[j] = bits
	}
	for c := 0; c < w.ncomp; c++ {
		for i := range row {
			bits := math.Float64bits(float64(row[i].Component[c]))
			j := i*stride + 1 + c
			b = binary.AppendUvarint(b, bits^w.prevBits[j])
			w.prevBits[j] = bits
		}
	}
	w.scratch = b
	if _, err := w.out.Write(b); err != nil {
		return w.fail(err)
	}
	return nil
}

// End reports any sticky error; the format needs no trailer (the
// stream is append-only and ends at any record boundary).
func (w *Writer) End() error { return w.err }

// fail latches the first error.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Reader replays an archived binary trace. Next decodes one tick into
// a reused row buffer; Replay drives a set of sinks through the whole
// stream, so every streaming consumer works identically on live runs
// and archives.
type Reader struct {
	br       *bufio.Reader
	meta     Meta
	row      []Sample
	prevT    sim.Time
	prevFreq []int64
	prevBits []uint64
}

// NewReader parses the header and returns a reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	version, err := headerUvarint(br, "version")
	if err != nil {
		return nil, err
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (want %d)", version, FormatVersion)
	}
	interval, err := headerUvarint(br, "interval")
	if err != nil {
		return nil, err
	}
	if interval == 0 || interval > math.MaxInt64 {
		return nil, fmt.Errorf("trace: corrupt header: interval %d", interval)
	}
	nnodes, err := headerUvarint(br, "node count")
	if err != nil {
		return nil, err
	}
	if nnodes == 0 || nnodes > maxNodes {
		return nil, fmt.Errorf("trace: corrupt header: %d nodes", nnodes)
	}
	ids := make([]int, nnodes)
	prev := int64(0)
	for i := range ids {
		d, err := headerVarint(br, "node id")
		if err != nil {
			return nil, err
		}
		prev += d
		if prev < 0 {
			return nil, fmt.Errorf("trace: corrupt header: negative node id %d", prev)
		}
		ids[i] = int(prev)
	}
	ncomp, err := headerUvarint(br, "component count")
	if err != nil {
		return nil, err
	}
	if ncomp != uint64(power.NumComponents) {
		return nil, fmt.Errorf("trace: %d power components in header, this build models %d", ncomp, power.NumComponents)
	}
	rd := &Reader{
		br: br,
		meta: Meta{
			Version:    int(version),
			Interval:   sim.Duration(interval),
			NodeIDs:    ids,
			Components: int(ncomp),
		},
		row:      make([]Sample, nnodes),
		prevFreq: make([]int64, nnodes),
		prevBits: make([]uint64, int(nnodes)*(1+int(ncomp))),
	}
	for i, id := range ids {
		rd.row[i].Node = id
	}
	return rd, nil
}

// Meta returns the trace geometry. NodeIDs is shared with the reader;
// treat it as read-only.
func (r *Reader) Meta() Meta { return r.meta }

// Next decodes one tick. The returned row is valid until the next call
// (the buffer is reused). It returns io.EOF — and only io.EOF — at a
// clean end of stream; a stream truncated inside a record returns a
// wrapping of io.ErrUnexpectedEOF instead.
func (r *Reader) Next() ([]Sample, error) {
	// A clean EOF is only legal before a record's first byte; peek one
	// byte to tell it apart from truncation inside the record.
	if _, err := r.br.ReadByte(); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	if err := r.br.UnreadByte(); err != nil {
		return nil, err
	}
	dt, err := r.recordUvarint("time delta")
	if err != nil {
		return nil, err
	}
	if dt > math.MaxInt64 || sim.Duration(dt) < 0 {
		return nil, fmt.Errorf("trace: corrupt record: time delta %d", dt)
	}
	at := r.prevT.Add(sim.Duration(dt))
	if at < r.prevT {
		return nil, fmt.Errorf("trace: corrupt record: time delta %d overflows the clock at %v", dt, r.prevT)
	}
	r.prevT = at
	nStates := int64(len(machine.States()))
	for i := range r.row {
		d, err := r.recordVarint("frequency")
		if err != nil {
			return nil, err
		}
		r.prevFreq[i] += d
		if r.prevFreq[i] < 0 {
			return nil, fmt.Errorf("trace: corrupt record: negative frequency for node %d", r.row[i].Node)
		}
		r.row[i].At = at
		r.row[i].Freq = dvfs.Hz(r.prevFreq[i])
	}
	for i := range r.row {
		v, err := r.recordUvarint("state")
		if err != nil {
			return nil, err
		}
		if int64(v) >= nStates {
			return nil, fmt.Errorf("trace: corrupt record: state %d out of range", v)
		}
		r.row[i].State = machine.State(v)
	}
	stride := 1 + r.meta.Components
	for i := range r.row {
		w, err := r.xorFloat(i * stride)
		if err != nil {
			return nil, err
		}
		r.row[i].Total = power.Watts(w)
	}
	for c := 0; c < r.meta.Components; c++ {
		for i := range r.row {
			w, err := r.xorFloat(i*stride + 1 + c)
			if err != nil {
				return nil, err
			}
			r.row[i].Component[c] = power.Watts(w)
		}
	}
	return r.row, nil
}

// Replay streams the whole remaining trace through the sinks: Begin
// with the archive's geometry, one Tick per record, then End.
func (r *Reader) Replay(sinks ...Sink) error {
	for _, s := range sinks {
		if err := s.Begin(r.meta); err != nil {
			return err
		}
	}
	for {
		row, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		at := row[0].At
		for _, s := range sinks {
			if err := s.Tick(at, row); err != nil {
				return err
			}
		}
	}
	for _, s := range sinks {
		if err := s.End(); err != nil {
			return err
		}
	}
	return nil
}

// xorFloat decodes one XOR-chained float64 column cell at delta-state
// slot j.
func (r *Reader) xorFloat(j int) (float64, error) {
	v, err := r.recordUvarint("power")
	if err != nil {
		return 0, err
	}
	r.prevBits[j] ^= v
	return math.Float64frombits(r.prevBits[j]), nil
}

// recordUvarint reads one record varint; EOF inside a record is
// truncation, not a clean end.
func (r *Reader) recordUvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated record (%s): %w", what, eofUnexpected(err))
	}
	return v, nil
}

func (r *Reader) recordVarint(what string) (int64, error) {
	v, err := binary.ReadVarint(r.br)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated record (%s): %w", what, eofUnexpected(err))
	}
	return v, nil
}

func headerUvarint(br *bufio.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("trace: short header (%s): %w", what, eofUnexpected(err))
	}
	return v, nil
}

func headerVarint(br *bufio.Reader, what string) (int64, error) {
	v, err := binary.ReadVarint(br)
	if err != nil {
		return 0, fmt.Errorf("trace: short header (%s): %w", what, eofUnexpected(err))
	}
	return v, nil
}

// eofUnexpected upgrades a bare io.EOF to io.ErrUnexpectedEOF: inside
// a header or record, running out of bytes is corruption.
func eofUnexpected(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
