// Package trace records time-series power profiles of a running
// cluster — the data product behind the paper's per-component power
// plots. A Recorder samples every node's instantaneous draw (total and
// per component), operating point, and activity state on a fixed
// virtual-time interval, and exports the aligned multi-node series as
// CSV for external plotting.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/dvfs"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// Sample is one node's instantaneous reading.
type Sample struct {
	At        sim.Time
	Node      int
	Freq      dvfs.Hz
	State     machine.State
	Total     power.Watts
	Component [power.NumComponents]power.Watts
}

// Recorder samples a set of nodes on a fixed interval.
type Recorder struct {
	nodes    []*machine.Node
	interval sim.Duration
	samples  []Sample
}

// NewRecorder builds a recorder over nodes with the given sampling
// interval.
func NewRecorder(nodes []*machine.Node, interval sim.Duration) *Recorder {
	if len(nodes) == 0 {
		panic("trace: no nodes") //lint:allow panicfree (constructor misuse; recorder config is fixed at build time)
	}
	if interval <= 0 {
		panic("trace: non-positive interval") //lint:allow panicfree (constructor misuse; recorder config is fixed at build time)
	}
	return &Recorder{nodes: nodes, interval: interval}
}

// Spawn starts the sampling process; it takes an immediate sample, then
// one per interval until done() reports true.
func (r *Recorder) Spawn(eng *sim.Engine, done func() bool) {
	eng.Spawn("trace", func(p *sim.Proc) {
		r.sample(p.Now())
		for {
			p.Sleep(r.interval)
			r.sample(p.Now())
			if done != nil && done() {
				return
			}
		}
	})
}

// GlobalPri is the coordinator-global priority the recorder's ticks
// use; it must not collide with any other same-time global source
// (see sim.Group.ScheduleGlobal).
const GlobalPri = 1

// SpawnGroup starts sampling on a sharded group. Each tick runs as a
// coordinator global at a window barrier, where every shard's node
// state is safely visible; sample times and row order match Spawn.
func (r *Recorder) SpawnGroup(g *sim.Group, done func() bool) {
	r.tick(g, g.Now(), done)
}

// tick schedules one sampling global at time at, which re-arms itself
// unless done.
func (r *Recorder) tick(g *sim.Group, at sim.Time, done func() bool) {
	g.ScheduleGlobal(at, GlobalPri, func() {
		r.sample(at)
		if done != nil && done() {
			return
		}
		r.tick(g, at.Add(r.interval), done)
	})
}

func (r *Recorder) sample(at sim.Time) {
	for _, n := range r.nodes {
		s := Sample{
			At:    at,
			Node:  n.ID(),
			Freq:  n.OperatingPoint().Freq,
			State: n.State(),
			Total: n.Power(),
		}
		for _, c := range power.Components() {
			s.Component[c] = n.ComponentPower(c)
		}
		r.samples = append(r.samples, s)
	}
}

// Samples returns all recordings so far.
func (r *Recorder) Samples() []Sample {
	out := make([]Sample, len(r.samples))
	copy(out, r.samples)
	return out
}

// Len reports the number of recorded samples.
func (r *Recorder) Len() int { return len(r.samples) }

// WriteCSV exports the aligned series: one row per (time, node), with
// per-component watts in fixed columns.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"time_s", "node", "freq_mhz", "state", "total_w"}
	for _, c := range power.Components() {
		header = append(header, c.String()+"_w")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range r.samples {
		row := []string{
			strconv.FormatFloat(s.At.Seconds(), 'f', 6, 64),
			strconv.Itoa(s.Node),
			strconv.Itoa(s.Freq.MHz()),
			s.State.String(),
			strconv.FormatFloat(float64(s.Total), 'f', 3, 64),
		}
		for _, c := range power.Components() {
			row = append(row, strconv.FormatFloat(float64(s.Component[c]), 'f', 3, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// NodeSeries filters the samples to one node, in time order.
func (r *Recorder) NodeSeries(node int) []Sample {
	var out []Sample
	for _, s := range r.samples {
		if s.Node == node {
			out = append(out, s)
		}
	}
	return out
}

// MeanPower returns a node's average sampled draw over [from, to].
func (r *Recorder) MeanPower(node int, from, to sim.Time) (power.Watts, error) {
	var sum power.Watts
	n := 0
	for _, s := range r.samples {
		if s.Node == node && s.At >= from && s.At <= to {
			sum += s.Total
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("trace: no samples for node %d in [%v, %v]", node, from, to)
	}
	return sum / power.Watts(n), nil
}
