// Package trace streams time-series power profiles of a running
// cluster — the data product behind the paper's per-component power
// plots. A Recorder samples every node's instantaneous draw (total and
// per component), operating point, and activity state on a fixed
// virtual-time interval and hands each aligned multi-node tick to a
// set of streaming Sinks: the compact binary Writer (archival format),
// incremental Stats, an online chart Downsampler, and a CSV encoder.
// No sink retains the full sample history — consumers declare what
// they aggregate up front — so trace memory is O(nodes), not O(run
// length), and archived traces replay byte-for-byte through Reader.
package trace

import (
	"errors"
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// Sample is one node's instantaneous reading.
type Sample struct {
	At        sim.Time
	Node      int
	Freq      dvfs.Hz
	State     machine.State
	Total     power.Watts
	Component [power.NumComponents]power.Watts
}

// Meta describes a trace's fixed geometry: sinks receive it once, in
// Begin, before the first tick. NodeIDs is shared — sinks must treat
// it as read-only (copy it if they keep it past Begin).
type Meta struct {
	// Version is the binary format version (FormatVersion for traces
	// produced by this package).
	Version int
	// Interval is the sampling period.
	Interval sim.Duration
	// NodeIDs lists the traced nodes; every tick's row is in this
	// order.
	NodeIDs []int
	// Components is the number of per-component power columns.
	Components int
}

// Sink consumes a trace tick by tick. Begin is called once with the
// trace geometry, then Tick once per sampling instant with one Sample
// per node (in Meta.NodeIDs order), then End once to flush. The row
// slice is reused between ticks: a sink must not retain it.
type Sink interface {
	Begin(m Meta) error
	Tick(at sim.Time, row []Sample) error
	End() error
}

// Config describes a Recorder: what to sample, how often, and which
// streaming consumers receive the ticks.
type Config struct {
	// Interval is the sampling period (must be positive).
	Interval sim.Duration
	// Nodes are the machines to sample (at least one).
	Nodes []*machine.Node
	// Sinks receive every tick, in order. A recorder with no sinks is
	// valid (e.g. when only spawn-time validation is wanted) but
	// records nothing.
	Sinks []Sink
}

// Recorder samples a set of nodes on a fixed interval and streams the
// aligned rows to its sinks. It retains nothing itself: one row buffer
// is reused for every tick.
type Recorder struct {
	nodes    []*machine.Node
	interval sim.Duration
	sinks    []Sink
	row      []Sample
	err      error
	closed   bool
}

// New validates the configuration, announces the trace geometry to
// every sink (Begin), and returns the recorder.
func New(cfg Config) (*Recorder, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("trace: no nodes")
	}
	if cfg.Interval <= 0 {
		return nil, errors.New("trace: non-positive interval")
	}
	for i, s := range cfg.Sinks {
		if s == nil {
			return nil, fmt.Errorf("trace: nil sink at index %d", i)
		}
	}
	r := &Recorder{
		nodes:    cfg.Nodes,
		interval: cfg.Interval,
		sinks:    cfg.Sinks,
		row:      make([]Sample, len(cfg.Nodes)),
	}
	ids := make([]int, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		ids[i] = n.ID()
	}
	meta := Meta{
		Version:    FormatVersion,
		Interval:   cfg.Interval,
		NodeIDs:    ids,
		Components: power.NumComponents,
	}
	for _, s := range r.sinks {
		if err := s.Begin(meta); err != nil {
			return nil, fmt.Errorf("trace: begin: %w", err)
		}
	}
	return r, nil
}

// MustNew is New for configurations known good at compile time; it
// panics on an invalid configuration.
func MustNew(cfg Config) *Recorder {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Spawn starts the sampling process on a single engine; it takes an
// immediate sample, then one per interval until done() reports true.
func (r *Recorder) Spawn(eng *sim.Engine, done func() bool) {
	eng.Spawn("trace", func(p *sim.Proc) {
		r.sample(p.Now())
		for {
			p.Sleep(r.interval)
			r.sample(p.Now())
			if done != nil && done() {
				return
			}
		}
	})
}

// GlobalPri is the coordinator-global priority the recorder's ticks
// use; it must not collide with any other same-time global source
// (see sim.Group.ScheduleGlobal).
const GlobalPri = 1

// SpawnGroup starts sampling on a sharded group. Each tick runs as a
// coordinator global at a window barrier, where every shard's node
// state is safely visible; sample times and row order match Spawn.
func (r *Recorder) SpawnGroup(g *sim.Group, done func() bool) {
	r.tick(g, g.Now(), done)
}

// tick schedules one sampling global at time at, which re-arms itself
// unless done.
func (r *Recorder) tick(g *sim.Group, at sim.Time, done func() bool) {
	g.ScheduleGlobal(at, GlobalPri, func() {
		r.sample(at)
		if done != nil && done() {
			return
		}
		r.tick(g, at.Add(r.interval), done)
	})
}

// sample reads every node into the reused row buffer and streams it to
// the sinks. After the first sink error the recorder goes inert; the
// error surfaces from Close (and Err).
func (r *Recorder) sample(at sim.Time) {
	if r.err != nil || r.closed {
		return
	}
	for i, n := range r.nodes {
		s := &r.row[i]
		s.At = at
		s.Node = n.ID()
		s.Freq = n.OperatingPoint().Freq
		s.State = n.State()
		s.Total = n.Power()
		for c := 0; c < power.NumComponents; c++ {
			s.Component[c] = n.ComponentPower(power.Component(c))
		}
	}
	for _, sk := range r.sinks {
		if err := sk.Tick(at, r.row); err != nil {
			r.err = fmt.Errorf("trace: tick: %w", err)
			return
		}
	}
}

// Close flushes every sink (End) and returns the first error the
// pipeline hit — a mid-run Tick failure or an End failure. It is
// idempotent; samples arriving after Close are dropped.
func (r *Recorder) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	for _, sk := range r.sinks {
		if err := sk.End(); err != nil && r.err == nil {
			r.err = fmt.Errorf("trace: end: %w", err)
		}
	}
	return r.err
}

// Err reports the first pipeline error so far without closing.
func (r *Recorder) Err() error { return r.err }
