package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// fuzzSeed encodes a small canonical trace with the package's own
// Writer, so the corpus starts from well-formed streams the mutator
// can corrupt byte by byte.
func fuzzSeed(tb testing.TB, ticks int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	m := Meta{Interval: 1000, NodeIDs: []int{0, 3, 7}, Components: power.NumComponents}
	if err := w.Begin(m); err != nil {
		tb.Fatalf("seed Begin: %v", err)
	}
	row := make([]Sample, len(m.NodeIDs))
	for t := 0; t < ticks; t++ {
		for i, id := range m.NodeIDs {
			row[i] = Sample{
				Node:  id,
				Freq:  dvfs.Hz(2e9 + float64(t*i)*1e6),
				State: machine.State(i % 3),
				Total: power.Watts(40 + float64(t) + float64(i)),
			}
			for c := range row[i].Component {
				row[i].Component[c] = power.Watts(float64(c+1) * float64(t+1))
			}
		}
		if err := w.Tick(sim.Time(1000*(t+1)), row); err != nil {
			tb.Fatalf("seed Tick %d: %v", t, err)
		}
	}
	if err := w.End(); err != nil {
		tb.Fatalf("seed End: %v", err)
	}
	return buf.Bytes()
}

// FuzzTraceReader drives the PWTR binary decoder over arbitrary
// bytes. The decoder must never panic and never allocate beyond its
// hardened header bounds, whatever the input; and any stream it
// decodes cleanly must survive a re-encode/re-decode round trip with
// identical samples — the byte-determinism property the
// sharded-vs-sequential equality gates rest on.
func FuzzTraceReader(f *testing.F) {
	f.Add(fuzzSeed(f, 0))
	f.Add(fuzzSeed(f, 1))
	f.Add(fuzzSeed(f, 5))
	full := fuzzSeed(f, 3)
	f.Add(full[:len(full)-3])                                          // truncated inside a record
	f.Add([]byte("PWTR"))                                              // header cut after the magic
	f.Add([]byte("NOPE nothing to see here"))                          // wrong magic
	f.Add([]byte{'P', 'W', 'T', 'R', 1, 0xE8, 0x07, 0xFF, 0xFF, 0x7F}) // huge node count

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, meta, ok := decodeAll(t, bytes.NewReader(data))
		if !ok {
			return // rejected input: an error is the correct outcome
		}

		// Round trip: re-encode the decoded samples and decode again.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Begin(meta); err != nil {
			t.Fatalf("re-encode Begin: %v", err)
		}
		for i, row := range rows {
			if err := w.Tick(row[0].At, row); err != nil {
				t.Fatalf("re-encode Tick %d: %v", i, err)
			}
		}
		again, meta2, ok := decodeAll(t, &buf)
		if !ok {
			t.Fatalf("re-encoded stream did not decode")
		}
		if len(again) != len(rows) {
			t.Fatalf("round trip changed tick count: %d != %d", len(again), len(rows))
		}
		if len(meta2.NodeIDs) != len(meta.NodeIDs) {
			t.Fatalf("round trip changed node count: %d != %d", len(meta2.NodeIDs), len(meta.NodeIDs))
		}
		for i := range rows {
			for j := range rows[i] {
				if !sampleEqual(rows[i][j], again[i][j]) {
					t.Fatalf("round trip changed tick %d node %d: %+v != %+v", i, j, rows[i][j], again[i][j])
				}
			}
		}
	})
}

// decodeAll drains a stream through the Reader, copying each reused
// row. ok is false when the decoder (correctly) rejects the input;
// non-EOF errors after a clean header are also rejections — the fuzz
// target only asserts on streams the decoder fully accepts.
func decodeAll(t *testing.T, r io.Reader) ([][]Sample, Meta, bool) {
	t.Helper()
	rd, err := NewReader(r)
	if err != nil {
		return nil, Meta{}, false
	}
	var rows [][]Sample
	for {
		row, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, Meta{}, false
		}
		if len(row) != len(rd.Meta().NodeIDs) {
			t.Fatalf("decoded row has %d samples, header declares %d nodes", len(row), len(rd.Meta().NodeIDs))
		}
		rows = append(rows, append([]Sample(nil), row...))
	}
	return rows, rd.Meta(), true
}

// sampleEqual compares samples bit-exactly: the codec stores float64
// bit patterns, so even NaN payloads smuggled in by the fuzzer must
// survive the round trip unchanged.
func sampleEqual(a, b Sample) bool {
	if a.At != b.At || a.Node != b.Node || a.State != b.State {
		return false
	}
	if math.Float64bits(float64(a.Freq)) != math.Float64bits(float64(b.Freq)) ||
		math.Float64bits(float64(a.Total)) != math.Float64bits(float64(b.Total)) {
		return false
	}
	for c := range a.Component {
		if math.Float64bits(float64(a.Component[c])) != math.Float64bits(float64(b.Component[c])) {
			return false
		}
	}
	return true
}
