// Streaming consumers: every aggregate the old retain-everything
// Recorder answered by scanning its sample slice is recomputed here
// incrementally, in O(nodes) or O(chart points) memory. Consumers
// declare what they aggregate up front (a stats window, a chart node
// and resolution), so nothing downstream can re-materialize the trace.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/power"
	"repro/internal/sim"
)

// nodeAgg is one node's running aggregate.
type nodeAgg struct {
	sum    power.Watts
	peak   power.Watts
	energy power.Joules
}

// Stats is the incremental statistics sink: per-node mean and peak
// power and rectangle-integrated energy, the streaming replacement for
// the removed Recorder.MeanPower/NodeSeries scans.
type Stats struct {
	windowed bool
	from, to sim.Time

	interval sim.Duration
	ids      []int
	index    map[int]int
	ticks    int
	agg      []nodeAgg
}

// NewStats aggregates over the whole trace.
func NewStats() *Stats { return &Stats{} }

// NewWindowStats aggregates only the samples with from <= At <= to —
// the window is declared up front, which is what makes a windowed
// query possible without retaining the trace.
func NewWindowStats(from, to sim.Time) *Stats {
	return &Stats{windowed: true, from: from, to: to}
}

// Begin adopts the trace geometry.
func (s *Stats) Begin(m Meta) error {
	if s.windowed && s.to < s.from {
		return errors.New("trace: stats window ends before it starts")
	}
	s.interval = m.Interval
	s.ids = append(s.ids[:0], m.NodeIDs...)
	s.index = make(map[int]int, len(s.ids))
	for i, id := range s.ids {
		s.index[id] = i
	}
	s.ticks = 0
	s.agg = make([]nodeAgg, len(s.ids))
	return nil
}

// Tick folds one row into the running aggregates. This is on the
// streaming hot path; it allocates nothing.
//
//lint:hotpath
func (s *Stats) Tick(at sim.Time, row []Sample) error {
	if s.windowed && (at < s.from || at > s.to) {
		return nil
	}
	s.ticks++
	dt := s.interval.Seconds()
	for i := range row {
		a := &s.agg[i]
		w := row[i].Total
		a.sum += w
		if w > a.peak {
			a.peak = w
		}
		a.energy += power.Joules(float64(w) * dt)
	}
	return nil
}

// End is a no-op; the aggregates are already final.
func (s *Stats) End() error { return nil }

// Ticks reports how many sampling instants were aggregated (inside
// the window, if one was declared).
func (s *Stats) Ticks() int { return s.ticks }

// Nodes returns the traced node IDs, in row order.
func (s *Stats) Nodes() []int {
	out := make([]int, len(s.ids))
	copy(out, s.ids)
	return out
}

// node resolves a node ID, requiring at least one aggregated tick.
func (s *Stats) node(id int) (int, error) {
	i, ok := s.index[id]
	if !ok {
		return 0, fmt.Errorf("trace: unknown node %d", id)
	}
	if s.ticks == 0 {
		return 0, fmt.Errorf("trace: no samples for node %d", id)
	}
	return i, nil
}

// MeanPower returns a node's average sampled draw.
func (s *Stats) MeanPower(id int) (power.Watts, error) {
	i, err := s.node(id)
	if err != nil {
		return 0, err
	}
	return s.agg[i].sum / power.Watts(s.ticks), nil
}

// PeakPower returns a node's highest sampled draw.
func (s *Stats) PeakPower(id int) (power.Watts, error) {
	i, err := s.node(id)
	if err != nil {
		return 0, err
	}
	return s.agg[i].peak, nil
}

// Energy returns a node's rectangle-integrated sampled energy
// (sum of draw × interval).
func (s *Stats) Energy(id int) (power.Joules, error) {
	i, err := s.node(id)
	if err != nil {
		return 0, err
	}
	return s.agg[i].energy, nil
}

// dsBucket accumulates a run of consecutive samples.
type dsBucket struct {
	t, v float64 // sums over n samples
	n    int
}

// Downsampler is the online chart-series sink: it tracks one node's
// total draw and keeps at most maxPoints buckets by doubling the
// bucket width whenever the budget fills — O(maxPoints) memory for any
// run length, with every sample contributing to exactly one bucket
// mean.
type Downsampler struct {
	nodeID int
	max    int

	idx     int
	width   int
	buckets []dsBucket
}

// NewDownsampler builds a downsampler for the given node ID with a
// point budget of maxPoints (at least 2, validated in Begin).
func NewDownsampler(nodeID, maxPoints int) *Downsampler {
	return &Downsampler{nodeID: nodeID, max: maxPoints}
}

// Begin locates the node in the trace geometry.
func (d *Downsampler) Begin(m Meta) error {
	if d.max < 2 {
		return errors.New("trace: downsampler needs a budget of at least 2 points")
	}
	d.idx = -1
	for i, id := range m.NodeIDs {
		if id == d.nodeID {
			d.idx = i
		}
	}
	if d.idx < 0 {
		return fmt.Errorf("trace: downsampler: node %d not in trace", d.nodeID)
	}
	d.width = 1
	d.buckets = d.buckets[:0]
	return nil
}

// Tick folds one sample into the current bucket, widening the buckets
// when the point budget fills. On the streaming hot path; the bucket
// slice stops growing once the budget is reached.
//
//lint:hotpath
func (d *Downsampler) Tick(at sim.Time, row []Sample) error {
	if d.idx >= len(row) {
		return fmt.Errorf("trace: downsampler: row has %d nodes, need index %d", len(row), d.idx) //lint:allow hotalloc (error path; healthy ticks never reach it)
	}
	if len(d.buckets) == 0 || d.buckets[len(d.buckets)-1].n >= d.width {
		if len(d.buckets) >= d.max {
			d.rescale()
		}
		if len(d.buckets) == 0 || d.buckets[len(d.buckets)-1].n >= d.width {
			d.buckets = append(d.buckets, dsBucket{}) //lint:allow hotalloc (amortized: the bucket slice is capped at maxPoints and reused after rescale)
		}
	}
	b := &d.buckets[len(d.buckets)-1]
	b.t += at.Seconds()
	b.v += float64(row[d.idx].Total)
	b.n++
	return nil
}

// End is a no-op.
func (d *Downsampler) End() error { return nil }

// rescale merges adjacent bucket pairs in place and doubles the
// bucket width.
func (d *Downsampler) rescale() {
	half := (len(d.buckets) + 1) / 2
	for i := 0; i < half; i++ {
		b := d.buckets[2*i]
		if 2*i+1 < len(d.buckets) {
			o := d.buckets[2*i+1]
			b.t += o.t
			b.v += o.v
			b.n += o.n
		}
		d.buckets[i] = b
	}
	d.buckets = d.buckets[:half]
	d.width *= 2
}

// Series returns the downsampled chart series: xs are mean sample
// times in seconds, ys mean watts per bucket.
func (d *Downsampler) Series() (xs, ys []float64) {
	xs = make([]float64, len(d.buckets))
	ys = make([]float64, len(d.buckets))
	for i, b := range d.buckets {
		xs[i] = b.t / float64(b.n)
		ys[i] = b.v / float64(b.n)
	}
	return xs, ys
}

// CSV is the streaming CSV re-encoder: one row per (time, node) with
// per-component watts in fixed columns, byte-identical to the export
// the retained-slice Recorder.WriteCSV used to produce, emitted row by
// row instead of from memory.
type CSV struct {
	cw  *csv.Writer
	row []string
}

// NewCSV returns a CSV sink writing to w.
func NewCSV(w io.Writer) *CSV { return &CSV{cw: csv.NewWriter(w)} }

// Begin writes the column header.
func (c *CSV) Begin(m Meta) error {
	header := []string{"time_s", "node", "freq_mhz", "state", "total_w"}
	for _, comp := range power.Components() {
		header = append(header, comp.String()+"_w")
	}
	c.row = make([]string, len(header))
	return c.cw.Write(header)
}

// Tick writes one CSV row per node.
func (c *CSV) Tick(at sim.Time, row []Sample) error {
	for i := range row {
		s := &row[i]
		c.row[0] = strconv.FormatFloat(s.At.Seconds(), 'f', 6, 64)
		c.row[1] = strconv.Itoa(s.Node)
		c.row[2] = strconv.Itoa(s.Freq.MHz())
		c.row[3] = s.State.String()
		c.row[4] = strconv.FormatFloat(float64(s.Total), 'f', 3, 64)
		for ci := 0; ci < power.NumComponents; ci++ {
			c.row[5+ci] = strconv.FormatFloat(float64(s.Component[ci]), 'f', 3, 64)
		}
		if err := c.cw.Write(c.row); err != nil {
			return err
		}
	}
	return nil
}

// End flushes.
func (c *CSV) End() error {
	c.cw.Flush()
	return c.cw.Error()
}
