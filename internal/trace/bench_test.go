package trace

import (
	"io"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// benchTicks drives the full streaming pipeline (binary writer, stats,
// downsampler) with a synthetic 16-node trace of the given length. The
// per-op cost and allocations must stay flat as ticks grows: the
// pipeline is constant-memory in run length.
func benchTicks(b *testing.B, ticks int) {
	b.Helper()
	const nodes = 16
	ids := make([]int, nodes)
	for i := range ids {
		ids[i] = i
	}
	meta := Meta{
		Version:    FormatVersion,
		Interval:   100 * sim.Millisecond,
		NodeIDs:    ids,
		Components: power.NumComponents,
	}
	row := make([]Sample, nodes)
	states := machine.States()
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		sinks := []Sink{NewWriter(io.Discard), NewStats(), NewDownsampler(0, 64)}
		for _, sk := range sinks {
			if err := sk.Begin(meta); err != nil {
				b.Fatal(err)
			}
		}
		at := sim.Time(0)
		for t := 0; t < ticks; t++ {
			for i := range row {
				s := &row[i]
				s.At = at
				s.Node = ids[i]
				s.Freq = dvfs.Hz(600e6 + int64((t+i)%5)*200e6)
				s.State = states[(t+i)%len(states)]
				s.Total = power.Watts(10 + float64((t*7+i*3)%200)/10)
				for c := 0; c < power.NumComponents; c++ {
					s.Component[c] = s.Total / power.Watts(power.NumComponents)
				}
			}
			for _, sk := range sinks {
				if err := sk.Tick(at, row); err != nil {
					b.Fatal(err)
				}
			}
			at = at.Add(meta.Interval)
		}
		for _, sk := range sinks {
			if err := sk.End(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(ticks * nodes))
}

func BenchmarkTraceStream1x(b *testing.B)  { benchTicks(b, 512) }
func BenchmarkTraceStream4x(b *testing.B)  { benchTicks(b, 2048) }
func BenchmarkTraceStream16x(b *testing.B) { benchTicks(b, 8192) }
