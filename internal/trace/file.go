// File-backed sinks: self-contained wrappers that create their output
// file at Begin and flush/close it at End, so a sink factory (see
// cluster.Config.TraceSinks) can hand one to a concurrently running
// simulation without managing the file's lifetime.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
)

// fileSink wraps an inner sink with file lifecycle management.
type fileSink struct {
	path string
	mk   func(io.Writer) Sink

	f     *os.File
	bw    *bufio.Writer
	inner Sink
}

// NewFileWriter returns a binary-format sink (see Writer) that creates
// path at Begin and closes it at End.
func NewFileWriter(path string) Sink {
	return &fileSink{path: path, mk: func(w io.Writer) Sink { return NewWriter(w) }}
}

// NewFileCSV returns a CSV sink that creates path at Begin and closes
// it at End.
func NewFileCSV(path string) Sink {
	return &fileSink{path: path, mk: func(w io.Writer) Sink { return NewCSV(w) }}
}

func (fs *fileSink) Begin(m Meta) error {
	f, err := os.Create(fs.path)
	if err != nil {
		return err
	}
	fs.f = f
	fs.bw = bufio.NewWriter(f)
	fs.inner = fs.mk(fs.bw)
	if err := fs.inner.Begin(m); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (also close: %v)", err, cerr)
		}
		fs.f, fs.bw, fs.inner = nil, nil, nil
		return err
	}
	return nil
}

func (fs *fileSink) Tick(at sim.Time, row []Sample) error {
	if fs.inner == nil {
		return fmt.Errorf("trace: file sink %s: Tick before Begin", fs.path)
	}
	return fs.inner.Tick(at, row)
}

func (fs *fileSink) End() error {
	if fs.inner == nil {
		return nil
	}
	err := fs.inner.End()
	if ferr := fs.bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := fs.f.Close(); err == nil {
		err = cerr
	}
	fs.f, fs.bw, fs.inner = nil, nil, nil
	return err
}
