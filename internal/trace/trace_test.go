package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

func fixture(t *testing.T) (*Recorder, *machine.Node, sim.Time) {
	t.Helper()
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	done := false
	r := NewRecorder([]*machine.Node{n}, 100*sim.Millisecond)
	r.Spawn(e, func() bool { return done })
	var end sim.Time
	e.Spawn("app", func(p *sim.Proc) {
		n.Compute(p, 1.4e9)          // 1s busy
		n.IdleFor(p, sim.Second)     // 1s idle
		n.MemoryRounds(p, 4_000_000) // ~0.46s memory
		end = p.Now()
		done = true
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	return r, n, end
}

func TestRecorderSamples(t *testing.T) {
	r, _, end := fixture(t)
	if r.Len() < 20 {
		t.Fatalf("only %d samples", r.Len())
	}
	series := r.NodeSeries(0)
	if len(series) != r.Len() {
		t.Fatal("single node: series must equal all samples")
	}
	for i, s := range series {
		if i > 0 && s.At <= series[i-1].At {
			t.Fatal("samples not strictly ordered")
		}
		var sum power.Watts
		for _, c := range power.Components() {
			sum += s.Component[c]
		}
		if math.Abs(float64(sum-s.Total)) > 1e-9 {
			t.Fatalf("components %v != total %v", sum, s.Total)
		}
	}
	_ = end
}

func TestRecorderSeesStates(t *testing.T) {
	r, _, _ := fixture(t)
	seen := map[machine.State]bool{}
	for _, s := range r.NodeSeries(0) {
		seen[s.State] = true
	}
	for _, want := range []machine.State{machine.Compute, machine.Idle, machine.MemoryStall} {
		if !seen[want] {
			t.Errorf("state %v never sampled", want)
		}
	}
}

func TestMeanPower(t *testing.T) {
	r, _, _ := fixture(t)
	// During the first second (compute) power is high; during the idle
	// second it is low.
	busy, err := r.MeanPower(0, 0, sim.Time(sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	idle, err := r.MeanPower(0, sim.Time(1100*sim.Millisecond), sim.Time(1900*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if busy < 25 || busy > 40 {
		t.Fatalf("busy power %v", busy)
	}
	if idle >= busy/2 {
		t.Fatalf("idle %v not well below busy %v", idle, busy)
	}
	if _, err := r.MeanPower(0, sim.Time(sim.Hour), sim.Time(2*sim.Hour)); err == nil {
		t.Fatal("expected error for empty window")
	}
	if _, err := r.MeanPower(9, 0, sim.Time(sim.Second)); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestWriteCSV(t *testing.T) {
	r, _, _ := fixture(t)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != r.Len()+1 {
		t.Fatalf("%d lines for %d samples", len(lines), r.Len())
	}
	if !strings.HasPrefix(lines[0], "time_s,node,freq_mhz,state,total_w,cpu_w") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(out, "compute") || !strings.Contains(out, "idle") {
		t.Fatal("states missing from CSV")
	}
	// Every row has the same number of fields as the header.
	want := strings.Count(lines[0], ",")
	for i, l := range lines {
		if strings.Count(l, ",") != want {
			t.Fatalf("row %d field count mismatch: %q", i, l)
		}
	}
}

func TestRecorderValidation(t *testing.T) {
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	for _, fn := range []func(){
		func() { NewRecorder(nil, sim.Second) },
		func() { NewRecorder([]*machine.Node{n}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSamplesReturnsCopy(t *testing.T) {
	r, _, _ := fixture(t)
	s := r.Samples()
	s[0].Node = 99
	if r.Samples()[0].Node == 99 {
		t.Fatal("Samples leaked internal slice")
	}
}
