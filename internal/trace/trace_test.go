package trace

import (
	"bytes"
	"encoding/csv"
	"errors"
	"io"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// memSink retains everything — the seed Recorder's behavior,
// reimplemented as a test consumer so streaming output can be checked
// against the retain-in-memory formatting byte for byte.
type memSink struct {
	meta    Meta
	samples []Sample
	ended   bool
}

func (m *memSink) Begin(meta Meta) error { m.meta = meta; return nil }
func (m *memSink) Tick(at sim.Time, row []Sample) error {
	m.samples = append(m.samples, row...)
	return nil
}
func (m *memSink) End() error { m.ended = true; return nil }

// legacyCSV formats retained samples exactly the way the seed
// Recorder.WriteCSV did.
func legacyCSV(t *testing.T, samples []Sample) string {
	t.Helper()
	var sb strings.Builder
	cw := csv.NewWriter(&sb)
	header := []string{"time_s", "node", "freq_mhz", "state", "total_w"}
	for _, c := range power.Components() {
		header = append(header, c.String()+"_w")
	}
	if err := cw.Write(header); err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		row := []string{
			strconv.FormatFloat(s.At.Seconds(), 'f', 6, 64),
			strconv.Itoa(s.Node),
			strconv.Itoa(s.Freq.MHz()),
			s.State.String(),
			strconv.FormatFloat(float64(s.Total), 'f', 3, 64),
		}
		for _, c := range power.Components() {
			row = append(row, strconv.FormatFloat(float64(s.Component[c]), 'f', 3, 64))
		}
		if err := cw.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// fixture runs a one-node workload with the given sinks attached and
// returns the recorder after Close.
func fixture(t *testing.T, sinks ...Sink) *Recorder {
	t.Helper()
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	done := false
	r, err := New(Config{Interval: 100 * sim.Millisecond, Nodes: []*machine.Node{n}, Sinks: sinks})
	if err != nil {
		t.Fatal(err)
	}
	r.Spawn(e, func() bool { return done })
	e.Spawn("app", func(p *sim.Proc) {
		n.Compute(p, 1.4e9)          // 1s busy
		n.IdleFor(p, sim.Second)     // 1s idle
		n.MemoryRounds(p, 4_000_000) // ~0.46s memory
		done = true
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStreamedSamples(t *testing.T) {
	mem := &memSink{}
	fixture(t, mem)
	if !mem.ended {
		t.Fatal("End not called")
	}
	if len(mem.samples) < 20 {
		t.Fatalf("only %d samples", len(mem.samples))
	}
	if mem.meta.Interval != 100*sim.Millisecond || len(mem.meta.NodeIDs) != 1 {
		t.Fatalf("meta %+v", mem.meta)
	}
	seen := map[machine.State]bool{}
	for i, s := range mem.samples {
		if i > 0 && s.At <= mem.samples[i-1].At {
			t.Fatal("samples not strictly ordered")
		}
		var sum power.Watts
		for _, c := range power.Components() {
			sum += s.Component[c]
		}
		if math.Abs(float64(sum-s.Total)) > 1e-9 {
			t.Fatalf("components %v != total %v", sum, s.Total)
		}
		seen[s.State] = true
	}
	for _, want := range []machine.State{machine.Compute, machine.Idle, machine.MemoryStall} {
		if !seen[want] {
			t.Errorf("state %v never sampled", want)
		}
	}
}

// TestCSVMatchesRetainedPath pins the migration guarantee: the
// streaming CSV sink emits byte-identical output to the seed's
// retain-everything WriteCSV formatting.
func TestCSVMatchesRetainedPath(t *testing.T) {
	mem := &memSink{}
	var streamed bytes.Buffer
	fixture(t, mem, NewCSV(&streamed))
	want := legacyCSV(t, mem.samples)
	if streamed.String() != want {
		t.Fatal("streaming CSV differs from the retained-slice formatting")
	}
	if !strings.HasPrefix(streamed.String(), "time_s,node,freq_mhz,state,total_w,cpu_w") {
		t.Fatalf("header: %q", strings.SplitN(streamed.String(), "\n", 2)[0])
	}
}

// TestRoundTrip pins write→replay equality: every record decoded from
// the binary archive equals the record that was written, and a replay
// through the CSV sink matches the live CSV byte for byte.
func TestRoundTrip(t *testing.T) {
	mem := &memSink{}
	var bin bytes.Buffer
	var liveCSV bytes.Buffer
	fixture(t, mem, NewWriter(&bin), NewCSV(&liveCSV))

	rd, err := NewReader(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Meta(); got.Interval != mem.meta.Interval ||
		!reflect.DeepEqual(got.NodeIDs, mem.meta.NodeIDs) ||
		got.Components != mem.meta.Components || got.Version != FormatVersion {
		t.Fatalf("meta mismatch: %+v vs %+v", got, mem.meta)
	}
	replayed := &memSink{}
	var replayCSV bytes.Buffer
	if err := rd.Replay(replayed, NewCSV(&replayCSV)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.samples, mem.samples) {
		t.Fatalf("replayed records differ: %d vs %d samples", len(replayed.samples), len(mem.samples))
	}
	if replayCSV.String() != liveCSV.String() {
		t.Fatal("replayed CSV differs from live CSV")
	}
}

func TestReaderErrorPaths(t *testing.T) {
	var bin bytes.Buffer
	fixture(t, NewWriter(&bin))
	raw := bin.Bytes()

	// Corrupt magic.
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	// Unsupported version.
	bad = append([]byte{}, raw...)
	bad[4] = 99
	if _, err := NewReader(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
	// Truncated header.
	if _, err := NewReader(bytes.NewReader(raw[:3])); err == nil {
		t.Fatal("3-byte header must error")
	}
	if _, err := NewReader(bytes.NewReader(raw[:5])); err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: %v", err)
	}
	// Truncated mid-record: cut a few bytes into the record stream.
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil { // find a record boundary is past header
		t.Fatal(err)
	}
	cut := len(raw) - 3
	rd, err = NewReader(bytes.NewReader(raw[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = rd.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated record should be unexpected EOF, got %v", err)
	}
	// Clean EOF at a record boundary is io.EOF exactly.
	rd, err = NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = rd.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("clean end should be io.EOF, got %v", err)
	}
}

func TestStats(t *testing.T) {
	mem := &memSink{}
	st := NewStats()
	fixture(t, mem, st)
	if st.Ticks()*1 != len(mem.samples) {
		t.Fatalf("%d ticks for %d samples", st.Ticks(), len(mem.samples))
	}
	if !reflect.DeepEqual(st.Nodes(), []int{0}) {
		t.Fatalf("nodes %v", st.Nodes())
	}
	var sum, peak power.Watts
	for _, s := range mem.samples {
		sum += s.Total
		if s.Total > peak {
			peak = s.Total
		}
	}
	mean, err := st.MeanPower(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := sum / power.Watts(len(mem.samples)); math.Abs(float64(mean-want)) > 1e-9 {
		t.Fatalf("mean %v want %v", mean, want)
	}
	if mean < 10 || mean > 40 {
		t.Fatalf("implausible mean power %v", mean)
	}
	p, err := st.PeakPower(0)
	if err != nil {
		t.Fatal(err)
	}
	if p != peak {
		t.Fatalf("peak %v want %v", p, peak)
	}
	e, err := st.Energy(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := power.Joules(float64(sum) * 0.1); math.Abs(float64(e-want)) > 1e-6 {
		t.Fatalf("energy %v want %v", e, want)
	}
	if _, err := st.MeanPower(9); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestWindowStats(t *testing.T) {
	// The first simulated second is compute (high draw), the second
	// idle (low draw) — the window split the old MeanPower test used.
	busyW := NewWindowStats(0, sim.Time(sim.Second))
	idleW := NewWindowStats(sim.Time(1100*sim.Millisecond), sim.Time(1900*sim.Millisecond))
	emptyW := NewWindowStats(sim.Time(sim.Hour), sim.Time(2*sim.Hour))
	fixture(t, busyW, idleW, emptyW)
	busy, err := busyW.MeanPower(0)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := idleW.MeanPower(0)
	if err != nil {
		t.Fatal(err)
	}
	if busy < 25 || busy > 40 {
		t.Fatalf("busy power %v", busy)
	}
	if idle >= busy/2 {
		t.Fatalf("idle %v not well below busy %v", idle, busy)
	}
	if _, err := emptyW.MeanPower(0); err == nil {
		t.Fatal("expected error for empty window")
	}
}

func TestDownsampler(t *testing.T) {
	full := &memSink{}
	ds := NewDownsampler(0, 8)
	fixture(t, full, ds)
	xs, ys := ds.Series()
	if len(xs) == 0 || len(xs) > 8 || len(xs) != len(ys) {
		t.Fatalf("%d points for budget 8", len(xs))
	}
	// Every sample lands in exactly one bucket: the weighted mean of
	// the bucket means must equal the global mean.
	var total float64
	n := 0
	for _, s := range full.samples {
		total += float64(s.Total)
		n++
	}
	// Recompute from buckets.
	var btotal float64
	bn := 0
	for i := range ds.buckets {
		btotal += ds.buckets[i].v
		bn += ds.buckets[i].n
	}
	if bn != n || math.Abs(btotal-total) > 1e-9 {
		t.Fatalf("buckets cover %d/%v of %d/%v samples", bn, btotal, n, total)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("bucket times not increasing")
		}
	}
	// A downsampler for an unknown node fails at Begin (surfaced by New).
	e := sim.NewEngine()
	node := machine.NewNode(e, 0, machine.DefaultParams())
	if _, err := New(Config{Interval: sim.Second, Nodes: []*machine.Node{node},
		Sinks: []Sink{NewDownsampler(7, 8)}}); err == nil {
		t.Fatal("unknown node must fail Begin")
	}
	if _, err := New(Config{Interval: sim.Second, Nodes: []*machine.Node{node},
		Sinks: []Sink{NewDownsampler(0, 1)}}); err == nil {
		t.Fatal("budget < 2 must fail Begin")
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	cases := []Config{
		{Interval: sim.Second},                                                // no nodes
		{Nodes: []*machine.Node{n}},                                           // no interval
		{Interval: -1, Nodes: []*machine.Node{n}},                             // negative interval
		{Interval: sim.Second, Nodes: []*machine.Node{n}, Sinks: []Sink{nil}}, // nil sink
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew must panic on invalid config")
			}
		}()
		MustNew(Config{})
	}()
	if r := MustNew(Config{Interval: sim.Second, Nodes: []*machine.Node{n}}); r == nil {
		t.Fatal("MustNew on a valid config")
	}
}

// failSink errors on demand to exercise the recorder's error latching.
type failSink struct {
	tickErr, endErr error
}

func (f *failSink) Begin(Meta) error              { return nil }
func (f *failSink) Tick(sim.Time, []Sample) error { return f.tickErr }
func (f *failSink) End() error                    { return f.endErr }

func TestRecorderErrorLatching(t *testing.T) {
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	tickFail := errors.New("tick boom")
	mem := &memSink{}
	r, err := New(Config{Interval: 100 * sim.Millisecond, Nodes: []*machine.Node{n},
		Sinks: []Sink{&failSink{tickErr: tickFail}, mem}})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	r.Spawn(e, func() bool { return done })
	e.Spawn("app", func(p *sim.Proc) {
		n.IdleFor(p, sim.Second)
		done = true
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(r.Err(), tickFail) {
		t.Fatalf("Err() = %v", r.Err())
	}
	if err := r.Close(); !errors.Is(err, tickFail) {
		t.Fatalf("Close() = %v", err)
	}
	if len(mem.samples) != 0 {
		t.Fatal("later sinks must not see the row after an earlier sink failed")
	}
	// End errors surface from Close too.
	endFail := errors.New("end boom")
	r2 := MustNew(Config{Interval: sim.Second, Nodes: []*machine.Node{n},
		Sinks: []Sink{&failSink{endErr: endFail}}})
	if err := r2.Close(); !errors.Is(err, endFail) {
		t.Fatalf("Close() = %v", err)
	}
}
