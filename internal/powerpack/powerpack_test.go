package powerpack

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func newCtx(t *testing.T, policy RegionPolicy) (*sim.Engine, *machine.Node, *Profiler, *NodeCtx) {
	t.Helper()
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	prof := NewProfiler()
	return e, n, prof, NewNodeCtx(n, prof, policy)
}

func mustRun(t *testing.T, e *sim.Engine) {
	t.Helper()
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestRegionProfileAccumulates(t *testing.T) {
	e, n, _, ctx := newCtx(t, nil)
	e.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			ctx.EnterRegion(p, "fft")
			n.Compute(p, 1.4e8) // ~100ms
			ctx.ExitRegion(p, "fft")
			n.IdleFor(p, 50*sim.Millisecond)
		}
	})
	mustRun(t, e)
	rp := ctx.Profile("fft")
	if rp == nil {
		t.Fatal("no profile")
	}
	if rp.Count != 3 {
		t.Fatalf("count = %d", rp.Count)
	}
	// ~300ms inside the region, none of the idle time.
	if rp.Time < 295*sim.Millisecond || rp.Time > 310*sim.Millisecond {
		t.Fatalf("region time = %v", rp.Time)
	}
	if rp.Energy <= 0 {
		t.Fatal("region energy must be positive")
	}
	// Region energy excludes the idle gaps: it must be well below the
	// node total.
	total := n.EnergyAt(n.Engine().Now())
	if rp.Energy >= total {
		t.Fatalf("region energy %v >= total %v", rp.Energy, total)
	}
}

func TestRegionNesting(t *testing.T) {
	e, n, _, ctx := newCtx(t, nil)
	e.Spawn("app", func(p *sim.Proc) {
		ctx.EnterRegion(p, "outer")
		n.Compute(p, 1e7)
		ctx.EnterRegion(p, "inner")
		n.Compute(p, 1e7)
		ctx.ExitRegion(p, "inner")
		n.Compute(p, 1e7)
		ctx.ExitRegion(p, "outer")
	})
	mustRun(t, e)
	outer, inner := ctx.Profile("outer"), ctx.Profile("inner")
	if outer == nil || inner == nil {
		t.Fatal("missing profiles")
	}
	if outer.Time <= inner.Time {
		t.Fatalf("outer %v should exceed inner %v", outer.Time, inner.Time)
	}
}

func TestMismatchedExitPanics(t *testing.T) {
	e, _, _, ctx := newCtx(t, nil)
	e.Spawn("app", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		ctx.EnterRegion(p, "a")
		ctx.ExitRegion(p, "b")
	})
	mustRun(t, e)
}

func TestExitWithoutEnterPanics(t *testing.T) {
	e, _, _, ctx := newCtx(t, nil)
	e.Spawn("app", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		ctx.ExitRegion(p, "nope")
	})
	mustRun(t, e)
}

func TestTimelineAlignment(t *testing.T) {
	e := sim.NewEngine()
	prof := NewProfiler()
	var ctxs []*NodeCtx
	for i := 0; i < 3; i++ {
		n := machine.NewNode(e, i, machine.DefaultParams())
		ctx := NewNodeCtx(n, prof, nil)
		ctxs = append(ctxs, ctx)
		i := i
		e.Spawn("app", func(p *sim.Proc) {
			p.Sleep(sim.Duration(3-i) * 10 * sim.Millisecond)
			ctx.Mark("hello")
		})
	}
	mustRun(t, e)
	tl := prof.Timeline()
	if len(tl) != 3 {
		t.Fatalf("%d events", len(tl))
	}
	// Aligned by time: node 2 marked first, node 0 last.
	if tl[0].Node != 2 || tl[2].Node != 0 {
		t.Fatalf("timeline order: %+v", tl)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].At < tl[i-1].At {
			t.Fatal("timeline not sorted")
		}
	}
	if got := prof.NodeEvents(1); len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("NodeEvents = %+v", got)
	}
}

type recordingPolicy struct {
	calls []string
}

func (r *recordingPolicy) OnEnter(p *sim.Proc, n *machine.Node, region string) {
	r.calls = append(r.calls, "enter:"+region)
}
func (r *recordingPolicy) OnExit(p *sim.Proc, n *machine.Node, region string) {
	r.calls = append(r.calls, "exit:"+region)
}

func TestPolicyHooksFire(t *testing.T) {
	pol := &recordingPolicy{}
	e, n, _, ctx := newCtx(t, pol)
	e.Spawn("app", func(p *sim.Proc) {
		ctx.EnterRegion(p, "fft")
		n.Compute(p, 1e6)
		ctx.ExitRegion(p, "fft")
	})
	mustRun(t, e)
	if len(pol.calls) != 2 || pol.calls[0] != "enter:fft" || pol.calls[1] != "exit:fft" {
		t.Fatalf("calls = %v", pol.calls)
	}
}

func TestSetFrequencyIndexLogsAndSwitches(t *testing.T) {
	e, n, prof, ctx := newCtx(t, nil)
	e.Spawn("app", func(p *sim.Proc) {
		ctx.SetFrequencyIndex(p, 4)
		ctx.SetFrequencyIndex(p, 4) // no-op, not logged
	})
	mustRun(t, e)
	if n.OPIndex() != 4 {
		t.Fatal("frequency not applied")
	}
	var freqEvents int
	for _, ev := range prof.Events() {
		if ev.Kind == EventFreq {
			freqEvents++
			if ev.Label != "600MHz" {
				t.Fatalf("label = %q", ev.Label)
			}
		}
	}
	if freqEvents != 1 {
		t.Fatalf("%d freq events", freqEvents)
	}
}

func TestMergeProfiles(t *testing.T) {
	e := sim.NewEngine()
	prof := NewProfiler()
	var ctxs []*NodeCtx
	for i := 0; i < 2; i++ {
		n := machine.NewNode(e, i, machine.DefaultParams())
		ctx := NewNodeCtx(n, prof, nil)
		ctxs = append(ctxs, ctx)
		e.Spawn("app", func(p *sim.Proc) {
			ctx.EnterRegion(p, "work")
			n.Compute(p, 1.4e8)
			ctx.ExitRegion(p, "work")
		})
	}
	mustRun(t, e)
	merged := MergeProfiles(ctxs, "work")
	if merged.Count != 2 {
		t.Fatalf("count = %d", merged.Count)
	}
	if merged.Time < 190*sim.Millisecond {
		t.Fatalf("time = %v", merged.Time)
	}
	if merged.Energy <= 0 {
		t.Fatal("energy")
	}
	if empty := MergeProfiles(ctxs, "absent"); empty.Count != 0 {
		t.Fatal("absent region should merge to zero")
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EventEnter, EventExit, EventMark, EventFreq} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if EventKind(9).String() != "event(9)" {
		t.Fatal("unknown kind")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	e, _, prof, ctx := newCtx(t, nil)
	e.Spawn("app", func(p *sim.Proc) { ctx.Mark("x") })
	mustRun(t, e)
	evs := prof.Events()
	evs[0].Label = "mutated"
	if prof.Events()[0].Label != "x" {
		t.Fatal("Events leaked internal slice")
	}
}

func TestNodeCtxAccessorsAndProfiles(t *testing.T) {
	e, n, _, ctx := newCtx(t, nil)
	if ctx.Node() != n {
		t.Fatal("Node accessor")
	}
	e.Spawn("app", func(p *sim.Proc) {
		ctx.EnterRegion(p, "b")
		n.Compute(p, 1e6)
		ctx.ExitRegion(p, "b")
		ctx.EnterRegion(p, "a")
		n.Compute(p, 1e6)
		ctx.ExitRegion(p, "a")
	})
	mustRun(t, e)
	ps := ctx.Profiles()
	if len(ps) != 2 || ps[0].Region != "a" || ps[1].Region != "b" {
		t.Fatalf("Profiles not sorted: %+v", ps)
	}
	if ctx.Profile("absent") != nil {
		t.Fatal("absent profile should be nil")
	}
}

func TestProfilerWriteCSV(t *testing.T) {
	e, n, prof, ctx := newCtx(t, nil)
	e.Spawn("app", func(p *sim.Proc) {
		ctx.EnterRegion(p, "fft")
		n.Compute(p, 1e7)
		ctx.ExitRegion(p, "fft")
		ctx.Mark("done")
	})
	mustRun(t, e)
	var sb strings.Builder
	if err := prof.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"time_s,node,kind,label,energy_j", "enter,fft", "exit,fft", "mark,done"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(strings.TrimSpace(out), "\n"); got != 3 {
		t.Fatalf("%d data rows", got)
	}
}
