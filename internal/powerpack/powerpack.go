// Package powerpack reproduces the paper's PowerPack software suite:
// portable libraries for timestamp-driven coordination of power
// measurement and DVS control at application level, plus the tooling
// that filters and aligns per-node data sets for analysis.
//
// Applications mark regions of interest (EnterRegion/ExitRegion around
// functions like NAS FT's fft()); the markers record per-region time and
// energy, and — under a dynamic DVS strategy — drive frequency changes
// at region boundaries exactly the way the paper inserts PowerPack
// library calls before and after slack-heavy functions.
package powerpack

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// RegionPolicy is the hook a DVS strategy installs to react to region
// boundaries. A nil policy means markers only profile.
type RegionPolicy interface {
	// OnEnter runs in the application's process when it enters a
	// marked region.
	OnEnter(p *sim.Proc, n *machine.Node, region string)
	// OnExit runs when the application leaves the region.
	OnExit(p *sim.Proc, n *machine.Node, region string)
}

// EventKind classifies profiler log entries.
type EventKind int

// Profiler event kinds.
const (
	EventEnter EventKind = iota
	EventExit
	EventMark
	EventFreq
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventEnter:
		return "enter"
	case EventExit:
		return "exit"
	case EventMark:
		return "mark"
	case EventFreq:
		return "freq"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one timestamped profiler record from one node.
type Event struct {
	Node   int
	At     sim.Time
	Kind   EventKind
	Label  string
	Energy power.Joules // node cumulative energy at the event
}

// RegionProfile accumulates time and energy for one marked region on
// one node.
type RegionProfile struct {
	Region string
	Node   int
	Count  int
	Time   sim.Duration
	Energy power.Joules
}

// Profiler is the cluster-wide collection point. Every node records
// into its own event lane — registered up front when its NodeCtx is
// built — so ranks on different event-core shards never share an
// append target and no locking is needed; analysis methods merge the
// lanes into one aligned timeline. The merged order is (time, node,
// per-node recording order), which does not depend on shard count.
type Profiler struct {
	lanes []*lane
}

type lane struct {
	node   int
	events []Event
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// laneFor returns (registering if needed) the event lane for node id.
// It must only be called at setup time, before the simulation runs.
func (pr *Profiler) laneFor(id int) *lane {
	for _, l := range pr.lanes {
		if l.node == id {
			return l
		}
	}
	l := &lane{node: id}
	pr.lanes = append(pr.lanes, l)
	return l
}

func (l *lane) record(ev Event) {
	l.events = append(l.events, ev)
}

// Events returns every recorded event aligned on the global clock:
// sorted by time, ties broken by node id then per-node recording
// order. Each lane is already time-ordered (a node's clock never runs
// backwards), so this is a deterministic k-way merge. This is the
// "filter and align data sets from individual nodes" step of the
// paper's tool chain.
func (pr *Profiler) Events() []Event {
	total := 0
	for _, l := range pr.lanes {
		total += len(l.events)
	}
	out := make([]Event, 0, total)
	idx := make([]int, len(pr.lanes))
	for len(out) < total {
		best := -1
		for i, l := range pr.lanes {
			if idx[i] >= len(l.events) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a, b := &l.events[idx[i]], &pr.lanes[best].events[idx[best]]
			if a.At < b.At || (a.At == b.At && l.node < pr.lanes[best].node) {
				best = i
			}
		}
		out = append(out, pr.lanes[best].events[idx[best]])
		idx[best]++
	}
	return out
}

// Timeline is the aligned event sequence; since lanes merge in
// (time, node, recording) order it is identical to Events.
func (pr *Profiler) Timeline() []Event {
	return pr.Events()
}

// NodeEvents filters the timeline to one node.
func (pr *Profiler) NodeEvents(node int) []Event {
	var out []Event
	for _, ev := range pr.Timeline() {
		if ev.Node == node {
			out = append(out, ev)
		}
	}
	return out
}

// NodeCtx is the per-node PowerPack library handle an application links
// against: markers, direct DVS control, and the policy hook.
type NodeCtx struct {
	node   *machine.Node
	prof   *Profiler
	lane   *lane
	policy RegionPolicy

	stack    []regionFrame
	profiles map[string]*RegionProfile
}

type regionFrame struct {
	name    string
	started sim.Time
	energy  power.Joules
}

// NewNodeCtx binds a node to the profiler under the given policy
// (nil = profile only).
func NewNodeCtx(node *machine.Node, prof *Profiler, policy RegionPolicy) *NodeCtx {
	return &NodeCtx{
		node:     node,
		prof:     prof,
		lane:     prof.laneFor(node.ID()),
		policy:   policy,
		profiles: make(map[string]*RegionProfile),
	}
}

// Node returns the underlying machine.
func (c *NodeCtx) Node() *machine.Node { return c.node }

// EnterRegion marks the start of a named region: it logs a timestamped
// event and lets the installed DVS policy act (e.g. drop to the lowest
// operating point).
func (c *NodeCtx) EnterRegion(p *sim.Proc, name string) {
	now := c.node.Engine().Now()
	c.lane.record(Event{Node: c.node.ID(), At: now, Kind: EventEnter, Label: name, Energy: c.node.EnergyAt(now)})
	if c.policy != nil {
		c.policy.OnEnter(p, c.node, name)
	}
	// Push after the policy acted so the frame's baseline includes the
	// transition cost inside the region (as the paper's overhead
	// discussion does).
	now = c.node.Engine().Now()
	c.stack = append(c.stack, regionFrame{name: name, started: now, energy: c.node.EnergyAt(now)})
}

// ExitRegion marks the end of the named region, which must be the most
// recently entered one (regions nest strictly).
func (c *NodeCtx) ExitRegion(p *sim.Proc, name string) {
	if len(c.stack) == 0 {
		panic(fmt.Sprintf("powerpack: ExitRegion(%q) with no open region on node %d", name, c.node.ID())) //lint:allow panicfree (region-nesting API misuse is a programming error)
	}
	top := c.stack[len(c.stack)-1]
	if top.name != name {
		panic(fmt.Sprintf("powerpack: ExitRegion(%q) but innermost region is %q", name, top.name)) //lint:allow panicfree (region-nesting API misuse is a programming error)
	}
	c.stack = c.stack[:len(c.stack)-1]

	now := c.node.Engine().Now()
	rp := c.profiles[name]
	if rp == nil {
		rp = &RegionProfile{Region: name, Node: c.node.ID()}
		c.profiles[name] = rp
	}
	rp.Count++
	rp.Time += now.Sub(top.started)
	rp.Energy += c.node.EnergyAt(now) - top.energy

	c.lane.record(Event{Node: c.node.ID(), At: now, Kind: EventExit, Label: name, Energy: c.node.EnergyAt(now)})
	if c.policy != nil {
		c.policy.OnExit(p, c.node, name)
	}
}

// Mark records a free-form timestamped annotation.
func (c *NodeCtx) Mark(label string) {
	now := c.node.Engine().Now()
	c.lane.record(Event{Node: c.node.ID(), At: now, Kind: EventMark, Label: label, Energy: c.node.EnergyAt(now)})
}

// SetFrequencyIndex is the application-level DVS control call
// (libxutil-style): it switches the node's operating point and logs it.
// It returns an error (and logs nothing) if idx is out of range.
func (c *NodeCtx) SetFrequencyIndex(p *sim.Proc, idx int) error {
	if idx == c.node.OPIndex() {
		return nil
	}
	if err := c.node.SetOperatingPointIndex(p, idx); err != nil {
		return err
	}
	now := c.node.Engine().Now()
	c.lane.record(Event{
		Node: c.node.ID(), At: now, Kind: EventFreq,
		Label:  c.node.OperatingPoint().Freq.String(),
		Energy: c.node.EnergyAt(now),
	})
	return nil
}

// Profile returns the accumulated profile for a region on this node
// (nil if the region never completed).
func (c *NodeCtx) Profile(region string) *RegionProfile {
	return c.profiles[region]
}

// Profiles returns every region profile on this node, sorted by name.
func (c *NodeCtx) Profiles() []RegionProfile {
	names := make([]string, 0, len(c.profiles))
	for n := range c.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]RegionProfile, 0, len(names))
	for _, n := range names {
		out = append(out, *c.profiles[n])
	}
	return out
}

// MergeProfiles sums region profiles with the same name across nodes,
// returning cluster-wide totals sorted by name. Node is -1 in the
// merged records.
func MergeProfiles(ctxs []*NodeCtx, region string) RegionProfile {
	merged := RegionProfile{Region: region, Node: -1}
	for _, c := range ctxs {
		if rp := c.profiles[region]; rp != nil {
			merged.Count += rp.Count
			merged.Time += rp.Time
			merged.Energy += rp.Energy
		}
	}
	return merged
}

// WriteCSV exports the aligned event timeline as CSV
// (time_s,node,kind,label,energy_j) for external analysis, mirroring
// the data sets the paper's tooling produced from per-node logs.
func (pr *Profiler) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "node", "kind", "label", "energy_j"}); err != nil {
		return err
	}
	for _, ev := range pr.Timeline() {
		err := cw.Write([]string{
			strconv.FormatFloat(ev.At.Seconds(), 'f', 6, 64),
			strconv.Itoa(ev.Node),
			ev.Kind.String(),
			ev.Label,
			strconv.FormatFloat(float64(ev.Energy), 'f', 3, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
