// Package meter reproduces the paper's two independent direct power
// measurement techniques (Section 3):
//
//   - ACPIBattery — polling the laptop's smart battery for remaining
//     capacity in mWh (1 mWh = 3.6 J), refreshed only every 15-20
//     seconds and quantized to whole mWh, which is why the paper runs
//     long workloads and iterates executions;
//   - BaytechStrip — remote power-strip management hardware reporting
//     per-outlet average power once a minute over SNMP.
//
// Both instruments observe the exact energy integrators of the node
// model through a realistic sampling-and-quantization window, so the
// measurement-protocol part of the paper's framework (including its
// error characteristics) is exercised, not just the true values.
package meter

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// Reading is one battery capacity poll.
type Reading struct {
	At        sim.Time
	Remaining float64 // mWh, quantized to whole units
}

// ACPIBattery simulates a smart battery attached to one node. Spawn
// starts the polling process; readings accumulate until the done
// function reports true.
type ACPIBattery struct {
	node     *machine.Node
	capacity float64 // mWh at full charge
	refresh  sim.Duration
	readings []Reading
}

// DefaultBatteryCapacityMWh is a stock Inspiron 8600 battery
// (~72 Wh = 72000 mWh).
const DefaultBatteryCapacityMWh = 72000

// NewACPIBattery creates a fully charged battery for node with the
// given poll refresh (the paper observes 15-20 s).
func NewACPIBattery(node *machine.Node, capacityMWh float64, refresh sim.Duration) *ACPIBattery {
	if capacityMWh <= 0 {
		panic("meter: non-positive battery capacity") //lint:allow panicfree (constructor misuse; meter config is fixed at build time)
	}
	if refresh <= 0 {
		panic("meter: non-positive refresh") //lint:allow panicfree (constructor misuse; meter config is fixed at build time)
	}
	return &ACPIBattery{node: node, capacity: capacityMWh, refresh: refresh}
}

// Spawn starts the polling process. It takes an immediate reading at
// the current time, then polls every refresh until done() is true.
func (b *ACPIBattery) Spawn(eng *sim.Engine, done func() bool) {
	eng.Spawn(fmt.Sprintf("acpi%d", b.node.ID()), func(p *sim.Proc) {
		b.poll(p.Now())
		for {
			p.Sleep(b.refresh)
			b.poll(p.Now())
			if done != nil && done() {
				return
			}
		}
	})
}

// poll records the quantized remaining capacity at time t.
func (b *ACPIBattery) poll(t sim.Time) {
	used := b.node.EnergyAt(t).MilliwattHours()
	remaining := math.Floor(b.capacity - used)
	if remaining < 0 {
		remaining = 0 // battery exhausted; the protocol should avoid this
	}
	b.readings = append(b.readings, Reading{At: t, Remaining: remaining})
}

// Readings returns all polls so far.
func (b *ACPIBattery) Readings() []Reading {
	out := make([]Reading, len(b.readings))
	copy(out, b.readings)
	return out
}

// Exhausted reports whether the battery hit zero in any reading.
func (b *ACPIBattery) Exhausted() bool {
	for _, r := range b.readings {
		if r.Remaining <= 0 {
			return true
		}
	}
	return false
}

// EnergyBetween estimates the energy consumed over [start, end] the way
// the paper does: the difference between the last reading at or before
// start and the first reading at or after end. ok is false when the
// polls do not bracket the interval.
func (b *ACPIBattery) EnergyBetween(start, end sim.Time) (power.Joules, bool) {
	var before, after *Reading
	for i := range b.readings {
		r := &b.readings[i]
		if r.At <= start {
			before = r
		}
		if r.At >= end {
			after = r
			break
		}
	}
	if before == nil || after == nil {
		return 0, false
	}
	return power.JoulesFromMilliwattHours(before.Remaining - after.Remaining), true
}

// OutletRecord is one Baytech poll: average power on one outlet over
// the preceding interval.
type OutletRecord struct {
	At     sim.Time
	Outlet int
	AvgW   power.Watts
}

// BaytechStrip simulates the remote management strip: every interval it
// reports the average power of each outlet (node) since the previous
// poll.
type BaytechStrip struct {
	nodes    []*machine.Node
	interval sim.Duration
	records  []OutletRecord
	lastE    []power.Joules
}

// NewBaytechStrip wires every node to an outlet, polled at interval
// (the hardware updates once a minute).
func NewBaytechStrip(nodes []*machine.Node, interval sim.Duration) *BaytechStrip {
	if len(nodes) == 0 {
		panic("meter: empty strip") //lint:allow panicfree (constructor misuse; meter config is fixed at build time)
	}
	if interval <= 0 {
		panic("meter: non-positive interval") //lint:allow panicfree (constructor misuse; meter config is fixed at build time)
	}
	return &BaytechStrip{
		nodes:    nodes,
		interval: interval,
		lastE:    make([]power.Joules, len(nodes)),
	}
}

// Spawn starts the management unit's polling process.
func (s *BaytechStrip) Spawn(eng *sim.Engine, done func() bool) {
	eng.Spawn("baytech", func(p *sim.Proc) {
		for i, n := range s.nodes {
			s.lastE[i] = n.EnergyAt(p.Now())
		}
		for {
			p.Sleep(s.interval)
			now := p.Now()
			for i, n := range s.nodes {
				e := n.EnergyAt(now)
				avg := power.Watts(float64(e-s.lastE[i]) / s.interval.Seconds())
				s.lastE[i] = e
				s.records = append(s.records, OutletRecord{At: now, Outlet: i, AvgW: avg})
			}
			if done != nil && done() {
				return
			}
		}
	})
}

// GlobalPri is the coordinator-global priority the strip's polls use;
// it must not collide with any other same-time global source (see
// sim.Group.ScheduleGlobal).
const GlobalPri = 2

// SpawnGroup starts the polling process on a sharded group. Each poll
// runs as a coordinator global at a window barrier, where every
// shard's node energy integrator is safely visible; poll times and
// record order match Spawn. The first tick only baselines the energy
// counters, mirroring Spawn's pre-loop read.
func (s *BaytechStrip) SpawnGroup(g *sim.Group, done func() bool) {
	start := g.Now()
	g.ScheduleGlobal(start, GlobalPri, func() {
		for i, n := range s.nodes {
			s.lastE[i] = n.EnergyAt(start)
		}
		s.tick(g, start.Add(s.interval), done)
	})
}

// tick schedules one poll at time at, which records every outlet and
// re-arms itself unless done.
func (s *BaytechStrip) tick(g *sim.Group, at sim.Time, done func() bool) {
	g.ScheduleGlobal(at, GlobalPri, func() {
		for i, n := range s.nodes {
			e := n.EnergyAt(at)
			avg := power.Watts(float64(e-s.lastE[i]) / s.interval.Seconds())
			s.lastE[i] = e
			s.records = append(s.records, OutletRecord{At: at, Outlet: i, AvgW: avg})
		}
		if done != nil && done() {
			return
		}
		s.tick(g, at.Add(s.interval), done)
	})
}

// Records returns all outlet polls so far.
func (s *BaytechStrip) Records() []OutletRecord {
	out := make([]OutletRecord, len(s.records))
	copy(out, s.records)
	return out
}

// EnergyBetween integrates an outlet's average-power records over the
// polls covering [start, end] (each record covers the interval ending
// at its timestamp). ok is false if the records do not cover the range.
func (s *BaytechStrip) EnergyBetween(outlet int, start, end sim.Time) (power.Joules, bool) {
	var total power.Joules
	covered := false
	for _, r := range s.records {
		if r.Outlet != outlet {
			continue
		}
		intStart := r.At - sim.Time(s.interval)
		if r.At <= start || intStart >= end {
			continue
		}
		// Clip the record's interval to [start, end].
		lo, hi := intStart, r.At
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		total += power.Joules(float64(r.AvgW) * hi.Sub(lo).Seconds())
		covered = true
	}
	if !covered {
		return 0, false
	}
	return total, true
}
