package meter

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/sim"
)

// fixture: a node burning CPU for the given duration, with battery and
// strip attached.
func runFixture(t *testing.T, workSeconds float64, refresh, stripInterval sim.Duration) (*machine.Node, *ACPIBattery, *BaytechStrip, sim.Time) {
	t.Helper()
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	done := false
	bat := NewACPIBattery(n, DefaultBatteryCapacityMWh, refresh)
	bat.Spawn(e, func() bool { return done })
	strip := NewBaytechStrip([]*machine.Node{n}, stripInterval)
	strip.Spawn(e, func() bool { return done })
	var endOfWork sim.Time
	e.Spawn("app", func(p *sim.Proc) {
		n.Compute(p, 1.4e9*workSeconds)
		endOfWork = p.Now()
		done = true
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	return n, bat, strip, endOfWork
}

func TestBatteryReadingsQuantizedAndMonotone(t *testing.T) {
	_, bat, _, _ := runFixture(t, 120, 17*sim.Second, sim.Minute)
	rs := bat.Readings()
	if len(rs) < 6 {
		t.Fatalf("only %d readings", len(rs))
	}
	for i, r := range rs {
		if r.Remaining != math.Floor(r.Remaining) {
			t.Fatalf("reading %d not whole mWh: %v", i, r.Remaining)
		}
		if i > 0 && r.Remaining > rs[i-1].Remaining {
			t.Fatalf("capacity increased at %d", i)
		}
	}
	if rs[0].Remaining != DefaultBatteryCapacityMWh {
		t.Fatalf("initial reading %v", rs[0].Remaining)
	}
}

func TestBatteryEnergyEstimateCloseToTruth(t *testing.T) {
	// Long run (as the paper prescribes) keeps relative error small.
	n, bat, _, end := runFixture(t, 600, 17*sim.Second, sim.Minute)
	est, ok := bat.EnergyBetween(0, end)
	if !ok {
		t.Fatal("no bracketing readings")
	}
	truth := n.EnergyAt(end)
	rel := math.Abs(float64(est-truth)) / float64(truth)
	// Error budget: one refresh of power (~17s*31W ≈ 530J) plus 2 mWh
	// quantization against ~19kJ → under 4%.
	if rel > 0.04 {
		t.Fatalf("relative error %.3f (est %v truth %v)", rel, est, truth)
	}
}

func TestBatteryEnergyBetweenRequiresBracketing(t *testing.T) {
	_, bat, _, end := runFixture(t, 30, 17*sim.Second, sim.Minute)
	if _, ok := bat.EnergyBetween(0, end.Add(sim.Hour)); ok {
		t.Fatal("should not bracket past the last reading")
	}
	if _, ok := bat.EnergyBetween(-5, end); ok {
		// Readings start at t=0, so a start before that has no
		// "at or before" reading.
		t.Fatal("should not bracket before the first reading")
	}
}

func TestBatteryExhaustion(t *testing.T) {
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	done := false
	// Tiny battery: 1 mWh = 3.6 J, gone in well under a second at ~31 W.
	bat := NewACPIBattery(n, 2, 100*sim.Millisecond)
	bat.Spawn(e, func() bool { return done })
	e.Spawn("app", func(p *sim.Proc) {
		n.Compute(p, 1.4e9) // ~1 s
		done = true
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !bat.Exhausted() {
		t.Fatal("battery should have exhausted")
	}
}

func TestBaytechAveragePower(t *testing.T) {
	n, _, strip, _ := runFixture(t, 300, 17*sim.Second, sim.Minute)
	recs := strip.Records()
	if len(recs) < 4 {
		t.Fatalf("only %d records", len(recs))
	}
	// During steady full-tilt compute the average equals the
	// instantaneous draw.
	want := float64(n.Power()) // node is idle at the end; compare mid-run record instead
	_ = want
	mid := recs[1]
	if mid.AvgW < 25 || mid.AvgW > 40 {
		t.Fatalf("mid-run average power %v implausible", mid.AvgW)
	}
	if mid.Outlet != 0 {
		t.Fatalf("outlet = %d", mid.Outlet)
	}
}

func TestBaytechEnergyIntegration(t *testing.T) {
	n, _, strip, end := runFixture(t, 300, 17*sim.Second, sim.Minute)
	est, ok := strip.EnergyBetween(0, 0, end)
	if !ok {
		t.Fatal("no coverage")
	}
	truth := n.EnergyAt(end)
	rel := math.Abs(float64(est-truth)) / float64(truth)
	// The last partial minute is missing (records land on poll
	// boundaries); with a 5-minute run that bounds error around 20%.
	// Integrating to the last record boundary instead is exact:
	recs := strip.Records()
	lastAt := recs[len(recs)-1].At
	est2, ok2 := strip.EnergyBetween(0, 0, lastAt)
	if !ok2 {
		t.Fatal("no coverage to last record")
	}
	truth2 := n.EnergyAt(lastAt)
	rel2 := math.Abs(float64(est2-truth2)) / float64(truth2)
	if rel2 > 1e-6 {
		t.Fatalf("aligned integration error %.6f", rel2)
	}
	if rel > 0.5 {
		t.Fatalf("unaligned integration wildly off: %.3f", rel)
	}
}

func TestCrossValidationACPIvsBaytech(t *testing.T) {
	// The paper's redundancy check: both instruments agree on energy.
	n, bat, strip, _ := runFixture(t, 600, 17*sim.Second, sim.Minute)
	_ = n
	recs := strip.Records()
	lastAt := recs[len(recs)-1].At
	acpi, ok1 := bat.EnergyBetween(0, lastAt)
	bay, ok2 := strip.EnergyBetween(0, 0, lastAt)
	if !ok1 || !ok2 {
		t.Fatal("missing coverage")
	}
	rel := math.Abs(float64(acpi-bay)) / float64(bay)
	if rel > 0.05 {
		t.Fatalf("instruments disagree by %.3f (acpi %v baytech %v)", rel, acpi, bay)
	}
}

func TestMeterConstructorsValidate(t *testing.T) {
	e := sim.NewEngine()
	n := machine.NewNode(e, 0, machine.DefaultParams())
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero capacity", func() { NewACPIBattery(n, 0, sim.Second) })
	mustPanic("zero refresh", func() { NewACPIBattery(n, 100, 0) })
	mustPanic("empty strip", func() { NewBaytechStrip(nil, sim.Minute) })
	mustPanic("zero interval", func() { NewBaytechStrip([]*machine.Node{n}, 0) })
}

func TestReadingsAreCopies(t *testing.T) {
	_, bat, strip, _ := runFixture(t, 60, 17*sim.Second, sim.Minute)
	rs := bat.Readings()
	rs[0].Remaining = -1
	if bat.Readings()[0].Remaining == -1 {
		t.Fatal("Readings leaked internal slice")
	}
	recs := strip.Records()
	if len(recs) > 0 {
		recs[0].AvgW = power.Watts(-1)
		if strip.Records()[0].AvgW == -1 {
			t.Fatal("Records leaked internal slice")
		}
	}
}
