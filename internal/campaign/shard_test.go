package campaign

import (
	"reflect"
	"strings"
	"testing"
)

// shardSpec is a small matrix over a genuinely multi-rank workload so
// the sharded event core has rank traffic to partition.
const shardSpec = `{
	"name": "shard-equality",
	"reps": 1,
	"settle": "30s",
	"exact_energy": true,
	"workloads": [{"kind": "ft", "class": "A", "procs": 4, "iters": 1}],
	"strategies": [{"kind": "static"}, {"kind": "slack"}],
	"points_mhz": [1400, 800]
}`

// TestShardedCampaignEquality pins the Shards knob end to end: the same
// spec at 1 and 2 shards per simulation must produce identical results
// down to the serialized bytes.
func TestShardedCampaignEquality(t *testing.T) {
	run := func(shards int) []Result {
		t.Helper()
		s, err := Parse(strings.NewReader(shardSpec))
		if err != nil {
			t.Fatal(err)
		}
		s.Parallelism = 1
		s.Shards = shards
		results, err := Run(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	seq := run(1)
	shr := run(2)
	if !reflect.DeepEqual(seq, shr) {
		t.Errorf("sharded campaign differs:\nseq %+v\nshr %+v", seq, shr)
	}
	var seqJSON, shrJSON strings.Builder
	if err := WriteJSON(&seqJSON, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&shrJSON, shr); err != nil {
		t.Fatal(err)
	}
	if seqJSON.String() != shrJSON.String() {
		t.Errorf("sharded campaign JSON differs:\nseq %s\nshr %s", seqJSON.String(), shrJSON.String())
	}
}

// TestShardedSpecValidation covers the spec-level Shards guard.
func TestShardedSpecValidation(t *testing.T) {
	s := &Spec{
		Workloads:  []WorkloadSpec{{Kind: "swim"}},
		Strategies: []StrategySpec{{Kind: "static"}},
		Shards:     -1,
	}
	if _, err := Run(s, nil); err == nil {
		t.Fatal("negative shards must fail in Run")
	}
}
